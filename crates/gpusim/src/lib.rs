//! An event-driven GPU performance and energy simulator.
//!
//! This crate substitutes for the A100 / RTX 3090 / T4 hardware used in the
//! paper (see `DESIGN.md` at the repository root). It models exactly the
//! mechanisms the paper's results depend on:
//!
//! * **Occupancy** ([`occupancy`]): resident thread blocks per SM limited by
//!   threads / shared memory / registers — the resource-allocation argument
//!   behind the sparse-softmax inefficiency in §5.1.
//! * **Bandwidth utilization** ([`bandwidth`]): achieved DRAM bandwidth as a
//!   saturating function of concurrently memory-active threads.
//! * **L2 residency** ([`L2Cache`]): whole-buffer LRU determining which
//!   inter-kernel transfers (e.g. the decomposed softmax's `m'`,`d'`,`r'`)
//!   avoid DRAM.
//! * **Execution** ([`Gpu::launch`]): wave-analytic for uniform grids,
//!   event-driven fluid simulation for heterogeneous (block-sparse) grids,
//!   exposing load imbalance and tail waves.
//! * **Accounting** ([`Timeline`] / [`Breakdown`]): per-kernel time, traffic
//!   and energy aggregated per category, mirroring the paper's figures.
//! * **Pricing cache** ([`sim_cache_stats`] / [`set_sim_cache_enabled`]): a
//!   process-global, content-addressed memo of kernel durations and
//!   wave-class dt sequences — repeated kernels anywhere (tuner candidates,
//!   serve iterations, sweeps) price in O(lookup) with bit-identical
//!   timelines. `RESOFTMAX_SIM_CACHE=0` disables it.
//!
//! # Example
//!
//! ```
//! use resoftmax_gpusim::{DeviceSpec, Gpu, KernelCategory, KernelDesc, TbShape, TbWork};
//!
//! // A memory-bound softmax-like kernel on an A100.
//! let mut gpu = Gpu::new(DeviceSpec::a100());
//! let kernel = KernelDesc::builder("softmax", KernelCategory::Softmax)
//!     .shape(TbShape::new(1024, 8192, 32))
//!     .uniform(4096, TbWork::memory(8192.0, 8192.0))
//!     .build();
//! let stats = gpu.launch(&kernel)?;
//! // Memory-bound: the achieved bandwidth should be near peak.
//! assert!(stats.achieved_bw_fraction > 0.5);
//! # Ok::<(), resoftmax_gpusim::LaunchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod chrome_trace;
pub mod compare;
mod device;
mod kernel;
mod l2;
mod occupancy;
mod pricing;
pub mod roofline;
mod sim;
mod trace;

pub use device::{DeviceSpec, InvalidDeviceError};
pub use kernel::{
    AccumFormat, BufferUse, KernelCategory, KernelDesc, KernelDescBuilder, KernelMeta,
    ParallelSplit, TbGroup, TbSet, TbShape, TbWork,
};
pub use l2::{FilteredTraffic, L2Cache};
pub use occupancy::{occupancy, LaunchError, Occupancy, OccupancyLimiter};
pub use pricing::{
    clear_sim_cache, set_sim_cache_enabled, sim_cache_enabled, sim_cache_stats, SimCacheStats,
    MAX_CLASS_ENTRIES, MAX_KERNEL_ENTRIES,
};
pub use sim::Gpu;
pub use trace::{Breakdown, CategoryTotals, KernelStats, Timeline};
