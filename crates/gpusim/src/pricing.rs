//! Cross-run kernel-pricing memoization.
//!
//! The execution model is a pure function: a kernel's simulated duration is
//! fully determined by the device, the block shape (through occupancy), the
//! canonical thread-block work sequence, and the L2-derived `read_scale`.
//! This module content-addresses that pricing problem — a 128-bit FNV-1a
//! fingerprint over every input — and memoizes two levels of result in
//! process-global maps shared by every [`crate::Gpu`]:
//!
//! * **Kernel prices** ([`KernelPrice`]): the full execution time of one
//!   kernel (excluding the device's launch overhead, which is added by the
//!   caller) plus the event-step/fast-path-wave counts the fresh computation
//!   performed, so cache hits can report how much stepping they avoided.
//! * **Wave-class dt sequences**: the per-event time deltas of one exactly
//!   stepped full wave of a single TB class. The wave-class fast path
//!   replays these with the same `now += dt` additions, in the same order,
//!   that stepping the wave would perform — so a cached sequence produces a
//!   bit-identical timeline even when the *kernel* fingerprint is new (same
//!   class, different wave count).
//!
//! Keys never need invalidation: everything the answer depends on is inside
//! the fingerprint, so a changed input is simply a different key. The maps
//! are bounded ([`MAX_KERNEL_ENTRIES`] / [`MAX_CLASS_ENTRIES`]); at capacity
//! new results are computed but not stored (counted on `sim.cache.dropped`).
//!
//! Caching is on by default. `RESOFTMAX_SIM_CACHE=0` disables it for a
//! process (the same escape-hatch idiom as `Gpu::set_wave_fast_path(false)`),
//! [`set_sim_cache_enabled`] overrides the environment programmatically, and
//! [`Gpu::set_sim_cache`](crate::Gpu::set_sim_cache) gates one simulator
//! instance so equivalence tests can compare cached and fresh runs in the
//! same process.

use crate::device::DeviceSpec;
use crate::kernel::{TbGroup, TbShape, TbWork};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Capacity bound of the kernel-price map (entries are ~40 bytes).
pub const MAX_KERNEL_ENTRIES: usize = 1 << 17;
/// Capacity bound of the wave-class dt map (entries hold one dt per event).
pub const MAX_CLASS_ENTRIES: usize = 1 << 15;

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

/// FNV-1a, 128-bit variant. 64 bits would make accidental collisions across
/// a fleet-scale search (billions of distinct pricing problems) plausible;
/// at 128 bits they are not a practical concern.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    pub(crate) fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u128::from(b)).wrapping_mul(Self::PRIME);
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn u128(&mut self, v: u128) {
        self.bytes(&v.to_le_bytes());
    }

    /// Hashes the exact bit pattern: two inputs price identically only if
    /// they are bit-equal (`-0.0` and `0.0` hash apart, which merely costs a
    /// duplicate entry, never a wrong answer).
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn finish(self) -> u128 {
        self.0
    }
}

/// Fingerprint of every [`DeviceSpec`] field the execution model reads.
/// Computed once per [`crate::Gpu`] and mixed into every key.
pub(crate) fn device_fingerprint(d: &DeviceSpec) -> u128 {
    let mut h = Fnv128::new();
    h.bytes(d.name.as_bytes());
    h.byte(0); // terminator: name is variable-length
    for v in [
        d.mem_bandwidth_gbps,
        d.fp16_cuda_tflops,
        d.fp16_tensor_tflops,
        d.l2_mb,
        d.hbm_gb,
        d.shared_fraction,
        d.kernel_launch_overhead_us,
        d.mem_saturation_threads,
        d.dram_pj_per_byte,
        d.flop_pj,
    ] {
        h.f64(v);
    }
    for v in [
        d.l1_kb_per_sm,
        d.num_sms,
        d.max_threads_per_sm,
        d.max_tbs_per_sm,
        d.regs_per_sm,
    ] {
        h.u32(v);
    }
    h.finish()
}

/// The canonical grid form the simulator prices: uniform grids are solved
/// wave-analytically from `(count, work)`; everything else is the exact
/// group sequence the fluid simulation walks (`PerTb` grids are coalesced
/// first, so a `PerTb` stream and its equivalent `Grouped` form share one
/// fingerprint).
#[derive(Debug, Clone, Copy)]
pub(crate) enum GridRef<'a> {
    Uniform { count: u64, work: &'a TbWork },
    Groups(&'a [TbGroup]),
}

fn hash_work(h: &mut Fnv128, w: &TbWork) {
    h.f64(w.cuda_flops);
    h.f64(w.tensor_flops);
    h.f64(w.dram_read_bytes);
    h.f64(w.dram_write_bytes);
    h.f64(w.mem_active_fraction);
    h.f64(w.efficiency);
}

/// Fingerprint of one kernel-pricing problem. Covers everything
/// [`crate::Gpu::launch`] feeds into the duration: device, per-block shape,
/// the occupancy it implies, the simulation mode (fast path on/off keeps
/// each mode's entries self-consistent, so equivalence tests exercise both
/// compute paths instead of one hitting the other's entries), the L2-derived
/// read scale, and the canonical grid.
pub(crate) fn kernel_key(
    device_fp: u128,
    wave_fast_path: bool,
    shape: &TbShape,
    tbs_per_sm: u32,
    read_scale: f64,
    grid: GridRef<'_>,
) -> u128 {
    let mut h = Fnv128::new();
    h.u128(device_fp);
    h.byte(u8::from(wave_fast_path));
    h.u32(shape.threads);
    h.u32(shape.shared_bytes);
    h.u32(shape.regs_per_thread);
    h.u32(tbs_per_sm);
    h.f64(read_scale);
    match grid {
        GridRef::Uniform { count, work } => {
            h.byte(1);
            h.u64(count);
            hash_work(&mut h, work);
        }
        GridRef::Groups(groups) => {
            h.byte(2);
            h.u64(groups.len() as u64);
            for g in groups {
                h.u64(g.count);
                hash_work(&mut h, &g.work);
            }
        }
    }
    h.finish()
}

/// Fingerprint of one wave-class stepping problem: a full wave of `slots`
/// identical blocks of `work` on an otherwise idle machine. The dt sequence
/// is a pure function of these inputs, independent of which kernel the wave
/// belongs to.
pub(crate) fn class_key(
    device_fp: u128,
    threads: u32,
    slots: u64,
    read_scale: f64,
    work: &TbWork,
) -> u128 {
    let mut h = Fnv128::new();
    h.u128(device_fp);
    h.u32(threads);
    h.u64(slots);
    h.f64(read_scale);
    hash_work(&mut h, work);
    h.finish()
}

// ---------------------------------------------------------------------------
// The global cache
// ---------------------------------------------------------------------------

/// A memoized kernel price: the execution time (excluding launch overhead)
/// and the stepping the fresh computation performed, so hits can account for
/// the work they avoid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct KernelPrice {
    pub time_s: f64,
    /// Event steps the fresh computation ran (steps replayed from the
    /// wave-class cache are excluded — they were already avoided once).
    pub event_steps: u64,
    pub fast_path_waves: u64,
}

fn kernel_map() -> &'static RwLock<HashMap<u128, KernelPrice>> {
    static MAP: OnceLock<RwLock<HashMap<u128, KernelPrice>>> = OnceLock::new();
    MAP.get_or_init(|| RwLock::new(HashMap::new()))
}

fn class_map() -> &'static RwLock<HashMap<u128, Arc<Vec<f64>>>> {
    static MAP: OnceLock<RwLock<HashMap<u128, Arc<Vec<f64>>>>> = OnceLock::new();
    MAP.get_or_init(|| RwLock::new(HashMap::new()))
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static STEPS_SAVED: AtomicU64 = AtomicU64::new(0);
static CLASS_HITS: AtomicU64 = AtomicU64::new(0);
static CLASS_MISSES: AtomicU64 = AtomicU64::new(0);
static CLASS_STEPS_SAVED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

pub(crate) fn lookup_kernel(key: u128) -> Option<KernelPrice> {
    let price = kernel_map()
        .read()
        .expect("sim cache poisoned")
        .get(&key)
        .copied();
    if let Some(p) = price {
        HITS.fetch_add(1, Ordering::Relaxed);
        STEPS_SAVED.fetch_add(p.event_steps, Ordering::Relaxed);
        if resoftmax_obs::metrics_enabled() {
            resoftmax_obs::counter("sim.cache.hits").incr();
            resoftmax_obs::counter("sim.cache.steps_saved").add(p.event_steps);
        }
    } else {
        MISSES.fetch_add(1, Ordering::Relaxed);
        if resoftmax_obs::metrics_enabled() {
            resoftmax_obs::counter("sim.cache.misses").incr();
        }
    }
    price
}

pub(crate) fn insert_kernel(key: u128, price: KernelPrice) {
    let mut map = kernel_map().write().expect("sim cache poisoned");
    if map.len() >= MAX_KERNEL_ENTRIES && !map.contains_key(&key) {
        drop(map);
        DROPPED.fetch_add(1, Ordering::Relaxed);
        if resoftmax_obs::metrics_enabled() {
            resoftmax_obs::counter("sim.cache.dropped").incr();
        }
        return;
    }
    map.entry(key).or_insert(price);
}

pub(crate) fn lookup_class(key: u128) -> Option<Arc<Vec<f64>>> {
    let dts = class_map()
        .read()
        .expect("sim cache poisoned")
        .get(&key)
        .cloned();
    match &dts {
        Some(d) => {
            CLASS_HITS.fetch_add(1, Ordering::Relaxed);
            CLASS_STEPS_SAVED.fetch_add(d.len() as u64, Ordering::Relaxed);
            if resoftmax_obs::metrics_enabled() {
                resoftmax_obs::counter("sim.cache.class_hits").incr();
                resoftmax_obs::counter("sim.cache.class_steps_saved").add(d.len() as u64);
            }
        }
        None => {
            CLASS_MISSES.fetch_add(1, Ordering::Relaxed);
        }
    }
    dts
}

pub(crate) fn insert_class(key: u128, dts: Arc<Vec<f64>>) {
    let mut map = class_map().write().expect("sim cache poisoned");
    if map.len() >= MAX_CLASS_ENTRIES && !map.contains_key(&key) {
        drop(map);
        DROPPED.fetch_add(1, Ordering::Relaxed);
        if resoftmax_obs::metrics_enabled() {
            resoftmax_obs::counter("sim.cache.dropped").incr();
        }
        return;
    }
    map.entry(key).or_insert(dts);
}

// ---------------------------------------------------------------------------
// Gating
// ---------------------------------------------------------------------------

/// 0 = uninitialized (consult `RESOFTMAX_SIM_CACHE`), 1 = off, 2 = on.
static SWITCH: AtomicU8 = AtomicU8::new(0);

/// `true` if the process-global pricing cache is enabled. On by default;
/// `RESOFTMAX_SIM_CACHE=0` disables it (any other value, or the variable
/// being unset, leaves it on). A programmatic override through
/// [`set_sim_cache_enabled`] takes precedence over the environment.
pub fn sim_cache_enabled() -> bool {
    match SWITCH.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = std::env::var("RESOFTMAX_SIM_CACHE").map_or(true, |v| v.trim() != "0");
            SWITCH.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces the pricing cache on or off for the whole process, or restores
/// environment-driven behavior with `None`. Benches use this to compare
/// cold (cache-off) and warm (cache-on) pricing of the same workload.
pub fn set_sim_cache_enabled(enabled: Option<bool>) {
    let state = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    SWITCH.store(state, Ordering::Relaxed);
}

/// Empties both cache levels and zeroes the [`sim_cache_stats`] counters.
/// Concurrent simulations are unaffected beyond re-pricing (values are pure
/// functions of their keys, so a racing insert can never store a different
/// answer for the same key).
pub fn clear_sim_cache() {
    kernel_map().write().expect("sim cache poisoned").clear();
    class_map().write().expect("sim cache poisoned").clear();
    for c in [
        &HITS,
        &MISSES,
        &STEPS_SAVED,
        &CLASS_HITS,
        &CLASS_MISSES,
        &CLASS_STEPS_SAVED,
        &DROPPED,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

/// A snapshot of the process-global pricing-cache counters. Mirrored on the
/// observability counters `sim.cache.{hits,misses,steps_saved,class_hits,
/// class_steps_saved,dropped}` when metrics are enabled; this snapshot is
/// always maintained so benches and tests need no metrics setup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCacheStats {
    /// Entries in the kernel-price map.
    pub kernel_entries: usize,
    /// Entries in the wave-class dt map.
    pub class_entries: usize,
    /// Kernel-price lookups answered from the cache.
    pub hits: u64,
    /// Kernel-price lookups that fell through to fresh simulation.
    pub misses: u64,
    /// Event steps avoided by kernel-price hits (the steps the original
    /// computation performed, per hit).
    pub steps_saved: u64,
    /// Wave-class dt sequences replayed from the cache.
    pub class_hits: u64,
    /// Wave-class lookups that had to step a wave.
    pub class_misses: u64,
    /// Event steps avoided by wave-class hits.
    pub class_steps_saved: u64,
    /// Results not stored because a map was at capacity.
    pub dropped: u64,
}

/// Reads the current [`SimCacheStats`].
pub fn sim_cache_stats() -> SimCacheStats {
    SimCacheStats {
        kernel_entries: kernel_map().read().expect("sim cache poisoned").len(),
        class_entries: class_map().read().expect("sim cache poisoned").len(),
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        steps_saved: STEPS_SAVED.load(Ordering::Relaxed),
        class_hits: CLASS_HITS.load(Ordering::Relaxed),
        class_misses: CLASS_MISSES.load(Ordering::Relaxed),
        class_steps_saved: CLASS_STEPS_SAVED.load(Ordering::Relaxed),
        dropped: DROPPED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv128_matches_reference_vectors() {
        // Published FNV-1a 128-bit test vectors.
        let mut h = Fnv128::new();
        h.bytes(b"");
        assert_eq!(h.finish(), 0x6c62272e07bb014262b821756295c58d);
        let mut h = Fnv128::new();
        h.bytes(b"a");
        assert_eq!(h.finish(), 0xd228cb696f1a8caf78912b704e4a8964);
    }

    #[test]
    fn kernel_key_distinguishes_every_input() {
        let dev = device_fingerprint(&DeviceSpec::a100());
        let shape = TbShape::new(256, 0, 32);
        let work = TbWork::memory(1024.0, 1024.0);
        let base = kernel_key(
            dev,
            true,
            &shape,
            8,
            1.0,
            GridRef::Uniform {
                count: 100,
                work: &work,
            },
        );
        let keys = [
            kernel_key(
                device_fingerprint(&DeviceSpec::t4()),
                true,
                &shape,
                8,
                1.0,
                GridRef::Uniform {
                    count: 100,
                    work: &work,
                },
            ),
            kernel_key(
                dev,
                false,
                &shape,
                8,
                1.0,
                GridRef::Uniform {
                    count: 100,
                    work: &work,
                },
            ),
            kernel_key(
                dev,
                true,
                &TbShape::new(128, 0, 32),
                8,
                1.0,
                GridRef::Uniform {
                    count: 100,
                    work: &work,
                },
            ),
            kernel_key(
                dev,
                true,
                &shape,
                4,
                1.0,
                GridRef::Uniform {
                    count: 100,
                    work: &work,
                },
            ),
            kernel_key(
                dev,
                true,
                &shape,
                8,
                0.5,
                GridRef::Uniform {
                    count: 100,
                    work: &work,
                },
            ),
            kernel_key(
                dev,
                true,
                &shape,
                8,
                1.0,
                GridRef::Uniform {
                    count: 101,
                    work: &work,
                },
            ),
            kernel_key(
                dev,
                true,
                &shape,
                8,
                1.0,
                GridRef::Groups(&[TbGroup::new(work, 100)]),
            ),
        ];
        for (i, k) in keys.iter().enumerate() {
            assert_ne!(base, *k, "variant {i} must not collide with base");
        }
        // Same inputs, same key.
        assert_eq!(
            base,
            kernel_key(
                dev,
                true,
                &shape,
                8,
                1.0,
                GridRef::Uniform {
                    count: 100,
                    work: &work,
                },
            )
        );
    }

    #[test]
    fn group_order_and_split_are_significant() {
        let dev = device_fingerprint(&DeviceSpec::a100());
        let shape = TbShape::new(256, 0, 32);
        let a = TbWork::memory(1.0, 0.0);
        let b = TbWork::memory(2.0, 0.0);
        let ab = kernel_key(
            dev,
            true,
            &shape,
            8,
            1.0,
            GridRef::Groups(&[TbGroup::new(a, 3), TbGroup::new(b, 5)]),
        );
        let ba = kernel_key(
            dev,
            true,
            &shape,
            8,
            1.0,
            GridRef::Groups(&[TbGroup::new(b, 5), TbGroup::new(a, 3)]),
        );
        assert_ne!(ab, ba, "dispatch order affects the timeline");
        // Splitting one group into two of the same total must change the key:
        // the fluid simulation dispatches and retires them differently.
        let split = kernel_key(
            dev,
            true,
            &shape,
            8,
            1.0,
            GridRef::Groups(&[TbGroup::new(a, 3), TbGroup::new(a, 0), TbGroup::new(b, 5)]),
        );
        assert_ne!(ab, split);
    }

    #[test]
    fn switch_override_beats_environment() {
        // Not parallel-safe with other switch tests, so exercise the whole
        // lifecycle in one test.
        set_sim_cache_enabled(Some(false));
        assert!(!sim_cache_enabled());
        set_sim_cache_enabled(Some(true));
        assert!(sim_cache_enabled());
        set_sim_cache_enabled(None);
        // Environment default: enabled unless RESOFTMAX_SIM_CACHE=0, and the
        // test harness does not set it.
        assert!(sim_cache_enabled());
    }

    #[test]
    #[cfg_attr(miri, ignore = "fills the whole map — too slow under miri")]
    fn capacity_backstop_stops_inserting() {
        let price = KernelPrice {
            time_s: 1.0,
            event_steps: 0,
            fast_path_waves: 0,
        };
        // Synthetic keys: the backstop only looks at map size.
        for i in 0..(MAX_KERNEL_ENTRIES as u128 + 8) {
            insert_kernel(u128::MAX - i, price);
        }
        let stats = sim_cache_stats();
        assert!(stats.kernel_entries <= MAX_KERNEL_ENTRIES);
        assert!(stats.dropped >= 8);
        // Leave the global map empty for other tests in this process.
        clear_sim_cache();
        assert_eq!(sim_cache_stats().kernel_entries, 0);
    }
}
