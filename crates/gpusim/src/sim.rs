//! The kernel execution model.
//!
//! Two paths share one fluid-rate philosophy (every active thread block
//! progresses simultaneously on three resources — CUDA cores, tensor cores,
//! DRAM — and completes when all three of its work streams finish):
//!
//! * **Uniform grids** (dense kernels) are solved wave-analytically: all
//!   resident blocks are identical, so each wave's duration is closed-form
//!   and a kernel is `full_waves × t_full + t_tail`. This keeps 65 536-block
//!   elementwise kernels O(1).
//! * **Heterogeneous grids** ([`TbSet::PerTb`], block-sparse kernels) run an
//!   event-driven fluid simulation: blocks are dispatched breadth-first to
//!   the least-loaded SM, SM compute is shared between resident blocks,
//!   global DRAM bandwidth is shared between memory-active blocks (scaled by
//!   the utilization model), and the makespan naturally exposes the
//!   load-imbalance / tail-wave effects the paper discusses for sparse
//!   attention (§5.2: larger batches → more TBs → less imbalance).

use crate::bandwidth::{effective_bandwidth, utilization};
use crate::device::DeviceSpec;
use crate::kernel::{KernelDesc, TbGroup, TbSet, TbWork};
use crate::l2::{FilteredTraffic, L2Cache};
use crate::occupancy::{occupancy, LaunchError, Occupancy};
use crate::pricing::{self, GridRef, KernelPrice};
use crate::trace::{KernelStats, Timeline};
use std::sync::Arc;

/// Residual work below this is treated as finished (guards FP residues left
/// by the `(work - rate * dt).max(0.0)` decrements).
const EPS: f64 = 1e-18;

/// A group of in-flight thread blocks with identical remaining work, tracked
/// per work stream by the fluid simulation.
#[derive(Debug, Clone, Copy)]
struct Active {
    count: f64,
    /// Remaining work per block in the group.
    cuda: f64,
    tensor: f64,
    mem: f64,
    mem_threads_per_tb: f64,
    efficiency: f64,
}

impl Active {
    /// Builds the per-block work streams for one thread block, or `None` if
    /// the block has no work at all (such blocks retire instantly).
    fn from_work(work: &TbWork, threads: f64, read_scale: f64) -> Option<Active> {
        let mem = work.dram_read_bytes * read_scale + work.dram_write_bytes;
        if work.cuda_flops <= EPS && work.tensor_flops <= EPS && mem <= EPS {
            return None;
        }
        Some(Active {
            count: 1.0,
            cuda: work.cuda_flops,
            tensor: work.tensor_flops,
            mem,
            mem_threads_per_tb: threads * work.mem_active_fraction,
            efficiency: work.efficiency.clamp(1e-6, 1.0),
        })
    }

    fn with_count(self, count: f64) -> Active {
        Active { count, ..self }
    }
}

/// A simulated GPU: device spec + L2 state + an execution timeline.
///
/// # Example
///
/// ```
/// use resoftmax_gpusim::{DeviceSpec, Gpu, KernelDesc, KernelCategory, TbWork, TbShape};
///
/// let mut gpu = Gpu::new(DeviceSpec::a100());
/// let kernel = KernelDesc::builder("stream", KernelCategory::Other)
///     .shape(TbShape::new(256, 0, 32))
///     .uniform(10_000, TbWork::memory(64_000.0, 64_000.0))
///     .build();
/// let stats = gpu.launch(&kernel)?;
/// assert!(stats.time_s > 0.0);
/// # Ok::<(), resoftmax_gpusim::LaunchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Gpu {
    device: DeviceSpec,
    device_fp: u128,
    l2: L2Cache,
    timeline: Timeline,
    wave_fast_path: bool,
    sim_cache: bool,
}

impl Gpu {
    /// Creates a GPU with cold caches and an empty timeline.
    pub fn new(device: DeviceSpec) -> Self {
        let l2 = L2Cache::new(device.l2_bytes());
        let device_fp = pricing::device_fingerprint(&device);
        Gpu {
            device,
            device_fp,
            l2,
            timeline: Timeline::new(),
            wave_fast_path: true,
            sim_cache: true,
        }
    }

    /// Enables or disables the wave-class fast path of the event-driven
    /// simulation (on by default). The fast path recognizes full waves drawn
    /// from a single run of identical thread blocks and replays one exactly
    /// simulated wave instead of re-stepping each — results are bit-identical
    /// either way (a test asserts this over the full evaluation sweep); the
    /// toggle exists so that equivalence stays checkable.
    pub fn set_wave_fast_path(&mut self, enabled: bool) {
        self.wave_fast_path = enabled;
    }

    /// Enables or disables this instance's use of the process-global
    /// kernel-pricing cache (on by default; see [`crate::sim_cache_enabled`]
    /// for the process-wide switch — both must be on for caching to apply).
    /// The toggle exists for the same reason as [`Self::set_wave_fast_path`]:
    /// cached and fresh pricing are bit-identical, and tests compare the two
    /// in one process to keep that equivalence checkable.
    pub fn set_sim_cache(&mut self, enabled: bool) {
        self.sim_cache = enabled;
    }

    /// The device being simulated.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The execution record so far.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Consumes the GPU, returning its timeline.
    pub fn into_timeline(self) -> Timeline {
        self.timeline
    }

    /// Finishes the current run: returns its timeline and resets the
    /// execution state (caches flushed, fresh empty timeline) so the same
    /// `Gpu` can host the next run. This is the multi-run entry point the
    /// serving engine iterates on — one `Gpu`, one timeline per iteration.
    pub fn take_timeline(&mut self) -> Timeline {
        self.l2.flush();
        std::mem::replace(&mut self.timeline, Timeline::new())
    }

    /// Clears timeline and caches (new measurement iteration).
    pub fn reset(&mut self) {
        self.l2.flush();
        self.timeline = Timeline::new();
    }

    /// Executes one kernel, appending its stats to the timeline.
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError`] if a single thread block exceeds SM resources.
    pub fn launch(&mut self, kernel: &KernelDesc) -> Result<KernelStats, LaunchError> {
        let occ = occupancy(&self.device, &kernel.shape)?;
        if resoftmax_obs::metrics_enabled() {
            resoftmax_obs::counter("sim.kernels_launched").incr();
        }
        // Span only the heterogeneous kernels: uniform grids are O(1)
        // closed-form and would flood the trace with sub-µs events.
        let _span =
            if matches!(kernel.tbs, TbSet::Uniform { .. }) || !resoftmax_obs::trace_enabled() {
                None
            } else {
                Some(resoftmax_obs::span(kernel.name.clone(), "gpusim"))
            };
        let traffic = self.l2.access(kernel);

        // Scale per-TB DRAM reads by the kernel-wide L2 hit ratio.
        let declared_read = kernel.tbs.total_read_bytes();
        let read_scale = if declared_read > 0.0 {
            traffic.dram_read_bytes / declared_read
        } else {
            1.0
        };

        // Canonical grid form: `PerTb` coalesces to the exact group sequence
        // the fluid simulation walks, so it shares pricing fingerprints with
        // its equivalent `Grouped` form.
        let coalesced: Vec<TbGroup>;
        let grid = match &kernel.tbs {
            TbSet::Uniform { count, work } => GridRef::Uniform {
                count: *count,
                work,
            },
            TbSet::PerTb(tbs) => {
                coalesced = coalesce(tbs);
                GridRef::Groups(&coalesced)
            }
            TbSet::Grouped(groups) => GridRef::Groups(groups),
        };

        let use_cache = self.sim_cache && pricing::sim_cache_enabled();
        let exec_s = if use_cache {
            let key = pricing::kernel_key(
                self.device_fp,
                self.wave_fast_path,
                &kernel.shape,
                occ.tbs_per_sm,
                read_scale,
                grid,
            );
            if let Some(price) = pricing::lookup_kernel(key) {
                price.time_s
            } else {
                let (t, event_steps, fast_path_waves) =
                    self.execute_time(kernel, grid, read_scale, occ, true);
                pricing::insert_kernel(
                    key,
                    KernelPrice {
                        time_s: t,
                        event_steps,
                        fast_path_waves,
                    },
                );
                t
            }
        } else {
            self.execute_time(kernel, grid, read_scale, occ, false).0
        };
        let time_s = exec_s + self.device.kernel_launch_overhead_us * 1e-6;

        let flops = kernel.tbs.total_flops();
        let dram_bytes = traffic.dram_read_bytes + traffic.dram_write_bytes;
        let stats = KernelStats {
            name: kernel.name.clone(),
            category: kernel.category,
            time_s,
            dram_read_bytes: traffic.dram_read_bytes,
            dram_write_bytes: traffic.dram_write_bytes,
            l2_hit_bytes: traffic.l2_hit_bytes,
            flops,
            cuda_flops: kernel.tbs.total_cuda_flops(),
            tensor_flops: kernel.tbs.total_tensor_flops(),
            tb_count: kernel.tbs.count(),
            tbs_per_sm: occ.tbs_per_sm,
            achieved_bw_fraction: if time_s > 0.0 {
                (dram_bytes / time_s) / self.device.mem_bandwidth_bytes_per_s()
            } else {
                0.0
            },
            energy_j: (dram_bytes * self.device.dram_pj_per_byte + flops * self.device.flop_pj)
                * 1e-12,
        };
        self.timeline.push(stats.clone());
        Ok(stats)
    }

    /// Executes a sequence of kernels in order.
    ///
    /// # Errors
    ///
    /// Returns the first [`LaunchError`] encountered.
    pub fn run(&mut self, kernels: &[KernelDesc]) -> Result<(), LaunchError> {
        let _span = resoftmax_obs::span!("Gpu::run", "gpusim");
        for k in kernels {
            self.launch(k)?;
        }
        Ok(())
    }

    /// Prices one kernel fresh (excluding launch overhead), returning the
    /// duration plus the event-step / fast-path-wave counts performed —
    /// recorded in the pricing cache so later hits can account for the
    /// stepping they avoid.
    fn execute_time(
        &self,
        kernel: &KernelDesc,
        grid: GridRef<'_>,
        read_scale: f64,
        occ: Occupancy,
        use_class_cache: bool,
    ) -> (f64, u64, u64) {
        match grid {
            GridRef::Uniform { count, work } => (
                self.uniform_time(count, work, kernel.shape.threads, read_scale, occ),
                0,
                0,
            ),
            GridRef::Groups(groups) => {
                self.fluid_time(groups, kernel, read_scale, occ, use_class_cache)
            }
        }
    }

    /// Wave-analytic duration of a uniform grid (excluding launch overhead).
    fn uniform_time(
        &self,
        count: u64,
        work: &TbWork,
        threads: u32,
        read_scale: f64,
        occ: Occupancy,
    ) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let slots = (self.device.num_sms as u64 * occ.tbs_per_sm as u64).max(1);
        let full_waves = count / slots;
        let tail = count % slots;
        let mut t = full_waves as f64 * self.wave_time(slots, work, threads, read_scale);
        if tail > 0 {
            t += self.wave_time(tail, work, threads, read_scale);
        }
        t
    }

    /// Duration of one wave of `n` identical blocks.
    fn wave_time(&self, n: u64, work: &TbWork, threads: u32, read_scale: f64) -> f64 {
        let n_f = n as f64;
        let sms = self.device.num_sms as f64;
        let eff = work.efficiency.clamp(1e-6, 1.0);
        // Breadth-first dispatch: blocks per SM in this wave.
        let per_sm = (n_f / sms).ceil().max(1.0);

        let cuda_rate = self.device.cuda_flops_per_sm() / per_sm * eff;
        let tensor_rate = self.device.tensor_flops_per_sm() / per_sm * eff;

        let dram_bytes = work.dram_read_bytes * read_scale + work.dram_write_bytes;
        let mem_threads = work.mem_active_fraction * f64::from(threads);
        let bw = effective_bandwidth(&self.device, n_f * mem_threads);
        let mem_rate = bw / n_f * eff;

        let mut t: f64 = 0.0;
        if work.cuda_flops > 0.0 {
            t = t.max(work.cuda_flops / cuda_rate);
        }
        if work.tensor_flops > 0.0 {
            t = t.max(work.tensor_flops / tensor_rate);
        }
        if dram_bytes > 0.0 && mem_rate > 0.0 {
            t = t.max(dram_bytes / mem_rate);
        }
        t
    }

    /// Event-driven fluid simulation for heterogeneous grids
    /// (excluding launch overhead).
    ///
    /// Blocks are processed as *groups* of identical blocks that were
    /// dispatched together and therefore finish together; this keeps the event
    /// count O(groups × waves) instead of O(blocks). Compute capacity is
    /// shared fluidly: each block's compute rate is
    /// `min(per-SM rate, total rate / active blocks)` — the breadth-first
    /// dispatch limit without tracking individual SMs. DRAM bandwidth is a
    /// global pool split proportionally to each block's memory-active thread
    /// count and scaled by the utilization model.
    ///
    /// Returns `(duration, event_steps, fast_path_waves)`; the step count
    /// covers only freshly stepped events (wave-class replays — whether from
    /// this kernel's own fast path or the cross-run dt cache — are excluded).
    fn fluid_time(
        &self,
        groups: &[TbGroup],
        kernel: &KernelDesc,
        read_scale: f64,
        occ: Occupancy,
        use_class_cache: bool,
    ) -> (f64, u64, u64) {
        let threads = f64::from(kernel.shape.threads);
        let slots = (self.device.num_sms as u64 * occ.tbs_per_sm as u64).max(1);

        let mut queue: std::collections::VecDeque<TbGroup> =
            groups.iter().filter(|g| g.count > 0).copied().collect();
        let mut active: Vec<Active> = Vec::new();
        let mut in_flight: u64 = 0;
        let mut now = 0.0f64;
        // Instrumentation totals, accumulated locally and flushed once per
        // kernel so the event loop never touches shared atomics.
        let mut event_steps: u64 = 0;
        let mut fast_path_waves: u64 = 0;

        loop {
            // Wave-class fast path: with the machine idle and the front group
            // large enough to fill every slot by itself, each full wave is a
            // grid-independent repetition of the same event sequence. Step
            // one wave exactly (through the shared `event_step`), then replay
            // its per-event time deltas for the remaining full waves — the
            // same `now += dt` additions, in the same order, the event loop
            // would perform. Cost becomes O(distinct TB classes), not
            // O(blocks); the heterogeneous tail still takes the event loop.
            while self.wave_fast_path && active.is_empty() && in_flight == 0 {
                let Some(&front) = queue.front() else {
                    break;
                };
                match Active::from_work(&front.work, threads, read_scale) {
                    // Zero-work blocks retire instantly regardless of count.
                    None => {
                        queue.pop_front();
                    }
                    Some(wave_tb) => {
                        let full_waves = front.count / slots;
                        if full_waves == 0 {
                            break;
                        }
                        // Cross-run reuse: one full wave of this TB class is a
                        // pure function of (device, threads, slots, read
                        // scale, work), so its exactly stepped dt sequence can
                        // come from the global cache — the replay below is the
                        // same additions in the same order either way.
                        let class_key = use_class_cache.then(|| {
                            pricing::class_key(
                                self.device_fp,
                                kernel.shape.threads,
                                slots,
                                read_scale,
                                &front.work,
                            )
                        });
                        let cached = class_key.and_then(pricing::lookup_class);
                        let dts = if let Some(dts) = cached {
                            dts
                        } else {
                            let mut wave = vec![wave_tb.with_count(slots as f64)];
                            let mut wave_in_flight = slots;
                            let mut dts = Vec::new();
                            while !wave.is_empty() {
                                dts.push(self.event_step(&mut wave, &mut wave_in_flight));
                            }
                            event_steps += dts.len() as u64;
                            let dts = Arc::new(dts);
                            if let Some(key) = class_key {
                                pricing::insert_class(key, Arc::clone(&dts));
                            }
                            dts
                        };
                        fast_path_waves += full_waves;
                        for _ in 0..full_waves {
                            for &dt in dts.iter() {
                                now += dt;
                            }
                        }
                        let rem = front.count % slots;
                        if rem == 0 {
                            queue.pop_front();
                        } else {
                            queue.front_mut().expect("front exists").count = rem;
                        }
                    }
                }
            }

            // Refill free slots from the queue, splitting groups as needed.
            while in_flight < slots {
                let Some(front) = queue.front_mut() else {
                    break;
                };
                let take = front.count.min(slots - in_flight);
                front.count -= take;
                let work = front.work;
                if front.count == 0 {
                    queue.pop_front();
                }
                let Some(tb) = Active::from_work(&work, threads, read_scale) else {
                    continue; // zero-work blocks retire instantly
                };
                in_flight += take;
                active.push(tb.with_count(take as f64));
            }
            if active.is_empty() {
                break;
            }
            now += self.event_step(&mut active, &mut in_flight);
            event_steps += 1;
        }
        if resoftmax_obs::metrics_enabled() {
            resoftmax_obs::counter("sim.event_steps").add(event_steps);
            resoftmax_obs::counter("sim.wave_fast_path_waves").add(fast_path_waves);
        }
        (now, event_steps, fast_path_waves)
    }

    /// One event of the fluid simulation: computes per-block rates for the
    /// current active set, advances every work stream to the earliest stream
    /// completion, retires finished groups, and returns the elapsed `dt`.
    ///
    /// Both the event loop and the wave-class fast path call this — sharing
    /// the arithmetic is what makes the fast path bit-identical.
    fn event_step(&self, active: &mut Vec<Active>, in_flight: &mut u64) -> f64 {
        let sm_cuda = self.device.cuda_flops_per_sm();
        let sm_tensor = self.device.tensor_flops_per_sm();
        let total_cuda = self.device.cuda_flops_per_s();
        let total_tensor = self.device.tensor_flops_per_s();

        // Demand per resource.
        let mut cuda_tbs = 0.0;
        let mut tensor_tbs = 0.0;
        let mut mem_threads_total = 0.0;
        let mut mem_weight_total = 0.0;
        for a in active.iter() {
            if a.cuda > EPS {
                cuda_tbs += a.count;
            }
            if a.tensor > EPS {
                tensor_tbs += a.count;
            }
            if a.mem > EPS {
                mem_threads_total += a.count * a.mem_threads_per_tb;
                mem_weight_total += a.count * a.mem_threads_per_tb.max(1.0);
            }
        }
        let bw = effective_bandwidth(&self.device, mem_threads_total);

        // Per-block rates and earliest stream completion.
        let mut dt = f64::INFINITY;
        let rates: Vec<(f64, f64, f64)> = active
            .iter()
            .map(|a| {
                let rc = if a.cuda > EPS {
                    (total_cuda / cuda_tbs).min(sm_cuda) * a.efficiency
                } else {
                    0.0
                };
                let rt = if a.tensor > EPS {
                    (total_tensor / tensor_tbs).min(sm_tensor) * a.efficiency
                } else {
                    0.0
                };
                let rm = if a.mem > EPS && mem_weight_total > 0.0 {
                    bw * a.mem_threads_per_tb.max(1.0) / mem_weight_total * a.efficiency
                } else {
                    0.0
                };
                if rc > 0.0 {
                    dt = dt.min(a.cuda / rc);
                }
                if rt > 0.0 {
                    dt = dt.min(a.tensor / rt);
                }
                if rm > 0.0 {
                    dt = dt.min(a.mem / rm);
                }
                (rc, rt, rm)
            })
            .collect();

        debug_assert!(dt.is_finite(), "active nonempty implies progress");
        for (a, &(rc, rt, rm)) in active.iter_mut().zip(&rates) {
            a.cuda = (a.cuda - rc * dt).max(0.0);
            a.tensor = (a.tensor - rt * dt).max(0.0);
            a.mem = (a.mem - rm * dt).max(0.0);
        }
        let mut idx = 0;
        while idx < active.len() {
            let a = &active[idx];
            if a.cuda <= EPS && a.tensor <= EPS && a.mem <= EPS {
                *in_flight -= active[idx].count as u64;
                active.swap_remove(idx);
            } else {
                idx += 1;
            }
        }
        dt
    }

    /// Achieved utilization for a hypothetical thread count (exposed for
    /// ablation benches).
    pub fn bandwidth_utilization(&self, active_mem_threads: f64) -> f64 {
        utilization(&self.device, active_mem_threads)
    }

    /// Reports the DRAM traffic one kernel would generate *without* executing
    /// it (no L2/timeline mutation) — used by tests and what-if analyses.
    pub fn peek_traffic(&self, kernel: &KernelDesc) -> FilteredTraffic {
        self.l2.clone().access(kernel)
    }
}

/// Merges consecutive identical per-TB work entries into groups.
fn coalesce(tbs: &[TbWork]) -> Vec<TbGroup> {
    let mut groups: Vec<TbGroup> = Vec::new();
    for &w in tbs {
        match groups.last_mut() {
            Some(g) if g.work == w => g.count += 1,
            _ => groups.push(TbGroup::new(w, 1)),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::TbWork;

    #[test]
    fn coalesce_merges_runs() {
        let a = TbWork::memory(1.0, 0.0);
        let b = TbWork::memory(2.0, 0.0);
        let groups = coalesce(&[a, a, a, b, a]);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].count, 3);
        assert_eq!(groups[1].count, 1);
        assert_eq!(groups[2].count, 1);
        assert!(coalesce(&[]).is_empty());
    }
}
