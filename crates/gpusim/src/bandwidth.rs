//! DRAM bandwidth-utilization model.
//!
//! GPUs need enough concurrent memory requests in flight to cover DRAM
//! latency (Little's law). We model achieved bandwidth as a saturating
//! function of the number of threads concurrently issuing memory
//! instructions. This is the mechanism behind two of the paper's findings:
//!
//! * Baseline *sparse* softmax allocates every TB for the worst-case row
//!   length, but most threads map to zero blocks and never issue loads —
//!   low `mem_active_fraction` → few effective threads → bandwidth far below
//!   peak (§5.1).
//! * Softmax decomposition (SD) allocates TBs per *nonzero sub-vector*, so
//!   every thread issues memory traffic → bandwidth utilization recovers,
//!   which is why SD alone speeds BigBird/Longformer up by ~1.4× before any
//!   fusion happens.

use crate::device::DeviceSpec;

/// Achieved fraction of peak DRAM bandwidth given `active_mem_threads`
/// concurrently issuing memory instructions.
///
/// Little's law says achieved bandwidth grows linearly with outstanding
/// requests until latency is hidden, then flattens at peak. We use the smooth
/// ramp-and-saturate curve `u = r / (1 + r⁴)^¼` with
/// `r = threads / mem_saturation_threads`: essentially linear below the knee
/// (`u(0.1·sat) ≈ 0.10`), `u(sat) ≈ 0.84`, and ≥ 0.98 by 2× saturation.
/// Smooth (no kink) so sweeps over L and batch size behave well.
pub fn utilization(device: &DeviceSpec, active_mem_threads: f64) -> f64 {
    if active_mem_threads <= 0.0 {
        return 0.0;
    }
    let r = active_mem_threads / device.mem_saturation_threads;
    r / (1.0 + r.powi(4)).powf(0.25)
}

/// Effective DRAM bandwidth in bytes/s for a given concurrency level.
pub fn effective_bandwidth(device: &DeviceSpec, active_mem_threads: f64) -> f64 {
    device.mem_bandwidth_bytes_per_s() * utilization(device, active_mem_threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_monotone_saturating() {
        let d = DeviceSpec::a100();
        let mut prev = 0.0;
        for i in 0..200 {
            let u = utilization(&d, (i * 2048) as f64);
            assert!(u >= prev, "monotone");
            assert!(u <= 1.0);
            prev = u;
        }
    }

    #[test]
    fn calibration_point() {
        let d = DeviceSpec::a100();
        let u = utilization(&d, d.mem_saturation_threads);
        assert!((u - 0.8409).abs() < 1e-3, "u(sat)≈0.84, got {u}");
        assert!(utilization(&d, d.mem_saturation_threads * 5.0) > 0.97);
        // near-linear below the knee
        let tenth = utilization(&d, d.mem_saturation_threads * 0.1);
        assert!((tenth - 0.1).abs() < 0.01, "u(0.1 sat)≈0.1, got {tenth}");
    }

    #[test]
    fn zero_threads_zero_bandwidth() {
        let d = DeviceSpec::t4();
        assert_eq!(utilization(&d, 0.0), 0.0);
        assert_eq!(effective_bandwidth(&d, -1.0), 0.0);
    }

    #[test]
    fn sparse_underutilization_effect() {
        // A sparse-baseline-softmax-like situation: only ~10% of resident
        // threads issue memory ops. Utilization should drop well below peak.
        let d = DeviceSpec::a100();
        let full = utilization(&d, 100_000.0);
        let sparse = utilization(&d, 10_000.0);
        assert!(sparse < 0.65, "sparse util {sparse}");
        assert!(full > 0.93, "dense util {full}");
    }

    #[test]
    fn t4_saturates_with_fewer_threads_than_a100() {
        // T4's absolute saturation point is lower...
        let t4 = DeviceSpec::t4();
        let a100 = DeviceSpec::a100();
        assert!(utilization(&t4, 20_000.0) > utilization(&a100, 20_000.0));
        // ...but T4 also has far fewer resident threads available
        // (40 SMs × 1024 vs 108 × 2048), so as a *fraction of the machine*
        // it is more sensitive — check the machine-wide max thread count
        // still leaves T4 below deep saturation.
        let t4_max = (t4.num_sms * t4.max_threads_per_sm) as f64;
        assert!(utilization(&t4, t4_max * 0.2) < 0.8);
    }
}
