//! Execution traces and breakdown aggregation.
//!
//! [`Timeline`] records per-kernel [`KernelStats`]; [`Breakdown`] aggregates
//! them by [`KernelCategory`] the way the paper's figures do (Fig. 2 and
//! Fig. 5 are breakdowns of time and of off-chip traffic; Fig. 8 compares
//! totals across strategies).

use crate::kernel::KernelCategory;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Statistics of one executed kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Breakdown category.
    pub category: KernelCategory,
    /// Simulated duration in seconds (including launch overhead).
    pub time_s: f64,
    /// DRAM read traffic in bytes (after L2 filtering).
    pub dram_read_bytes: f64,
    /// DRAM write traffic in bytes.
    pub dram_write_bytes: f64,
    /// Read bytes served by L2.
    pub l2_hit_bytes: f64,
    /// Total FLOPs executed.
    pub flops: f64,
    /// CUDA-core FLOPs (exp, reductions, elementwise).
    pub cuda_flops: f64,
    /// Tensor-core FLOPs (MMA).
    pub tensor_flops: f64,
    /// Grid size.
    pub tb_count: u64,
    /// Occupancy achieved.
    pub tbs_per_sm: u32,
    /// Fraction of peak DRAM bandwidth achieved over the kernel's lifetime.
    pub achieved_bw_fraction: f64,
    /// Energy in joules (DRAM traffic + core energy).
    pub energy_j: f64,
}

impl KernelStats {
    /// Total DRAM traffic (read + write).
    pub fn dram_bytes(&self) -> f64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// Ordered record of executed kernels.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    kernels: Vec<KernelStats>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Appends one kernel record.
    pub fn push(&mut self, stats: KernelStats) {
        self.kernels.push(stats);
    }

    /// All kernel records in execution order.
    pub fn kernels(&self) -> &[KernelStats] {
        &self.kernels
    }

    /// Number of kernels executed.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// `true` if nothing ran.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Total simulated time in seconds.
    pub fn total_time_s(&self) -> f64 {
        self.kernels.iter().map(|k| k.time_s).sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn total_dram_bytes(&self) -> f64 {
        self.kernels.iter().map(KernelStats::dram_bytes).sum()
    }

    /// Total energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.kernels.iter().map(|k| k.energy_j).sum()
    }

    /// Aggregates by category.
    pub fn breakdown(&self) -> Breakdown {
        let mut agg: BTreeMap<String, CategoryTotals> = BTreeMap::new();
        for k in &self.kernels {
            let entry =
                agg.entry(k.category.label().to_owned())
                    .or_insert_with(|| CategoryTotals {
                        category: k.category,
                        ..Default::default()
                    });
            entry.time_s += k.time_s;
            entry.dram_read_bytes += k.dram_read_bytes;
            entry.dram_write_bytes += k.dram_write_bytes;
            entry.energy_j += k.energy_j;
            entry.kernel_count += 1;
        }
        Breakdown {
            categories: agg.into_values().collect(),
        }
    }

    /// Merges another timeline into this one (e.g. combining per-layer runs).
    pub fn extend_from(&mut self, other: &Timeline) {
        self.kernels.extend(other.kernels.iter().cloned());
    }

    /// Accumulates this timeline into the process-wide observability
    /// counters: `sim.dram_bytes.<category>` (exactly one `+=` of each
    /// category's [`Breakdown`] total, so a single-run counter is
    /// bit-identical to `breakdown()` and a sweep's counter is the exact
    /// run-ordered sum), plus `sim.dram_bytes.total` and `sim.time_s.total`.
    ///
    /// No-op unless metrics are enabled ([`resoftmax_obs::metrics_enabled`]).
    /// The engine calls this once per completed run.
    pub fn record_metrics(&self) {
        if !resoftmax_obs::metrics_enabled() {
            return;
        }
        let breakdown = self.breakdown();
        for c in &breakdown.categories {
            resoftmax_obs::float_counter(&format!("sim.dram_bytes.{}", c.category.label()))
                .add(c.dram_bytes());
        }
        resoftmax_obs::float_counter("sim.dram_bytes.total").add(self.total_dram_bytes());
        resoftmax_obs::float_counter("sim.time_s.total").add(self.total_time_s());
    }
}

/// Aggregated totals of one category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryTotals {
    /// Which category.
    pub category: KernelCategory,
    /// Total time in seconds.
    pub time_s: f64,
    /// DRAM reads in bytes.
    pub dram_read_bytes: f64,
    /// DRAM writes in bytes.
    pub dram_write_bytes: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// How many kernels contributed.
    pub kernel_count: usize,
}

impl Default for CategoryTotals {
    fn default() -> Self {
        CategoryTotals {
            category: KernelCategory::Other,
            time_s: 0.0,
            dram_read_bytes: 0.0,
            dram_write_bytes: 0.0,
            energy_j: 0.0,
            kernel_count: 0,
        }
    }
}

impl CategoryTotals {
    /// Total DRAM traffic.
    pub fn dram_bytes(&self) -> f64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// A per-category aggregation of a [`Timeline`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// One entry per category present, ordered by label.
    pub categories: Vec<CategoryTotals>,
}

impl Breakdown {
    /// Total time over all categories.
    pub fn total_time_s(&self) -> f64 {
        self.categories.iter().map(|c| c.time_s).sum()
    }

    /// Total DRAM traffic over all categories.
    pub fn total_dram_bytes(&self) -> f64 {
        self.categories.iter().map(CategoryTotals::dram_bytes).sum()
    }

    /// Time attributed to one category (0 if absent).
    pub fn time_of(&self, category: KernelCategory) -> f64 {
        self.categories
            .iter()
            .filter(|c| c.category == category)
            .map(|c| c.time_s)
            .sum()
    }

    /// DRAM traffic attributed to one category.
    pub fn dram_of(&self, category: KernelCategory) -> f64 {
        self.categories
            .iter()
            .filter(|c| c.category == category)
            .map(CategoryTotals::dram_bytes)
            .sum()
    }

    /// Time attributed to the softmax family (monolithic + LS/IR/GS).
    pub fn softmax_time_s(&self) -> f64 {
        self.categories
            .iter()
            .filter(|c| c.category.is_softmax_family())
            .map(|c| c.time_s)
            .sum()
    }

    /// DRAM traffic of the softmax family.
    pub fn softmax_dram_bytes(&self) -> f64 {
        self.categories
            .iter()
            .filter(|c| c.category.is_softmax_family())
            .map(CategoryTotals::dram_bytes)
            .sum()
    }

    /// Time attributed to the SDA block.
    pub fn sda_time_s(&self) -> f64 {
        self.categories
            .iter()
            .filter(|c| c.category.in_sda())
            .map(|c| c.time_s)
            .sum()
    }

    /// Fraction of total time used by one category.
    pub fn time_fraction(&self, category: KernelCategory) -> f64 {
        let total = self.total_time_s();
        if total > 0.0 {
            self.time_of(category) / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(name: &str, cat: KernelCategory, time: f64, read: f64, write: f64) -> KernelStats {
        KernelStats {
            name: name.into(),
            category: cat,
            time_s: time,
            dram_read_bytes: read,
            dram_write_bytes: write,
            l2_hit_bytes: 0.0,
            flops: 0.0,
            cuda_flops: 0.0,
            tensor_flops: 0.0,
            tb_count: 1,
            tbs_per_sm: 1,
            achieved_bw_fraction: 0.5,
            energy_j: 1.0,
        }
    }

    #[test]
    fn timeline_totals() {
        let mut t = Timeline::new();
        assert!(t.is_empty());
        t.push(stat("a", KernelCategory::Softmax, 1.0, 10.0, 5.0));
        t.push(stat("b", KernelCategory::MatMulQk, 2.0, 20.0, 10.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_time_s(), 3.0);
        assert_eq!(t.total_dram_bytes(), 45.0);
        assert_eq!(t.total_energy_j(), 2.0);
    }

    #[test]
    fn breakdown_groups_by_category() {
        let mut t = Timeline::new();
        t.push(stat("s1", KernelCategory::Softmax, 1.0, 10.0, 0.0));
        t.push(stat("s2", KernelCategory::Softmax, 2.0, 0.0, 10.0));
        t.push(stat("m", KernelCategory::MatMulQk, 4.0, 20.0, 0.0));
        let b = t.breakdown();
        assert_eq!(b.categories.len(), 2);
        assert_eq!(b.time_of(KernelCategory::Softmax), 3.0);
        assert_eq!(b.dram_of(KernelCategory::Softmax), 20.0);
        assert_eq!(b.time_of(KernelCategory::MatMulQk), 4.0);
        assert_eq!(b.time_of(KernelCategory::Fc), 0.0);
        assert!((b.time_fraction(KernelCategory::Softmax) - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_family_and_sda_rollups() {
        let mut t = Timeline::new();
        t.push(stat("ls", KernelCategory::LocalSoftmax, 1.0, 1.0, 0.0));
        t.push(stat("ir", KernelCategory::InterReduction, 0.5, 1.0, 0.0));
        t.push(stat("gs", KernelCategory::GlobalScaling, 1.5, 1.0, 0.0));
        t.push(stat("qk", KernelCategory::MatMulQk, 2.0, 1.0, 0.0));
        t.push(stat("fc", KernelCategory::Fc, 10.0, 1.0, 0.0));
        let b = t.breakdown();
        assert_eq!(b.softmax_time_s(), 3.0);
        assert_eq!(b.softmax_dram_bytes(), 3.0);
        assert_eq!(b.sda_time_s(), 5.0);
    }

    #[test]
    fn extend_from_merges() {
        let mut a = Timeline::new();
        a.push(stat("x", KernelCategory::Other, 1.0, 0.0, 0.0));
        let mut b = Timeline::new();
        b.push(stat("y", KernelCategory::Other, 2.0, 0.0, 0.0));
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total_time_s(), 3.0);
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        let t = Timeline::new();
        assert_eq!(t.breakdown().time_fraction(KernelCategory::Softmax), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let mut t = Timeline::new();
        t.push(stat("a", KernelCategory::GlobalScaling, 1.0, 2.0, 3.0));
        let json = serde_json::to_string(&t).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
