//! Whole-buffer L2 residency model.
//!
//! The paper's traffic argument (§2.3) is that the attention matrix
//! (e.g. 512 MB for BERT-large at L = 4096) dwarfs even the A100's 40 MB L2,
//! so *every* kernel touching it pays full DRAM traffic, while the decomposed
//! softmax's intermediate tensors (`m'`, `d'`, `r'` — `1/T` the size) can be
//! forwarded through L2 between adjacent kernels.
//!
//! We model this at whole-buffer granularity with LRU replacement:
//!
//! * A read hits iff the named buffer is fully resident; hits cost no DRAM
//!   read traffic.
//! * Writes are write-through (DRAM write traffic is always counted — the
//!   paper likewise counts `m'`/`d'`/`r'` writes) but also install the buffer
//!   in L2 so a subsequent reader can hit.
//! * Buffers larger than a capacity share are never cached (streaming), and a
//!   kernel that streams more non-resident data than the cache holds evicts
//!   everything older (thrash), which is what separates "IR reads m'/d' right
//!   after LS wrote them, but a 512 MB X' stream intervened" from small
//!   back-to-back producer/consumer pairs.

use crate::kernel::KernelDesc;
use std::collections::VecDeque;

/// L2 cache state across a sequence of kernel launches.
#[derive(Debug, Clone)]
pub struct L2Cache {
    capacity: u64,
    /// LRU queue of resident buffers, most recent at the back.
    resident: VecDeque<(String, u64)>,
}

/// DRAM traffic actually performed by one kernel after L2 filtering.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FilteredTraffic {
    /// DRAM read bytes after removing L2 hits.
    pub dram_read_bytes: f64,
    /// DRAM write bytes (write-through: equals declared writes).
    pub dram_write_bytes: f64,
    /// Bytes of reads served from L2.
    pub l2_hit_bytes: f64,
}

impl L2Cache {
    /// Creates an empty cache with the given capacity in bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        L2Cache {
            capacity: capacity_bytes,
            resident: VecDeque::new(),
        }
    }

    /// Cache capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.iter().map(|(_, b)| *b).sum()
    }

    /// Returns `true` if the named buffer is fully resident.
    pub fn contains(&self, id: &str) -> bool {
        self.resident.iter().any(|(k, _)| k == id)
    }

    /// Invalidates everything (e.g. at a model-iteration boundary).
    pub fn flush(&mut self) {
        self.resident.clear();
    }

    /// Accounts one kernel's execution: computes the DRAM traffic after L2
    /// filtering and updates residency.
    ///
    /// The hit fraction is applied proportionally to the kernel's declared
    /// per-TB read bytes by the simulator; this function returns kernel-level
    /// totals.
    pub fn access(&mut self, kernel: &KernelDesc) -> FilteredTraffic {
        let declared_reads: u64 = kernel.reads.iter().map(|b| b.bytes).sum();
        let total_reads = kernel.tbs.total_read_bytes();
        let total_writes = kernel.tbs.total_write_bytes();

        // 1. Hits: reads of fully-resident buffers.
        let mut hit_bytes: u64 = 0;
        for r in &kernel.reads {
            if self.contains(&r.id) {
                hit_bytes += r.bytes;
                self.touch(&r.id);
            }
        }
        // Reads not attributed to any named buffer always miss.
        let attributed_miss = declared_reads.saturating_sub(hit_bytes) as f64;
        let unattributed = (total_reads - declared_reads as f64).max(0.0);
        let dram_read = attributed_miss + unattributed;

        // 2. Streaming thrash: if this kernel moves more non-resident data
        // than the cache holds, older contents are gone afterwards.
        let streamed = dram_read + total_writes;
        if streamed > self.capacity as f64 {
            self.flush();
        }

        // 3. Install written buffers (write-through, but cacheable) and
        // re-install missed reads — each only if it individually fits.
        for w in &kernel.writes {
            self.insert(&w.id, w.bytes);
        }
        for r in &kernel.reads {
            if !self.contains(&r.id) {
                self.insert(&r.id, r.bytes);
            }
        }

        FilteredTraffic {
            dram_read_bytes: dram_read,
            dram_write_bytes: total_writes,
            l2_hit_bytes: hit_bytes as f64,
        }
    }

    fn touch(&mut self, id: &str) {
        if let Some(pos) = self.resident.iter().position(|(k, _)| k == id) {
            let entry = self.resident.remove(pos).expect("present");
            self.resident.push_back(entry);
        }
    }

    fn insert(&mut self, id: &str, bytes: u64) {
        if bytes > self.capacity {
            return; // streaming buffer, never cached
        }
        if let Some(pos) = self.resident.iter().position(|(k, _)| k == id) {
            self.resident.remove(pos);
        }
        self.resident.push_back((id.to_owned(), bytes));
        while self.resident_bytes() > self.capacity {
            self.resident.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelCategory, KernelDesc, TbWork};

    fn mem_kernel(name: &str, reads: &[(&str, u64)], writes: &[(&str, u64)]) -> KernelDesc {
        let read_total: u64 = reads.iter().map(|(_, b)| b).sum();
        let write_total: u64 = writes.iter().map(|(_, b)| b).sum();
        let mut b = KernelDesc::builder(name, KernelCategory::Other);
        b.uniform(1, TbWork::memory(read_total as f64, write_total as f64));
        for (id, bytes) in reads {
            b.reads(*id, *bytes);
        }
        for (id, bytes) in writes {
            b.writes(*id, *bytes);
        }
        b.build()
    }

    #[test]
    fn producer_consumer_forwarding() {
        let mut l2 = L2Cache::new(1000);
        let produce = mem_kernel("p", &[], &[("buf", 400)]);
        let consume = mem_kernel("c", &[("buf", 400)], &[]);
        let t1 = l2.access(&produce);
        assert_eq!(t1.dram_write_bytes, 400.0); // write-through
        let t2 = l2.access(&consume);
        assert_eq!(t2.dram_read_bytes, 0.0, "forwarded through L2");
        assert_eq!(t2.l2_hit_bytes, 400.0);
    }

    #[test]
    fn oversized_buffer_never_cached() {
        let mut l2 = L2Cache::new(1000);
        let produce = mem_kernel("p", &[], &[("big", 5000)]);
        l2.access(&produce);
        assert!(!l2.contains("big"));
        let consume = mem_kernel("c", &[("big", 5000)], &[]);
        let t = l2.access(&consume);
        assert_eq!(t.dram_read_bytes, 5000.0);
    }

    #[test]
    fn streaming_kernel_thrashes_small_residents() {
        let mut l2 = L2Cache::new(1000);
        l2.access(&mem_kernel("p", &[], &[("small", 100)]));
        assert!(l2.contains("small"));
        // A kernel streaming 10x the capacity wipes the cache.
        l2.access(&mem_kernel("stream", &[("huge", 10_000)], &[]));
        assert!(!l2.contains("small"));
        let t = l2.access(&mem_kernel("c", &[("small", 100)], &[]));
        assert_eq!(t.dram_read_bytes, 100.0, "must re-read from DRAM");
    }

    #[test]
    fn lru_eviction_order() {
        let mut l2 = L2Cache::new(1000);
        l2.access(&mem_kernel("a", &[], &[("a", 400)]));
        l2.access(&mem_kernel("b", &[], &[("b", 400)]));
        // touch a so b becomes LRU
        l2.access(&mem_kernel("ra", &[("a", 400)], &[]));
        // insert c (400): must evict b, not a
        l2.access(&mem_kernel("c", &[], &[("c", 400)]));
        assert!(l2.contains("a"));
        assert!(!l2.contains("b"));
        assert!(l2.contains("c"));
    }

    #[test]
    fn unattributed_reads_always_miss() {
        let mut l2 = L2Cache::new(1000);
        let mut b = KernelDesc::builder("k", KernelCategory::Other);
        b.uniform(1, TbWork::memory(500.0, 0.0)); // 500B reads, none attributed
        let t = l2.access(&b.build());
        assert_eq!(t.dram_read_bytes, 500.0);
        assert_eq!(t.l2_hit_bytes, 0.0);
    }

    #[test]
    fn partial_attribution() {
        let mut l2 = L2Cache::new(1000);
        l2.access(&mem_kernel("p", &[], &[("x", 200)]));
        // kernel reads 500 total; 200 attributed to resident x, 300 unattributed
        let mut b = KernelDesc::builder("k", KernelCategory::Other);
        b.uniform(1, TbWork::memory(500.0, 0.0)).reads("x", 200);
        let t = l2.access(&b.build());
        assert_eq!(t.l2_hit_bytes, 200.0);
        assert_eq!(t.dram_read_bytes, 300.0);
    }

    #[test]
    fn flush_empties() {
        let mut l2 = L2Cache::new(1000);
        l2.access(&mem_kernel("p", &[], &[("x", 100)]));
        assert_eq!(l2.resident_bytes(), 100);
        l2.flush();
        assert_eq!(l2.resident_bytes(), 0);
        assert!(!l2.contains("x"));
    }

    #[test]
    fn attention_matrix_scenario() {
        // BERT-large L=4096: attention matrix 512 MB, m'/d' 8 MB each,
        // A100 L2 = 40 MB. The LS kernel writes X' (streams) + m' + d';
        // IR reads m'/d'; X' stream must have evicted them.
        let mb = 1024 * 1024;
        let mut l2 = L2Cache::new(40 * mb);
        let ls = mem_kernel(
            "ls",
            &[("attn", 512 * mb)],
            &[("x'", 512 * mb), ("m'", 8 * mb), ("d'", 8 * mb)],
        );
        l2.access(&ls);
        assert!(!l2.contains("x'"), "streaming, never cached");
        // m' and d' were installed after the thrash check, so they survive
        // (written at the end of the kernel, read next — realistic).
        let ir = mem_kernel("ir", &[("m'", 8 * mb), ("d'", 8 * mb)], &[("r'", 8 * mb)]);
        let t_ir = l2.access(&ir);
        assert_eq!(t_ir.l2_hit_bytes, 16.0 * mb as f64);
        // GS reads X' (512MB miss) and r' (hit).
        let gs = mem_kernel(
            "gs",
            &[("x'", 512 * mb), ("r'", 8 * mb)],
            &[("y", 512 * mb)],
        );
        let t_gs = l2.access(&gs);
        assert_eq!(t_gs.l2_hit_bytes, 8.0 * mb as f64);
        assert_eq!(t_gs.dram_read_bytes, 512.0 * mb as f64);
    }
}
