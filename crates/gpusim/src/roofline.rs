//! Roofline classification of executed kernels.
//!
//! The paper's §3.1 argument is a roofline argument: softmax runs at
//! 2.5 Op/B against machines whose balance point exceeds 25 FLOP/B, so it is
//! memory-bound by an order of magnitude. This module makes that analysis a
//! first-class report over any [`Timeline`].

use crate::device::DeviceSpec;
use crate::trace::{KernelStats, Timeline};
use serde::{Deserialize, Serialize};

/// Which resource bounds a kernel at the roofline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// DRAM bandwidth bound (operational intensity below machine balance).
    Memory,
    /// Compute (tensor or CUDA FLOPS) bound.
    Compute,
    /// Dominated by the fixed kernel-launch overhead (tiny kernels).
    LaunchOverhead,
}

/// Roofline analysis of one kernel on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Kernel name.
    pub name: String,
    /// Operational intensity in FLOP/byte (FLOPs / DRAM bytes).
    pub intensity: f64,
    /// The machine balance point in FLOP/byte (peak FLOPS / peak bandwidth,
    /// using the larger of the CUDA/tensor peaks, matching how the kernel's
    /// FLOPs split).
    pub machine_balance: f64,
    /// What bounds this kernel.
    pub bound: Bound,
    /// Fraction of the binding roofline actually achieved.
    pub achieved_fraction: f64,
}

/// Classifies one kernel against a device's roofline, pricing CUDA and
/// tensor FLOPs against their respective peaks.
pub fn classify(device: &DeviceSpec, k: &KernelStats) -> RooflinePoint {
    let bytes = k.dram_bytes().max(1.0);
    let intensity = k.flops / bytes;
    let machine_balance = device.cuda_flops_per_s() / device.mem_bandwidth_bytes_per_s();

    let mem_time = bytes / device.mem_bandwidth_bytes_per_s();
    let compute_time = (k.cuda_flops / device.cuda_flops_per_s().max(1.0))
        .max(k.tensor_flops / device.tensor_flops_per_s().max(1.0));
    let launch = device.kernel_launch_overhead_us * 1e-6;

    let (bound, ideal) = if launch > mem_time.max(compute_time) {
        (Bound::LaunchOverhead, launch)
    } else if mem_time >= compute_time {
        (Bound::Memory, mem_time)
    } else {
        (Bound::Compute, compute_time)
    };
    RooflinePoint {
        name: k.name.clone(),
        intensity,
        machine_balance,
        bound,
        achieved_fraction: if k.time_s > 0.0 {
            ideal / k.time_s
        } else {
            0.0
        },
    }
}

/// Classifies every kernel of a timeline; the aggregate answers "how much of
/// this schedule is memory-bound?" — the paper's motivating statistic.
pub fn classify_timeline(device: &DeviceSpec, timeline: &Timeline) -> RooflineReport {
    let points: Vec<RooflinePoint> = timeline
        .kernels()
        .iter()
        .map(|k| classify(device, k))
        .collect();
    let time_of = |b: Bound| -> f64 {
        timeline
            .kernels()
            .iter()
            .zip(&points)
            .filter(|(_, p)| p.bound == b)
            .map(|(k, _)| k.time_s)
            .sum()
    };
    RooflineReport {
        memory_bound_time_s: time_of(Bound::Memory),
        compute_bound_time_s: time_of(Bound::Compute),
        launch_bound_time_s: time_of(Bound::LaunchOverhead),
        points,
    }
}

/// Aggregate roofline report over a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineReport {
    /// Per-kernel classifications, in execution order.
    pub points: Vec<RooflinePoint>,
    /// Total time in memory-bound kernels.
    pub memory_bound_time_s: f64,
    /// Total time in compute-bound kernels.
    pub compute_bound_time_s: f64,
    /// Total time in launch-overhead-dominated kernels.
    pub launch_bound_time_s: f64,
}

impl RooflineReport {
    /// Fraction of total time spent in memory-bound kernels.
    pub fn memory_bound_fraction(&self) -> f64 {
        let total = self.memory_bound_time_s + self.compute_bound_time_s + self.launch_bound_time_s;
        if total > 0.0 {
            self.memory_bound_time_s / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelCategory, KernelDesc, TbShape, TbWork};
    use crate::sim::Gpu;

    #[test]
    fn softmax_like_kernel_is_memory_bound() {
        let d = DeviceSpec::a100();
        let mut gpu = Gpu::new(d.clone());
        // paper §3.1: softmax ≈ 2.5 Op/B << 25+ FLOP/B balance
        let k = KernelDesc::builder("softmax", KernelCategory::Softmax)
            .shape(TbShape::new(1024, 8192, 32))
            .uniform(
                4096,
                TbWork {
                    cuda_flops: 2.5 * 16384.0,
                    dram_read_bytes: 8192.0,
                    dram_write_bytes: 8192.0,
                    ..Default::default()
                },
            )
            .build();
        let s = gpu.launch(&k).unwrap();
        let p = classify(&d, &s);
        assert_eq!(p.bound, Bound::Memory);
        assert!((p.intensity - 2.5).abs() < 1e-9);
        assert!(p.machine_balance > 25.0, "paper: >25 FLOP/B");
    }

    #[test]
    fn flop_heavy_kernel_is_compute_bound() {
        let d = DeviceSpec::a100();
        let mut gpu = Gpu::new(d.clone());
        let k = KernelDesc::builder("mma", KernelCategory::MatMulQk)
            .shape(TbShape::new(256, 0, 64))
            .uniform(
                1000,
                TbWork {
                    cuda_flops: 1e9,
                    dram_read_bytes: 1000.0,
                    dram_write_bytes: 0.0,
                    ..Default::default()
                },
            )
            .build();
        let s = gpu.launch(&k).unwrap();
        assert_eq!(classify(&d, &s).bound, Bound::Compute);
    }

    #[test]
    fn tiny_kernel_is_launch_bound() {
        let d = DeviceSpec::a100();
        let mut gpu = Gpu::new(d.clone());
        let k = KernelDesc::builder("tiny", KernelCategory::Other)
            .shape(TbShape::new(32, 0, 16))
            .uniform(1, TbWork::memory(128.0, 128.0))
            .build();
        let s = gpu.launch(&k).unwrap();
        assert_eq!(classify(&d, &s).bound, Bound::LaunchOverhead);
    }

    #[test]
    fn report_partitions_time() {
        let d = DeviceSpec::a100();
        let mut gpu = Gpu::new(d.clone());
        for _ in 0..3 {
            let k = KernelDesc::builder("s", KernelCategory::Softmax)
                .shape(TbShape::new(256, 0, 32))
                .uniform(5000, TbWork::memory(50_000.0, 50_000.0))
                .build();
            gpu.launch(&k).unwrap();
        }
        let t = gpu.into_timeline();
        let r = classify_timeline(&d, &t);
        let sum = r.memory_bound_time_s + r.compute_bound_time_s + r.launch_bound_time_s;
        assert!((sum - t.total_time_s()).abs() < 1e-12);
        assert!(r.memory_bound_fraction() > 0.99);
        assert_eq!(r.points.len(), 3);
        // achieved fraction is a fraction
        for p in &r.points {
            assert!(p.achieved_fraction > 0.0 && p.achieved_fraction <= 1.0 + 1e-9);
        }
    }
}
