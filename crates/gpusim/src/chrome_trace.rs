//! Chrome-trace (about://tracing / Perfetto) export of a [`Timeline`].
//!
//! Each kernel becomes a complete ("X") event on a per-category track, with
//! traffic/energy/grid details in `args`, so a simulated schedule can be
//! inspected visually: softmax stretches shrinking under SDF, the IR sliver,
//! fused MatMuls widening.

use crate::trace::Timeline;

/// Serializes a timeline as a Chrome Trace Event Format JSON array.
///
/// Kernels are laid out back-to-back from t = 0 (the simulator executes them
/// sequentially), one thread id per category so the viewer groups them into
/// swim lanes. Times are microseconds, as the format requires.
///
/// # Example
///
/// ```
/// use resoftmax_gpusim::{chrome_trace, DeviceSpec, Gpu, KernelCategory, KernelDesc, TbShape, TbWork};
/// let mut gpu = Gpu::new(DeviceSpec::a100());
/// let k = KernelDesc::builder("k", KernelCategory::Softmax)
///     .shape(TbShape::new(128, 0, 32))
///     .uniform(8, TbWork::memory(1024.0, 1024.0))
///     .build();
/// gpu.launch(&k)?;
/// let json = chrome_trace::to_chrome_trace(gpu.timeline());
/// assert!(json.starts_with('['));
/// assert!(json.contains("\"ph\":\"X\""));
/// # Ok::<(), resoftmax_gpusim::LaunchError>(())
/// ```
pub fn to_chrome_trace(timeline: &Timeline) -> String {
    let mut out = String::from("[\n");
    let mut now_us = 0.0f64;
    for (i, k) in timeline.kernels().iter().enumerate() {
        let dur_us = k.time_s * 1e6;
        if i > 0 {
            out.push_str(",\n");
        }
        // tid per category keeps one swim lane per kernel class.
        let tid = k.category as usize + 1;
        out.push_str(&format!(
            concat!(
                "  {{\"name\":{name},\"cat\":{cat},\"ph\":\"X\",\"pid\":1,",
                "\"tid\":{tid},\"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{",
                "\"dram_read_mb\":{rd:.2},\"dram_write_mb\":{wr:.2},",
                "\"l2_hit_mb\":{hit:.2},\"gflops\":{gf:.2},\"thread_blocks\":{tb},",
                "\"tbs_per_sm\":{occ},\"bw_fraction\":{bw:.3},\"energy_mj\":{e:.4}}}}}"
            ),
            name = json_string(&k.name),
            cat = json_string(k.category.label()),
            tid = tid,
            ts = now_us,
            dur = dur_us,
            rd = k.dram_read_bytes / 1e6,
            wr = k.dram_write_bytes / 1e6,
            hit = k.l2_hit_bytes / 1e6,
            gf = k.flops / 1e9,
            tb = k.tb_count,
            occ = k.tbs_per_sm,
            bw = k.achieved_bw_fraction,
            e = k.energy_j * 1e3,
        ));
        now_us += dur_us;
    }
    out.push_str("\n]\n");
    out
}

/// Converts a timeline into observability [`SimEvent`](resoftmax_obs::SimEvent)s, laid out
/// back-to-back from t = 0 exactly like [`to_chrome_trace`], with the same
/// accounting `args`. The caller hands the result to
/// [`Recorder::add_sim_stream`](resoftmax_obs::Recorder::add_sim_stream)
/// together with a wall-clock anchor, so the merged trace shows the virtual
/// kernel sequence nested under the real span of the run that produced it.
pub fn to_obs_events(timeline: &Timeline) -> Vec<resoftmax_obs::SimEvent> {
    let mut now_us = 0.0f64;
    timeline
        .kernels()
        .iter()
        .map(|k| {
            let dur_us = k.time_s * 1e6;
            let ev = resoftmax_obs::SimEvent {
                name: k.name.clone(),
                category: k.category.label().to_owned(),
                track: k.category as u32,
                start_us: now_us,
                dur_us,
                args: vec![
                    ("dram_read_mb", k.dram_read_bytes / 1e6),
                    ("dram_write_mb", k.dram_write_bytes / 1e6),
                    ("l2_hit_mb", k.l2_hit_bytes / 1e6),
                    ("gflops", k.flops / 1e9),
                    ("bw_fraction", k.achieved_bw_fraction),
                    ("energy_mj", k.energy_j * 1e3),
                ],
            };
            now_us += dur_us;
            ev
        })
        .collect()
}

/// Minimal JSON string escaping for kernel names.
fn json_string(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::kernel::{KernelCategory, KernelDesc, TbShape, TbWork};
    use crate::sim::Gpu;

    fn sample_timeline() -> Timeline {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        for (name, cat) in [
            ("matmul_qk", KernelCategory::MatMulQk),
            ("softmax", KernelCategory::Softmax),
            ("matmul_pv", KernelCategory::MatMulPv),
        ] {
            let k = KernelDesc::builder(name, cat)
                .shape(TbShape::new(128, 0, 32))
                .uniform(100, TbWork::memory(10_000.0, 10_000.0))
                .build();
            gpu.launch(&k).unwrap();
        }
        gpu.into_timeline()
    }

    #[test]
    fn is_valid_json_with_expected_events() {
        let json = to_chrome_trace(&sample_timeline());
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = parsed.as_array().unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0]["name"], "matmul_qk");
        assert_eq!(events[1]["cat"], "Softmax");
        assert_eq!(events[0]["ph"], "X");
        assert!(events[0]["dur"].as_f64().unwrap() > 0.0);
        // events are back-to-back
        let end0 = events[0]["ts"].as_f64().unwrap() + events[0]["dur"].as_f64().unwrap();
        let start1 = events[1]["ts"].as_f64().unwrap();
        assert!((end0 - start1).abs() < 1e-6);
        // args carry the accounting
        assert!(events[0]["args"]["dram_read_mb"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn empty_timeline_is_empty_array() {
        let json = to_chrome_trace(&Timeline::new());
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 0);
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }
}
