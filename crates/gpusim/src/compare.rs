//! Side-by-side comparison of two execution timelines — the programmatic
//! form of the paper's "normalized to baseline" figures.

use crate::kernel::KernelCategory;
use crate::trace::Timeline;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-category delta between a baseline and a variant timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryDelta {
    /// Category compared.
    pub category: KernelCategory,
    /// Baseline time in seconds (0 if the category is absent).
    pub baseline_time_s: f64,
    /// Variant time in seconds.
    pub variant_time_s: f64,
    /// Baseline DRAM bytes.
    pub baseline_dram_bytes: f64,
    /// Variant DRAM bytes.
    pub variant_dram_bytes: f64,
}

impl CategoryDelta {
    /// Time saved (positive when the variant is faster).
    pub fn time_saved_s(&self) -> f64 {
        self.baseline_time_s - self.variant_time_s
    }
}

/// Comparison of two timelines (typically Baseline vs SD/SDF/Online).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// Variant speedup over baseline (total time ratio).
    pub speedup: f64,
    /// Variant traffic normalized to baseline.
    pub traffic_ratio: f64,
    /// Variant DRAM-access energy normalized to baseline.
    pub energy_ratio: f64,
    /// Per-category deltas, ordered by absolute time saved (largest first),
    /// covering every category present in either timeline.
    pub deltas: Vec<CategoryDelta>,
}

/// Compares `variant` against `baseline`.
///
/// # Panics
///
/// Panics if `baseline` has zero total time (nothing to normalize against).
pub fn compare(baseline: &Timeline, variant: &Timeline) -> ComparisonReport {
    let base_total = baseline.total_time_s();
    assert!(base_total > 0.0, "baseline timeline is empty");

    let collect = |t: &Timeline| -> BTreeMap<String, (KernelCategory, f64, f64)> {
        let mut m = BTreeMap::new();
        for c in t.breakdown().categories {
            m.insert(
                c.category.label().to_owned(),
                (c.category, c.time_s, c.dram_bytes()),
            );
        }
        m
    };
    let base = collect(baseline);
    let var = collect(variant);

    let mut labels: Vec<String> = base.keys().chain(var.keys()).cloned().collect();
    labels.sort();
    labels.dedup();

    let mut deltas: Vec<CategoryDelta> = labels
        .into_iter()
        .map(|label| {
            let b = base.get(&label);
            let v = var.get(&label);
            let category = b.or(v).expect("present in one").0;
            CategoryDelta {
                category,
                baseline_time_s: b.map_or(0.0, |x| x.1),
                variant_time_s: v.map_or(0.0, |x| x.1),
                baseline_dram_bytes: b.map_or(0.0, |x| x.2),
                variant_dram_bytes: v.map_or(0.0, |x| x.2),
            }
        })
        .collect();
    deltas.sort_by(|a, b| {
        b.time_saved_s()
            .abs()
            .partial_cmp(&a.time_saved_s().abs())
            .expect("finite")
    });

    ComparisonReport {
        speedup: base_total / variant.total_time_s().max(f64::MIN_POSITIVE),
        traffic_ratio: variant.total_dram_bytes() / baseline.total_dram_bytes().max(1.0),
        energy_ratio: variant.total_energy_j() / baseline.total_energy_j().max(f64::MIN_POSITIVE),
        deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::kernel::{KernelDesc, TbShape, TbWork};
    use crate::sim::Gpu;

    fn timeline_with_cache(kernels: &[(&str, KernelCategory, f64)], cache: bool) -> Timeline {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        gpu.set_sim_cache(cache);
        for (name, cat, mb) in kernels {
            let k = KernelDesc::builder(*name, *cat)
                .shape(TbShape::new(256, 0, 32))
                .uniform(1000, TbWork::memory(mb * 1e6 / 1000.0, 0.0))
                .build();
            gpu.launch(&k).unwrap();
        }
        gpu.into_timeline()
    }

    fn timeline(kernels: &[(&str, KernelCategory, f64)]) -> Timeline {
        timeline_with_cache(kernels, true)
    }

    #[test]
    fn detects_the_removed_category() {
        let baseline = timeline(&[
            ("qk", KernelCategory::MatMulQk, 100.0),
            ("softmax", KernelCategory::Softmax, 200.0),
            ("pv", KernelCategory::MatMulPv, 100.0),
        ]);
        let variant = timeline(&[
            ("qk+ls", KernelCategory::MatMulQk, 130.0),
            ("ir", KernelCategory::InterReduction, 2.0),
            ("gs+pv", KernelCategory::MatMulPv, 130.0),
        ]);
        let r = compare(&baseline, &variant);
        assert!(r.speedup > 1.0, "{}", r.speedup);
        assert!(r.traffic_ratio < 1.0);
        // the biggest delta is the vanished softmax
        assert_eq!(r.deltas[0].category, KernelCategory::Softmax);
        assert_eq!(r.deltas[0].variant_time_s, 0.0);
        // categories only in the variant appear too
        assert!(r
            .deltas
            .iter()
            .any(|d| d.category == KernelCategory::InterReduction && d.baseline_time_s == 0.0));
    }

    #[test]
    fn identical_timelines_are_neutral() {
        let t = timeline(&[("k", KernelCategory::Other, 50.0)]);
        let r = compare(&t, &t.clone());
        assert!((r.speedup - 1.0).abs() < 1e-12);
        assert!((r.traffic_ratio - 1.0).abs() < 1e-12);
        assert!((r.energy_ratio - 1.0).abs() < 1e-12);
        assert_eq!(r.deltas[0].time_saved_s(), 0.0);
    }

    #[test]
    fn reports_identical_with_cache_on_and_off() {
        let cells = [
            ("qk", KernelCategory::MatMulQk, 100.0),
            ("softmax", KernelCategory::Softmax, 200.0),
            ("pv", KernelCategory::MatMulPv, 100.0),
        ];
        let variant_cells = [
            ("qk+ls", KernelCategory::MatMulQk, 130.0),
            ("gs+pv", KernelCategory::MatMulPv, 130.0),
        ];
        // Three legs of the same comparison: cache off, cache on (possibly
        // cold), cache on again (warm — everything the second leg priced is
        // now memoized). Reports must agree to the bit.
        let reports: Vec<ComparisonReport> = [false, true, true]
            .into_iter()
            .map(|cache| {
                compare(
                    &timeline_with_cache(&cells, cache),
                    &timeline_with_cache(&variant_cells, cache),
                )
            })
            .collect();
        let json: Vec<String> = reports
            .iter()
            .map(|r| serde_json::to_string(r).expect("report serializes"))
            .collect();
        assert_eq!(json[0], json[1], "cache-on report diverges from cache-off");
        assert_eq!(json[1], json[2], "warm-cache report diverges");
    }

    #[test]
    #[should_panic(expected = "baseline timeline is empty")]
    fn empty_baseline_panics() {
        let empty = Timeline::new();
        let t = timeline(&[("k", KernelCategory::Other, 1.0)]);
        let _ = compare(&empty, &t);
    }
}
