//! GPU device specifications (Table 1 of the paper, plus the microarchitectural
//! parameters the execution model needs).

use serde::{Deserialize, Serialize};

/// Specification of a simulated GPU.
///
/// The first five fields are Table 1 of the paper verbatim; the rest are
/// public microarchitectural constants (SM counts, occupancy limits) and
/// calibration parameters documented inline.
///
/// Construct presets with [`DeviceSpec::a100`], [`DeviceSpec::rtx3090`],
/// [`DeviceSpec::t4`], or build a custom device and [`DeviceSpec::validate`]
/// it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"A100"`.
    pub name: String,
    /// Peak off-chip memory bandwidth in GB/s (Table 1).
    pub mem_bandwidth_gbps: f64,
    /// Peak FP16 throughput on CUDA cores in TFLOPS at base clock (Table 1).
    pub fp16_cuda_tflops: f64,
    /// Peak FP16 throughput on tensor cores in TFLOPS at base clock (Table 1).
    pub fp16_tensor_tflops: f64,
    /// L1 data cache / shared memory per SM in KB (Table 1).
    pub l1_kb_per_sm: u32,
    /// L2 cache size in MB (Table 1).
    pub l2_mb: f64,
    /// Off-chip memory (HBM/GDDR) capacity in GB — bounds model weights plus
    /// the KV-cache pool in serving simulations.
    pub hbm_gb: f64,

    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_tbs_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Fraction of L1 usable as shared memory by one kernel (the rest is
    /// reserved as cache); e.g. A100 allows 164 of 192 KB.
    pub shared_fraction: f64,

    /// Fixed serialized cost of launching one kernel, in microseconds.
    /// Fusion wins partly by eliminating these.
    pub kernel_launch_overhead_us: f64,
    /// Concurrent memory-issuing threads required to saturate DRAM bandwidth
    /// (Little's-law calibration: `bandwidth × latency / bytes-per-access`).
    /// Below this, effective bandwidth degrades linearly — the mechanism
    /// behind §5.1's "SD improves bandwidth utilization in sparse attention".
    pub mem_saturation_threads: f64,
    /// DRAM access energy in picojoules per byte (HBM2e ≈ 30–40, GDDR6/6X ≈
    /// 55–65). Used for the paper's off-chip access-energy claims.
    pub dram_pj_per_byte: f64,
    /// Core energy per FP16 FLOP in picojoules (small next to DRAM).
    pub flop_pj: f64,
}

/// Error returned by [`DeviceSpec::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidDeviceError(String);

impl core::fmt::Display for InvalidDeviceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid device spec: {}", self.0)
    }
}

impl std::error::Error for InvalidDeviceError {}

impl DeviceSpec {
    /// NVIDIA A100 (SXM4 80GB-class, Table 1 column 1).
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100".to_owned(),
            mem_bandwidth_gbps: 1555.0,
            fp16_cuda_tflops: 42.3,
            fp16_tensor_tflops: 169.0,
            l1_kb_per_sm: 192,
            l2_mb: 40.0,
            hbm_gb: 80.0,
            num_sms: 108,
            max_threads_per_sm: 2048,
            max_tbs_per_sm: 32,
            regs_per_sm: 65536,
            shared_fraction: 164.0 / 192.0,
            kernel_launch_overhead_us: 4.0,
            mem_saturation_threads: 65536.0,
            dram_pj_per_byte: 35.0,
            flop_pj: 0.5,
        }
    }

    /// NVIDIA GeForce RTX 3090 (Table 1 column 2).
    pub fn rtx3090() -> Self {
        DeviceSpec {
            name: "RTX 3090".to_owned(),
            mem_bandwidth_gbps: 936.2,
            fp16_cuda_tflops: 29.3,
            fp16_tensor_tflops: 58.0,
            l1_kb_per_sm: 128,
            l2_mb: 6.0,
            hbm_gb: 24.0,
            num_sms: 82,
            max_threads_per_sm: 1536,
            max_tbs_per_sm: 16,
            regs_per_sm: 65536,
            shared_fraction: 100.0 / 128.0,
            kernel_launch_overhead_us: 4.0,
            mem_saturation_threads: 49152.0,
            dram_pj_per_byte: 60.0,
            flop_pj: 0.6,
        }
    }

    /// NVIDIA Tesla T4 (Table 1 column 3).
    pub fn t4() -> Self {
        DeviceSpec {
            name: "T4".to_owned(),
            mem_bandwidth_gbps: 320.0,
            fp16_cuda_tflops: 24.0,
            fp16_tensor_tflops: 24.0,
            l1_kb_per_sm: 64,
            l2_mb: 4.0,
            hbm_gb: 16.0,
            num_sms: 40,
            max_threads_per_sm: 1024,
            max_tbs_per_sm: 16,
            regs_per_sm: 65536,
            shared_fraction: 48.0 / 64.0,
            kernel_launch_overhead_us: 4.0,
            // GDDR6 latency (~550 ns) is well above HBM2e, so saturation
            // needs more threads in flight — and T4 has the fewest resident
            // threads of the three GPUs (40 SMs × 1024), making it the most
            // utilization-sensitive device. This is why the paper sees the
            // biggest sparse-model speedups here (§5.1).
            mem_saturation_threads: 32768.0,
            dram_pj_per_byte: 55.0,
            flop_pj: 0.7,
        }
    }

    /// All three evaluation GPUs in the paper's order.
    pub fn all_presets() -> Vec<DeviceSpec> {
        vec![Self::a100(), Self::rtx3090(), Self::t4()]
    }

    /// Peak memory bandwidth in bytes/second.
    #[inline]
    pub fn mem_bandwidth_bytes_per_s(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e9
    }

    /// Peak CUDA-core FP16 rate in FLOP/s.
    #[inline]
    pub fn cuda_flops_per_s(&self) -> f64 {
        self.fp16_cuda_tflops * 1e12
    }

    /// Peak tensor-core FP16 rate in FLOP/s.
    #[inline]
    pub fn tensor_flops_per_s(&self) -> f64 {
        self.fp16_tensor_tflops * 1e12
    }

    /// Per-SM CUDA-core FP16 rate in FLOP/s.
    #[inline]
    pub fn cuda_flops_per_sm(&self) -> f64 {
        self.cuda_flops_per_s() / self.num_sms as f64
    }

    /// Per-SM tensor-core FP16 rate in FLOP/s.
    #[inline]
    pub fn tensor_flops_per_sm(&self) -> f64 {
        self.tensor_flops_per_s() / self.num_sms as f64
    }

    /// Shared-memory bytes available to one kernel per SM.
    #[inline]
    pub fn shared_bytes_per_sm(&self) -> u64 {
        (self.l1_kb_per_sm as f64 * 1024.0 * self.shared_fraction) as u64
    }

    /// L2 capacity in bytes.
    #[inline]
    pub fn l2_bytes(&self) -> u64 {
        (self.l2_mb * 1024.0 * 1024.0) as u64
    }

    /// Off-chip memory capacity in bytes.
    #[inline]
    pub fn hbm_bytes(&self) -> u64 {
        (self.hbm_gb * 1024.0 * 1024.0 * 1024.0) as u64
    }

    /// Ratio of tensor-core FLOPS to memory bandwidth (FLOP per byte).
    ///
    /// The paper uses this ratio to explain why A100 benefits most from
    /// recomposition (§5.1): a higher ratio means MatMuls finish relatively
    /// faster, leaving softmax a bigger share of the total.
    pub fn tensor_flops_per_byte(&self) -> f64 {
        self.tensor_flops_per_s() / self.mem_bandwidth_bytes_per_s()
    }

    /// Checks internal consistency of a (possibly user-built) spec.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDeviceError`] naming the offending field if any
    /// capacity or rate is non-positive, or a fraction is out of range.
    pub fn validate(&self) -> Result<(), InvalidDeviceError> {
        fn pos(v: f64, what: &str) -> Result<(), InvalidDeviceError> {
            if v > 0.0 && v.is_finite() {
                Ok(())
            } else {
                Err(InvalidDeviceError(format!(
                    "{what} must be positive, got {v}"
                )))
            }
        }
        pos(self.mem_bandwidth_gbps, "mem_bandwidth_gbps")?;
        pos(self.fp16_cuda_tflops, "fp16_cuda_tflops")?;
        pos(self.fp16_tensor_tflops, "fp16_tensor_tflops")?;
        pos(self.l1_kb_per_sm as f64, "l1_kb_per_sm")?;
        pos(self.l2_mb, "l2_mb")?;
        pos(self.hbm_gb, "hbm_gb")?;
        pos(self.num_sms as f64, "num_sms")?;
        pos(self.max_threads_per_sm as f64, "max_threads_per_sm")?;
        pos(self.max_tbs_per_sm as f64, "max_tbs_per_sm")?;
        pos(self.regs_per_sm as f64, "regs_per_sm")?;
        pos(self.mem_saturation_threads, "mem_saturation_threads")?;
        pos(self.dram_pj_per_byte, "dram_pj_per_byte")?;
        if !(0.0..=1.0).contains(&self.shared_fraction) {
            return Err(InvalidDeviceError(format!(
                "shared_fraction must be in [0,1], got {}",
                self.shared_fraction
            )));
        }
        if self.kernel_launch_overhead_us < 0.0 {
            return Err(InvalidDeviceError(
                "kernel_launch_overhead_us must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let a100 = DeviceSpec::a100();
        assert_eq!(a100.mem_bandwidth_gbps, 1555.0);
        assert_eq!(a100.fp16_cuda_tflops, 42.3);
        assert_eq!(a100.fp16_tensor_tflops, 169.0);
        assert_eq!(a100.l1_kb_per_sm, 192);
        assert_eq!(a100.l2_mb, 40.0);
        assert_eq!(a100.hbm_gb, 80.0);
        assert_eq!(a100.hbm_bytes(), 80 * 1024 * 1024 * 1024);

        let r = DeviceSpec::rtx3090();
        assert_eq!(r.mem_bandwidth_gbps, 936.2);
        assert_eq!(r.fp16_tensor_tflops, 58.0);
        assert_eq!(r.l2_mb, 6.0);

        let t4 = DeviceSpec::t4();
        assert_eq!(t4.mem_bandwidth_gbps, 320.0);
        assert_eq!(t4.fp16_cuda_tflops, 24.0);
        assert_eq!(t4.fp16_tensor_tflops, 24.0);
        assert_eq!(t4.l1_kb_per_sm, 64);
        assert_eq!(t4.l2_mb, 4.0);
    }

    #[test]
    fn presets_validate() {
        for d in DeviceSpec::all_presets() {
            d.validate().unwrap_or_else(|e| panic!("{}: {e}", d.name));
        }
    }

    #[test]
    fn derived_rates() {
        let a = DeviceSpec::a100();
        assert_eq!(a.mem_bandwidth_bytes_per_s(), 1.555e12);
        assert_eq!(a.tensor_flops_per_s(), 1.69e14);
        assert!((a.cuda_flops_per_sm() - 42.3e12 / 108.0).abs() < 1.0);
        assert_eq!(a.l2_bytes(), 40 * 1024 * 1024);
        assert!(a.shared_bytes_per_sm() > 160 * 1024);
    }

    #[test]
    fn flops_per_byte_ordering_explains_gpu_differences() {
        // Paper §5.1: A100 has the highest tensor-FLOPS:bandwidth ratio,
        // so softmax occupies the largest share there.
        let a = DeviceSpec::a100().tensor_flops_per_byte();
        let r = DeviceSpec::rtx3090().tensor_flops_per_byte();
        assert!(a > r, "A100 {a} > 3090 {r}");
        assert!(a > 25.0, "paper: >25 FLOP/B on modern GPUs");
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut d = DeviceSpec::a100();
        d.mem_bandwidth_gbps = 0.0;
        assert!(d.validate().is_err());

        let mut d = DeviceSpec::a100();
        d.shared_fraction = 1.5;
        assert!(d.validate().is_err());

        let mut d = DeviceSpec::a100();
        d.kernel_launch_overhead_us = -1.0;
        assert!(d.validate().is_err());

        let mut d = DeviceSpec::a100();
        d.num_sms = 0;
        let err = d.validate().unwrap_err();
        assert!(err.to_string().contains("num_sms"));
    }

    #[test]
    fn serde_round_trip() {
        let d = DeviceSpec::t4();
        let json = serde_json::to_string(&d).unwrap();
        let back: DeviceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
