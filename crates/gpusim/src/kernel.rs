//! Kernel descriptions: the interface between kernel implementations
//! (`resoftmax-kernels`) and the execution model.
//!
//! A [`KernelDesc`] captures exactly what the performance model needs:
//! how many thread blocks, what resources each occupies (for the occupancy
//! calculation), how much work each performs on each hardware resource
//! (CUDA cores, tensor cores, DRAM), and which named buffers the kernel
//! touches (for the L2 residency model).

use serde::{Deserialize, Serialize};

/// Classification of a kernel for the paper's breakdown figures.
///
/// Fig. 2 groups time into MatMul-in-SDA / Softmax / FC / FeedForward / etc.;
/// Fig. 5 needs the decomposed softmax sub-layers separated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelCategory {
    /// `Q·Kᵀ` attention-score MatMul inside the SDA block.
    MatMulQk,
    /// `P·V` attention-context MatMul inside the SDA block.
    MatMulPv,
    /// Monolithic (row-per-TB) softmax.
    Softmax,
    /// Decomposed softmax sub-layer: local softmax (LS).
    LocalSoftmax,
    /// Decomposed softmax sub-layer: inter-sub-vector reduction (IR).
    InterReduction,
    /// Decomposed softmax sub-layer: global scaling (GS).
    GlobalScaling,
    /// Fully connected layers of the MHA block (QKV projections + output).
    Fc,
    /// FeedForward block MatMuls.
    FeedForward,
    /// Elementwise scale (`1/√D_head`).
    Scale,
    /// Elementwise attention masking.
    Mask,
    /// Layer normalization.
    LayerNorm,
    /// Activation functions (GeLU / ReLU).
    Activation,
    /// A fully fused attention kernel (online-softmax / FlashAttention
    /// style): `Q·Kᵀ`, softmax and `P·V` in one launch.
    FusedAttention,
    /// Residual additions, bias adds, reshapes and other glue.
    Other,
}

impl KernelCategory {
    /// `true` for the categories that constitute the SDA block.
    pub fn in_sda(self) -> bool {
        matches!(
            self,
            KernelCategory::MatMulQk
                | KernelCategory::MatMulPv
                | KernelCategory::Softmax
                | KernelCategory::LocalSoftmax
                | KernelCategory::InterReduction
                | KernelCategory::GlobalScaling
                | KernelCategory::Scale
                | KernelCategory::Mask
                | KernelCategory::FusedAttention
        )
    }

    /// `true` for the softmax layer and its decomposed sub-layers.
    pub fn is_softmax_family(self) -> bool {
        matches!(
            self,
            KernelCategory::Softmax
                | KernelCategory::LocalSoftmax
                | KernelCategory::InterReduction
                | KernelCategory::GlobalScaling
        )
    }

    /// Display label used in reports (matches the paper's figure legends).
    pub fn label(self) -> &'static str {
        match self {
            KernelCategory::MatMulQk => "MatMul(QK)",
            KernelCategory::MatMulPv => "MatMul(PV)",
            KernelCategory::Softmax => "Softmax",
            KernelCategory::LocalSoftmax => "LS",
            KernelCategory::InterReduction => "IR",
            KernelCategory::GlobalScaling => "GS",
            KernelCategory::Fc => "FC",
            KernelCategory::FeedForward => "FeedForward",
            KernelCategory::Scale => "Scale",
            KernelCategory::Mask => "Mask",
            KernelCategory::LayerNorm => "LayerNorm",
            KernelCategory::Activation => "Activation",
            KernelCategory::FusedAttention => "FusedMHA",
            KernelCategory::Other => "etc.",
        }
    }
}

impl core::fmt::Display for KernelCategory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-thread-block resource footprint (identical for every TB of a kernel —
/// a real CUDA constraint the paper leans on in §5.1: the baseline sparse
/// softmax must size every TB for the worst-case row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TbShape {
    /// Threads per block.
    pub threads: u32,
    /// Shared-memory bytes per block.
    pub shared_bytes: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
}

impl TbShape {
    /// Convenience constructor.
    pub fn new(threads: u32, shared_bytes: u32, regs_per_thread: u32) -> Self {
        TbShape {
            threads,
            shared_bytes,
            regs_per_thread,
        }
    }
}

/// Work performed by one thread block, per hardware resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TbWork {
    /// FP16 FLOPs executed on CUDA cores (exp, division, reductions, …).
    pub cuda_flops: f64,
    /// FP16 FLOPs executed on tensor cores (MMA).
    pub tensor_flops: f64,
    /// Bytes read from DRAM (before L2 filtering).
    pub dram_read_bytes: f64,
    /// Bytes written toward DRAM (before L2 filtering).
    pub dram_write_bytes: f64,
    /// Fraction of this TB's threads that actually issue memory instructions
    /// (< 1.0 when resources are allocated for a worst case that rarely
    /// occurs, e.g. the baseline sparse softmax, §5.1). Feeds the global
    /// bandwidth-utilization model.
    pub mem_active_fraction: f64,
    /// Achieved fraction of roofline rates for this block (≤ 1.0):
    /// implementation efficiency relative to peak — pipeline stalls, phase
    /// barriers, gather indirection. Scales compute and memory rates alike,
    /// independent of the machine-wide utilization model.
    pub efficiency: f64,
}

impl Default for TbWork {
    /// Zero work at full efficiency with all threads memory-active.
    fn default() -> Self {
        TbWork {
            cuda_flops: 0.0,
            tensor_flops: 0.0,
            dram_read_bytes: 0.0,
            dram_write_bytes: 0.0,
            mem_active_fraction: 1.0,
            efficiency: 1.0,
        }
    }
}

impl TbWork {
    /// A TB doing pure streaming memory work with all threads active.
    pub fn memory(read: f64, write: f64) -> Self {
        TbWork {
            dram_read_bytes: read,
            dram_write_bytes: write,
            ..Default::default()
        }
    }

    /// Returns this work with the given roofline efficiency.
    pub fn with_efficiency(mut self, efficiency: f64) -> Self {
        self.efficiency = efficiency;
        self
    }

    /// Total DRAM traffic of this TB.
    pub fn dram_bytes(&self) -> f64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

/// A run of identical thread blocks inside a heterogeneous grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TbGroup {
    /// Work per block in this group.
    pub work: TbWork,
    /// Number of identical blocks.
    pub count: u64,
}

impl TbGroup {
    /// Convenience constructor.
    pub fn new(work: TbWork, count: u64) -> Self {
        TbGroup { work, count }
    }
}

/// The set of thread blocks of one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TbSet {
    /// `count` identical blocks (dense kernels; simulated wave-analytically).
    Uniform {
        /// Number of thread blocks in the grid.
        count: u64,
        /// Work per block.
        work: TbWork,
    },
    /// Explicitly enumerated per-block work (block-sparse kernels with
    /// irregular rows; simulated with the event-driven fluid model to expose
    /// load imbalance).
    PerTb(Vec<TbWork>),
    /// Runs of identical blocks (e.g. one entry per block-sparse block-row,
    /// with `count` = rows per block-row × heads × batch). Semantically
    /// identical to the expanded [`TbSet::PerTb`], but simulated in
    /// O(groups) events instead of O(blocks).
    Grouped(Vec<TbGroup>),
}

impl TbSet {
    /// Number of thread blocks.
    pub fn count(&self) -> u64 {
        match self {
            TbSet::Uniform { count, .. } => *count,
            TbSet::PerTb(v) => v.len() as u64,
            TbSet::Grouped(v) => v.iter().map(|g| g.count).sum(),
        }
    }

    fn sum_over(&self, f: impl Fn(&TbWork) -> f64) -> f64 {
        match self {
            TbSet::Uniform { count, work } => *count as f64 * f(work),
            TbSet::PerTb(v) => v.iter().map(f).sum(),
            TbSet::Grouped(v) => v.iter().map(|g| g.count as f64 * f(&g.work)).sum(),
        }
    }

    /// Sum of DRAM bytes over all blocks (pre-L2).
    pub fn total_dram_bytes(&self) -> f64 {
        self.sum_over(TbWork::dram_bytes)
    }

    /// Sum of reads over all blocks (pre-L2).
    pub fn total_read_bytes(&self) -> f64 {
        self.sum_over(|w| w.dram_read_bytes)
    }

    /// Sum of writes over all blocks (pre-L2).
    pub fn total_write_bytes(&self) -> f64 {
        self.sum_over(|w| w.dram_write_bytes)
    }

    /// Sum of FLOPs (CUDA + tensor) over all blocks.
    pub fn total_flops(&self) -> f64 {
        self.sum_over(|w| w.cuda_flops + w.tensor_flops)
    }

    /// Sum of CUDA-core FLOPs over all blocks.
    pub fn total_cuda_flops(&self) -> f64 {
        self.sum_over(|w| w.cuda_flops)
    }

    /// Sum of tensor-core FLOPs over all blocks.
    pub fn total_tensor_flops(&self) -> f64 {
        self.sum_over(|w| w.tensor_flops)
    }
}

/// A named device buffer a kernel reads or writes, for L2 residency modeling.
///
/// Buffers are identified by string so producer and consumer kernels agree on
/// identity without shared ownership (e.g. `"attn/l3/h0"` or `"softmax/m'"`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferUse {
    /// Stable buffer identity.
    pub id: String,
    /// Traffic volume: bytes of this buffer the kernel reads or writes,
    /// *including re-reads* (a `P·V` MatMul reads V once per row-tile).
    pub bytes: u64,
    /// Resident size of the buffer for cache-capacity purposes. Defaults to
    /// `bytes` in [`BufferUse::new`]; use [`BufferUse::with_footprint`] when
    /// traffic exceeds the buffer size.
    pub footprint: u64,
}

impl BufferUse {
    /// Buffer use where traffic equals the buffer size (touched once).
    pub fn new(id: impl Into<String>, bytes: u64) -> Self {
        BufferUse {
            id: id.into(),
            bytes,
            footprint: bytes,
        }
    }

    /// Buffer use with re-reads: `bytes` of traffic against a buffer whose
    /// resident size is `footprint`.
    pub fn with_footprint(id: impl Into<String>, bytes: u64, footprint: u64) -> Self {
        BufferUse {
            id: id.into(),
            bytes,
            footprint,
        }
    }
}

/// Structured metadata describing *how* a kernel's work was derived:
/// tiling, logical dimensions, and fusion decisions.
///
/// The cost generators populate this alongside the opaque work figures so
/// that downstream consumers (the static schedule analyzer in particular)
/// can re-derive the analytic traffic/shape formulas and cross-check them
/// against the declared [`TbSet`] and [`BufferUse`] numbers, instead of
/// parsing kernel names. Every field is optional; [`KernelMeta::default`]
/// (all `None`/`false`) means "no metadata" and is what hand-rolled
/// descriptions get.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelMeta {
    /// Output-tile rows `m` of a MatMul-style kernel.
    pub tile_m: Option<usize>,
    /// Output-tile width `n` of a MatMul-style kernel (the paper's `T` when
    /// Local Softmax rides the epilogue).
    pub tile_n: Option<usize>,
    /// Softmax sub-vector length `T` governing the `m'`/`d'`/`r'`
    /// intermediates (LS/IR/GS kernels and fused epilogues/prologues).
    pub sub_vector: Option<usize>,
    /// Logical row count: `L` for attention kernels, the full row count for
    /// FC/LayerNorm kernels.
    pub rows: Option<usize>,
    /// Key/value-side length (attention-matrix columns).
    pub kv_len: Option<usize>,
    /// Per-head hidden size `D_head`.
    pub d_head: Option<usize>,
    /// Reduction depth of a MatMul (`d_in`).
    pub d_in: Option<usize>,
    /// Output width of a MatMul (`d_out`), or the row width of a LayerNorm.
    pub d_out: Option<usize>,
    /// Independent attention instances (`heads × batch`).
    pub instances: Option<u64>,
    /// Element count of an elementwise kernel.
    pub elems: Option<u64>,
    /// Number of operand streams an elementwise kernel reads per element.
    pub input_streams: Option<usize>,
    /// Scale + mask are fused into this kernel's epilogue.
    pub fused_scale_mask: bool,
    /// Local Softmax is fused into this kernel's epilogue (SDF `Q·Kᵀ`).
    pub fused_ls: bool,
    /// Global Scaling is fused into this kernel's prologue (SDF `P·V`).
    pub fused_gs: bool,
    /// Block-sparse kernels: the square block side.
    pub sparse_block: Option<usize>,
    /// The axis along which the kernel's work is split across thread blocks
    /// (and, on the host reference implementation, across worker threads).
    /// `None` means the generator did not declare one.
    pub split: Option<ParallelSplit>,
    /// Numeric format of the kernel's reduction accumulators (softmax sums,
    /// running rescales). `None` means the generator did not declare one;
    /// the numerics analysis assumes fp32 in that case and says so.
    pub accum: Option<AccumFormat>,
}

/// Numeric format a kernel accumulates partial reductions in.
///
/// Storage between kernels is always binary16 in this model (the paper's
/// setting); what varies is the in-register accumulator width, which the
/// analyzer's numerics pass turns into a per-addition rounding charge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccumFormat {
    /// 32-bit accumulation (unit roundoff 2⁻²⁴) — the default everywhere.
    #[default]
    Fp32,
    /// 16-bit accumulation (unit roundoff 2⁻¹¹) — halves accumulator
    /// register pressure at a certified numeric cost.
    Fp16,
}

impl AccumFormat {
    /// Unit roundoff of one accumulation step in this format.
    pub fn unit_roundoff(self) -> f64 {
        match self {
            AccumFormat::Fp32 => (2.0f64).powi(-24),
            AccumFormat::Fp16 => (2.0f64).powi(-11),
        }
    }

    /// Display label (`"fp32"` / `"fp16"`).
    pub fn label(self) -> &'static str {
        match self {
            AccumFormat::Fp32 => "fp32",
            AccumFormat::Fp16 => "fp16",
        }
    }
}

/// How a kernel's work is divided into independently-schedulable units.
///
/// The host runtime (`resoftmax-parallel`) and the simulated grid both rely
/// on the same invariant: work may only be split along axes where every unit
/// owns a *disjoint* slice of the output, so the per-element accumulation
/// order — and therefore every FP16 rounding step — is identical at any
/// degree of parallelism. Splitting a reduction axis breaks that invariant
/// (partial sums combine in a parallelism-dependent order); the static
/// analyzer rejects any kernel that declares it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParallelSplit {
    /// Whole output rows (softmax / LayerNorm / fused-attention style).
    OutputRows,
    /// Rectangular output tiles of a MatMul.
    OutputTiles,
    /// Independent output elements (elementwise kernels).
    Elements,
    /// Sub-vector segments within a row (the paper's Local Softmax `T`).
    RowSegments,
    /// A reduction axis — never legal to parallelize; declared only to make
    /// the analyzer's negative tests expressible.
    ReductionAxis,
}

/// Complete description of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel name for traces, e.g. `"softmax_L4096_h16"`.
    pub name: String,
    /// Category for breakdown aggregation.
    pub category: KernelCategory,
    /// Per-TB resource footprint (uniform across the grid).
    pub shape: TbShape,
    /// The grid's work.
    pub tbs: TbSet,
    /// Buffers read (for L2 hit modeling). The byte totals here should cover
    /// the DRAM reads declared in [`TbSet`]; reads not attributed to a buffer
    /// are treated as always-miss.
    pub reads: Vec<BufferUse>,
    /// Buffers written.
    pub writes: Vec<BufferUse>,
    /// Structured derivation metadata (tiling, dimensions, fusion flags)
    /// for static analysis; [`KernelMeta::default`] when not provided.
    pub meta: KernelMeta,
}

impl KernelDesc {
    /// Starts building a kernel description.
    pub fn builder(name: impl Into<String>, category: KernelCategory) -> KernelDescBuilder {
        KernelDescBuilder {
            name: name.into(),
            category,
            shape: TbShape::new(128, 0, 32),
            tbs: TbSet::Uniform {
                count: 1,
                work: TbWork::default(),
            },
            reads: Vec::new(),
            writes: Vec::new(),
            meta: KernelMeta::default(),
        }
    }

    /// Total DRAM traffic in bytes before L2 filtering.
    pub fn total_dram_bytes(&self) -> f64 {
        self.tbs.total_dram_bytes()
    }

    /// Total FLOPs.
    pub fn total_flops(&self) -> f64 {
        self.tbs.total_flops()
    }
}

/// Builder for [`KernelDesc`] (non-consuming setters, terminal [`build`]).
///
/// [`build`]: KernelDescBuilder::build
#[derive(Debug, Clone)]
pub struct KernelDescBuilder {
    name: String,
    category: KernelCategory,
    shape: TbShape,
    tbs: TbSet,
    reads: Vec<BufferUse>,
    writes: Vec<BufferUse>,
    meta: KernelMeta,
}

impl KernelDescBuilder {
    /// Sets the per-TB resource footprint.
    pub fn shape(&mut self, shape: TbShape) -> &mut Self {
        self.shape = shape;
        self
    }

    /// Sets a uniform grid of `count` blocks each performing `work`.
    pub fn uniform(&mut self, count: u64, work: TbWork) -> &mut Self {
        self.tbs = TbSet::Uniform { count, work };
        self
    }

    /// Sets explicit per-block work.
    pub fn per_tb(&mut self, tbs: Vec<TbWork>) -> &mut Self {
        self.tbs = TbSet::PerTb(tbs);
        self
    }

    /// Sets grouped per-block work (runs of identical blocks).
    pub fn grouped(&mut self, groups: Vec<TbGroup>) -> &mut Self {
        self.tbs = TbSet::Grouped(groups);
        self
    }

    /// Declares a buffer read.
    pub fn reads(&mut self, id: impl Into<String>, bytes: u64) -> &mut Self {
        self.reads.push(BufferUse::new(id, bytes));
        self
    }

    /// Declares a buffer write.
    pub fn writes(&mut self, id: impl Into<String>, bytes: u64) -> &mut Self {
        self.writes.push(BufferUse::new(id, bytes));
        self
    }

    /// Attaches structured derivation metadata.
    pub fn meta(&mut self, meta: KernelMeta) -> &mut Self {
        self.meta = meta;
        self
    }

    /// Finishes the description.
    pub fn build(&self) -> KernelDesc {
        KernelDesc {
            name: self.name.clone(),
            category: self.category,
            shape: self.shape,
            tbs: self.tbs.clone(),
            reads: self.reads.clone(),
            writes: self.writes.clone(),
            meta: self.meta.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_partitions() {
        assert!(KernelCategory::Softmax.in_sda());
        assert!(KernelCategory::LocalSoftmax.is_softmax_family());
        assert!(!KernelCategory::Fc.in_sda());
        assert!(!KernelCategory::MatMulQk.is_softmax_family());
        assert!(KernelCategory::MatMulPv.in_sda());
        assert_eq!(KernelCategory::Softmax.label(), "Softmax");
        assert_eq!(format!("{}", KernelCategory::Other), "etc.");
    }

    #[test]
    fn tbset_totals_uniform() {
        let work = TbWork {
            cuda_flops: 10.0,
            tensor_flops: 20.0,
            dram_read_bytes: 100.0,
            dram_write_bytes: 50.0,
            ..Default::default()
        };
        let set = TbSet::Uniform { count: 4, work };
        assert_eq!(set.count(), 4);
        assert_eq!(set.total_dram_bytes(), 600.0);
        assert_eq!(set.total_read_bytes(), 400.0);
        assert_eq!(set.total_write_bytes(), 200.0);
        assert_eq!(set.total_flops(), 120.0);
    }

    #[test]
    fn tbset_totals_per_tb() {
        let set = TbSet::PerTb(vec![TbWork::memory(10.0, 0.0), TbWork::memory(0.0, 30.0)]);
        assert_eq!(set.count(), 2);
        assert_eq!(set.total_dram_bytes(), 40.0);
        assert_eq!(set.total_flops(), 0.0);
    }

    #[test]
    fn builder_builds() {
        let k = KernelDesc::builder("k", KernelCategory::Softmax)
            .shape(TbShape::new(256, 1024, 40))
            .uniform(8, TbWork::memory(64.0, 64.0))
            .reads("attn", 512)
            .writes("out", 512)
            .build();
        assert_eq!(k.name, "k");
        assert_eq!(k.shape.threads, 256);
        assert_eq!(k.tbs.count(), 8);
        assert_eq!(k.reads[0].id, "attn");
        assert_eq!(k.total_dram_bytes(), 1024.0);
    }

    #[test]
    fn serde_round_trip() {
        let k = KernelDesc::builder("k", KernelCategory::InterReduction)
            .per_tb(vec![TbWork::memory(1.0, 2.0)])
            .build();
        let json = serde_json::to_string(&k).unwrap();
        let back: KernelDesc = serde_json::from_str(&json).unwrap();
        assert_eq!(k, back);
    }
}
