//! Thread-block occupancy calculation.
//!
//! Mirrors the CUDA occupancy calculator: the number of blocks resident on an
//! SM is limited by the max-blocks cap, threads, shared memory and the
//! register file — whichever binds first.

use crate::device::DeviceSpec;
use crate::kernel::TbShape;

/// Result of an occupancy calculation for one kernel on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Resident thread blocks per SM.
    pub tbs_per_sm: u32,
    /// Which resource bound the result.
    pub limiter: OccupancyLimiter,
}

/// The resource that limited occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimiter {
    /// Hit the architectural max-blocks-per-SM cap.
    MaxBlocks,
    /// Thread capacity.
    Threads,
    /// Shared-memory capacity.
    SharedMemory,
    /// Register-file capacity.
    Registers,
}

/// Error when a single thread block exceeds SM resources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchError {
    kernel_needs: String,
}

impl core::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "thread block does not fit on an SM: {}",
            self.kernel_needs
        )
    }
}

impl std::error::Error for LaunchError {}

/// Computes occupancy of `shape` on `device`.
///
/// # Errors
///
/// Returns [`LaunchError`] if even a single block exceeds the SM's threads,
/// shared memory, or registers — the GPU would refuse the launch.
pub fn occupancy(device: &DeviceSpec, shape: &TbShape) -> Result<Occupancy, LaunchError> {
    if shape.threads == 0 {
        return Err(LaunchError {
            kernel_needs: "zero threads per block".into(),
        });
    }
    let by_threads = device.max_threads_per_sm / shape.threads;
    let by_shared = if shape.shared_bytes == 0 {
        u32::MAX
    } else {
        (device.shared_bytes_per_sm() / shape.shared_bytes as u64) as u32
    };
    let regs_per_tb = shape.regs_per_thread.saturating_mul(shape.threads);
    let by_regs = device
        .regs_per_sm
        .checked_div(regs_per_tb)
        .unwrap_or(u32::MAX);

    let (tbs, limiter) = [
        (device.max_tbs_per_sm, OccupancyLimiter::MaxBlocks),
        (by_threads, OccupancyLimiter::Threads),
        (by_shared, OccupancyLimiter::SharedMemory),
        (by_regs, OccupancyLimiter::Registers),
    ]
    .into_iter()
    .min_by_key(|&(n, _)| n)
    .expect("non-empty");

    if tbs == 0 {
        return Err(LaunchError {
            kernel_needs: format!(
                "{} threads, {} B shared, {} regs/thread exceeds SM capacity of {}",
                shape.threads, shape.shared_bytes, shape.regs_per_thread, device.name
            ),
        });
    }
    Ok(Occupancy {
        tbs_per_sm: tbs,
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> DeviceSpec {
        DeviceSpec::a100()
    }

    #[test]
    fn thread_limited() {
        // 1024-thread blocks with tiny footprint: 2048/1024 = 2 per SM.
        let occ = occupancy(&a100(), &TbShape::new(1024, 0, 16)).unwrap();
        assert_eq!(occ.tbs_per_sm, 2);
        assert_eq!(occ.limiter, OccupancyLimiter::Threads);
    }

    #[test]
    fn shared_limited() {
        // 64 KB shared per block on A100 (164 KB usable): 2 blocks.
        let occ = occupancy(&a100(), &TbShape::new(128, 64 * 1024, 16)).unwrap();
        assert_eq!(occ.tbs_per_sm, 2);
        assert_eq!(occ.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn register_limited() {
        // 256 threads * 255 regs = 65280 regs per block: 1 block on 64K-reg SM.
        let occ = occupancy(&a100(), &TbShape::new(256, 0, 255)).unwrap();
        assert_eq!(occ.tbs_per_sm, 1);
        assert_eq!(occ.limiter, OccupancyLimiter::Registers);
    }

    #[test]
    fn max_blocks_limited() {
        // Tiny blocks: capped at the architectural 32 blocks/SM.
        let occ = occupancy(&a100(), &TbShape::new(32, 0, 16)).unwrap();
        assert_eq!(occ.tbs_per_sm, 32);
        assert_eq!(occ.limiter, OccupancyLimiter::MaxBlocks);
    }

    #[test]
    fn oversized_block_rejected() {
        // More shared memory than the SM has.
        let err = occupancy(&a100(), &TbShape::new(128, 200 * 1024, 16)).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
        // More threads than the SM supports is thread-limited to 0.
        assert!(occupancy(&a100(), &TbShape::new(4096, 0, 16)).is_err());
        // Zero threads is nonsense.
        assert!(occupancy(&a100(), &TbShape::new(0, 0, 16)).is_err());
    }

    #[test]
    fn t4_has_lower_occupancy_than_a100() {
        // Same kernel shape lands fewer blocks on T4 (1024 threads/SM).
        let shape = TbShape::new(256, 16 * 1024, 32);
        let a = occupancy(&a100(), &shape).unwrap();
        let t = occupancy(&DeviceSpec::t4(), &shape).unwrap();
        assert!(
            t.tbs_per_sm < a.tbs_per_sm,
            "t4 {} < a100 {}",
            t.tbs_per_sm,
            a.tbs_per_sm
        );
    }
}
