//! Property-based tests of the execution model: monotonicity, conservation,
//! and bound properties that must hold for any kernel.

#![cfg(not(miri))] // event-driven sims are far too slow under miri

use proptest::prelude::*;
use resoftmax_gpusim::{
    occupancy, DeviceSpec, Gpu, KernelCategory, KernelDesc, TbGroup, TbShape, TbWork,
};

fn quiet_a100() -> DeviceSpec {
    let mut d = DeviceSpec::a100();
    d.kernel_launch_overhead_us = 0.0;
    d
}

fn work_strategy() -> impl Strategy<Value = TbWork> {
    (
        0.0f64..1e9,
        0.0f64..1e9,
        0.0f64..1e6,
        0.0f64..1e6,
        0.05f64..1.0,
        0.1f64..1.0,
    )
        .prop_map(|(cuda, tensor, rd, wr, frac, eff)| TbWork {
            cuda_flops: cuda,
            tensor_flops: tensor,
            dram_read_bytes: rd,
            dram_write_bytes: wr,
            mem_active_fraction: frac,
            efficiency: eff,
        })
}

fn uniform_kernel(count: u64, work: TbWork, threads: u32) -> KernelDesc {
    KernelDesc::builder("k", KernelCategory::Other)
        .shape(TbShape::new(threads, 4096, 32))
        .uniform(count, work)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Simulated time is finite and non-negative for arbitrary work.
    #[test]
    fn time_is_finite(work in work_strategy(), count in 1u64..5000, threads in 32u32..1024) {
        let mut gpu = Gpu::new(quiet_a100());
        let s = gpu.launch(&uniform_kernel(count, work, threads)).unwrap();
        prop_assert!(s.time_s.is_finite());
        prop_assert!(s.time_s >= 0.0);
        prop_assert!(s.energy_j >= 0.0);
    }

    /// Time never beats the machine-wide roofline bound.
    #[test]
    fn time_respects_roofline(work in work_strategy(), count in 1u64..5000) {
        let d = quiet_a100();
        let mut gpu = Gpu::new(d.clone());
        let s = gpu.launch(&uniform_kernel(count, work, 256)).unwrap();
        let n = count as f64;
        let bound = (n * work.cuda_flops / d.cuda_flops_per_s())
            .max(n * work.tensor_flops / d.tensor_flops_per_s())
            .max(n * work.dram_bytes() / d.mem_bandwidth_bytes_per_s());
        prop_assert!(
            s.time_s >= bound * 0.999,
            "time {} below roofline {}",
            s.time_s,
            bound
        );
    }

    /// Adding blocks never makes a kernel faster.
    #[test]
    fn time_monotone_in_count(work in work_strategy(), count in 1u64..2000, extra in 1u64..2000) {
        let mut gpu = Gpu::new(quiet_a100());
        let t1 = gpu.launch(&uniform_kernel(count, work, 256)).unwrap().time_s;
        let t2 = gpu.launch(&uniform_kernel(count + extra, work, 256)).unwrap().time_s;
        prop_assert!(t2 >= t1 * 0.999, "{t2} < {t1}");
    }

    /// Scaling all per-block work by a factor scales uniform-kernel time by
    /// at least that factor's sub-linear floor (never super-proportionally
    /// cheaper).
    #[test]
    fn time_monotone_in_work(work in work_strategy(), count in 1u64..2000) {
        let mut gpu = Gpu::new(quiet_a100());
        let t1 = gpu.launch(&uniform_kernel(count, work, 256)).unwrap().time_s;
        let double = TbWork {
            cuda_flops: work.cuda_flops * 2.0,
            tensor_flops: work.tensor_flops * 2.0,
            dram_read_bytes: work.dram_read_bytes * 2.0,
            dram_write_bytes: work.dram_write_bytes * 2.0,
            ..work
        };
        let t2 = gpu.launch(&uniform_kernel(count, double, 256)).unwrap().time_s;
        prop_assert!(t2 >= t1 * 1.999, "doubling work: {t1} -> {t2}");
    }

    /// Lower efficiency never speeds a kernel up.
    #[test]
    fn efficiency_monotone(work in work_strategy(), count in 1u64..2000) {
        let mut gpu = Gpu::new(quiet_a100());
        let t_full = gpu
            .launch(&uniform_kernel(count, TbWork { efficiency: 1.0, ..work }, 256))
            .unwrap()
            .time_s;
        let t_half = gpu
            .launch(&uniform_kernel(count, TbWork { efficiency: 0.5, ..work }, 256))
            .unwrap()
            .time_s;
        prop_assert!(t_half >= t_full * 0.999);
    }

    /// Grouped and expanded per-TB representations agree.
    #[test]
    fn grouped_equals_per_tb(
        works in proptest::collection::vec(work_strategy(), 1..6),
        reps in 1u64..40,
    ) {
        let mut expanded = Vec::new();
        let mut groups = Vec::new();
        for w in &works {
            groups.push(TbGroup::new(*w, reps));
            for _ in 0..reps {
                expanded.push(*w);
            }
        }
        let shape = TbShape::new(256, 4096, 32);
        let g = KernelDesc::builder("g", KernelCategory::Other)
            .shape(shape)
            .grouped(groups)
            .build();
        let p = KernelDesc::builder("p", KernelCategory::Other)
            .shape(shape)
            .per_tb(expanded)
            .build();
        let mut gpu = Gpu::new(quiet_a100());
        let tg = gpu.launch(&g).unwrap().time_s;
        let tp = gpu.launch(&p).unwrap().time_s;
        prop_assert!(
            (tg - tp).abs() <= tg.max(tp) * 1e-9 + 1e-15,
            "grouped {tg} vs per-tb {tp}"
        );
        // summation order differs (count×bytes vs repeated adds): allow ulps
        let (gb, pb) = (g.total_dram_bytes(), p.total_dram_bytes());
        prop_assert!((gb - pb).abs() <= gb.max(pb) * 1e-12);
    }

    /// Traffic accounting is exact for uniform kernels with no L2 reuse.
    #[test]
    fn traffic_conservation(work in work_strategy(), count in 1u64..3000) {
        let mut gpu = Gpu::new(quiet_a100());
        let s = gpu.launch(&uniform_kernel(count, work, 256)).unwrap();
        let expected = count as f64 * work.dram_bytes();
        prop_assert!((s.dram_bytes() - expected).abs() < expected * 1e-12 + 1e-9);
    }

    /// Occupancy is monotone: more shared memory per block never raises it.
    #[test]
    fn occupancy_monotone_in_shared(threads in 32u32..1024, s1 in 0u32..100_000, extra in 1u32..100_000) {
        let d = DeviceSpec::a100();
        let o1 = occupancy(&d, &TbShape::new(threads, s1, 32));
        let o2 = occupancy(&d, &TbShape::new(threads, s1 + extra, 32));
        match (o1, o2) {
            (Ok(a), Ok(b)) => prop_assert!(b.tbs_per_sm <= a.tbs_per_sm),
            (Err(_), Ok(_)) => prop_assert!(false, "bigger block fits when smaller failed"),
            _ => {}
        }
    }

    /// A faster device (uniformly scaled) is never slower.
    #[test]
    fn device_scaling_monotone(work in work_strategy(), count in 1u64..2000, scale in 1.1f64..4.0) {
        let slow = quiet_a100();
        let mut fast = slow.clone();
        fast.mem_bandwidth_gbps *= scale;
        fast.fp16_cuda_tflops *= scale;
        fast.fp16_tensor_tflops *= scale;
        let t_slow = Gpu::new(slow).launch(&uniform_kernel(count, work, 256)).unwrap().time_s;
        let t_fast = Gpu::new(fast).launch(&uniform_kernel(count, work, 256)).unwrap().time_s;
        prop_assert!(t_fast <= t_slow * 1.001, "fast {t_fast} > slow {t_slow}");
    }
}
