//! Bit-identity of memoized pricing: for arbitrary kernel streams, a `Gpu`
//! answering from the cross-run pricing cache (cold or warm) must produce
//! exactly the stats a cache-disabled `Gpu` computes fresh — including
//! streams with L2 reuse between kernels, where `read_scale` varies with
//! shared cache state and must be part of the fingerprint.

use resoftmax_gpusim::{
    DeviceSpec, Gpu, KernelCategory, KernelDesc, KernelStats, TbGroup, TbShape, TbWork,
};

/// Launches the stream on a fresh `Gpu` with the pricing cache on or off,
/// returning every per-kernel stat.
fn run(device: &DeviceSpec, kernels: &[KernelDesc], cache: bool) -> Vec<KernelStats> {
    let mut gpu = Gpu::new(device.clone());
    gpu.set_sim_cache(cache);
    kernels
        .iter()
        .map(|k| gpu.launch(k).expect("launch"))
        .collect()
}

/// Cache-off, cache-on-cold, and cache-on-warm runs must agree to the bit.
fn assert_cache_transparent(device: &DeviceSpec, kernels: &[KernelDesc]) {
    let fresh = run(device, kernels, false);
    let cold = run(device, kernels, true);
    let warm = run(device, kernels, true);
    assert_eq!(fresh, cold, "cold cached run diverges from fresh");
    assert_eq!(fresh, warm, "warm cached run diverges from fresh");
}

/// A deterministic stream covering all three grid forms and an L2
/// producer/consumer pair. Small enough to run under miri, where it is the
/// end-to-end exercise of the cache module's lookup/insert paths.
#[test]
fn deterministic_stream_is_cache_transparent() {
    let shape = TbShape::new(256, 0, 32);
    let uniform = KernelDesc::builder("u", KernelCategory::Softmax)
        .shape(shape)
        .uniform(500, TbWork::memory(32_768.0, 8_192.0))
        .build();
    let grouped = KernelDesc::builder("g", KernelCategory::MatMulPv)
        .shape(shape)
        .grouped(vec![
            TbGroup::new(TbWork::memory(50_000.0, 5_000.0), 250),
            TbGroup::new(
                TbWork {
                    cuda_flops: 1e6,
                    tensor_flops: 2e6,
                    efficiency: 0.9,
                    ..TbWork::default()
                },
                30,
            ),
            TbGroup::new(TbWork::default(), 10),
        ])
        .build();
    let per_tb = KernelDesc::builder("p", KernelCategory::Other)
        .shape(shape)
        .per_tb(
            (0..40)
                .map(|i| TbWork::memory(f64::from(i % 7 + 1) * 9_000.0, 1_000.0))
                .collect::<Vec<_>>(),
        )
        .build();
    let bytes = 4 * 1024 * 1024u64;
    let producer = KernelDesc::builder("prod", KernelCategory::InterReduction)
        .shape(shape)
        .uniform(1_000, TbWork::memory(0.0, bytes as f64 / 1_000.0))
        .writes("r'", bytes)
        .build();
    let consumer = KernelDesc::builder("cons", KernelCategory::GlobalScaling)
        .shape(shape)
        .uniform(1_000, TbWork::memory(bytes as f64 / 1_000.0, 0.0))
        .reads("r'", bytes)
        .build();
    for device in [DeviceSpec::a100(), DeviceSpec::t4()] {
        assert_cache_transparent(
            &device,
            &[
                uniform.clone(),
                grouped.clone(),
                per_tb.clone(),
                producer.clone(),
                consumer.clone(),
            ],
        );
    }
}

/// The same kernel launched with the fast path off must not answer from an
/// entry priced with it on (and vice versa): the fingerprint separates the
/// modes, so each stays self-consistent and equivalence tests really compare
/// two compute paths.
#[test]
fn cache_entries_do_not_cross_simulation_modes() {
    let k = KernelDesc::builder("modes", KernelCategory::Softmax)
        .shape(TbShape::new(256, 0, 32))
        .grouped(vec![TbGroup::new(TbWork::memory(40_000.0, 4_000.0), 5_000)])
        .build();
    let device = DeviceSpec::rtx3090();
    // Warm the fast-path entry, then price with the fast path off: both
    // configurations must still agree with their own fresh baselines.
    let mut fast = Gpu::new(device.clone());
    let fast_stats = fast.launch(&k).expect("launch");
    let mut slow = Gpu::new(device.clone());
    slow.set_wave_fast_path(false);
    let slow_stats = slow.launch(&k).expect("launch");
    let mut slow_fresh = Gpu::new(device);
    slow_fresh.set_wave_fast_path(false);
    slow_fresh.set_sim_cache(false);
    let slow_fresh_stats = slow_fresh.launch(&k).expect("launch");
    assert_eq!(slow_stats, slow_fresh_stats);
    assert_eq!(
        fast_stats, slow_stats,
        "paths agree (bit-identity invariant)"
    );
}

#[cfg(not(miri))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn work_strategy() -> impl Strategy<Value = TbWork> {
        (
            0.0f64..1e9,
            0.0f64..1e9,
            0.0f64..1e6,
            0.0f64..1e6,
            0.05f64..1.0,
            0.1f64..1.0,
        )
            .prop_map(|(cuda, tensor, rd, wr, frac, eff)| TbWork {
                cuda_flops: cuda,
                tensor_flops: tensor,
                dram_read_bytes: rd,
                dram_write_bytes: wr,
                mem_active_fraction: frac,
                efficiency: eff,
            })
    }

    /// `Some` with probability ~2/3 (the vendored proptest has no
    /// `option::of`).
    fn maybe_buffer() -> impl Strategy<Value = Option<(usize, u64)>> {
        prop_oneof![
            Just(None),
            (0usize..3, 1u64..(8 * 1024 * 1024)).prop_map(Some),
            (0usize..3, 1u64..(8 * 1024 * 1024)).prop_map(Some),
        ]
    }

    /// One kernel of any grid form, optionally touching shared buffers so
    /// consecutive kernels interact through L2 (varying `read_scale`).
    fn kernel_strategy() -> impl Strategy<Value = KernelDesc> {
        let grid = prop_oneof![
            (work_strategy(), 1u64..3_000).prop_map(|(w, count)| (vec![(w, count)], true)),
            proptest::collection::vec((work_strategy(), 1u64..400), 1..5)
                .prop_map(|groups| (groups, false)),
        ];
        (grid, 32u32..1024, maybe_buffer(), maybe_buffer()).prop_map(
            |((groups, uniform), threads, reads, writes)| {
                let names = ["qk", "p", "r'"];
                let mut b = KernelDesc::builder("k", KernelCategory::Other);
                b.shape(TbShape::new(threads, 2048, 32));
                if uniform {
                    let (w, count) = groups[0];
                    b.uniform(count, w);
                } else {
                    b.grouped(
                        groups
                            .into_iter()
                            .map(|(w, count)| TbGroup::new(w, count))
                            .collect::<Vec<_>>(),
                    );
                }
                if let Some((i, bytes)) = reads {
                    b.reads(names[i], bytes);
                }
                if let Some((i, bytes)) = writes {
                    b.writes(names[i], bytes);
                }
                b.build()
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Memoized pricing is bit-identical to fresh simulation on
        /// arbitrary kernel streams, cold and warm.
        #[test]
        fn memoized_pricing_is_bit_identical(
            kernels in proptest::collection::vec(kernel_strategy(), 1..6),
        ) {
            assert_cache_transparent(&DeviceSpec::a100(), &kernels);
        }

        /// Same property on the occupancy-poorest device (different slot
        /// counts exercise different wave splits).
        #[test]
        fn memoized_pricing_is_bit_identical_on_t4(
            kernels in proptest::collection::vec(kernel_strategy(), 1..4),
        ) {
            assert_cache_transparent(&DeviceSpec::t4(), &kernels);
        }
    }
}
