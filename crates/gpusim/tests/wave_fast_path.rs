//! Bit-identity tests for the execution shortcuts: `Gpu::launch` must
//! produce exactly the same `KernelStats` whether the wave-class fast path
//! is enabled (the default) or disabled, and whether the cross-run pricing
//! cache is enabled (the default) or disabled — for homogeneous grids,
//! heterogeneous tails, zero-work blocks, and mixed compute/memory work.

#![cfg(not(miri))] // event-driven sims are far too slow under miri

use resoftmax_gpusim::{DeviceSpec, Gpu, KernelCategory, KernelDesc, KernelStats, TbShape, TbWork};

/// Launches `kernels` in order on a fresh GPU with the given shortcut
/// toggles, returning per-kernel stats and the timeline total.
fn run(
    device: &DeviceSpec,
    kernels: &[KernelDesc],
    fast: bool,
    cache: bool,
) -> (Vec<KernelStats>, f64) {
    let mut gpu = Gpu::new(device.clone());
    gpu.set_wave_fast_path(fast);
    gpu.set_sim_cache(cache);
    let stats = kernels
        .iter()
        .map(|k| gpu.launch(k).expect("launch"))
        .collect();
    let total = gpu.timeline().total_time_s();
    (stats, total)
}

/// Runs `kernels` through the whole {fast path} × {pricing cache} matrix —
/// plus a warm repeat of the fully-enabled configuration, which answers from
/// the global cache populated by the earlier legs — and asserts every
/// per-kernel stat and timeline total is bit-identical to the reference
/// (both shortcuts off).
fn assert_paths_identical(device: &DeviceSpec, kernels: &[KernelDesc]) {
    let (ref_stats, ref_total) = run(device, kernels, false, false);
    for (fast, cache, leg) in [
        (true, false, "fast path"),
        (false, true, "cache"),
        (true, true, "fast path + cache"),
        (true, true, "fast path + warm cache"),
    ] {
        let (stats, total) = run(device, kernels, fast, cache);
        for (s, r) in stats.iter().zip(&ref_stats) {
            assert_eq!(s, r, "stats diverge on {leg} for kernel {:?}", r.name);
        }
        assert_eq!(
            total.to_bits(),
            ref_total.to_bits(),
            "timeline totals diverge on {leg}"
        );
    }
}

fn memory_kernel(name: &str, count: u64, bytes: f64) -> KernelDesc {
    KernelDesc::builder(name, KernelCategory::Softmax)
        .shape(TbShape::new(256, 0, 32))
        .uniform(count, TbWork::memory(bytes, bytes / 4.0))
        .build()
}

/// Homogeneous grid far larger than the machine: many full waves replayed.
#[test]
fn homogeneous_many_waves() {
    for count in [1, 7, 216, 217, 5000, 100_000] {
        assert_paths_identical(
            &DeviceSpec::a100(),
            &[memory_kernel("uniform", count, 64_000.0)],
        );
    }
}

/// Compute-bound and mixed compute/memory homogeneous grids.
#[test]
fn homogeneous_compute_and_mixed() {
    let mixed = TbWork {
        cuda_flops: 2e6,
        tensor_flops: 5e7,
        dram_read_bytes: 100_000.0,
        dram_write_bytes: 20_000.0,
        mem_active_fraction: 0.5,
        efficiency: 0.8,
    };
    let k = KernelDesc::builder("mixed", KernelCategory::FusedAttention)
        .shape(TbShape::new(512, 48 * 1024, 32))
        .uniform(10_000, mixed)
        .build();
    assert_paths_identical(&DeviceSpec::a100(), &[k]);
}

/// Heterogeneous per-TB grids never qualify for the fast path as a whole,
/// but runs of identical blocks inside them do once coalesced.
#[test]
fn heterogeneous_tail() {
    let mut tbs = vec![TbWork::memory(100_000.0, 10_000.0); 4000];
    for i in 0..300 {
        tbs.push(TbWork::memory((i % 9 + 1) as f64 * 37_000.0, 5_000.0));
    }
    let k = KernelDesc::builder("het", KernelCategory::MatMulPv)
        .shape(TbShape::new(1024, 0, 32))
        .per_tb(tbs)
        .build();
    assert_paths_identical(&DeviceSpec::a100(), &[k]);
}

/// Zero-work blocks interleaved with real work retire instantly on both paths.
#[test]
fn zero_work_groups() {
    let mut tbs = vec![TbWork::default(); 3000];
    tbs.extend(vec![TbWork::memory(50_000.0, 0.0); 3000]);
    tbs.extend(vec![TbWork::default(); 500]);
    let k = KernelDesc::builder("zeros", KernelCategory::Other)
        .shape(TbShape::new(128, 0, 16))
        .per_tb(tbs)
        .build();
    assert_paths_identical(&DeviceSpec::a100(), &[k]);

    let all_zero = KernelDesc::builder("all-zero", KernelCategory::Other)
        .shape(TbShape::new(128, 0, 16))
        .per_tb(vec![TbWork::default(); 5000])
        .build();
    assert_paths_identical(&DeviceSpec::a100(), &[all_zero]);
}

/// A sequence of kernels with L2 reuse between them: the shared cache state
/// must evolve identically on both paths.
#[test]
fn l2_interaction_sequence() {
    let small = 8 * 1024 * 1024u64;
    let producer = KernelDesc::builder("p", KernelCategory::InterReduction)
        .shape(TbShape::new(256, 0, 32))
        .uniform(20_000, TbWork::memory(0.0, small as f64 / 20_000.0))
        .writes("r'", small)
        .build();
    let consumer = KernelDesc::builder("c", KernelCategory::GlobalScaling)
        .shape(TbShape::new(256, 0, 32))
        .uniform(20_000, TbWork::memory(small as f64 / 20_000.0, 0.0))
        .reads("r'", small)
        .build();
    assert_paths_identical(&DeviceSpec::a100(), &[producer, consumer]);
}

/// The equivalence holds across device specs (different slot counts).
#[test]
fn across_devices() {
    for device in [DeviceSpec::a100(), DeviceSpec::t4(), DeviceSpec::rtx3090()] {
        assert_paths_identical(&device, &[memory_kernel("dev", 12_345, 80_000.0)]);
    }
}
