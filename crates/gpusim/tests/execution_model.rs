//! Integration tests validating the execution model against analytical
//! expectations: roofline identities, wave quantization, bandwidth sharing,
//! load imbalance, and L2 forwarding effects on kernel time.

#![cfg(not(miri))] // event-driven sims are far too slow under miri

use resoftmax_gpusim::{DeviceSpec, Gpu, KernelCategory, KernelDesc, TbShape, TbWork};

fn a100() -> DeviceSpec {
    let mut d = DeviceSpec::a100();
    d.kernel_launch_overhead_us = 0.0; // isolate the model under test
    d
}

/// Memory-bound uniform kernel: time == bytes / effective bandwidth.
#[test]
fn bandwidth_bound_kernel_time() {
    let dev = a100();
    let mut gpu = Gpu::new(dev.clone());
    // 1 GB of streaming with plenty of TBs and threads: utilization ~ max.
    let tb_bytes = 1_000_000.0;
    let count = 1000u64;
    let kernel = KernelDesc::builder("stream", KernelCategory::Other)
        .shape(TbShape::new(1024, 0, 32))
        .uniform(count, TbWork::memory(tb_bytes / 2.0, tb_bytes / 2.0))
        .build();
    let stats = gpu.launch(&kernel).unwrap();
    let total_bytes = tb_bytes * count as f64;
    let ideal = total_bytes / dev.mem_bandwidth_bytes_per_s();
    // With full occupancy, all waves saturate: expect within ~15% of roofline.
    assert!(
        stats.time_s >= ideal,
        "cannot beat peak bandwidth: {} < {}",
        stats.time_s,
        ideal
    );
    assert!(
        stats.time_s < ideal * 1.15,
        "should be near roofline: {} vs {}",
        stats.time_s,
        ideal
    );
    assert!(stats.achieved_bw_fraction > 0.85);
}

/// Compute-bound uniform kernel: time == flops / peak.
#[test]
fn compute_bound_kernel_time() {
    let dev = a100();
    let mut gpu = Gpu::new(dev.clone());
    let tb_flops = 1e9;
    let count = 1080u64; // 10 full waves at 1 TB/SM... depends on occupancy
    let kernel = KernelDesc::builder("mma", KernelCategory::MatMulQk)
        .shape(TbShape::new(1024, 0, 32)) // 2 TBs/SM (thread-limited)
        .uniform(
            count,
            TbWork {
                tensor_flops: tb_flops,
                ..Default::default()
            },
        )
        .build();
    let stats = gpu.launch(&kernel).unwrap();
    let ideal = tb_flops * count as f64 / dev.tensor_flops_per_s();
    assert!(stats.time_s >= ideal * 0.999);
    // 1080 TBs on 216 slots = exactly 5 full waves: no tail waste.
    assert!(
        stats.time_s < ideal * 1.001,
        "{} vs {}",
        stats.time_s,
        ideal
    );
}

/// Wave quantization: N+1 blocks where N fills the machine costs ~2 waves.
#[test]
fn wave_quantization() {
    let dev = a100();
    let mut gpu = Gpu::new(dev.clone());
    let slots = 108 * 2; // 1024-thread blocks -> 2 per SM
    let work = TbWork {
        tensor_flops: 1e9,
        ..Default::default()
    };
    let full = KernelDesc::builder("full", KernelCategory::Other)
        .shape(TbShape::new(1024, 0, 32))
        .uniform(slots, work)
        .build();
    let spill = KernelDesc::builder("spill", KernelCategory::Other)
        .shape(TbShape::new(1024, 0, 32))
        .uniform(slots + 1, work)
        .build();
    let t_full = gpu.launch(&full).unwrap().time_s;
    let t_spill = gpu.launch(&spill).unwrap().time_s;
    // The straggler runs alone on one SM: full-wave time ≈ t_full halves? No:
    // alone on its SM it gets the whole SM, so it takes half the shared-wave
    // time. Expect t_spill ≈ t_full * 1.5.
    assert!(
        t_spill > t_full * 1.3,
        "tail wave visible: {t_spill} vs {t_full}"
    );
    assert!(t_spill < t_full * 1.7);
}

/// The utilization model: identical traffic with fewer memory-active threads
/// takes longer (the sparse-baseline-softmax effect in §5.1).
#[test]
fn low_mem_active_fraction_hurts() {
    let dev = a100();
    let mk = |frac: f64| {
        KernelDesc::builder("softmax", KernelCategory::Softmax)
            .shape(TbShape::new(256, 32 * 1024, 32))
            .uniform(
                512,
                TbWork {
                    dram_read_bytes: 500_000.0,
                    dram_write_bytes: 0.0,
                    mem_active_fraction: frac,
                    ..Default::default()
                },
            )
            .build()
    };
    let mut gpu = Gpu::new(dev);
    let dense = gpu.launch(&mk(1.0)).unwrap().time_s;
    let sparse = gpu.launch(&mk(0.1)).unwrap().time_s;
    assert!(
        sparse > dense * 1.5,
        "10% active threads should be much slower: {sparse} vs {dense}"
    );
}

/// Heterogeneous grids expose load imbalance; equalizing work fixes it.
#[test]
fn load_imbalance_in_per_tb_grids() {
    let dev = a100();
    let mut gpu = Gpu::new(dev);
    // 216 blocks, one of which has 20x the work (a heavy block-sparse row).
    let mut tbs = vec![TbWork::memory(100_000.0, 0.0); 215];
    tbs.push(TbWork::memory(2_000_000.0, 0.0));
    let total: f64 = tbs.iter().map(|t| t.dram_read_bytes).sum();
    let imbalanced = KernelDesc::builder("imbalanced", KernelCategory::MatMulPv)
        .shape(TbShape::new(1024, 0, 32))
        .per_tb(tbs)
        .build();
    // Same total traffic, spread evenly.
    let balanced = KernelDesc::builder("balanced", KernelCategory::MatMulPv)
        .shape(TbShape::new(1024, 0, 32))
        .per_tb(vec![TbWork::memory(total / 216.0, 0.0); 216])
        .build();
    let t_imb = gpu.launch(&imbalanced).unwrap().time_s;
    let t_bal = gpu.launch(&balanced).unwrap().time_s;
    assert!(
        t_imb > t_bal * 1.5,
        "straggler must dominate: {t_imb} vs {t_bal}"
    );
}

/// More blocks (larger batch) amortize the straggler — §5.2's batch effect.
#[test]
fn batching_alleviates_imbalance() {
    let dev = a100();
    let mut gpu = Gpu::new(dev);
    let heavy = 1_000_000.0;
    let light = 50_000.0;
    let mk = |copies: usize| {
        let mut tbs = Vec::new();
        for _ in 0..copies {
            tbs.extend(vec![TbWork::memory(light, 0.0); 107]);
            tbs.push(TbWork::memory(heavy, 0.0));
        }
        KernelDesc::builder("bsp", KernelCategory::MatMulPv)
            .shape(TbShape::new(1024, 0, 32))
            .per_tb(tbs)
            .build()
    };
    let t1 = gpu.launch(&mk(1)).unwrap().time_s;
    let t8 = gpu.launch(&mk(8)).unwrap().time_s;
    // Perfect scaling would be t8 == 8*t1; with imbalance amortized it should
    // be measurably better than the single-batch slope.
    assert!(
        t8 < 8.0 * t1 * 0.95,
        "batching should recover straggler waste: t8={t8}, 8*t1={}",
        8.0 * t1
    );
}

/// L2 forwarding between a producer and consumer kernel removes read traffic
/// and time.
#[test]
fn l2_forwarding_speeds_up_consumer() {
    let dev = a100();
    let small = 8 * 1024 * 1024u64; // 8 MB intermediate, fits in 40 MB L2

    // Scenario A: consumer right after producer (resident).
    let mut gpu_a = Gpu::new(dev.clone());
    let producer = KernelDesc::builder("p", KernelCategory::InterReduction)
        .shape(TbShape::new(256, 0, 32))
        .uniform(1000, TbWork::memory(0.0, small as f64 / 1000.0))
        .writes("r'", small)
        .build();
    let consumer = |name: &str| {
        KernelDesc::builder(name, KernelCategory::GlobalScaling)
            .shape(TbShape::new(256, 0, 32))
            .uniform(1000, TbWork::memory(small as f64 / 1000.0, 0.0))
            .reads("r'", small)
            .build()
    };
    gpu_a.launch(&producer).unwrap();
    let hit = gpu_a.launch(&consumer("hit")).unwrap();

    // Scenario B: a 512 MB stream thrashes L2 in between.
    let mut gpu_b = Gpu::new(dev);
    gpu_b.launch(&producer).unwrap();
    let big = 512 * 1024 * 1024u64;
    let stream = KernelDesc::builder("x'", KernelCategory::LocalSoftmax)
        .shape(TbShape::new(256, 0, 32))
        .uniform(10_000, TbWork::memory(big as f64 / 10_000.0, 0.0))
        .reads("x'", big)
        .build();
    gpu_b.launch(&stream).unwrap();
    let miss = gpu_b.launch(&consumer("miss")).unwrap();

    assert_eq!(hit.dram_read_bytes, 0.0, "resident read is free");
    assert_eq!(
        miss.dram_read_bytes, small as f64,
        "thrashed read pays DRAM"
    );
    assert!(hit.time_s < miss.time_s);
}

/// Traffic conservation: kernel-level DRAM stats equal declared minus hits.
#[test]
fn traffic_conservation() {
    let mut gpu = Gpu::new(a100());
    let k = KernelDesc::builder("k", KernelCategory::Scale)
        .shape(TbShape::new(256, 0, 32))
        .uniform(100, TbWork::memory(1000.0, 500.0))
        .build();
    let s = gpu.launch(&k).unwrap();
    assert_eq!(s.dram_read_bytes, 100_000.0);
    assert_eq!(s.dram_write_bytes, 50_000.0);
    assert_eq!(s.dram_bytes(), 150_000.0);
    assert_eq!(gpu.timeline().total_dram_bytes(), 150_000.0);
}

/// Launch overhead accrues per kernel — one fused kernel beats N tiny ones.
#[test]
fn launch_overhead_favors_fusion() {
    let mut dev = DeviceSpec::a100();
    dev.kernel_launch_overhead_us = 5.0;
    let mut gpu = Gpu::new(dev);
    let tiny = KernelDesc::builder("tiny", KernelCategory::Other)
        .shape(TbShape::new(256, 0, 32))
        .uniform(1, TbWork::memory(1024.0, 1024.0))
        .build();
    for _ in 0..10 {
        gpu.launch(&tiny).unwrap();
    }
    let ten_kernels = gpu.timeline().total_time_s();
    gpu.reset();
    let fused = KernelDesc::builder("fused", KernelCategory::Other)
        .shape(TbShape::new(256, 0, 32))
        .uniform(10, TbWork::memory(1024.0, 1024.0))
        .build();
    gpu.launch(&fused).unwrap();
    let one_kernel = gpu.timeline().total_time_s();
    assert!(ten_kernels > one_kernel + 9.0 * 5e-6 * 0.99);
}

/// Energy accounting scales with traffic and the device's pJ/byte.
#[test]
fn energy_model() {
    let dev = a100();
    let mut gpu = Gpu::new(dev.clone());
    let k = KernelDesc::builder("k", KernelCategory::Other)
        .shape(TbShape::new(256, 0, 32))
        .uniform(1000, TbWork::memory(1e6, 0.0))
        .build();
    let s = gpu.launch(&k).unwrap();
    let expected = 1e9 * dev.dram_pj_per_byte * 1e-12;
    assert!((s.energy_j - expected).abs() / expected < 1e-9);
}

/// The same kernel on a T4 takes ~BW-ratio longer than on an A100.
#[test]
fn cross_device_scaling() {
    let mk = || {
        KernelDesc::builder("stream", KernelCategory::Other)
            .shape(TbShape::new(1024, 0, 32))
            .uniform(2000, TbWork::memory(500_000.0, 0.0))
            .build()
    };
    let mut a = Gpu::new(a100());
    let mut t = Gpu::new({
        let mut d = DeviceSpec::t4();
        d.kernel_launch_overhead_us = 0.0;
        d
    });
    let ta = a.launch(&mk()).unwrap().time_s;
    let tt = t.launch(&mk()).unwrap().time_s;
    let bw_ratio = 1555.0 / 320.0;
    assert!(tt / ta > bw_ratio * 0.8, "T4 {tt} vs A100 {ta}");
    assert!(tt / ta < bw_ratio * 1.6);
}

/// Zero-work and empty kernels do not hang or divide by zero.
#[test]
fn degenerate_kernels() {
    let mut gpu = Gpu::new(a100());
    let empty = KernelDesc::builder("empty", KernelCategory::Other)
        .shape(TbShape::new(32, 0, 16))
        .uniform(0, TbWork::default())
        .build();
    let s = gpu.launch(&empty).unwrap();
    assert!(s.time_s >= 0.0);

    let zero_work = KernelDesc::builder("zero", KernelCategory::Other)
        .shape(TbShape::new(32, 0, 16))
        .per_tb(vec![TbWork::default(); 5000])
        .build();
    let s = gpu.launch(&zero_work).unwrap();
    assert!(s.time_s.is_finite());
}

/// Oversized blocks are rejected, not silently mis-simulated.
#[test]
fn oversized_block_launch_error() {
    let mut gpu = Gpu::new(a100());
    let bad = KernelDesc::builder("bad", KernelCategory::Other)
        .shape(TbShape::new(4096, 0, 32))
        .uniform(1, TbWork::default())
        .build();
    assert!(gpu.launch(&bad).is_err());
}

/// Fluid sim conserves work: heterogeneous total time >= roofline bound.
#[test]
fn fluid_sim_respects_roofline() {
    let dev = a100();
    let mut gpu = Gpu::new(dev.clone());
    let tbs: Vec<TbWork> = (0..500)
        .map(|i| TbWork::memory(((i % 7) + 1) as f64 * 100_000.0, 50_000.0))
        .collect();
    let total_bytes: f64 = tbs.iter().map(TbWork::dram_bytes).sum();
    let k = KernelDesc::builder("het", KernelCategory::MatMulPv)
        .shape(TbShape::new(512, 0, 32))
        .per_tb(tbs)
        .build();
    let s = gpu.launch(&k).unwrap();
    let bound = total_bytes / dev.mem_bandwidth_bytes_per_s();
    assert!(s.time_s >= bound, "{} >= {}", s.time_s, bound);
    assert!(s.time_s < bound * 3.0, "not wildly pessimistic");
}
