//! Property-based tests of the recomposition mathematics: for random inputs,
//! random sub-vector lengths, and all precisions, the paper's equalities hold.

use proptest::prelude::*;
use resoftmax_fp16::F16;
use resoftmax_kernels::{
    apply_mask, decomposed_softmax, inter_reduce, local_softmax, online_attention,
    recomposed_attention, reference_attention, softmax_backward, softmax_rows, softmax_rows_f64,
};
use resoftmax_tensor::{max_abs_diff, randn_matrix, Matrix};

/// Dimensions where T divides L.
fn dims_strategy() -> impl Strategy<Value = (usize, usize)> {
    (1usize..6, 1usize..5).prop_map(|(nsv, tpow)| {
        let t = 1 << tpow; // 2..16
        (nsv * t, t)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. 2 == Eq. 1 in f64, for any (L, T) with T | L.
    #[test]
    fn decomposition_equivalence((l, t) in dims_strategy(), rows in 1usize..6, seed in 0u64..10_000) {
        let x = randn_matrix::<f64>(rows, l, 3.0, seed);
        let mono = softmax_rows_f64(&x);
        let dec = decomposed_softmax(&x, t).unwrap();
        prop_assert!(max_abs_diff(&mono, &dec) < 1e-13);
    }

    /// Decomposition equivalence survives arbitrary masking.
    #[test]
    fn decomposition_with_masks(
        (l, t) in dims_strategy(),
        seed in 0u64..10_000,
        mask_bits in proptest::collection::vec(any::<bool>(), 1..128),
    ) {
        let x = randn_matrix::<f64>(2, l, 2.0, seed);
        let mask: Vec<bool> = (0..2 * l).map(|i| mask_bits[i % mask_bits.len()]).collect();
        let masked = apply_mask(&x, &mask);
        let mono = softmax_rows_f64(&masked);
        let dec = decomposed_softmax(&masked, t).unwrap();
        prop_assert!(max_abs_diff(&mono, &dec) < 1e-13);
    }

    /// Decomposed softmax rows sum to 1 (or 0 if fully masked) at any T.
    #[test]
    fn decomposed_rows_normalized((l, t) in dims_strategy(), seed in 0u64..10_000) {
        let x = randn_matrix::<f64>(3, l, 5.0, seed);
        let dec = decomposed_softmax(&x, t).unwrap();
        for r in 0..3 {
            let s: f64 = dec.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-12, "row {r}: {s}");
        }
    }

    /// r' is a probability distribution over sub-vectors.
    #[test]
    fn reconstruction_factors_form_distribution((l, t) in dims_strategy(), seed in 0u64..10_000) {
        let x = randn_matrix::<f64>(3, l, 2.0, seed);
        let ls = local_softmax(&x, t).unwrap();
        let ir = inter_reduce(&ls.m_prime, &ls.d_prime);
        for r in 0..3 {
            let mut s = 0.0;
            for k in 0..l / t {
                let v = ir.r_prime.get(r, k);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
                s += v;
            }
            prop_assert!((s - 1.0).abs() < 1e-12);
        }
    }

    /// The three attention pipelines (unfused, SDF-fused, online) agree.
    #[test]
    fn all_three_pipelines_agree(
        t_pow in 2usize..5,
        nsv in 1usize..4,
        d_pow in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let t = 1 << t_pow;
        let l = nsv * t;
        let d = 1 << d_pow;
        let scale = 1.0 / (d as f64).sqrt();
        let q = randn_matrix::<f64>(l, d, 1.0, seed);
        let k = randn_matrix::<f64>(l, d, 1.0, seed + 1);
        let v = randn_matrix::<f64>(l, d, 1.0, seed + 2);
        let reference = reference_attention(&q, &k, &v, scale, None).unwrap();
        let (sdf, _) = recomposed_attention(&q, &k, &v, t, scale, None).unwrap();
        let online = online_attention(&q, &k, &v, t, scale, None).unwrap();
        prop_assert!(max_abs_diff(&reference, &sdf) < 1e-4);
        prop_assert!(max_abs_diff(&reference, &online) < 1e-4);
    }

    /// Softmax backward: gradient rows sum to zero (Σ dx = 0) and
    /// dx = 0 wherever y = 0.
    #[test]
    fn backward_invariants(l in 2usize..64, seed in 0u64..10_000) {
        let x = randn_matrix::<f64>(2, l, 2.0, seed);
        let y = softmax_rows_f64(&x);
        let dy = randn_matrix::<f64>(2, l, 1.0, seed + 1);
        let dx = softmax_backward(&y, &dy);
        for r in 0..2 {
            let s: f64 = dx.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-10, "row {r}: {s}");
        }
    }

    /// binary16 decomposition stays within a small multiple of the fp16
    /// quantum from the exact result, for any T.
    #[test]
    fn fp16_error_bounded((l, t) in dims_strategy(), seed in 0u64..10_000) {
        let x = randn_matrix::<F16>(2, l, 2.0, seed);
        let dec = decomposed_softmax(&x, t).unwrap();
        let oracle = softmax_rows_f64(&x);
        prop_assert!(!dec.has_nan());
        // outputs are ≤ 1; allow ~4 ulps at 1.0 = 4×2^-10 ≈ 4e-3
        prop_assert!(max_abs_diff(&oracle, &dec) < 4e-3);
    }

    /// Shift invariance holds through the decomposed path (safe softmax).
    #[test]
    fn decomposed_shift_invariance((l, t) in dims_strategy(), shift in -50.0f64..50.0, seed in 0u64..10_000) {
        let x = randn_matrix::<f64>(2, l, 1.0, seed);
        let shifted = x.map(|v| v + shift);
        let a = decomposed_softmax(&x, t).unwrap();
        let b = decomposed_softmax(&shifted, t).unwrap();
        prop_assert!(max_abs_diff(&a, &b) < 1e-12);
    }

    /// softmax of a one-hot-ish row concentrates on the max regardless of T.
    #[test]
    fn peak_concentration((l, t) in dims_strategy(), peak in 0usize..64, seed in 0u64..10_000) {
        let peak = peak % l;
        let mut x = randn_matrix::<f64>(1, l, 0.1, seed);
        x.set(0, peak, 40.0);
        let dec = decomposed_softmax(&x, t).unwrap();
        prop_assert!(dec.get(0, peak) > 0.999);
    }

    /// Monolithic softmax at working precision is itself close to the
    /// oracle (the decomposed path can't be blamed for baseline error).
    #[test]
    fn monolithic_matches_oracle(l in 1usize..128, seed in 0u64..10_000) {
        let x = randn_matrix::<f64>(2, l, 3.0, seed);
        let mono = softmax_rows(&x);
        let oracle = softmax_rows_f64(&x);
        prop_assert!(max_abs_diff(&mono, &oracle) < 1e-12);
    }

    /// Fully masked matrices yield all-zero outputs through every path.
    #[test]
    fn fully_masked_is_zero((l, t) in dims_strategy()) {
        let x = Matrix::<f64>::filled(2, l, f64::NEG_INFINITY);
        let dec = decomposed_softmax(&x, t).unwrap();
        prop_assert!(dec.as_slice().iter().all(|&v| v == 0.0));
        let mono = softmax_rows(&x);
        prop_assert!(mono.as_slice().iter().all(|&v| v == 0.0));
    }
}
