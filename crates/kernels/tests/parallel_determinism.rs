//! Thread-count invariance: every kernel that runs on the work-stealing pool
//! must produce **bit-identical** FP16 output at 1, 2, 4, and 8 workers.
//!
//! The pool only ever splits work across disjoint output rows, tiles, or
//! blocks — never across a reduction axis — so each output element is
//! computed by exactly one worker in exactly the order the serial code would
//! use. These tests pin that contract: results are compared as raw `u16`
//! bit patterns, so even a `-0.0` vs `+0.0` or NaN-payload difference fails.
//!
//! The thread override is process-global, so all tests funnel through one
//! lock ([`bitwise_invariant`]) rather than racing each other's settings.

use std::sync::Mutex;

use resoftmax_fp16::F16;
use resoftmax_kernels::{
    bs_online_attention, bs_recomposed_attention, fused_gs_pv, fused_qk_ls, online_attention,
    recomposed_attention, reference_attention,
};
use resoftmax_parallel::set_thread_override;
use resoftmax_sparse::{block_sparse_softmax, pattern, sddmm, spmm, BlockSparseMatrix};
use resoftmax_tensor::{matmul, matmul_tiled, matmul_transpose_b, randn_matrix, Matrix, TileDims};

/// Runs `f` at 1 worker, then re-runs at 2, 4, and 8 workers, requiring the
/// returned bit patterns to match the serial run exactly.
fn bitwise_invariant(label: &str, f: impl Fn() -> Vec<u16>) {
    static GUARD: Mutex<()> = Mutex::new(());
    let _g = GUARD.lock().unwrap();
    set_thread_override(Some(1));
    let serial = f();
    for n in [2usize, 4, 8] {
        set_thread_override(Some(n));
        let parallel = f();
        assert_eq!(
            serial, parallel,
            "{label}: output bits differ between 1 and {n} threads"
        );
    }
    set_thread_override(None);
}

fn bits(m: &Matrix<F16>) -> Vec<u16> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn bits_vec(v: &[F16]) -> Vec<u16> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn bits_bs(m: &BlockSparseMatrix<F16>) -> Vec<u16> {
    m.blocks().iter().flat_map(bits).collect()
}

/// Shapes chosen to exercise uneven chunking: sizes that are not multiples
/// of the worker counts, a single-row case, and one larger-than-chunk case.
const MATMUL_SHAPES: [(usize, usize, usize); 4] =
    [(1, 7, 5), (13, 13, 13), (33, 17, 29), (64, 48, 96)];

#[test]
fn matmul_is_thread_invariant() {
    for (seed, &(m, k, n)) in MATMUL_SHAPES.iter().enumerate() {
        let a = randn_matrix::<F16>(m, k, 1.0, seed as u64);
        let b = randn_matrix::<F16>(k, n, 1.0, seed as u64 + 100);
        bitwise_invariant(&format!("matmul {m}x{k}x{n}"), || {
            bits(&matmul(&a, &b).unwrap())
        });
    }
}

#[test]
fn matmul_transpose_b_is_thread_invariant() {
    for (seed, &(m, k, n)) in MATMUL_SHAPES.iter().enumerate() {
        let a = randn_matrix::<F16>(m, k, 1.0, seed as u64 + 7);
        let b = randn_matrix::<F16>(n, k, 1.0, seed as u64 + 107);
        bitwise_invariant(&format!("matmul_transpose_b {m}x{k}x{n}"), || {
            bits(&matmul_transpose_b(&a, &b).unwrap())
        });
    }
}

#[test]
fn matmul_tiled_is_thread_invariant() {
    for &t in &[4usize, 8, 16] {
        let a = randn_matrix::<F16>(24, 32, 1.0, 41);
        let b = randn_matrix::<F16>(32, 48, 1.0, 42);
        bitwise_invariant(&format!("matmul_tiled t={t}"), || {
            bits(&matmul_tiled(&a, &b, TileDims::new(t, t)).unwrap())
        });
    }
}

#[test]
fn fused_qk_ls_is_thread_invariant() {
    for &(l, d, t) in &[(16usize, 8usize, 4usize), (24, 16, 8), (40, 8, 8)] {
        let q = randn_matrix::<F16>(l, d, 0.5, 1);
        let k = randn_matrix::<F16>(l, d, 0.5, 2);
        let scale = 1.0 / (d as f64).sqrt();
        bitwise_invariant(&format!("fused_qk_ls L={l} T={t}"), || {
            let out = fused_qk_ls(&q, &k, t, scale, None).unwrap();
            let mut all = bits(&out.x_prime);
            all.extend(bits(&out.m_prime));
            all.extend(bits(&out.d_prime));
            all
        });
    }
}

#[test]
fn fused_gs_pv_is_thread_invariant() {
    let (l, d, t) = (32usize, 16usize, 8usize);
    let q = randn_matrix::<F16>(l, d, 0.5, 3);
    let k = randn_matrix::<F16>(l, d, 0.5, 4);
    let v = randn_matrix::<F16>(l, d, 0.5, 5);
    let scale = 1.0 / (d as f64).sqrt();
    bitwise_invariant("fused_gs_pv", || {
        let ls = fused_qk_ls(&q, &k, t, scale, None).unwrap();
        let ir = resoftmax_kernels::inter_reduce(&ls.m_prime, &ls.d_prime);
        bits(&fused_gs_pv(&ls.x_prime, &ir.r_prime, &v, t).unwrap())
    });
}

#[test]
fn attention_pipelines_are_thread_invariant() {
    let (l, d, t) = (48usize, 16usize, 8usize);
    let q = randn_matrix::<F16>(l, d, 0.5, 11);
    let k = randn_matrix::<F16>(l, d, 0.5, 12);
    let v = randn_matrix::<F16>(l, d, 0.5, 13);
    let scale = 1.0 / (d as f64).sqrt();
    bitwise_invariant("recomposed_attention", || {
        let (out, ir) = recomposed_attention(&q, &k, &v, t, scale, None).unwrap();
        let mut all = bits(&out);
        all.extend(bits_vec(&ir.m));
        all.extend(bits_vec(&ir.d));
        all.extend(bits(&ir.r_prime));
        all
    });
    bitwise_invariant("reference_attention", || {
        bits(&reference_attention(&q, &k, &v, scale, None).unwrap())
    });
    bitwise_invariant("online_attention", || {
        bits(&online_attention(&q, &k, &v, t, scale, None).unwrap())
    });
}

#[test]
fn sparse_ops_are_thread_invariant() {
    let (l, block) = (64usize, 8usize);
    let d = 16usize;
    let layout = pattern::sliding_window(l, block, 2);
    let q = randn_matrix::<F16>(l, d, 0.5, 21);
    let k = randn_matrix::<F16>(l, d, 0.5, 22);
    let v = randn_matrix::<F16>(l, d, 0.5, 23);
    bitwise_invariant("sddmm", || bits_bs(&sddmm(&q, &k, &layout).unwrap()));
    bitwise_invariant("block_sparse_softmax", || {
        let scores = sddmm(&q, &k, &layout).unwrap();
        bits_bs(&block_sparse_softmax(&scores))
    });
    bitwise_invariant("spmm", || {
        let scores = sddmm(&q, &k, &layout).unwrap();
        let probs = block_sparse_softmax(&scores);
        bits(&spmm(&probs, &v).unwrap())
    });
}

#[test]
fn sparse_attention_pipelines_are_thread_invariant() {
    let (l, block, d) = (64usize, 8usize, 16usize);
    let layout = pattern::sliding_window(l, block, 2);
    let q = randn_matrix::<F16>(l, d, 0.5, 31);
    let k = randn_matrix::<F16>(l, d, 0.5, 32);
    let v = randn_matrix::<F16>(l, d, 0.5, 33);
    let scale = 1.0 / (d as f64).sqrt();
    bitwise_invariant("bs_recomposed_attention", || {
        bits(&bs_recomposed_attention(&q, &k, &v, &layout, scale).unwrap())
    });
    bitwise_invariant("bs_online_attention", || {
        bits(&bs_online_attention(&q, &k, &v, &layout, scale).unwrap())
    });
}
