//! The paper's softmax decomposition (§3.2, Eq. 2): Local Softmax (LS),
//! Inter-sub-vector Reduction (IR), Global Scaling (GS).
//!
//! Each row vector `X` of the attention matrix is split into `N_sv = L / T`
//! sub-vectors of length `T`. The three sub-layers compute:
//!
//! * **LS** — per sub-vector `k`: local max `m'_k`, local normalizer
//!   `d'_k = Σ_j e^{x_{k,j} − m'_k}`, and the locally-normalized values
//!   `x'_{k,j} = e^{x_{k,j} − m'_k} / d'_k`.
//! * **IR** — across the sub-vectors of one row: global max `m = max_k m'_k`,
//!   global normalizer `d = Σ_k e^{m'_k − m} · d'_k`, and the per-sub-vector
//!   *reconstruction factor* `r'_k = e^{m'_k − m} · d'_k / d`.
//! * **GS** — elementwise `y_{k,j} = x'_{k,j} · r'_k`.
//!
//! Substituting: `y = (e^{x−m'}/d') · (e^{m'−m} d'/d) = e^{x−m}/d` — exactly
//! Eq. 1. The decomposition exists because LS's tile-shaped access pattern
//! matches a MatMul output tile, enabling the fusion in `crate::fused`.

use resoftmax_tensor::{Matrix, Scalar, ShapeError};

/// Output of the LS sub-layer over a whole matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSoftmaxOutput<T: Scalar> {
    /// Locally-normalized values `X'`, same shape as the input.
    pub x_prime: Matrix<T>,
    /// Per-(row, sub-vector) local maxima `m'`, shape `rows × N_sv`.
    pub m_prime: Matrix<T>,
    /// Per-(row, sub-vector) local normalizers `d'`, shape `rows × N_sv`.
    pub d_prime: Matrix<T>,
}

/// Output of the IR sub-layer.
#[derive(Debug, Clone, PartialEq)]
pub struct InterReductionOutput<T: Scalar> {
    /// Per-row global max `m` (rows × 1).
    pub m: Vec<T>,
    /// Per-row global normalizer `d` (rows × 1).
    pub d: Vec<T>,
    /// Reconstruction factors `r'`, shape `rows × N_sv`.
    pub r_prime: Matrix<T>,
}

/// Validates that `cols` divides into sub-vectors of length `t`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `t == 0` or `cols % t != 0`.
pub fn check_subvector(cols: usize, t: usize) -> Result<usize, ShapeError> {
    if t == 0 {
        return Err(ShapeError::new("sub-vector length T must be nonzero"));
    }
    if !cols.is_multiple_of(t) {
        return Err(ShapeError::new(format!(
            "row length {cols} not divisible by sub-vector length {t}"
        )));
    }
    Ok(cols / t)
}

/// LS: local softmax over each length-`t` sub-vector of each row.
///
/// Exponentials round once at `T`; `d'` accumulates in `f32`
/// (register-resident partial sums).
///
/// # Errors
///
/// Returns [`ShapeError`] if `t` does not divide the row length.
pub fn local_softmax<T: Scalar>(
    x: &Matrix<T>,
    t: usize,
) -> Result<LocalSoftmaxOutput<T>, ShapeError> {
    let n_sv = check_subvector(x.cols(), t)?;
    let mut x_prime = Matrix::zeros(x.rows(), x.cols());
    let mut m_prime = Matrix::zeros(x.rows(), n_sv);
    let mut d_prime = Matrix::zeros(x.rows(), n_sv);
    for r in 0..x.rows() {
        for k in 0..n_sv {
            let base = k * t;
            let mut m = f64::NEG_INFINITY;
            for j in 0..t {
                m = m.max(x.get(r, base + j).to_f64());
            }
            if m == f64::NEG_INFINITY {
                // Fully masked sub-vector: d' = 0, values 0; IR treats it as
                // contributing nothing.
                m_prime.set(r, k, T::neg_infinity());
                continue;
            }
            let mut d = 0.0f64;
            for j in 0..t {
                let e = T::from_f64((x.get(r, base + j).to_f64() - m).exp());
                d += e.to_f64();
            }
            for j in 0..t {
                let e = T::from_f64((x.get(r, base + j).to_f64() - m).exp());
                x_prime.set(r, base + j, T::from_f64(e.to_f64() / d));
            }
            m_prime.set(r, k, T::from_f64(m));
            d_prime.set(r, k, T::from_f64(d));
        }
    }
    Ok(LocalSoftmaxOutput {
        x_prime,
        m_prime,
        d_prime,
    })
}

/// LS with the normalizer accumulated at *working* precision: the partial
/// sum `d'` rounds to `T` after every add, modelling a kernel that keeps its
/// accumulator in the data's own format rather than widening — the `SDF16`
/// strategy's fp16 LS epilogue. This is the empirical counterpart of the
/// analyzer's `AccumFormat::Fp16` LS term: the static certificate charges
/// one unit roundoff at `T`'s precision per accumulation step, and this
/// function realizes exactly that rounding pattern so the bound can be
/// cross-validated against measured error. For `T = f64` it coincides with
/// [`local_softmax`] (the wide accumulator *is* the working format there).
///
/// # Errors
///
/// Returns [`ShapeError`] if `t` does not divide the row length.
pub fn local_softmax_narrow_accum<T: Scalar>(
    x: &Matrix<T>,
    t: usize,
) -> Result<LocalSoftmaxOutput<T>, ShapeError> {
    let n_sv = check_subvector(x.cols(), t)?;
    let mut x_prime = Matrix::zeros(x.rows(), x.cols());
    let mut m_prime = Matrix::zeros(x.rows(), n_sv);
    let mut d_prime = Matrix::zeros(x.rows(), n_sv);
    for r in 0..x.rows() {
        for k in 0..n_sv {
            let base = k * t;
            let mut m = f64::NEG_INFINITY;
            for j in 0..t {
                m = m.max(x.get(r, base + j).to_f64());
            }
            if m == f64::NEG_INFINITY {
                m_prime.set(r, k, T::neg_infinity());
                continue;
            }
            // The accumulator lives at working precision: every partial sum
            // rounds to `T` before the next add.
            let mut d = T::zero();
            for j in 0..t {
                let e = T::from_f64((x.get(r, base + j).to_f64() - m).exp());
                d = T::from_f64(d.to_f64() + e.to_f64());
            }
            for j in 0..t {
                let e = T::from_f64((x.get(r, base + j).to_f64() - m).exp());
                x_prime.set(r, base + j, T::from_f64(e.to_f64() / d.to_f64()));
            }
            m_prime.set(r, k, T::from_f64(m));
            d_prime.set(r, k, d);
        }
    }
    Ok(LocalSoftmaxOutput {
        x_prime,
        m_prime,
        d_prime,
    })
}

/// The decomposed pipeline LS → IR → GS with the LS normalizer accumulated
/// at working precision ([`local_softmax_narrow_accum`]) — the numeric model
/// of the `SDF16` strategy. IR and GS still reduce wide, matching the
/// schedule builder's metadata (only the LS epilogue takes the narrow
/// format).
///
/// # Errors
///
/// Returns [`ShapeError`] if `t` does not divide the row length.
pub fn decomposed_softmax_narrow_accum<T: Scalar>(
    x: &Matrix<T>,
    t: usize,
) -> Result<Matrix<T>, ShapeError> {
    let ls = local_softmax_narrow_accum(x, t)?;
    let ir = inter_reduce(&ls.m_prime, &ls.d_prime);
    global_scale(&ls.x_prime, &ir.r_prime, t)
}

/// IR: reduces `m'`, `d'` across each row's sub-vectors into the global `m`,
/// `d`, and emits the reconstruction factor `r'_k = e^{m'_k − m} · d'_k / d`.
///
/// Reductions run in `f32`; `r'` rounds once to `T`.
///
/// # Panics
///
/// Panics if `m_prime` and `d_prime` shapes differ.
pub fn inter_reduce<T: Scalar>(
    m_prime: &Matrix<T>,
    d_prime: &Matrix<T>,
) -> InterReductionOutput<T> {
    assert_eq!(m_prime.shape(), d_prime.shape(), "m'/d' shape mismatch");
    let (rows, n_sv) = m_prime.shape();
    let mut m_out = Vec::with_capacity(rows);
    let mut d_out = Vec::with_capacity(rows);
    let mut r_prime = Matrix::zeros(rows, n_sv);
    for r in 0..rows {
        let m = m_prime
            .row(r)
            .iter()
            .fold(f64::NEG_INFINITY, |a, v| a.max(v.to_f64()));
        if m == f64::NEG_INFINITY {
            // Entire row masked.
            m_out.push(T::neg_infinity());
            d_out.push(T::zero());
            continue;
        }
        let mut d = 0.0f64;
        for k in 0..n_sv {
            let mk = m_prime.get(r, k).to_f64();
            if mk == f64::NEG_INFINITY {
                continue;
            }
            d += (mk - m).exp() * d_prime.get(r, k).to_f64();
        }
        for k in 0..n_sv {
            let mk = m_prime.get(r, k).to_f64();
            if mk == f64::NEG_INFINITY {
                continue;
            }
            let rk = (mk - m).exp() * d_prime.get(r, k).to_f64() / d;
            r_prime.set(r, k, T::from_f64(rk));
        }
        m_out.push(T::from_f64(m));
        d_out.push(T::from_f64(d));
    }
    InterReductionOutput {
        m: m_out,
        d: d_out,
        r_prime,
    }
}

/// GS: `y_{k,j} = x'_{k,j} · r'_k` — pure elementwise scaling with one factor
/// per sub-vector, the access pattern that fuses into the following MatMul's
/// prologue.
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes are inconsistent with `t`.
pub fn global_scale<T: Scalar>(
    x_prime: &Matrix<T>,
    r_prime: &Matrix<T>,
    t: usize,
) -> Result<Matrix<T>, ShapeError> {
    let n_sv = check_subvector(x_prime.cols(), t)?;
    if r_prime.shape() != (x_prime.rows(), n_sv) {
        return Err(ShapeError::new(format!(
            "r' shape {:?} vs expected {}x{}",
            r_prime.shape(),
            x_prime.rows(),
            n_sv
        )));
    }
    let mut y = Matrix::zeros(x_prime.rows(), x_prime.cols());
    for r in 0..x_prime.rows() {
        for k in 0..n_sv {
            let rk = r_prime.get(r, k);
            for j in 0..t {
                let c = k * t + j;
                y.set(r, c, T::from_f64(x_prime.get(r, c).to_f64() * rk.to_f64()));
            }
        }
    }
    Ok(y)
}

/// The full decomposed pipeline LS → IR → GS (paper Eq. 2), mathematically
/// identical to [`crate::softmax_rows`].
///
/// # Errors
///
/// Returns [`ShapeError`] if `t` does not divide the row length.
pub fn decomposed_softmax<T: Scalar>(x: &Matrix<T>, t: usize) -> Result<Matrix<T>, ShapeError> {
    let _span = resoftmax_obs::span!("decomposed_softmax", "kernels");
    let ls = local_softmax(x, t)?;
    let ir = inter_reduce(&ls.m_prime, &ls.d_prime);
    global_scale(&ls.x_prime, &ir.r_prime, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax::{apply_mask, softmax_rows, softmax_rows_f64};
    use resoftmax_fp16::F16;
    use resoftmax_tensor::{max_abs_diff, randn_matrix};

    #[test]
    fn equivalence_in_f64_is_essentially_exact() {
        let x = randn_matrix::<f64>(16, 128, 3.0, 1);
        let reference = softmax_rows_f64(&x);
        for t in [1, 2, 4, 8, 16, 32, 64, 128] {
            let dec = decomposed_softmax(&x, t).unwrap();
            assert!(
                max_abs_diff(&reference, &dec) < 1e-14,
                "T={t}: diff {}",
                max_abs_diff(&reference, &dec)
            );
        }
    }

    #[test]
    fn equivalence_in_f32() {
        let x = randn_matrix::<f32>(8, 256, 5.0, 2);
        let reference = softmax_rows(&x);
        let dec = decomposed_softmax(&x, 64).unwrap();
        assert!(max_abs_diff(&reference, &dec) < 1e-6);
    }

    #[test]
    fn equivalence_in_fp16_within_rounding() {
        // The decomposed path performs more roundings (x', r' stored in
        // binary16) so results differ by small relative error, never more.
        let x = randn_matrix::<F16>(8, 256, 3.0, 3);
        let oracle = softmax_rows_f64(&x);
        let dec = decomposed_softmax(&x, 64).unwrap();
        // Largest softmax outputs are O(0.1); allow ~2 fp16 ulps at that scale.
        assert!(
            max_abs_diff(&oracle, &dec) < 2e-3,
            "diff {}",
            max_abs_diff(&oracle, &dec)
        );
        // Rows still sum to ~1 in half precision.
        for r in 0..8 {
            let s: f64 = dec.row(r).iter().map(|v| v.to_f64()).sum();
            assert!((s - 1.0).abs() < 2e-2, "row {r} sums to {s}");
        }
    }

    #[test]
    fn fp16_decomposition_never_overflows() {
        // Large scores that would overflow a naive exponential.
        let x = randn_matrix::<F16>(4, 128, 8.0, 4).map(|v| {
            // push values up toward the overflow-dangerous region
            F16::from_f32(v.to_f32().abs() + 5.0)
        });
        let dec = decomposed_softmax(&x, 32).unwrap();
        assert!(!dec.has_nan());
        assert!(dec.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ls_outputs_are_locally_normalized() {
        let x = randn_matrix::<f64>(4, 64, 2.0, 5);
        let ls = local_softmax(&x, 16).unwrap();
        // each sub-vector of x' sums to 1
        for r in 0..4 {
            for k in 0..4 {
                let s: f64 = (0..16).map(|j| ls.x_prime.get(r, k * 16 + j)).sum();
                assert!((s - 1.0).abs() < 1e-12, "row {r} sv {k}: {s}");
            }
        }
        // m' is the true sub-vector max
        for r in 0..4 {
            for k in 0..4 {
                let m = (0..16)
                    .map(|j| x.get(r, k * 16 + j))
                    .fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(ls.m_prime.get(r, k), m);
            }
        }
    }

    #[test]
    fn ir_reconstruction_factors_sum_to_one() {
        // Σ_k r'_k = Σ_k e^{m'_k−m} d'_k / d = d/d = 1.
        let x = randn_matrix::<f64>(6, 96, 2.0, 6);
        let ls = local_softmax(&x, 8).unwrap();
        let ir = inter_reduce(&ls.m_prime, &ls.d_prime);
        for r in 0..6 {
            let s: f64 = ir.r_prime.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {r}: Σr' = {s}");
        }
        // m equals the global max
        for r in 0..6 {
            let m = x.row(r).iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            assert_eq!(ir.m[r], m);
        }
    }

    #[test]
    fn masked_subvectors_contribute_nothing() {
        let x = randn_matrix::<f64>(2, 32, 1.0, 7);
        // Mask out the entire second sub-vector (cols 8..16) of row 0.
        let mut mask = vec![true; 64];
        mask[8..16].fill(false);
        let masked = apply_mask(&x, &mask);
        let dec = decomposed_softmax(&masked, 8).unwrap();
        let reference = softmax_rows_f64(&masked);
        assert!(max_abs_diff(&reference, &dec) < 1e-14);
        for c in 8..16 {
            assert_eq!(dec.get(0, c), 0.0);
        }
    }

    #[test]
    fn fully_masked_row_is_zero() {
        let x = Matrix::<f64>::filled(1, 16, f64::NEG_INFINITY);
        let dec = decomposed_softmax(&x, 4).unwrap();
        assert!(dec.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn t_equal_l_degenerates_to_single_subvector() {
        // With T = L the decomposition is trivially the monolithic softmax
        // with r' = 1.
        let x = randn_matrix::<f64>(4, 32, 1.0, 8);
        let ls = local_softmax(&x, 32).unwrap();
        let ir = inter_reduce(&ls.m_prime, &ls.d_prime);
        for r in 0..4 {
            assert!((ir.r_prime.get(r, 0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn narrow_accum_is_identity_at_f64() {
        // With T = f64 the "narrow" accumulator is the wide one: the two LS
        // variants must agree bit-for-bit.
        let x = randn_matrix::<f64>(4, 128, 3.0, 9);
        let wide = local_softmax(&x, 16).unwrap();
        let narrow = local_softmax_narrow_accum(&x, 16).unwrap();
        assert_eq!(wide, narrow);
    }

    #[test]
    fn narrow_accum_fp16_stays_close_and_normalized() {
        // Step-rounding the fp16 normalizer adds roughly (T−1) half-precision
        // roundoffs on top of the wide pipeline — small at T = 16, and rows
        // must still sum to ~1 after IR's wide rescale.
        let x = randn_matrix::<F16>(8, 256, 3.0, 10);
        let oracle = softmax_rows_f64(&x);
        let narrow = decomposed_softmax_narrow_accum(&x, 16).unwrap();
        assert!(
            max_abs_diff(&oracle, &narrow) < 1.2e-2,
            "diff {}",
            max_abs_diff(&oracle, &narrow)
        );
        for r in 0..8 {
            let s: f64 = narrow.row(r).iter().map(|v| v.to_f64()).sum();
            assert!((s - 1.0).abs() < 2e-2, "row {r} sums to {s}");
        }
    }

    #[test]
    fn narrow_accum_masked_rows_and_shapes() {
        let x = Matrix::<F16>::filled(1, 16, F16::neg_infinity());
        let dec = decomposed_softmax_narrow_accum(&x, 4).unwrap();
        assert!(dec.as_slice().iter().all(|v| v.to_f64() == 0.0));
        let bad = Matrix::<F16>::zeros(2, 10);
        assert!(local_softmax_narrow_accum(&bad, 3).is_err());
        assert!(decomposed_softmax_narrow_accum(&bad, 0).is_err());
    }

    #[test]
    fn shape_errors() {
        let x = Matrix::<f64>::zeros(2, 10);
        assert!(local_softmax(&x, 3).is_err());
        assert!(local_softmax(&x, 0).is_err());
        assert!(decomposed_softmax(&x, 4).is_err());
        let xp = Matrix::<f64>::zeros(2, 8);
        let bad_r = Matrix::<f64>::zeros(2, 3);
        assert!(global_scale(&xp, &bad_r, 4).is_err());
    }
}

/// The decomposed softmax *backward* (the §6 extension, mirrored from the
/// forward decomposition): given the stored LS outputs `x'` and the IR
/// factors `r'` (so `y = x' ⊙ r'` per sub-vector), and the upstream gradient
/// `dy`, computes `dx = y ⊙ (dy − Σ_i dy_i·y_i)` without ever materializing
/// `y` — the row dot is itself decomposed into per-sub-vector partial dots
/// (the backward LS) reduced across sub-vectors (the backward IR), leaving a
/// purely elementwise final scaling (the backward GS).
///
/// Numerically identical to [`crate::softmax_backward`] applied to the
/// reconstructed `y`, modulo one extra rounding per element.
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes are inconsistent with `t`.
pub fn decomposed_softmax_backward<T: Scalar>(
    x_prime: &Matrix<T>,
    r_prime: &Matrix<T>,
    dy: &Matrix<T>,
    t: usize,
) -> Result<Matrix<T>, ShapeError> {
    let n_sv = check_subvector(x_prime.cols(), t)?;
    if r_prime.shape() != (x_prime.rows(), n_sv) {
        return Err(ShapeError::new(format!(
            "r' shape {:?} vs expected {}x{n_sv}",
            r_prime.shape(),
            x_prime.rows()
        )));
    }
    if dy.shape() != x_prime.shape() {
        return Err(ShapeError::new(format!(
            "dy shape {:?} vs x' {:?}",
            dy.shape(),
            x_prime.shape()
        )));
    }
    let (rows, cols) = x_prime.shape();
    let mut dx = Matrix::zeros(rows, cols);
    for r in 0..rows {
        // Backward LS: per-sub-vector partial dots Σ_j dy·x' (scaled later).
        // Backward IR: combine with r' into the global row dot.
        let mut dot = 0.0f64;
        for k in 0..n_sv {
            let mut partial = 0.0f64;
            for j in 0..t {
                let c = k * t + j;
                partial += dy.get(r, c).to_f64() * x_prime.get(r, c).to_f64();
            }
            dot += partial * r_prime.get(r, k).to_f64();
        }
        // Backward GS: elementwise dx = (x'·r') ⊙ (dy − dot).
        for k in 0..n_sv {
            let rk = r_prime.get(r, k).to_f64();
            for j in 0..t {
                let c = k * t + j;
                let y = x_prime.get(r, c).to_f64() * rk;
                dx.set(r, c, T::from_f64(y * (dy.get(r, c).to_f64() - dot)));
            }
        }
    }
    Ok(dx)
}

#[cfg(test)]
mod backward_tests {
    use super::*;
    use crate::softmax::{softmax_backward, softmax_rows_f64};
    use resoftmax_tensor::{max_abs_diff, randn_matrix};

    #[test]
    fn decomposed_backward_matches_monolithic() {
        let (rows, l, t) = (6, 96, 16);
        let x = randn_matrix::<f64>(rows, l, 2.0, 500);
        let dy = randn_matrix::<f64>(rows, l, 1.0, 501);

        // Forward via decomposition, keeping x' and r'.
        let ls = local_softmax(&x, t).unwrap();
        let ir = inter_reduce(&ls.m_prime, &ls.d_prime);

        // Monolithic reference: backward from the reconstructed y.
        let y = softmax_rows_f64(&x);
        let reference = softmax_backward(&y, &dy);

        let dec = decomposed_softmax_backward(&ls.x_prime, &ir.r_prime, &dy, t).unwrap();
        assert!(
            max_abs_diff(&reference, &dec) < 1e-12,
            "diff {}",
            max_abs_diff(&reference, &dec)
        );
    }

    #[test]
    fn decomposed_backward_rows_sum_to_zero() {
        let (rows, l, t) = (3, 64, 8);
        let x = randn_matrix::<f64>(rows, l, 1.5, 510);
        let dy = randn_matrix::<f64>(rows, l, 1.0, 511);
        let ls = local_softmax(&x, t).unwrap();
        let ir = inter_reduce(&ls.m_prime, &ls.d_prime);
        let dec = decomposed_softmax_backward(&ls.x_prime, &ir.r_prime, &dy, t).unwrap();
        for r in 0..rows {
            let s: f64 = dec.row(r).iter().sum();
            assert!(s.abs() < 1e-10, "row {r}: {s}");
        }
    }

    #[test]
    fn decomposed_backward_shape_errors() {
        let xp = Matrix::<f64>::zeros(2, 16);
        let rp = Matrix::<f64>::zeros(2, 4);
        let dy = Matrix::<f64>::zeros(2, 16);
        assert!(decomposed_softmax_backward(&xp, &rp, &dy, 4).is_ok());
        assert!(decomposed_softmax_backward(&xp, &rp, &dy, 5).is_err());
        let rp_bad = Matrix::<f64>::zeros(2, 3);
        assert!(decomposed_softmax_backward(&xp, &rp_bad, &dy, 4).is_err());
        let dy_bad = Matrix::<f64>::zeros(2, 8);
        assert!(decomposed_softmax_backward(&xp, &rp, &dy_bad, 4).is_err());
    }
}
