//! Numeric fused attention (§3.3): `Q·Kᵀ`+Scale+Mask+**LS** epilogue and
//! **GS**+`P·V` prologue, with GPU-faithful rounding.
//!
//! The fused kernels differ numerically from the unfused pipeline in exactly
//! one way: values that previously round-tripped through half-precision
//! off-chip storage stay in `f32` registers across the fusion boundary.
//! Concretely:
//!
//! * The LS epilogue applies scale, mask, and the local exponentials to the
//!   MatMul's *`f32` accumulator tile* before anything rounds to FP16
//!   (the unfused path rounds the raw scores to FP16 first).
//! * The GS prologue multiplies `x' · r'` in `f32` and rounds once to FP16
//!   as it feeds the tensor-core MMA (whose operands must be half).
//!
//! Tests assert these pipelines agree with the monolithic reference within
//! tight half-precision bounds — the paper's correctness claim ("the
//! decomposed softmax sub-layers perform identically to the existing softmax
//! layer in terms of mathematics") plus honest rounding.

use crate::decomposed::{check_subvector, inter_reduce, InterReductionOutput};
use rayon::prelude::*;
use resoftmax_tensor::{Matrix, Scalar, ShapeError};

/// Output of the fused `Q·Kᵀ` + Scale + Mask + LS kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedQkLsOutput<T: Scalar> {
    /// Locally-normalized attention values `X'` (`L × L`).
    pub x_prime: Matrix<T>,
    /// Local maxima `m'` (`L × N_sv`).
    pub m_prime: Matrix<T>,
    /// Local normalizers `d'` (`L × N_sv`).
    pub d_prime: Matrix<T>,
}

/// Fused `scores = scale · (Q·Kᵀ)` + mask + local softmax over output tiles
/// of width `t` (the LS sub-vector length equals the MatMul tile width —
/// the condition that makes the fusion legal, §3.3).
///
/// `mask`, if given, is a row-major `L × L` element mask (`false` = `-inf`).
///
/// # Errors
///
/// Returns [`ShapeError`] if `q`/`k` disagree on `d_head`, rows differ, or
/// `t` does not divide `L`.
///
/// # Panics
///
/// Panics if `mask` is given with the wrong length.
pub fn fused_qk_ls<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    t: usize,
    scale: f64,
    mask: Option<&[bool]>,
) -> Result<FusedQkLsOutput<T>, ShapeError> {
    if q.cols() != k.cols() || q.rows() != k.rows() {
        return Err(ShapeError::new(format!(
            "fused_qk_ls q {:?} vs k {:?}",
            q.shape(),
            k.shape()
        )));
    }
    let l = q.rows();
    let n_sv = check_subvector(l, t)?;
    if let Some(m) = mask {
        assert_eq!(m.len(), l * l, "mask length mismatch");
    }
    let d_head = q.cols();
    let _span = resoftmax_obs::span!("fused_qk_ls", "kernels");

    let mut x_prime = Matrix::zeros(l, l);
    let mut m_prime = Matrix::zeros(l, n_sv);
    let mut d_prime = Matrix::zeros(l, n_sv);

    // One "thread block" per (row-tile is irrelevant numerically) output tile
    // of width t: compute the f32 accumulator column strip, then the epilogue.
    // Rows are independent — each owns a disjoint row of all three outputs —
    // so they parallelize in lockstep with bit-identical per-row arithmetic.
    resoftmax_parallel::parallel_chunks_mut3(
        x_prime.as_mut_slice(),
        l.max(1),
        m_prime.as_mut_slice(),
        n_sv.max(1),
        d_prime.as_mut_slice(),
        n_sv.max(1),
        |r, x_row, m_row, d_row| {
            for sv in 0..n_sv {
                // MatMul inner product in f32 (tensor-core accumulate).
                let mut acc = vec![0.0f32; t];
                for (j, a) in acc.iter_mut().enumerate() {
                    let c = sv * t + j;
                    let mut s = 0.0f32;
                    for p in 0..d_head {
                        s += q.get(r, p).to_f32() * k.get(c, p).to_f32();
                    }
                    *a = s;
                }
                // Epilogue in f32: scale, mask, local max/normalizer, exp.
                let mut m = f32::NEG_INFINITY;
                for (j, a) in acc.iter_mut().enumerate() {
                    *a *= scale as f32;
                    if let Some(mk) = mask {
                        if !mk[r * l + sv * t + j] {
                            *a = f32::NEG_INFINITY;
                        }
                    }
                    m = m.max(*a);
                }
                if m == f32::NEG_INFINITY {
                    m_row[sv] = T::neg_infinity();
                    continue;
                }
                let mut d = 0.0f32;
                for a in &acc {
                    d += (a - m).exp();
                }
                for (j, a) in acc.iter().enumerate() {
                    // Single rounding to T on the way to off-chip storage.
                    x_row[sv * t + j] = T::from_f64(((a - m).exp() / d) as f64);
                }
                m_row[sv] = T::from_f64(m as f64);
                d_row[sv] = T::from_f64(d as f64);
            }
        },
    );
    Ok(FusedQkLsOutput {
        x_prime,
        m_prime,
        d_prime,
    })
}

/// Fused GS + `P·V`: multiplies each `x'` element by its sub-vector's `r'`
/// in `f32`, rounds once to the working precision (tensor-core operands are
/// half), and accumulates `P·V` in `f32`.
///
/// # Errors
///
/// Returns [`ShapeError`] on inconsistent shapes.
pub fn fused_gs_pv<T: Scalar>(
    x_prime: &Matrix<T>,
    r_prime: &Matrix<T>,
    v: &Matrix<T>,
    t: usize,
) -> Result<Matrix<T>, ShapeError> {
    let l = x_prime.rows();
    let n_sv = check_subvector(x_prime.cols(), t)?;
    if r_prime.shape() != (l, n_sv) {
        return Err(ShapeError::new(format!(
            "r' shape {:?} vs {}x{}",
            r_prime.shape(),
            l,
            n_sv
        )));
    }
    if v.rows() != x_prime.cols() {
        return Err(ShapeError::new(format!(
            "v rows {} vs L {}",
            v.rows(),
            x_prime.cols()
        )));
    }
    let d_head = v.cols();
    let _span = resoftmax_obs::span!("fused_gs_pv", "kernels");
    let mut out = Matrix::zeros(l, d_head);
    out.as_mut_slice()
        .par_chunks_mut(d_head.max(1))
        .enumerate()
        .for_each(|(r, o_row)| {
            let mut acc = vec![0.0f32; d_head];
            for k in 0..x_prime.cols() {
                let rk = r_prime.get(r, k / t).to_f32();
                // GS in f32, rounded once to feed the MMA.
                let p = T::from_f32(x_prime.get(r, k).to_f32() * rk);
                let pf = p.to_f32();
                if pf == 0.0 {
                    continue;
                }
                for (j, a) in acc.iter_mut().enumerate() {
                    *a += pf * v.get(k, j).to_f32();
                }
            }
            for (o, a) in o_row.iter_mut().zip(&acc) {
                *o = T::from_f64(f64::from(*a));
            }
        });
    Ok(out)
}

/// The complete recomposed attention layer: fused `Q·Kᵀ`+Scale+Mask+LS,
/// standalone IR, fused GS+`P·V` (Fig. 6 of the paper).
///
/// Returns the attention output (`L × D_head`) and the IR intermediates (so
/// callers can check `m`/`d` or reuse them for training).
///
/// # Errors
///
/// Returns [`ShapeError`] on any dimension mismatch.
pub fn recomposed_attention<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    t: usize,
    scale: f64,
    mask: Option<&[bool]>,
) -> Result<(Matrix<T>, InterReductionOutput<T>), ShapeError> {
    let _span = resoftmax_obs::span!("recomposed_attention", "kernels");
    let ls = fused_qk_ls(q, k, t, scale, mask)?;
    let ir = inter_reduce(&ls.m_prime, &ls.d_prime);
    let out = fused_gs_pv(&ls.x_prime, &ir.r_prime, v, t)?;
    Ok((out, ir))
}

/// Unfused reference attention at the same working precision: scores rounded
/// to `T`, scale+mask, monolithic softmax, `P·V` with `f32` accumulation.
///
/// # Errors
///
/// Returns [`ShapeError`] on any dimension mismatch.
pub fn reference_attention<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    scale: f64,
    mask: Option<&[bool]>,
) -> Result<Matrix<T>, ShapeError> {
    use crate::softmax::{apply_mask, softmax_rows};
    use resoftmax_tensor::{matmul_transpose_b, scale as scale_op};

    let _span = resoftmax_obs::span!("reference_attention", "kernels");
    let scores = matmul_transpose_b(q, k)?;
    let scaled = scale_op(&scores, scale);
    let masked = match mask {
        Some(m) => apply_mask(&scaled, m),
        None => scaled,
    };
    let p = softmax_rows(&masked);
    // P·V with f32 accumulation.
    let l = p.rows();
    let d_head = v.cols();
    if v.rows() != p.cols() {
        return Err(ShapeError::new(format!(
            "v rows {} vs L {}",
            v.rows(),
            p.cols()
        )));
    }
    let mut out = Matrix::zeros(l, d_head);
    out.as_mut_slice()
        .par_chunks_mut(d_head.max(1))
        .enumerate()
        .for_each(|(r, o_row)| {
            let mut acc = vec![0.0f32; d_head];
            for c in 0..p.cols() {
                let pv = p.get(r, c).to_f32();
                if pv == 0.0 {
                    continue;
                }
                for (j, a) in acc.iter_mut().enumerate() {
                    *a += pv * v.get(c, j).to_f32();
                }
            }
            for (o, a) in o_row.iter_mut().zip(&acc) {
                *o = T::from_f64(f64::from(*a));
            }
        });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax::causal_mask;
    use resoftmax_fp16::F16;
    use resoftmax_tensor::{max_abs_diff, randn_matrix};

    const SCALE: f64 = 0.125; // 1/sqrt(64)

    #[test]
    fn fused_matches_reference_f64() {
        let (l, d) = (64, 16);
        let q = randn_matrix::<f64>(l, d, 1.0, 1);
        let k = randn_matrix::<f64>(l, d, 1.0, 2);
        let v = randn_matrix::<f64>(l, d, 1.0, 3);
        let reference = reference_attention(&q, &k, &v, SCALE, None).unwrap();
        for t in [8, 16, 32, 64] {
            let (fused, _) = recomposed_attention(&q, &k, &v, t, SCALE, None).unwrap();
            assert!(
                max_abs_diff(&reference, &fused) < 1e-5,
                "T={t}: {}",
                max_abs_diff(&reference, &fused)
            );
        }
    }

    #[test]
    fn fused_matches_reference_fp16() {
        let (l, d) = (64, 32);
        let q = randn_matrix::<F16>(l, d, 0.7, 4);
        let k = randn_matrix::<F16>(l, d, 0.7, 5);
        let v = randn_matrix::<F16>(l, d, 0.7, 6);
        let reference = reference_attention(&q, &k, &v, SCALE, None).unwrap();
        let (fused, _) = recomposed_attention(&q, &k, &v, 16, SCALE, None).unwrap();
        // Half precision with different rounding points: small divergence
        // allowed, catastrophic divergence not.
        assert!(
            max_abs_diff(&reference, &fused) < 5e-3,
            "{}",
            max_abs_diff(&reference, &fused)
        );
    }

    #[test]
    fn causal_masked_attention() {
        let (l, d) = (32, 8);
        let q = randn_matrix::<f64>(l, d, 1.0, 7);
        let k = randn_matrix::<f64>(l, d, 1.0, 8);
        let v = randn_matrix::<f64>(l, d, 1.0, 9);
        let mask = causal_mask(l);
        let reference = reference_attention(&q, &k, &v, SCALE, Some(&mask)).unwrap();
        let (fused, _) = recomposed_attention(&q, &k, &v, 8, SCALE, Some(&mask)).unwrap();
        assert!(max_abs_diff(&reference, &fused) < 1e-6);
    }

    #[test]
    fn first_row_of_causal_attention_is_v0() {
        // Row 0 attends only to position 0: output == v[0].
        let (l, d) = (16, 4);
        let q = randn_matrix::<f64>(l, d, 1.0, 10);
        let k = randn_matrix::<f64>(l, d, 1.0, 11);
        let v = randn_matrix::<f64>(l, d, 1.0, 12);
        let mask = causal_mask(l);
        let (out, _) = recomposed_attention(&q, &k, &v, 4, SCALE, Some(&mask)).unwrap();
        for j in 0..d {
            // f32 accumulators in the fused pipeline: ~1e-7 relative error
            assert!((out.get(0, j) - v.get(0, j)).abs() < 1e-5);
        }
    }

    #[test]
    fn ir_intermediates_are_consistent() {
        let (l, d) = (32, 8);
        let q = randn_matrix::<f64>(l, d, 1.0, 13);
        let k = randn_matrix::<f64>(l, d, 1.0, 14);
        let v = randn_matrix::<f64>(l, d, 1.0, 15);
        let (_, ir) = recomposed_attention(&q, &k, &v, 8, SCALE, None).unwrap();
        // r' sums to 1 per row.
        for r in 0..l {
            let s: f64 = ir.r_prime.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r}: {s}");
        }
        assert_eq!(ir.m.len(), l);
        assert_eq!(ir.d.len(), l);
    }

    #[test]
    fn shape_errors_everywhere() {
        let q = randn_matrix::<f64>(16, 8, 1.0, 0);
        let k_bad = randn_matrix::<f64>(16, 4, 1.0, 0);
        assert!(fused_qk_ls(&q, &k_bad, 4, 1.0, None).is_err());
        let k = randn_matrix::<f64>(16, 8, 1.0, 0);
        assert!(fused_qk_ls(&q, &k, 5, 1.0, None).is_err());

        let xp = Matrix::<f64>::zeros(16, 16);
        let rp_bad = Matrix::<f64>::zeros(16, 3);
        let v = Matrix::<f64>::zeros(16, 8);
        assert!(fused_gs_pv(&xp, &rp_bad, &v, 4).is_err());
        let rp = Matrix::<f64>::zeros(16, 4);
        let v_bad = Matrix::<f64>::zeros(8, 8);
        assert!(fused_gs_pv(&xp, &rp, &v_bad, 4).is_err());
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn wrong_mask_length_panics() {
        let q = randn_matrix::<f64>(8, 4, 1.0, 0);
        let k = randn_matrix::<f64>(8, 4, 1.0, 1);
        let _ = fused_qk_ls(&q, &k, 4, 1.0, Some(&[true; 3]));
    }
}
