//! Cost profiles for the *backward* pass of the attention block — the §6
//! extension: the paper argues (Eq. 3) that recomposition stays legal in
//! training because softmax backward needs only the forward *output*; these
//! kernels let the simulator price a whole training iteration.
//!
//! Backward dataflow for one attention layer (dense):
//!
//! ```text
//!   dV = Pᵀ · dOut              (reads one attention plane)
//!   dP = dOut · Vᵀ              (writes one attention plane)
//!   dS = P ⊙ (dP − rowdot(P, dP))   (Eq. 3; reads two planes, writes one)
//!   dQ = dS · K,  dK = dSᵀ · Q  (each reads one plane)
//! ```
//!
//! Baseline: `dS` is a standalone monolithic row kernel (same barrier-bound
//! shape as forward softmax) and `P` was stored by the forward pass.
//!
//! Recomposed: this is the paper's thesis applied to the backward pass. The
//! only *row-wise* dependency in Eq. 3 is the row dot `Σ P·dP`; decompose it
//! exactly like the forward normalizer — per-sub-vector partial dots in the
//! `dP` MatMul's epilogue (the backward LS), a tiny IR-style reduction —
//! and the remaining `dS = x'·r' ⊙ (dP − dot)` becomes *elementwise*, i.e.
//! a streaming kernel with none of the monolithic row kernel's barrier
//! stalls. `P` itself is never stored; `dV` reconstructs it from `x'`/`r'`
//! in a GS prologue.

use super::{
    buf, AttnDims, TileConfig, EXP_FLOP_EQUIV, FP16_BYTES, GS_PROLOGUE_EFFICIENCY,
    MATMUL_ROOFLINE_EFFICIENCY, SOFTMAX_PHASE_EFFICIENCY, STREAM_EFFICIENCY,
};
use resoftmax_gpusim::{KernelCategory, KernelDesc, TbShape, TbWork};

/// Common shape for backward MatMuls whose large operand is one attention
/// plane (read or written) and whose other operands are `L × D_head`.
fn attn_plane_matmul(
    dims: &AttnDims,
    tile: TileConfig,
    name: String,
    category: KernelCategory,
    plane_reads: &[(String, u64)],
    plane_writes: &[(String, u64)],
    small_reads: &[&str],
    small_write: &str,
    extra_cuda_per_plane_elem: f64,
    efficiency: f64,
    prefix: &str,
) -> KernelDesc {
    let inst = dims.instances();
    let grid = dims.l.div_ceil(tile.m) as u64 * inst;
    let plane_read_total: u64 = plane_reads.iter().map(|(_, b)| b).sum();
    let plane_write_total: u64 = plane_writes.iter().map(|(_, b)| b).sum();
    let small_once = dims.qkv_bytes();
    let ml = (tile.m * dims.l) as f64;

    let work = TbWork {
        cuda_flops: extra_cuda_per_plane_elem * ml,
        tensor_flops: 2.0 * (tile.m * dims.d_head) as f64 * dims.l as f64,
        dram_read_bytes: plane_read_total as f64 / grid as f64
            + small_reads.len() as f64 * small_once as f64 / grid as f64,
        dram_write_bytes: plane_write_total as f64 / grid as f64
            + (tile.m * dims.d_head * FP16_BYTES) as f64,
        mem_active_fraction: 1.0,
        efficiency,
    };
    let mut b = KernelDesc::builder(name, category);
    b.shape(TbShape::new(256, 16 * 1024, 128))
        .uniform(grid, work);
    for (id, bytes) in plane_reads {
        b.reads(id.clone(), *bytes);
    }
    for r in small_reads {
        b.reads(buf(prefix, r), small_once);
    }
    for (id, bytes) in plane_writes {
        b.writes(id.clone(), *bytes);
    }
    b.writes(buf(prefix, small_write), dims.qkv_bytes());
    b.build()
}

/// `dV = Pᵀ·dOut`. Baseline reads the stored `probs` plane; recomposed
/// reconstructs `P` from `x'` and `r'` in the prologue (GS fusion, Fig. 6
/// mirrored).
pub fn matmul_dv(dims: &AttnDims, tile: TileConfig, prefix: &str, recomposed: bool) -> KernelDesc {
    let plane = if recomposed { "x_prime" } else { "probs" };
    let mut reads = vec![(buf(prefix, plane), dims.attn_bytes())];
    if recomposed {
        reads.push((buf(prefix, "r_prime"), dims.intermediate_bytes(tile.n)));
    }
    attn_plane_matmul(
        dims,
        tile,
        format!(
            "bwd_dv{}(L={})",
            if recomposed { "+gs" } else { "" },
            dims.l
        ),
        KernelCategory::MatMulPv,
        &reads,
        &[],
        &["d_attn_out"],
        "d_v",
        if recomposed { 1.0 } else { 0.0 },
        if recomposed {
            GS_PROLOGUE_EFFICIENCY
        } else {
            MATMUL_ROOFLINE_EFFICIENCY
        },
        prefix,
    )
}

/// `dP = dOut·Vᵀ`, writing one attention plane. The recomposed variant adds
/// a per-sub-vector partial row-dot epilogue (the backward analogue of LS).
pub fn matmul_dp(dims: &AttnDims, tile: TileConfig, prefix: &str, recomposed: bool) -> KernelDesc {
    let mut writes = vec![(buf(prefix, "d_probs"), dims.attn_bytes())];
    if recomposed {
        writes.push((buf(prefix, "dot_partial"), dims.intermediate_bytes(tile.n)));
    }
    attn_plane_matmul(
        dims,
        tile,
        format!(
            "bwd_dp{}(L={})",
            if recomposed { "+localdot" } else { "" },
            dims.l
        ),
        KernelCategory::MatMulQk,
        &[],
        &writes,
        &["d_attn_out", "v"],
        "d_p_unused",
        if recomposed { 3.0 } else { 0.0 },
        if recomposed {
            GS_PROLOGUE_EFFICIENCY
        } else {
            MATMUL_ROOFLINE_EFFICIENCY
        },
        prefix,
    )
}

/// Baseline standalone softmax backward (Eq. 3 as one row kernel): reads the
/// stored `P` and `dP` planes, writes `dS`. Same barrier-bound monolithic
/// shape as the forward softmax.
pub fn softmax_backward_monolithic(dims: &AttnDims, prefix: &str) -> KernelDesc {
    let rows = dims.l as u64 * dims.instances();
    let row_bytes = (dims.l * FP16_BYTES) as f64;
    let threads = super::row_threads(dims.l);
    let work = TbWork {
        // rowdot (2 ops) + subtract + multiply per element
        cuda_flops: 4.0 * dims.l as f64,
        tensor_flops: 0.0,
        dram_read_bytes: 2.0 * row_bytes,
        dram_write_bytes: row_bytes,
        mem_active_fraction: 1.0,
        efficiency: SOFTMAX_PHASE_EFFICIENCY,
    };
    KernelDesc::builder(
        format!("softmax_bwd(L={})", dims.l),
        KernelCategory::Softmax,
    )
    .shape(TbShape::new(threads, (2 * dims.l * FP16_BYTES) as u32, 40))
    .uniform(rows, work)
    .reads(buf(prefix, "probs"), dims.attn_bytes())
    .reads(buf(prefix, "d_probs"), dims.attn_bytes())
    .writes(buf(prefix, "d_scores"), dims.attn_bytes())
    .build()
}

/// Recomposed: IR-style reduction of the per-sub-vector partial row-dots
/// into one dot per row (tiny, like the forward IR).
pub fn rowdot_reduction(dims: &AttnDims, t: usize, prefix: &str) -> KernelDesc {
    let n_sv = (dims.l / t).max(1);
    let rows_per_tb = 64u64;
    let total_rows = dims.l as u64 * dims.instances();
    let grid = total_rows.div_ceil(rows_per_tb);
    let work = TbWork {
        cuda_flops: rows_per_tb as f64 * n_sv as f64 * 2.0,
        tensor_flops: 0.0,
        dram_read_bytes: rows_per_tb as f64 * (n_sv * FP16_BYTES) as f64,
        dram_write_bytes: rows_per_tb as f64 * FP16_BYTES as f64,
        mem_active_fraction: 1.0,
        efficiency: STREAM_EFFICIENCY,
    };
    KernelDesc::builder(
        format!("bwd_rowdot_ir(L={},T={t})", dims.l),
        KernelCategory::InterReduction,
    )
    .shape(TbShape::new(128, 4096, 32))
    .uniform(grid, work)
    .reads(buf(prefix, "dot_partial"), dims.intermediate_bytes(t))
    .writes(
        buf(prefix, "rowdot"),
        (dims.l as u64 * dims.instances()) * FP16_BYTES as u64,
    )
    .build()
}

/// Recomposed: the now-elementwise `dS = x'·r' ⊙ (dP − dot)` as a streaming
/// kernel — the payoff of decomposing the row dot: no barrier-bound row
/// kernel remains in the backward pass.
pub fn ds_elementwise(dims: &AttnDims, t: usize, prefix: &str) -> KernelDesc {
    let elems_per_tb = 2048usize;
    let total = dims.l as u64 * dims.l as u64 * dims.instances();
    let grid = total.div_ceil(elems_per_tb as u64);
    let work = TbWork {
        cuda_flops: 4.0 * elems_per_tb as f64,
        tensor_flops: 0.0,
        // dP + x' streams, plus the small r'/rowdot fragments
        dram_read_bytes: (2 * elems_per_tb * FP16_BYTES) as f64
            + (elems_per_tb / t.max(1) * FP16_BYTES) as f64,
        dram_write_bytes: (elems_per_tb * FP16_BYTES) as f64,
        mem_active_fraction: 1.0,
        efficiency: STREAM_EFFICIENCY,
    };
    KernelDesc::builder(
        format!("bwd_ds_elementwise(L={})", dims.l),
        KernelCategory::GlobalScaling,
    )
    .shape(TbShape::new(256, 0, 24))
    .uniform(grid, work)
    .reads(buf(prefix, "d_probs"), dims.attn_bytes())
    .reads(buf(prefix, "x_prime"), dims.attn_bytes())
    .reads(buf(prefix, "r_prime"), dims.intermediate_bytes(t))
    .reads(
        buf(prefix, "rowdot"),
        (dims.l as u64 * dims.instances()) * FP16_BYTES as u64,
    )
    .writes(buf(prefix, "d_scores"), dims.attn_bytes())
    .build()
}

/// `dQ = dS·K` (or `dK = dSᵀ·Q`): reads the `dS` plane (materialized by the
/// monolithic backward in the baseline, by [`ds_elementwise`] when
/// recomposed) and one small operand.
pub fn matmul_dq_or_dk(
    dims: &AttnDims,
    tile: TileConfig,
    prefix: &str,
    output: &str,
    small_operand: &str,
) -> KernelDesc {
    attn_plane_matmul(
        dims,
        tile,
        format!("bwd_{output}(L={})", dims.l),
        KernelCategory::MatMulPv,
        &[(buf(prefix, "d_scores"), dims.attn_bytes())],
        &[],
        &[small_operand],
        output,
        0.0,
        MATMUL_ROOFLINE_EFFICIENCY,
        prefix,
    )
}

/// Exponent-weighted cost parity check helper: public so tests and DESIGN
/// discussions can reference the constant set in one place.
pub fn exp_flop_equiv() -> f64 {
    EXP_FLOP_EQUIV
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> AttnDims {
        AttnDims::new(4096, 64, 16, 1)
    }

    #[test]
    fn baseline_backward_plane_crossings() {
        // dV reads 1 plane; dP writes 1; softmax bwd reads 2, writes 1;
        // dQ and dK read 1 each: 7 plane crossings total.
        let d = dims();
        let t = TileConfig::default();
        let plane = d.attn_bytes() as f64;
        let total: f64 = [
            matmul_dv(&d, t, "l0", false).total_dram_bytes(),
            matmul_dp(&d, t, "l0", false).total_dram_bytes(),
            softmax_backward_monolithic(&d, "l0").total_dram_bytes(),
            matmul_dq_or_dk(&d, t, "l0", "d_q", "k").total_dram_bytes(),
            matmul_dq_or_dk(&d, t, "l0", "d_k", "q").total_dram_bytes(),
        ]
        .iter()
        .sum();
        assert!(
            (total / plane - 7.0).abs() < 0.3,
            "crossings {}",
            total / plane
        );
    }

    #[test]
    fn recomposed_backward_removes_standalone_softmax_and_ds_plane() {
        let d = dims();
        let t = TileConfig::default();
        let plane = d.attn_bytes() as f64;
        let total: f64 = [
            matmul_dv(&d, t, "l0", true).total_dram_bytes(),
            matmul_dp(&d, t, "l0", true).total_dram_bytes(),
            rowdot_reduction(&d, 64, "l0").total_dram_bytes(),
            ds_elementwise(&d, 64, "l0").total_dram_bytes(),
            matmul_dq_or_dk(&d, t, "l0", "d_q", "k").total_dram_bytes(),
            matmul_dq_or_dk(&d, t, "l0", "d_k", "q").total_dram_bytes(),
        ]
        .iter()
        .sum();
        // dV(x') + dP(write) + dS(2r+1w) + dQ + dK = 7 planes, but the
        // monolithic row kernel is gone — the win is in *rates*, not bytes.
        assert!(
            total / plane < 7.5,
            "recomposed crossings {}",
            total / plane
        );
    }

    #[test]
    fn rowdot_is_tiny() {
        let d = dims();
        let ir = rowdot_reduction(&d, 64, "l0");
        assert!(ir.total_dram_bytes() < 0.02 * d.attn_bytes() as f64);
    }

    #[test]
    fn buffer_identities_link_forward_and_backward() {
        let d = dims();
        let t = TileConfig::default();
        // recomposed dV reads the same x'/r' the forward fused QK wrote
        let dv = matmul_dv(&d, t, "l0", true);
        assert!(dv.reads.iter().any(|b| b.id == "l0.x_prime"));
        assert!(dv.reads.iter().any(|b| b.id == "l0.r_prime"));
        // baseline softmax bwd reads the forward's probs
        let sb = softmax_backward_monolithic(&d, "l0");
        assert!(sb.reads.iter().any(|b| b.id == "l0.probs"));
    }
}
