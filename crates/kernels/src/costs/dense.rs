//! Cost profiles for the dense-attention kernels (BERT, GPT-Neo).

use super::{
    buf, AttnDims, TileConfig, EXP_FLOP_EQUIV, FP16_BYTES, FUSED_MATMUL_EFFICIENCY,
    FUSED_MATMUL_F16ACC_EFFICIENCY, GS_PROLOGUE_EFFICIENCY, MATMUL_ROOFLINE_EFFICIENCY,
    SOFTMAX_PHASE_EFFICIENCY, STREAM_EFFICIENCY,
};
use resoftmax_gpusim::{
    AccumFormat, KernelCategory, KernelDesc, KernelMeta, ParallelSplit, TbShape, TbWork,
};

/// Base metadata shared by every dense attention kernel.
fn attn_meta(dims: &AttnDims) -> KernelMeta {
    KernelMeta {
        rows: Some(dims.l),
        kv_len: Some(dims.kv_len),
        d_head: Some(dims.d_head),
        instances: Some(dims.instances()),
        ..KernelMeta::default()
    }
}

/// What the `Q·Kᵀ` MatMul's epilogue computes in addition to the MMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QkEpilogue {
    /// Raw scores only (HuggingFace-style; scale/mask run as separate
    /// kernels).
    None,
    /// Scale + mask fused (TensorRT/DeepSpeed-style baseline, §4).
    ScaleMask,
    /// Scale + mask + Local Softmax fused — the paper's contribution (SDF).
    /// Writes `x'`, `m'`, `d'` instead of raw scores.
    ScaleMaskLocalSoftmax,
    /// [`ScaleMaskLocalSoftmax`](Self::ScaleMaskLocalSoftmax) with the LS
    /// partial sums accumulated in binary16 instead of binary32: cheaper
    /// (halved accumulator registers), admissible only where the analyzer
    /// certifies the resulting error bound.
    ScaleMaskLocalSoftmaxF16Acc,
}

impl QkEpilogue {
    /// `true` for the epilogues that fuse a Local Softmax.
    pub fn fuses_ls(self) -> bool {
        matches!(
            self,
            QkEpilogue::ScaleMaskLocalSoftmax | QkEpilogue::ScaleMaskLocalSoftmaxF16Acc
        )
    }
}

/// What the `P·V` MatMul's prologue computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PvPrologue {
    /// Reads finished probabilities (baseline).
    None,
    /// Reads `x'` and `r'`, applying Global Scaling on the fly (SDF).
    GlobalScaling,
}

/// Cost of the `Q·Kᵀ` attention-score MatMul.
///
/// Per-TB traffic: Q and K fragments amortized (both fit L2 within the
/// kernel), the output tile streamed out. Tensor-core FLOPs `2·m·n·d_head`
/// per tile.
pub fn matmul_qk(
    dims: &AttnDims,
    tile: TileConfig,
    prefix: &str,
    epilogue: QkEpilogue,
) -> KernelDesc {
    let inst = dims.instances();
    let tiles_r = dims.l.div_ceil(tile.m) as u64;
    let tiles_c = dims.kv_len.div_ceil(tile.n) as u64;
    let grid = inst * tiles_r * tiles_c;

    let q_once = dims.q_bytes();
    let k_once = dims.kv_bytes();
    let tile_out_bytes = (tile.m * tile.n * FP16_BYTES) as f64;
    let per_tb_reads = (q_once + k_once) as f64 / grid as f64;

    let mn = (tile.m * tile.n) as f64;
    let (name_sfx, category, cuda_flops, extra_write, efficiency) = match epilogue {
        QkEpilogue::None => (
            "",
            KernelCategory::MatMulQk,
            0.0,
            0.0,
            MATMUL_ROOFLINE_EFFICIENCY,
        ),
        QkEpilogue::ScaleMask => (
            "+scale+mask",
            KernelCategory::MatMulQk,
            2.0 * mn,
            0.0,
            MATMUL_ROOFLINE_EFFICIENCY,
        ),
        QkEpilogue::ScaleMaskLocalSoftmax => (
            "+scale+mask+ls",
            KernelCategory::MatMulQk,
            // scale+mask (2) + exp (SFU) + max/sum reductions (~4) per element
            (2.0 + EXP_FLOP_EQUIV + 4.0) * mn,
            // m' and d': one value per row of the tile each
            (2 * tile.m * FP16_BYTES) as f64,
            FUSED_MATMUL_EFFICIENCY,
        ),
        QkEpilogue::ScaleMaskLocalSoftmaxF16Acc => (
            "+scale+mask+ls16",
            KernelCategory::MatMulQk,
            (2.0 + EXP_FLOP_EQUIV + 4.0) * mn,
            (2 * tile.m * FP16_BYTES) as f64,
            FUSED_MATMUL_F16ACC_EFFICIENCY,
        ),
    };

    let work = TbWork {
        cuda_flops,
        tensor_flops: 2.0 * mn * dims.d_head as f64,
        dram_read_bytes: per_tb_reads,
        dram_write_bytes: tile_out_bytes + extra_write,
        mem_active_fraction: 1.0,
        efficiency,
    };

    let mut b = KernelDesc::builder(
        format!("matmul_qk{name_sfx}(L={},T={})", dims.l, tile.n),
        category,
    );
    b.shape(TbShape::new(256, 16 * 1024, 128))
        .uniform(grid, work)
        .meta(KernelMeta {
            tile_m: Some(tile.m),
            tile_n: Some(tile.n),
            sub_vector: epilogue.fuses_ls().then_some(tile.n),
            fused_scale_mask: !matches!(epilogue, QkEpilogue::None),
            fused_ls: epilogue.fuses_ls(),
            split: Some(ParallelSplit::OutputTiles),
            accum: Some(match epilogue {
                QkEpilogue::ScaleMaskLocalSoftmaxF16Acc => AccumFormat::Fp16,
                _ => AccumFormat::Fp32,
            }),
            ..attn_meta(dims)
        })
        .reads(buf(prefix, "q"), q_once)
        .reads(buf(prefix, "k"), k_once);
    if epilogue.fuses_ls() {
        b.writes(buf(prefix, "x_prime"), dims.attn_bytes())
            .writes(buf(prefix, "m_prime"), dims.intermediate_bytes(tile.n))
            .writes(buf(prefix, "d_prime"), dims.intermediate_bytes(tile.n));
    } else {
        b.writes(buf(prefix, "scores"), dims.attn_bytes());
    }
    b.build()
}

/// Cost of the `P·V` context MatMul.
///
/// Per-TB traffic: the P (or `x'`) row strip is attention-matrix-sized and
/// streams per block; V is amortized (fits L2 within the kernel).
pub fn matmul_pv(
    dims: &AttnDims,
    tile: TileConfig,
    prefix: &str,
    prologue: PvPrologue,
) -> KernelDesc {
    let inst = dims.instances();
    // Output tiles widen to cover d_head (up to 128) so the P strip is
    // streamed once, as CUTLASS would configure for these shapes.
    let n = dims.d_head.min(128);
    let tiles_r = dims.l.div_ceil(tile.m) as u64;
    let tiles_c = dims.d_head.div_ceil(n) as u64;
    let grid = inst * tiles_r * tiles_c;

    let p_strip = (tile.m * dims.kv_len * FP16_BYTES) as f64;
    let v_once = dims.kv_bytes();
    let ml = (tile.m * dims.kv_len) as f64;

    let (name_sfx, cuda_flops, p_buf, extra_read, efficiency) = match prologue {
        PvPrologue::None => ("", 0.0, "probs", 0.0, MATMUL_ROOFLINE_EFFICIENCY),
        PvPrologue::GlobalScaling => (
            "gs+",
            // one multiply per x' element consumed
            ml,
            "x_prime",
            // r' fragment for the strip: one value per (row, sub-vector)
            (tile.m * (dims.kv_len / tile.n).max(1) * FP16_BYTES) as f64,
            GS_PROLOGUE_EFFICIENCY,
        ),
    };

    let work = TbWork {
        cuda_flops,
        tensor_flops: 2.0 * (tile.m * n) as f64 * dims.kv_len as f64,
        dram_read_bytes: p_strip + extra_read + v_once as f64 / grid as f64,
        dram_write_bytes: (tile.m * n * FP16_BYTES) as f64,
        mem_active_fraction: 1.0,
        efficiency,
    };

    let mut b = KernelDesc::builder(
        format!("{name_sfx}matmul_pv(L={})", dims.l),
        KernelCategory::MatMulPv,
    );
    b.shape(TbShape::new(256, 16 * 1024, 128))
        .uniform(grid, work)
        .meta(KernelMeta {
            tile_m: Some(tile.m),
            tile_n: Some(n),
            sub_vector: matches!(prologue, PvPrologue::GlobalScaling).then_some(tile.n),
            fused_gs: matches!(prologue, PvPrologue::GlobalScaling),
            split: Some(ParallelSplit::OutputTiles),
            accum: Some(AccumFormat::Fp32),
            ..attn_meta(dims)
        })
        .reads(buf(prefix, p_buf), dims.attn_bytes())
        .reads(buf(prefix, "v"), v_once)
        .writes(buf(prefix, "attn_out"), dims.qkv_bytes());
    if matches!(prologue, PvPrologue::GlobalScaling) {
        b.reads(buf(prefix, "r_prime"), dims.intermediate_bytes(tile.n));
    }
    b.build()
}

/// Cost of the monolithic (row-per-TB) softmax — the TensorRT-style dense
/// baseline: one sweep-resident row per thread block, three logical passes
/// over data held in shared memory, full attention matrix in and out of DRAM.
pub fn softmax_monolithic(dims: &AttnDims, prefix: &str, input: &str) -> KernelDesc {
    let rows = dims.l as u64 * dims.instances();
    let row_bytes = (dims.kv_len * FP16_BYTES) as f64;
    let threads = super::row_threads(dims.kv_len);
    let work = TbWork {
        // 5 ops per element (paper §3.1), with the exp weighted as SFU work:
        // max + subtract + exp + accumulate + scale.
        cuda_flops: (EXP_FLOP_EQUIV + 4.0) * dims.kv_len as f64,
        tensor_flops: 0.0,
        dram_read_bytes: row_bytes,
        dram_write_bytes: row_bytes,
        mem_active_fraction: 1.0,
        // The three strictly-ordered passes (max, normalizer, scale) are
        // separated by block-wide barriers, idling the memory pipe between
        // phases — row-softmax kernels reach ~60% of streaming bandwidth.
        efficiency: SOFTMAX_PHASE_EFFICIENCY,
    };
    KernelDesc::builder(format!("softmax(L={})", dims.l), KernelCategory::Softmax)
        .shape(TbShape::new(threads, (dims.kv_len * FP16_BYTES) as u32, 40))
        .uniform(rows, work)
        .meta(KernelMeta {
            split: Some(ParallelSplit::OutputRows),
            accum: Some(AccumFormat::Fp32),
            ..attn_meta(dims)
        })
        .reads(buf(prefix, input), dims.attn_bytes())
        .writes(buf(prefix, "probs"), dims.attn_bytes())
        .build()
}

/// Cost of the standalone LS kernel (softmax decomposition without fusion,
/// the paper's intermediate "SD" configuration): square `t × t` tiles, one
/// per thread block. Partial sums accumulate in binary32.
pub fn local_softmax(dims: &AttnDims, t: usize, prefix: &str, input: &str) -> KernelDesc {
    local_softmax_accum(dims, t, prefix, input, AccumFormat::Fp32)
}

/// [`local_softmax`] with an explicit partial-sum accumulator format; the
/// binary16 variant is only admissible where the analyzer certifies its
/// error bound.
pub fn local_softmax_accum(
    dims: &AttnDims,
    t: usize,
    prefix: &str,
    input: &str,
    accum: AccumFormat,
) -> KernelDesc {
    let tiles = dims.l.div_ceil(t) as u64 * dims.kv_len.div_ceil(t) as u64 * dims.instances();
    let tile_bytes = (t * t * FP16_BYTES) as f64;
    let work = TbWork {
        cuda_flops: (EXP_FLOP_EQUIV + 5.0) * (t * t) as f64,
        tensor_flops: 0.0,
        dram_read_bytes: tile_bytes,
        dram_write_bytes: tile_bytes + (2 * t * FP16_BYTES) as f64,
        mem_active_fraction: 1.0,
        efficiency: STREAM_EFFICIENCY,
    };
    let name_sfx = match accum {
        AccumFormat::Fp32 => "",
        AccumFormat::Fp16 => "16",
    };
    KernelDesc::builder(
        format!("ls{name_sfx}(L={},T={t})", dims.l),
        KernelCategory::LocalSoftmax,
    )
    .shape(TbShape::new(256, (t * t * FP16_BYTES) as u32, 40))
    .uniform(tiles, work)
    .meta(KernelMeta {
        sub_vector: Some(t),
        split: Some(ParallelSplit::RowSegments),
        accum: Some(accum),
        ..attn_meta(dims)
    })
    .reads(buf(prefix, input), dims.attn_bytes())
    .writes(buf(prefix, "x_prime"), dims.attn_bytes())
    .writes(buf(prefix, "m_prime"), dims.intermediate_bytes(t))
    .writes(buf(prefix, "d_prime"), dims.intermediate_bytes(t))
    .build()
}

/// Cost of the IR kernel: reduces `m'`,`d'` into `r'`. Tiny next to LS/GS
/// (paper Fig. 5: < 12.5% of decomposed-softmax time; < 2.9% of the original
/// softmax after fusion).
pub fn inter_reduction(dims: &AttnDims, t: usize, prefix: &str) -> KernelDesc {
    let n_sv = (dims.kv_len / t).max(1);
    let rows_per_tb = 64u64;
    let total_rows = dims.l as u64 * dims.instances();
    let grid = total_rows.div_ceil(rows_per_tb);
    let row_in = (2 * n_sv * FP16_BYTES) as f64; // m' + d'
    let row_out = (n_sv * FP16_BYTES) as f64; // r'
    let work = TbWork {
        cuda_flops: rows_per_tb as f64 * n_sv as f64 * (EXP_FLOP_EQUIV + 4.0),
        tensor_flops: 0.0,
        dram_read_bytes: rows_per_tb as f64 * row_in,
        dram_write_bytes: rows_per_tb as f64 * row_out,
        mem_active_fraction: 1.0,
        efficiency: STREAM_EFFICIENCY,
    };
    KernelDesc::builder(
        format!("ir(L={},T={t})", dims.l),
        KernelCategory::InterReduction,
    )
    .shape(TbShape::new(
        128,
        (2 * rows_per_tb as usize * n_sv * FP16_BYTES) as u32,
        32,
    ))
    .uniform(grid, work)
    .meta(KernelMeta {
        sub_vector: Some(t),
        split: Some(ParallelSplit::OutputRows),
        accum: Some(AccumFormat::Fp32),
        ..attn_meta(dims)
    })
    .reads(buf(prefix, "m_prime"), dims.intermediate_bytes(t))
    .reads(buf(prefix, "d_prime"), dims.intermediate_bytes(t))
    .writes(buf(prefix, "r_prime"), dims.intermediate_bytes(t))
    .build()
}

/// Cost of the standalone GS kernel: elementwise scaling of `x'` by `r'`.
pub fn global_scaling(dims: &AttnDims, t: usize, prefix: &str) -> KernelDesc {
    let elems_per_tb = 2048usize;
    let total = dims.l as u64 * dims.kv_len as u64 * dims.instances();
    let grid = total.div_ceil(elems_per_tb as u64);
    let work = TbWork {
        cuda_flops: elems_per_tb as f64,
        tensor_flops: 0.0,
        dram_read_bytes: (elems_per_tb * FP16_BYTES) as f64
            + (elems_per_tb / t.max(1) * FP16_BYTES) as f64,
        dram_write_bytes: (elems_per_tb * FP16_BYTES) as f64,
        mem_active_fraction: 1.0,
        efficiency: STREAM_EFFICIENCY,
    };
    KernelDesc::builder(
        format!("gs(L={},T={t})", dims.l),
        KernelCategory::GlobalScaling,
    )
    .shape(TbShape::new(256, 0, 24))
    .uniform(grid, work)
    .meta(KernelMeta {
        sub_vector: Some(t),
        split: Some(ParallelSplit::Elements),
        ..attn_meta(dims)
    })
    .reads(buf(prefix, "x_prime"), dims.attn_bytes())
    .reads(buf(prefix, "r_prime"), dims.intermediate_bytes(t))
    .writes(buf(prefix, "probs"), dims.attn_bytes())
    .build()
}

/// Extension: cost of a fully fused online-softmax attention kernel
/// (FlashAttention-style — see `crate::online`): one thread block per
/// `tile.m`-row Q block streams all K/V tiles, so the attention matrix never
/// touches DRAM at all. The price: a large working set (K/V tiles plus an
/// f32 output accumulator in shared memory/registers) that caps occupancy,
/// and the same SFU-heavy inner loop as the LS epilogue.
pub fn fused_mha_online(dims: &AttnDims, tile: TileConfig, prefix: &str) -> KernelDesc {
    let inst = dims.instances();
    let grid = dims.l.div_ceil(tile.m) as u64 * inst;

    let q_once = dims.q_bytes();
    let k_once = dims.kv_bytes();
    let v_once = dims.kv_bytes();
    let ml = (tile.m * dims.kv_len) as f64;

    let work = TbWork {
        // exp + running-max/normalizer update + accumulator rescale
        cuda_flops: (EXP_FLOP_EQUIV + 8.0) * ml,
        // both MatMuls: 2·m·L·d each
        tensor_flops: 4.0 * ml * dims.d_head as f64,
        dram_read_bytes: (q_once + k_once + v_once) as f64 / grid as f64,
        dram_write_bytes: (tile.m * dims.d_head * FP16_BYTES) as f64,
        mem_active_fraction: 1.0,
        efficiency: FUSED_MATMUL_EFFICIENCY,
    };
    KernelDesc::builder(
        format!("fused_mha_online(L={},T={})", dims.l, tile.n),
        KernelCategory::FusedAttention,
    )
    // K/V tile double-buffers + f32 accumulator tile: a big footprint that
    // limits residency (FlashAttention v1-era occupancy) while still fitting
    // the smallest evaluation GPU's 48 KB of usable shared memory.
    .shape(TbShape::new(256, 32 * 1024, 120))
    .uniform(grid, work)
    .meta(KernelMeta {
        tile_m: Some(tile.m),
        tile_n: Some(tile.n),
        split: Some(ParallelSplit::OutputRows),
        accum: Some(AccumFormat::Fp32),
        ..attn_meta(dims)
    })
    .reads(buf(prefix, "q"), q_once)
    .reads(buf(prefix, "k"), k_once)
    .reads(buf(prefix, "v"), v_once)
    .writes(buf(prefix, "attn_out"), dims.qkv_bytes())
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert_dims() -> AttnDims {
        AttnDims::new(4096, 64, 16, 1)
    }

    #[test]
    fn qk_traffic_dominated_by_output() {
        let k = matmul_qk(
            &bert_dims(),
            TileConfig::default(),
            "l0",
            QkEpilogue::ScaleMask,
        );
        let total = k.total_dram_bytes();
        let out = 512.0 * 1024.0 * 1024.0;
        assert!(total >= out, "writes the 512MB attention matrix");
        assert!(total < out * 1.1, "Q/K amortized: {total}");
        // 2·L²·d FLOPs per instance
        let flops = k.total_flops();
        let expected = 2.0 * 4096.0 * 4096.0 * 64.0 * 16.0;
        assert!(
            (flops - expected).abs() / expected < 0.05,
            "{flops} vs {expected}"
        );
    }

    #[test]
    fn ls_epilogue_adds_cuda_work_and_intermediates() {
        let plain = matmul_qk(
            &bert_dims(),
            TileConfig::default(),
            "l0",
            QkEpilogue::ScaleMask,
        );
        let fused = matmul_qk(
            &bert_dims(),
            TileConfig::default(),
            "l0",
            QkEpilogue::ScaleMaskLocalSoftmax,
        );
        assert!(fused.total_flops() > plain.total_flops());
        assert!(fused.total_dram_bytes() > plain.total_dram_bytes());
        // but the extra m'/d' bytes are ~1/32 of the attention matrix (2/T·64)
        let extra = fused.total_dram_bytes() - plain.total_dram_bytes();
        assert!(extra < 0.05 * plain.total_dram_bytes(), "extra {extra}");
        assert!(fused.writes.iter().any(|b| b.id == "l0.m_prime"));
    }

    #[test]
    fn f16_accum_epilogue_is_cheaper_and_declares_its_format() {
        let f32acc = matmul_qk(
            &bert_dims(),
            TileConfig::new(64, 16),
            "l0",
            QkEpilogue::ScaleMaskLocalSoftmax,
        );
        let f16acc = matmul_qk(
            &bert_dims(),
            TileConfig::new(64, 16),
            "l0",
            QkEpilogue::ScaleMaskLocalSoftmaxF16Acc,
        );
        // Identical bytes and FLOPs; only the efficiency (and thus time)
        // and the declared accumulator format differ.
        assert_eq!(f16acc.total_dram_bytes(), f32acc.total_dram_bytes());
        assert_eq!(f16acc.total_flops(), f32acc.total_flops());
        assert_eq!(f16acc.meta.accum, Some(AccumFormat::Fp16));
        assert_eq!(f32acc.meta.accum, Some(AccumFormat::Fp32));
        assert!(f16acc.meta.fused_ls && f16acc.meta.sub_vector == Some(16));
        assert!(f16acc.name.contains("ls16"));

        let ls16 = local_softmax_accum(&bert_dims(), 16, "l0", "scores", AccumFormat::Fp16);
        assert_eq!(ls16.meta.accum, Some(AccumFormat::Fp16));
        assert!(ls16.name.starts_with("ls16"));
        let ls = local_softmax(&bert_dims(), 16, "l0", "scores");
        assert_eq!(ls.meta.accum, Some(AccumFormat::Fp32));
        assert_eq!(ls.total_dram_bytes(), ls16.total_dram_bytes());
    }

    #[test]
    fn pv_streams_attention_matrix_once() {
        let k = matmul_pv(&bert_dims(), TileConfig::default(), "l0", PvPrologue::None);
        let reads = k.tbs.total_read_bytes();
        let attn = 512.0 * 1024.0 * 1024.0;
        assert!(reads >= attn, "P streamed: {reads}");
        assert!(reads < attn * 1.1, "V amortized: {reads}");
    }

    #[test]
    fn gs_prologue_reads_x_prime_and_r_prime() {
        let k = matmul_pv(
            &bert_dims(),
            TileConfig::default(),
            "l0",
            PvPrologue::GlobalScaling,
        );
        assert!(k.reads.iter().any(|b| b.id == "l0.x_prime"));
        assert!(k.reads.iter().any(|b| b.id == "l0.r_prime"));
        assert!(!k.reads.iter().any(|b| b.id == "l0.probs"));
    }

    #[test]
    fn softmax_sweeps_attention_matrix_twice() {
        let k = softmax_monolithic(&bert_dims(), "l0", "scores");
        let attn = 512.0 * 1024.0 * 1024.0;
        assert_eq!(k.total_dram_bytes(), 2.0 * attn);
        assert_eq!(k.tbs.count(), 4096 * 16);
        // paper: operational intensity ≈ 2.5 Op/B with the plain 5-op count;
        // our SFU-weighted count is higher but still firmly memory-bound
        // (< 25 FLOP/B, the paper's machine-balance threshold).
        let intensity = k.total_flops() / k.total_dram_bytes();
        assert!(intensity < 25.0, "memory bound: {intensity}");
    }

    #[test]
    fn decomposition_doubles_softmax_traffic_before_fusion() {
        // Paper §5.1: "By decomposing the softmax layer, the off-chip memory
        // traffic to the attention matrix is doubled."
        let d = bert_dims();
        let mono = softmax_monolithic(&d, "l0", "scores").total_dram_bytes();
        let sd: f64 = [
            local_softmax(&d, 64, "l0", "scores").total_dram_bytes(),
            inter_reduction(&d, 64, "l0").total_dram_bytes(),
            global_scaling(&d, 64, "l0").total_dram_bytes(),
        ]
        .iter()
        .sum();
        assert!(sd > 1.9 * mono, "sd {sd} vs mono {mono}");
        assert!(sd < 2.3 * mono);
    }

    #[test]
    fn ir_is_tiny() {
        let d = bert_dims();
        let ir = inter_reduction(&d, 64, "l0").total_dram_bytes();
        let mono = softmax_monolithic(&d, "l0", "scores").total_dram_bytes();
        assert!(ir < 0.05 * mono, "IR {ir} vs softmax {mono}");
    }

    #[test]
    fn grids_cover_edge_cases() {
        // Non-divisible L still produces a covering grid.
        let d = AttnDims::new(100, 64, 2, 1);
        let k = matmul_qk(&d, TileConfig::default(), "x", QkEpilogue::None);
        assert_eq!(k.tbs.count(), 2 * 2 * 2);
        let s = softmax_monolithic(&d, "x", "scores");
        assert_eq!(s.tbs.count(), 200);
    }
}

#[cfg(test)]
mod online_tests {
    use super::*;

    #[test]
    fn fused_mha_moves_only_qkv_and_output() {
        let d = AttnDims::new(4096, 64, 16, 1);
        let k = fused_mha_online(&d, TileConfig::default(), "l0");
        // 3 inputs + 1 output, each 8 MB: no attention-matrix traffic at all.
        let expected = 4.0 * d.qkv_bytes() as f64;
        let total = k.total_dram_bytes();
        assert!(
            (total - expected).abs() / expected < 0.01,
            "traffic {total} vs {expected}"
        );
        // both MatMuls' FLOPs in one kernel
        let flops = k.tbs.total_tensor_flops();
        let expected_flops = 4.0 * 4096.0 * 4096.0 * 64.0 * 16.0;
        assert!((flops - expected_flops).abs() / expected_flops < 0.05);
        assert_eq!(k.category, KernelCategory::FusedAttention);
    }

    #[test]
    fn fused_mha_cross_attention_streams_kv_side() {
        let d = AttnDims::cross(1024, 4096, 64, 16, 1);
        let k = fused_mha_online(&d, TileConfig::default(), "l0");
        let expected = (d.q_bytes() + 2 * d.kv_bytes() + d.q_bytes()) as f64;
        assert!((k.total_dram_bytes() - expected).abs() / expected < 0.01);
    }
}
