//! Cost profiles: [`resoftmax_gpusim::KernelDesc`] generators for every
//! kernel in the catalog.
//!
//! Each generator derives the kernel's grid, per-thread-block resources and
//! per-block work *from the same tiling the numeric implementations use*, so
//! the performance model and the mathematics cannot drift apart.
//!
//! Conventions shared by all generators:
//!
//! * FP16 storage everywhere (2 bytes/element), matching the paper's
//!   evaluation setup.
//! * Transcendentals cost [`EXP_FLOP_EQUIV`] CUDA-FLOP equivalents — GPU
//!   `exp` runs on the SFU pipe at a fraction of FMA throughput, which is
//!   what makes LS/GS epilogues add a visible 28–55% to fused MatMul time
//!   (§5.1) despite being "a few ops per element".
//! * Per-block DRAM traffic counts each operand once per *cache lifetime*:
//!   operands small enough to stay L2-resident within a kernel (Q/K/V
//!   fragments, weights) are amortized across the grid; attention-matrix-
//!   sized operands are streamed per block. Inter-kernel reuse is the
//!   simulator's L2 model's job, driven by the buffer declarations.

pub mod common;
pub mod dense;
pub mod sparse;
pub mod sparse_training;
pub mod training;

use serde::{Deserialize, Serialize};

/// Bytes per stored element (half precision).
pub const FP16_BYTES: usize = 2;

/// CUDA-FLOP equivalents of one transcendental (exp): SFU `MUFU.EX2` issues
/// far below FMA rate but interleaves with loads; 16 is the effective
/// per-element weight once that overlap is accounted for. The *serialized*
/// cost a fused epilogue adds to a MatMul is modeled separately via
/// [`FUSED_MATMUL_EFFICIENCY`].
pub const EXP_FLOP_EQUIV: f64 = 16.0;

/// Roofline efficiencies: the fraction of peak rates each kernel class
/// achieves, calibrated jointly so the paper's Fig. 2 breakdown, the SD/SDF
/// speedups of Fig. 8, and the "+28–55% fused-MatMul time" observation are
/// simultaneously consistent (they pin these values tightly — see
/// EXPERIMENTS.md §Calibration).
///
/// Dense/tensor-core MatMul and FC kernels: pipeline drain, epilogue and tile
/// quantization keep real CUTLASS/cuBLAS kernels near 3/4 of roofline.
pub const MATMUL_ROOFLINE_EFFICIENCY: f64 = 0.75;

/// Monolithic (row-per-block) softmax: the three strictly-ordered passes are
/// separated by block-wide barriers that idle the memory pipe between phases.
pub const SOFTMAX_PHASE_EFFICIENCY: f64 = 0.6;

/// Additional factor on the *block-sparse* baseline softmax: the row is
/// traversed through block-index indirection (segment starts per retained
/// block), on top of the phase barriers.
pub const SPARSE_GATHER_EFFICIENCY: f64 = 0.85;

/// Single-pass streaming kernels (standalone LS/IR/GS, elementwise,
/// LayerNorm): near-peak.
pub const STREAM_EFFICIENCY: f64 = 0.93;

/// MatMul with a fused LS *epilogue*: the SFU exponentials and reduction
/// state serialize against the MMA pipeline and cost occupancy, leaving the
/// fused kernel ~45% slower than the plain MatMul — the top of the paper's
/// §5.1 band ("the execution time of MatMul increases by approximately
/// 28%∼55%"): 0.75 × 0.70.
pub const FUSED_MATMUL_EFFICIENCY: f64 = 0.52;

/// MatMul with a fused LS epilogue whose partial sums accumulate in
/// binary16 instead of binary32: halving the accumulator register
/// pressure lifts occupancy enough to claw back a few points of the fused
/// penalty (0.75 × 0.75) — but the variant is only *legal* where the
/// analyzer's numerics pass certifies its error bound (small `T`).
pub const FUSED_MATMUL_F16ACC_EFFICIENCY: f64 = 0.56;

/// MatMul with a fused GS-style *prologue* (elementwise multiply on the
/// streamed operand, no transcendentals): a milder ~30% slowdown — the
/// bottom of the paper's 28–55% band: 0.75 × 0.77.
pub const GS_PROLOGUE_EFFICIENCY: f64 = 0.58;

/// Dimensions of one multi-head attention invocation.
///
/// Self-attention has a square `L × L` attention matrix; *cross*-attention
/// (decoder queries over encoder keys, §2.1) is rectangular `L × L_kv` —
/// construct with [`AttnDims::cross`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttnDims {
    /// Query-side sequence length `L` (attention-matrix rows).
    pub l: usize,
    /// Key/value-side sequence length (attention-matrix columns). Equals
    /// `l` for self-attention.
    pub kv_len: usize,
    /// Per-head hidden size `D_head`.
    pub d_head: usize,
    /// Number of heads `H_num`.
    pub heads: usize,
    /// Batch size.
    pub batch: usize,
}

impl AttnDims {
    /// Self-attention dimensions (`kv_len == l`).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(l: usize, d_head: usize, heads: usize, batch: usize) -> Self {
        Self::cross(l, l, d_head, heads, batch)
    }

    /// Cross-attention dimensions: `l` queries over `kv_len` keys/values.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn cross(l: usize, kv_len: usize, d_head: usize, heads: usize, batch: usize) -> Self {
        assert!(
            l > 0 && kv_len > 0 && d_head > 0 && heads > 0 && batch > 0,
            "dimensions must be nonzero"
        );
        AttnDims {
            l,
            kv_len,
            d_head,
            heads,
            batch,
        }
    }

    /// Independent attention instances (`heads × batch`).
    pub fn instances(&self) -> u64 {
        (self.heads * self.batch) as u64
    }

    /// Bytes of one full attention matrix across all instances.
    pub fn attn_bytes(&self) -> u64 {
        (self.l * self.kv_len * FP16_BYTES) as u64 * self.instances()
    }

    /// Bytes of the query-side `L × D_head` operand across all instances.
    pub fn q_bytes(&self) -> u64 {
        (self.l * self.d_head * FP16_BYTES) as u64 * self.instances()
    }

    /// Bytes of one key/value-side `L_kv × D_head` operand across all
    /// instances.
    pub fn kv_bytes(&self) -> u64 {
        (self.kv_len * self.d_head * FP16_BYTES) as u64 * self.instances()
    }

    /// Bytes of one `L × D_head` operand (Q or the SDA output) across all
    /// instances. Retained alias of [`AttnDims::q_bytes`] for self-attention
    /// call sites.
    pub fn qkv_bytes(&self) -> u64 {
        self.q_bytes()
    }

    /// Bytes of the `m'`/`d'`/`r'` intermediates for sub-vector length `t`
    /// across all instances (one value per row per sub-vector of the
    /// key-side axis).
    pub fn intermediate_bytes(&self, t: usize) -> u64 {
        ((self.l * (self.kv_len / t).max(1)) * FP16_BYTES) as u64 * self.instances()
    }
}

/// MatMul output-tile configuration. The tile width `n` doubles as the LS
/// sub-vector length `T` when LS is fused (§3.3: "setting T of the LS kernel
/// equal to the output tile width of the MatMul kernel").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileConfig {
    /// Tile height (rows of the output per thread block).
    pub m: usize,
    /// Tile width — the paper's `T`.
    pub n: usize,
}

impl Default for TileConfig {
    /// 64×64 tiles: the paper observes `T ≥ 64` in transformer MatMuls.
    fn default() -> Self {
        TileConfig { m: 64, n: 64 }
    }
}

impl TileConfig {
    /// Creates a tile configuration.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m > 0 && n > 0, "tile dims must be nonzero");
        TileConfig { m, n }
    }
}

/// Thread count for a row-resident kernel over `elems` elements: one thread
/// per four elements, warp-aligned (a multiple of 32), within `[32, 1024]`.
/// Real row kernels launch whole warps; a grid of, say, 65 threads would
/// leave 31 lanes of the third warp idle while still occupying its scheduler
/// slot, so occupancy math must see the rounded figure.
pub fn row_threads(elems: usize) -> u32 {
    ((elems / 4).clamp(32, 1024).next_multiple_of(32)).min(1024) as u32
}

/// Derives a buffer id under a prefix (e.g. `buf("l3.h", "scores")` →
/// `"l3.h.scores"`). Producer and consumer kernels built with the same prefix
/// agree on identity, which is what drives the simulator's L2 model.
///
/// An empty prefix passes `name` through unchanged, letting callers address
/// buffers across prefixes (layer-boundary activations).
pub fn buf(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_owned()
    } else {
        format!("{prefix}.{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_byte_math() {
        // BERT-large at L=4096: 16 heads, d_head 64, batch 1.
        let d = AttnDims::new(4096, 64, 16, 1);
        assert_eq!(d.instances(), 16);
        // paper §2.3: "the attention matrix is 512MB in size for a single
        // batch assuming a half-precision floating-point number per element"
        assert_eq!(d.attn_bytes(), 512 * 1024 * 1024);
        assert_eq!(d.qkv_bytes(), 8 * 1024 * 1024);
        // m'/d' at T=64: 1/64th of one attention-matrix plane per instance
        assert_eq!(d.intermediate_bytes(64), 512 * 1024 * 1024 / 64);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_panic() {
        let _ = AttnDims::new(0, 64, 16, 1);
    }

    #[test]
    fn tile_default_matches_paper_observation() {
        let t = TileConfig::default();
        assert!(t.n >= 64);
    }

    #[test]
    fn buffer_ids_compose() {
        assert_eq!(buf("l0", "scores"), "l0.scores");
    }
}
