//! Cost profiles for the non-attention kernels: FC / FeedForward MatMuls,
//! standalone elementwise layers (scale, mask, bias, activation, residual),
//! and LayerNorm.

use super::{buf, EXP_FLOP_EQUIV, FP16_BYTES, MATMUL_ROOFLINE_EFFICIENCY, STREAM_EFFICIENCY};
use resoftmax_gpusim::{KernelCategory, KernelDesc, KernelMeta, ParallelSplit, TbShape, TbWork};

/// Cost of a fully-connected MatMul: `[rows × d_in] · [d_in × d_out]`
/// (weights stationary), with optional fused bias+activation epilogue.
///
/// `rows` is typically `L × batch` (heads are not split for FC layers).
// Flat scalar parameters mirror the kernel's launch signature; a params
// struct would only rename them.
pub fn fc(
    rows: usize,
    d_in: usize,
    d_out: usize,
    category: KernelCategory,
    prefix: &str,
    input: &str,
    output: &str,
    fused_bias_activation: bool,
) -> KernelDesc {
    let (tm, tn) = (64usize, 64usize.min(d_out));
    let grid = (rows.div_ceil(tm) as u64) * (d_out.div_ceil(tn) as u64);

    let in_once = (rows * d_in * FP16_BYTES) as u64;
    let w_once = (d_in * d_out * FP16_BYTES) as u64;
    let out_bytes = (rows * d_out * FP16_BYTES) as u64;

    let mn = (tm * tn) as f64;
    let epilogue = if fused_bias_activation {
        // bias add + GeLU (tanh approximation ≈ 2 transcendental-ish + muls)
        (1.0 + EXP_FLOP_EQUIV) * mn
    } else {
        0.0
    };

    let work = TbWork {
        cuda_flops: epilogue,
        tensor_flops: 2.0 * mn * d_in as f64,
        dram_read_bytes: (in_once + w_once) as f64 / grid as f64,
        dram_write_bytes: (tm * tn * FP16_BYTES) as f64,
        mem_active_fraction: 1.0,
        efficiency: MATMUL_ROOFLINE_EFFICIENCY,
    };
    KernelDesc::builder(format!("fc({rows}x{d_in}->{d_out})"), category)
        .shape(TbShape::new(256, 16 * 1024, 128))
        .uniform(grid, work)
        .meta(KernelMeta {
            tile_m: Some(tm),
            tile_n: Some(tn),
            rows: Some(rows),
            d_in: Some(d_in),
            d_out: Some(d_out),
            split: Some(ParallelSplit::OutputTiles),
            ..KernelMeta::default()
        })
        .reads(buf(prefix, input), in_once)
        .reads(buf(prefix, &format!("{output}.w")), w_once)
        .writes(buf(prefix, output), out_bytes)
        .build()
}

/// Cost of a standalone elementwise kernel over `elems` elements with
/// `flops_per_elem` arithmetic, reading `reads_per_elem` operand streams.
///
/// Used for the *unfused* library profiles (HuggingFace runs scale, mask,
/// bias and activation as separate kernels, Fig. 7).
pub fn elementwise(
    elems: u64,
    flops_per_elem: f64,
    reads_per_elem: usize,
    category: KernelCategory,
    name: &str,
    prefix: &str,
    inputs: &[&str],
    output: &str,
) -> KernelDesc {
    let per_tb = 2048u64;
    let grid = elems.div_ceil(per_tb);
    let work = TbWork {
        cuda_flops: flops_per_elem * per_tb as f64,
        tensor_flops: 0.0,
        dram_read_bytes: (per_tb as usize * reads_per_elem * FP16_BYTES) as f64,
        dram_write_bytes: (per_tb as usize * FP16_BYTES) as f64,
        mem_active_fraction: 1.0,
        efficiency: STREAM_EFFICIENCY,
    };
    let mut b = KernelDesc::builder(name, category);
    b.shape(TbShape::new(256, 0, 24))
        .uniform(grid, work)
        .meta(KernelMeta {
            elems: Some(elems),
            input_streams: Some(reads_per_elem),
            split: Some(ParallelSplit::Elements),
            ..KernelMeta::default()
        });
    for input in inputs {
        b.reads(buf(prefix, input), elems * FP16_BYTES as u64);
    }
    b.writes(buf(prefix, output), elems * FP16_BYTES as u64);
    b.build()
}

/// Cost of LayerNorm over `rows` rows of width `d` (two reduction passes +
/// normalize, row-resident in shared memory like softmax).
pub fn layernorm(rows: usize, d: usize, prefix: &str, input: &str, output: &str) -> KernelDesc {
    let row_bytes = (d * FP16_BYTES) as f64;
    let work = TbWork {
        // mean + variance + normalize ≈ 8 ops/element, plus one rsqrt per row
        cuda_flops: 8.0 * d as f64 + EXP_FLOP_EQUIV,
        tensor_flops: 0.0,
        dram_read_bytes: row_bytes,
        dram_write_bytes: row_bytes,
        mem_active_fraction: 1.0,
        efficiency: STREAM_EFFICIENCY,
    };
    KernelDesc::builder(format!("layernorm({rows}x{d})"), KernelCategory::LayerNorm)
        .shape(TbShape::new(
            super::row_threads(d),
            (d * FP16_BYTES) as u32,
            32,
        ))
        .uniform(rows as u64, work)
        .meta(KernelMeta {
            rows: Some(rows),
            d_out: Some(d),
            split: Some(ParallelSplit::OutputRows),
            ..KernelMeta::default()
        })
        .reads(buf(prefix, input), (rows * d * FP16_BYTES) as u64)
        .writes(buf(prefix, output), (rows * d * FP16_BYTES) as u64)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_flops_and_traffic() {
        // BERT-large QKV projection: 4096 rows, 1024 -> 1024.
        let k = fc(
            4096,
            1024,
            1024,
            KernelCategory::Fc,
            "l0",
            "hidden",
            "q",
            false,
        );
        let expected_flops = 2.0 * 4096.0 * 1024.0 * 1024.0;
        assert!((k.total_flops() - expected_flops).abs() / expected_flops < 0.05);
        // activations 8MB + weights 2MB + output 8MB
        let t = k.total_dram_bytes();
        assert!(t > 17e6 && t < 20e6, "traffic {t}");
    }

    #[test]
    fn fc_epilogue_adds_flops_only() {
        let plain = fc(
            4096,
            1024,
            4096,
            KernelCategory::FeedForward,
            "l0",
            "x",
            "ff1",
            false,
        );
        let fused = fc(
            4096,
            1024,
            4096,
            KernelCategory::FeedForward,
            "l0",
            "x",
            "ff1",
            true,
        );
        assert!(fused.total_flops() > plain.total_flops());
        assert_eq!(fused.total_dram_bytes(), plain.total_dram_bytes());
    }

    #[test]
    fn elementwise_scale_kernel() {
        let elems = 4096u64 * 4096 * 16;
        let k = elementwise(
            elems,
            1.0,
            1,
            KernelCategory::Scale,
            "scale",
            "l0",
            &["scores"],
            "scores_scaled",
        );
        // read + write the full attention matrix
        assert_eq!(k.total_dram_bytes(), (elems * 4) as f64);
        assert_eq!(k.total_flops(), elems as f64);
    }

    #[test]
    fn layernorm_is_memory_bound() {
        let k = layernorm(4096, 1024, "l0", "x", "x_norm");
        let intensity = k.total_flops() / k.total_dram_bytes();
        assert!(intensity < 25.0);
        assert_eq!(k.tbs.count(), 4096);
    }
}
