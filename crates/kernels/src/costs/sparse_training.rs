//! Backward-pass cost profiles for *block-sparse* attention — completing the
//! §6 training extension for BigBird/Longformer-class models.
//!
//! The backward chain mirrors the dense one (`dV`, `dP`, Eq. 3, `dQ`, `dK`)
//! restricted to the retained blocks. The baseline's standalone softmax
//! backward is a row kernel with the same §5.1 pathology as the forward
//! baseline: resources sized for the worst-case row, most threads idle.
//! The recomposed form decomposes the row dot per retained block and leaves
//! an elementwise `dS` over the support.

use super::{
    buf, AttnDims, FP16_BYTES, GS_PROLOGUE_EFFICIENCY, MATMUL_ROOFLINE_EFFICIENCY,
    SOFTMAX_PHASE_EFFICIENCY, SPARSE_GATHER_EFFICIENCY, STREAM_EFFICIENCY,
};
use resoftmax_gpusim::{KernelCategory, KernelDesc, TbGroup, TbShape, TbWork};
use resoftmax_sparse::BlockLayout;

fn nnz_bytes(layout: &BlockLayout, dims: &AttnDims) -> u64 {
    (layout.nnz_elements() * FP16_BYTES) as u64 * dims.instances()
}

/// Block-sparse backward MatMul over one attention plane (`dV = Pᵀ·dOut` or
/// `dQ`/`dK` from `dS`): one thread block per block-row, work proportional
/// to the row's retained blocks.
fn bs_plane_matmul(
    layout: &BlockLayout,
    dims: &AttnDims,
    prefix: &str,
    name: &str,
    plane: &str,
    extra_small_reads: usize,
    output: &str,
    recomposed: bool,
) -> KernelDesc {
    let b = layout.block();
    let small_once = dims.qkv_bytes();
    let grid: u64 = layout.n_blocks() as u64 * dims.instances();
    let groups: Vec<TbGroup> = layout
        .row_counts()
        .iter()
        .map(|&cnt| {
            let p_bytes = (cnt * b * b * FP16_BYTES) as f64;
            TbGroup::new(
                TbWork {
                    cuda_flops: if recomposed {
                        (cnt * b * b) as f64
                    } else {
                        0.0
                    },
                    tensor_flops: 2.0 * (b * dims.d_head) as f64 * (cnt * b) as f64,
                    dram_read_bytes: p_bytes
                        + (1 + extra_small_reads) as f64 * small_once as f64 / grid as f64,
                    dram_write_bytes: (b * dims.d_head * FP16_BYTES) as f64,
                    mem_active_fraction: 1.0,
                    efficiency: if recomposed {
                        GS_PROLOGUE_EFFICIENCY
                    } else {
                        MATMUL_ROOFLINE_EFFICIENCY
                    },
                },
                dims.instances(),
            )
        })
        .collect();
    KernelDesc::builder(format!("{name}(L={})", dims.l), KernelCategory::MatMulPv)
        .shape(TbShape::new(256, 16 * 1024, 128))
        .grouped(groups)
        .reads(buf(prefix, plane), nnz_bytes(layout, dims))
        .writes(buf(prefix, output), dims.qkv_bytes())
        .build()
}

/// `dV` over the retained blocks. Recomposed reconstructs `P` from `x'`/`r'`.
pub fn bs_matmul_dv(
    layout: &BlockLayout,
    dims: &AttnDims,
    prefix: &str,
    recomposed: bool,
) -> KernelDesc {
    bs_plane_matmul(
        layout,
        dims,
        prefix,
        if recomposed {
            "bs_bwd_dv+gs"
        } else {
            "bs_bwd_dv"
        },
        if recomposed { "x_prime" } else { "probs" },
        1,
        "d_v",
        recomposed,
    )
}

/// `dP` over the retained blocks, writing the sparse gradient plane
/// (plus per-block partial row-dots when recomposed).
pub fn bs_matmul_dp(
    layout: &BlockLayout,
    dims: &AttnDims,
    prefix: &str,
    recomposed: bool,
) -> KernelDesc {
    let b = layout.block();
    let grid = layout.nnz_blocks() as u64 * dims.instances();
    let bb = (b * b) as f64;
    let small_once = dims.qkv_bytes();
    let work = TbWork {
        cuda_flops: if recomposed { 3.0 * bb } else { 0.0 },
        tensor_flops: 2.0 * bb * dims.d_head as f64,
        dram_read_bytes: 2.0 * small_once as f64 / grid as f64,
        dram_write_bytes: bb * FP16_BYTES as f64
            + if recomposed {
                (b * FP16_BYTES) as f64
            } else {
                0.0
            },
        mem_active_fraction: 1.0,
        efficiency: if recomposed {
            GS_PROLOGUE_EFFICIENCY
        } else {
            MATMUL_ROOFLINE_EFFICIENCY
        },
    };
    let mut builder = KernelDesc::builder(
        format!(
            "bs_bwd_dp{}(L={})",
            if recomposed { "+localdot" } else { "" },
            dims.l
        ),
        KernelCategory::MatMulQk,
    );
    builder
        .shape(TbShape::new(256, 16 * 1024, 128))
        .uniform(grid, work)
        .reads(buf(prefix, "d_attn_out"), small_once)
        .reads(buf(prefix, "v"), small_once)
        .writes(buf(prefix, "d_probs"), nnz_bytes(layout, dims));
    if recomposed {
        builder.writes(
            buf(prefix, "dot_partial"),
            (layout.nnz_blocks() * b * FP16_BYTES) as u64 * dims.instances(),
        );
    }
    builder.build()
}

/// Baseline: standalone block-sparse softmax backward — one thread block per
/// row sized for the worst case, with only the support active (the §5.1
/// pathology, again).
pub fn bs_softmax_backward(layout: &BlockLayout, dims: &AttnDims, prefix: &str) -> KernelDesc {
    let b = layout.block();
    let groups: Vec<TbGroup> = layout
        .row_counts()
        .iter()
        .map(|&cnt| {
            let support = cnt * b;
            let bytes = (support * FP16_BYTES) as f64;
            TbGroup::new(
                TbWork {
                    cuda_flops: 4.0 * support as f64,
                    tensor_flops: 0.0,
                    dram_read_bytes: 2.0 * bytes,
                    dram_write_bytes: bytes,
                    mem_active_fraction: support as f64 / dims.l as f64,
                    efficiency: SOFTMAX_PHASE_EFFICIENCY * SPARSE_GATHER_EFFICIENCY,
                },
                b as u64 * dims.instances(),
            )
        })
        .collect();
    KernelDesc::builder(
        format!("bs_softmax_bwd(L={})", dims.l),
        KernelCategory::Softmax,
    )
    .shape(TbShape::new(
        super::row_threads(dims.l),
        (2 * dims.l * FP16_BYTES) as u32,
        40,
    ))
    .grouped(groups)
    .reads(buf(prefix, "probs"), nnz_bytes(layout, dims))
    .reads(buf(prefix, "d_probs"), nnz_bytes(layout, dims))
    .writes(buf(prefix, "d_scores"), nnz_bytes(layout, dims))
    .build()
}

/// Recomposed: the elementwise `dS` over the retained blocks (after a tiny
/// row-dot reduction — reuse [`super::sparse::bs_inter_reduction`]-shaped
/// cost via [`bs_rowdot_reduction`]).
pub fn bs_ds_elementwise(layout: &BlockLayout, dims: &AttnDims, prefix: &str) -> KernelDesc {
    let b = layout.block();
    let grid = layout.nnz_blocks() as u64 * dims.instances();
    let bb = (b * b * FP16_BYTES) as f64;
    let work = TbWork {
        cuda_flops: 4.0 * (b * b) as f64,
        tensor_flops: 0.0,
        dram_read_bytes: 2.0 * bb + 2.0 * (b * FP16_BYTES) as f64,
        dram_write_bytes: bb,
        mem_active_fraction: 1.0,
        efficiency: STREAM_EFFICIENCY,
    };
    KernelDesc::builder(
        format!("bs_bwd_ds(L={})", dims.l),
        KernelCategory::GlobalScaling,
    )
    .shape(TbShape::new(256, 0, 24))
    .uniform(grid, work)
    .reads(buf(prefix, "d_probs"), nnz_bytes(layout, dims))
    .reads(buf(prefix, "x_prime"), nnz_bytes(layout, dims))
    .reads(
        buf(prefix, "rowdot"),
        (dims.l as u64 * dims.instances()) * FP16_BYTES as u64,
    )
    .writes(buf(prefix, "d_scores"), nnz_bytes(layout, dims))
    .build()
}

/// Recomposed: reduces the per-block partial row-dots (tiny).
pub fn bs_rowdot_reduction(layout: &BlockLayout, dims: &AttnDims, prefix: &str) -> KernelDesc {
    let b = layout.block();
    let groups: Vec<TbGroup> = layout
        .row_counts()
        .iter()
        .map(|&cnt| {
            TbGroup::new(
                TbWork {
                    cuda_flops: 2.0 * (cnt.max(1) * b) as f64,
                    dram_read_bytes: (cnt.max(1) * b * FP16_BYTES) as f64,
                    dram_write_bytes: (b * FP16_BYTES) as f64,
                    ..Default::default()
                },
                dims.instances(),
            )
        })
        .collect();
    KernelDesc::builder(
        format!("bs_bwd_rowdot(L={})", dims.l),
        KernelCategory::InterReduction,
    )
    .shape(TbShape::new(128, 4096, 32))
    .grouped(groups)
    .reads(
        buf(prefix, "dot_partial"),
        (layout.nnz_blocks() * b * FP16_BYTES) as u64 * dims.instances(),
    )
    .writes(
        buf(prefix, "rowdot"),
        (dims.l as u64 * dims.instances()) * FP16_BYTES as u64,
    )
    .build()
}

/// `dQ = dS·K` or `dK = dSᵀ·Q` over the retained blocks, reading the sparse
/// `dS` plane (materialized by [`bs_softmax_backward`] in the baseline or by
/// [`bs_ds_elementwise`] when recomposed).
pub fn bs_matmul_dq_or_dk(
    layout: &BlockLayout,
    dims: &AttnDims,
    prefix: &str,
    output: &str,
) -> KernelDesc {
    bs_plane_matmul(
        layout,
        dims,
        prefix,
        &format!("bs_bwd_{output}"),
        "d_scores",
        1,
        output,
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_sparse::{pattern, BigBirdConfig};

    fn fixture() -> (BlockLayout, AttnDims) {
        (
            pattern::bigbird(4096, &BigBirdConfig::default()),
            AttnDims::new(4096, 64, 16, 1),
        )
    }

    #[test]
    fn baseline_backward_has_the_utilization_pathology() {
        let (layout, dims) = fixture();
        let k = bs_softmax_backward(&layout, &dims, "l0");
        if let resoftmax_gpusim::TbSet::Grouped(groups) = &k.tbs {
            let interior = &groups[layout.n_blocks() / 2];
            assert!(interior.work.mem_active_fraction < 0.2);
        } else {
            panic!("expected grouped");
        }
    }

    #[test]
    fn recomposed_backward_moves_less_and_streams_well() {
        let (layout, dims) = fixture();
        let baseline: f64 = [
            bs_matmul_dv(&layout, &dims, "l0", false).total_dram_bytes(),
            bs_matmul_dp(&layout, &dims, "l0", false).total_dram_bytes(),
            bs_softmax_backward(&layout, &dims, "l0").total_dram_bytes(),
            bs_plane_matmul(&layout, &dims, "l0", "dq", "d_scores", 1, "d_q", false)
                .total_dram_bytes(),
        ]
        .iter()
        .sum();
        let recomposed: f64 = [
            bs_matmul_dv(&layout, &dims, "l0", true).total_dram_bytes(),
            bs_matmul_dp(&layout, &dims, "l0", true).total_dram_bytes(),
            bs_rowdot_reduction(&layout, &dims, "l0").total_dram_bytes(),
            bs_ds_elementwise(&layout, &dims, "l0").total_dram_bytes(),
            bs_plane_matmul(&layout, &dims, "l0", "dq", "d_scores", 1, "d_q", false)
                .total_dram_bytes(),
        ]
        .iter()
        .sum();
        // Similar byte totals: the win is in rates (no pathological kernel).
        assert!(recomposed < baseline * 1.2, "{recomposed} vs {baseline}");
    }

    #[test]
    fn dq_variant_exists_for_schedules() {
        let (layout, dims) = fixture();
        let k = bs_plane_matmul(
            &layout,
            &dims,
            "l0",
            "bs_bwd_dq",
            "d_scores",
            1,
            "d_q",
            false,
        );
        assert!(k.reads.iter().any(|b| b.id == "l0.d_scores"));
        assert!(k.writes.iter().any(|b| b.id == "l0.d_q"));
    }
}
