//! Cost profiles for the block-sparse attention kernels (BigBird,
//! Longformer), built on a [`resoftmax_sparse::BlockLayout`].
//!
//! Two performance phenomena from the paper live here:
//!
//! * The **baseline sparse softmax** allocates every thread block for the
//!   worst-case row (full `L`) while only the row's support issues memory
//!   traffic — `mem_active_fraction = support / L`, which starves bandwidth
//!   utilization (§5.1). Decomposition (LS per retained block) restores
//!   `mem_active_fraction = 1`.
//! * The **`P·V` MatMul** assigns one thread block per output block-row,
//!   whose work scales with that row's retained-block count — the
//!   load-imbalance that batching alleviates (§5.2). These kernels emit
//!   [`TbGroup`]s so the simulator's fluid path sees the heterogeneity.

use super::{
    buf, AttnDims, EXP_FLOP_EQUIV, FP16_BYTES, FUSED_MATMUL_EFFICIENCY, GS_PROLOGUE_EFFICIENCY,
    MATMUL_ROOFLINE_EFFICIENCY, SOFTMAX_PHASE_EFFICIENCY, SPARSE_GATHER_EFFICIENCY,
    STREAM_EFFICIENCY,
};
use resoftmax_gpusim::{
    KernelCategory, KernelDesc, KernelMeta, ParallelSplit, TbGroup, TbShape, TbWork,
};
use resoftmax_sparse::BlockLayout;

/// Base metadata shared by every block-sparse attention kernel.
fn bs_meta(layout: &BlockLayout, dims: &AttnDims) -> KernelMeta {
    KernelMeta {
        rows: Some(dims.l),
        kv_len: Some(dims.kv_len),
        d_head: Some(dims.d_head),
        instances: Some(dims.instances()),
        sparse_block: Some(layout.block()),
        ..KernelMeta::default()
    }
}

fn nnz_bytes(layout: &BlockLayout, dims: &AttnDims) -> u64 {
    (layout.nnz_elements() * FP16_BYTES) as u64 * dims.instances()
}

fn intermediate_nnz_bytes(layout: &BlockLayout, dims: &AttnDims) -> u64 {
    // one m'/d'/r' value per (row, retained block of its block-row)
    let per_plane: usize = layout
        .row_counts()
        .iter()
        .map(|&cnt| cnt * layout.block())
        .sum();
    (per_plane * FP16_BYTES) as u64 * dims.instances()
}

/// Whether the block-sparse `Q·Kᵀ` epilogue includes Local Softmax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BsQkEpilogue {
    /// Scale + zero-block masking only (DeepSpeed baseline).
    ScaleMask,
    /// Scale + mask + LS (SDF).
    ScaleMaskLocalSoftmax,
}

/// Block-sparse `Q·Kᵀ` (SDDMM): one thread block per retained block —
/// uniform work, so a plain grid.
pub fn bs_matmul_qk(
    layout: &BlockLayout,
    dims: &AttnDims,
    prefix: &str,
    epilogue: BsQkEpilogue,
) -> KernelDesc {
    let b = layout.block();
    let grid = layout.nnz_blocks() as u64 * dims.instances();
    let bb = (b * b) as f64;
    let q_once = dims.qkv_bytes();
    let k_once = dims.qkv_bytes();

    let (sfx, cuda, extra_write, efficiency) = match epilogue {
        BsQkEpilogue::ScaleMask => ("", 2.0 * bb, 0.0, MATMUL_ROOFLINE_EFFICIENCY),
        BsQkEpilogue::ScaleMaskLocalSoftmax => (
            "+ls",
            (2.0 + EXP_FLOP_EQUIV + 4.0) * bb,
            (2 * b * FP16_BYTES) as f64,
            FUSED_MATMUL_EFFICIENCY,
        ),
    };

    let work = TbWork {
        cuda_flops: cuda,
        tensor_flops: 2.0 * bb * dims.d_head as f64,
        dram_read_bytes: (q_once + k_once) as f64 / grid as f64,
        dram_write_bytes: bb * FP16_BYTES as f64 + extra_write,
        mem_active_fraction: 1.0,
        efficiency,
    };
    let mut builder = KernelDesc::builder(
        format!("bs_matmul_qk{sfx}(L={},b={b})", dims.l),
        KernelCategory::MatMulQk,
    );
    builder
        .shape(TbShape::new(256, 16 * 1024, 128))
        .uniform(grid, work)
        .meta(KernelMeta {
            tile_m: Some(b),
            tile_n: Some(b),
            sub_vector: matches!(epilogue, BsQkEpilogue::ScaleMaskLocalSoftmax).then_some(b),
            fused_scale_mask: true,
            fused_ls: matches!(epilogue, BsQkEpilogue::ScaleMaskLocalSoftmax),
            split: Some(ParallelSplit::OutputTiles),
            ..bs_meta(layout, dims)
        })
        .reads(buf(prefix, "q"), q_once)
        .reads(buf(prefix, "k"), k_once);
    match epilogue {
        BsQkEpilogue::ScaleMaskLocalSoftmax => {
            builder
                .writes(buf(prefix, "x_prime"), nnz_bytes(layout, dims))
                .writes(buf(prefix, "m_prime"), intermediate_nnz_bytes(layout, dims))
                .writes(buf(prefix, "d_prime"), intermediate_nnz_bytes(layout, dims));
        }
        BsQkEpilogue::ScaleMask => {
            builder.writes(buf(prefix, "scores"), nnz_bytes(layout, dims));
        }
    }
    builder.build()
}

/// Baseline block-sparse softmax (DeepSpeed-style): one thread block per row,
/// *allocated for the worst-case full row* (§5.1: "each TB is allocated
/// memory space equal to the size of the row vector in the worst case"),
/// while only the row's support moves data.
pub fn bs_softmax_baseline(layout: &BlockLayout, dims: &AttnDims, prefix: &str) -> KernelDesc {
    let b = layout.block();
    let groups: Vec<TbGroup> = layout
        .row_counts()
        .iter()
        .map(|&cnt| {
            let support = cnt * b; // elements in each of this block-row's rows
            let bytes = (support * FP16_BYTES) as f64;
            TbGroup::new(
                TbWork {
                    cuda_flops: (EXP_FLOP_EQUIV + 4.0) * support as f64,
                    tensor_flops: 0.0,
                    dram_read_bytes: bytes,
                    dram_write_bytes: bytes,
                    // Worst-case thread allocation (§5.1): only the support
                    // issues memory instructions.
                    mem_active_fraction: support as f64 / dims.l as f64,
                    // Phase barriers plus block-index gather indirection.
                    efficiency: SOFTMAX_PHASE_EFFICIENCY * SPARSE_GATHER_EFFICIENCY,
                },
                b as u64 * dims.instances(),
            )
        })
        .collect();
    KernelDesc::builder(
        format!("bs_softmax(L={},b={b})", dims.l),
        KernelCategory::Softmax,
    )
    // worst-case allocation: threads and shared memory sized for L
    .shape(TbShape::new(
        super::row_threads(dims.l),
        (dims.l * FP16_BYTES) as u32,
        40,
    ))
    .grouped(groups)
    .meta(KernelMeta {
        split: Some(ParallelSplit::OutputRows),
        ..bs_meta(layout, dims)
    })
    .reads(buf(prefix, "scores"), nnz_bytes(layout, dims))
    .writes(buf(prefix, "probs"), nnz_bytes(layout, dims))
    .build()
}

/// Standalone block-sparse LS (the SD configuration): one thread block per
/// retained block — allocation matches the actual work, restoring bandwidth
/// utilization.
pub fn bs_local_softmax(layout: &BlockLayout, dims: &AttnDims, prefix: &str) -> KernelDesc {
    let b = layout.block();
    let grid = layout.nnz_blocks() as u64 * dims.instances();
    let bb = (b * b * FP16_BYTES) as f64;
    let work = TbWork {
        cuda_flops: (EXP_FLOP_EQUIV + 5.0) * (b * b) as f64,
        tensor_flops: 0.0,
        dram_read_bytes: bb,
        dram_write_bytes: bb + (2 * b * FP16_BYTES) as f64,
        mem_active_fraction: 1.0,
        efficiency: STREAM_EFFICIENCY,
    };
    KernelDesc::builder(
        format!("bs_ls(L={},b={b})", dims.l),
        KernelCategory::LocalSoftmax,
    )
    .shape(TbShape::new(256, (b * b * FP16_BYTES) as u32, 40))
    .uniform(grid, work)
    .meta(KernelMeta {
        sub_vector: Some(b),
        split: Some(ParallelSplit::RowSegments),
        ..bs_meta(layout, dims)
    })
    .reads(buf(prefix, "scores"), nnz_bytes(layout, dims))
    .writes(buf(prefix, "x_prime"), nnz_bytes(layout, dims))
    .writes(buf(prefix, "m_prime"), intermediate_nnz_bytes(layout, dims))
    .writes(buf(prefix, "d_prime"), intermediate_nnz_bytes(layout, dims))
    .build()
}

/// Block-sparse IR: per-row reduction over that row's retained blocks.
pub fn bs_inter_reduction(layout: &BlockLayout, dims: &AttnDims, prefix: &str) -> KernelDesc {
    let b = layout.block();
    let groups: Vec<TbGroup> = layout
        .row_counts()
        .iter()
        .map(|&cnt| {
            let n_sv = cnt.max(1);
            TbGroup::new(
                TbWork {
                    cuda_flops: n_sv as f64 * (EXP_FLOP_EQUIV + 4.0) * b as f64,
                    tensor_flops: 0.0,
                    dram_read_bytes: (2 * n_sv * b * FP16_BYTES) as f64,
                    dram_write_bytes: (n_sv * b * FP16_BYTES) as f64,
                    mem_active_fraction: 1.0,
                    efficiency: STREAM_EFFICIENCY,
                },
                dims.instances(),
            )
        })
        .collect();
    KernelDesc::builder(
        format!("bs_ir(L={},b={b})", dims.l),
        KernelCategory::InterReduction,
    )
    .shape(TbShape::new(128, 4096, 32))
    .grouped(groups)
    .meta(KernelMeta {
        sub_vector: Some(b),
        split: Some(ParallelSplit::OutputRows),
        ..bs_meta(layout, dims)
    })
    .reads(buf(prefix, "m_prime"), intermediate_nnz_bytes(layout, dims))
    .reads(buf(prefix, "d_prime"), intermediate_nnz_bytes(layout, dims))
    .writes(buf(prefix, "r_prime"), intermediate_nnz_bytes(layout, dims))
    .build()
}

/// Standalone block-sparse GS: elementwise over retained blocks.
pub fn bs_global_scaling(layout: &BlockLayout, dims: &AttnDims, prefix: &str) -> KernelDesc {
    let b = layout.block();
    let grid = layout.nnz_blocks() as u64 * dims.instances();
    let bb = (b * b * FP16_BYTES) as f64;
    let work = TbWork {
        cuda_flops: (b * b) as f64,
        tensor_flops: 0.0,
        dram_read_bytes: bb + (b * FP16_BYTES) as f64,
        dram_write_bytes: bb,
        mem_active_fraction: 1.0,
        efficiency: STREAM_EFFICIENCY,
    };
    KernelDesc::builder(
        format!("bs_gs(L={},b={b})", dims.l),
        KernelCategory::GlobalScaling,
    )
    .shape(TbShape::new(256, 0, 24))
    .uniform(grid, work)
    .meta(KernelMeta {
        sub_vector: Some(b),
        split: Some(ParallelSplit::Elements),
        ..bs_meta(layout, dims)
    })
    .reads(buf(prefix, "x_prime"), nnz_bytes(layout, dims))
    .reads(buf(prefix, "r_prime"), intermediate_nnz_bytes(layout, dims))
    .writes(buf(prefix, "probs"), nnz_bytes(layout, dims))
    .build()
}

/// Whether the block-sparse `P·V` prologue applies Global Scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BsPvPrologue {
    /// Reads finished probabilities.
    None,
    /// Reads `x'` + `r'`, scaling on the fly (SDF).
    GlobalScaling,
}

/// Block-sparse `P·V`: one thread block per output block-row, with work
/// proportional to that row's retained blocks — the load-imbalanced kernel
/// of §5.2.
pub fn bs_matmul_pv(
    layout: &BlockLayout,
    dims: &AttnDims,
    prefix: &str,
    prologue: BsPvPrologue,
) -> KernelDesc {
    let b = layout.block();
    let v_once = dims.qkv_bytes();
    let grid: u64 = layout.n_blocks() as u64 * dims.instances();

    let (sfx, p_buf, gs, efficiency) = match prologue {
        BsPvPrologue::None => ("", "probs", false, MATMUL_ROOFLINE_EFFICIENCY),
        BsPvPrologue::GlobalScaling => ("gs+", "x_prime", true, GS_PROLOGUE_EFFICIENCY),
    };

    let groups: Vec<TbGroup> = layout
        .row_counts()
        .iter()
        .map(|&cnt| {
            let p_elems = cnt * b * b;
            let p_bytes = (p_elems * FP16_BYTES) as f64;
            let r_bytes = if gs {
                (cnt * b * FP16_BYTES) as f64
            } else {
                0.0
            };
            TbGroup::new(
                TbWork {
                    cuda_flops: if gs { p_elems as f64 } else { 0.0 },
                    tensor_flops: 2.0 * (b * dims.d_head) as f64 * (cnt * b) as f64,
                    dram_read_bytes: p_bytes + r_bytes + v_once as f64 / grid as f64,
                    dram_write_bytes: (b * dims.d_head * FP16_BYTES) as f64,
                    mem_active_fraction: 1.0,
                    efficiency,
                },
                dims.instances(),
            )
        })
        .collect();

    let mut builder = KernelDesc::builder(
        format!("{sfx}bs_matmul_pv(L={},b={b})", dims.l),
        KernelCategory::MatMulPv,
    );
    builder
        .shape(TbShape::new(256, 16 * 1024, 128))
        .grouped(groups)
        .meta(KernelMeta {
            tile_m: Some(b),
            tile_n: Some(dims.d_head),
            sub_vector: gs.then_some(b),
            fused_gs: gs,
            split: Some(ParallelSplit::OutputRows),
            ..bs_meta(layout, dims)
        })
        .reads(buf(prefix, p_buf), nnz_bytes(layout, dims))
        .reads(buf(prefix, "v"), v_once)
        .writes(buf(prefix, "attn_out"), dims.qkv_bytes());
    if gs {
        builder.reads(buf(prefix, "r_prime"), intermediate_nnz_bytes(layout, dims));
    }
    builder.build()
}

/// Extension: block-sparse fully fused online-softmax attention — one thread
/// block per output block-row streaming only that row's retained K/V blocks.
pub fn bs_fused_mha_online(layout: &BlockLayout, dims: &AttnDims, prefix: &str) -> KernelDesc {
    let b = layout.block();
    let q_once = dims.qkv_bytes();
    let k_once = dims.qkv_bytes();
    let v_once = dims.qkv_bytes();
    let grid: u64 = layout.n_blocks() as u64 * dims.instances();

    let groups: Vec<TbGroup> = layout
        .row_counts()
        .iter()
        .map(|&cnt| {
            let elems = (cnt * b * b) as f64;
            TbGroup::new(
                TbWork {
                    cuda_flops: (EXP_FLOP_EQUIV + 8.0) * elems,
                    tensor_flops: 4.0 * elems * dims.d_head as f64,
                    dram_read_bytes: (q_once + k_once + v_once) as f64 / grid as f64,
                    dram_write_bytes: (b * dims.d_head * FP16_BYTES) as f64,
                    mem_active_fraction: 1.0,
                    efficiency: FUSED_MATMUL_EFFICIENCY,
                },
                dims.instances(),
            )
        })
        .collect();
    KernelDesc::builder(
        format!("bs_fused_mha_online(L={},b={b})", dims.l),
        KernelCategory::FusedAttention,
    )
    .shape(TbShape::new(256, 32 * 1024, 120))
    .grouped(groups)
    .meta(KernelMeta {
        split: Some(ParallelSplit::OutputRows),
        ..bs_meta(layout, dims)
    })
    .reads(buf(prefix, "q"), q_once)
    .reads(buf(prefix, "k"), k_once)
    .reads(buf(prefix, "v"), v_once)
    .writes(buf(prefix, "attn_out"), dims.qkv_bytes())
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_sparse::{pattern, BigBirdConfig};

    fn fixture() -> (BlockLayout, AttnDims) {
        let layout = pattern::bigbird(4096, &BigBirdConfig::default());
        let dims = AttnDims::new(4096, 64, 16, 1);
        (layout, dims)
    }

    #[test]
    fn sparse_traffic_scales_with_density() {
        let (layout, dims) = fixture();
        let sm = bs_softmax_baseline(&layout, &dims, "l0");
        let dense_equiv = 2.0 * dims.attn_bytes() as f64;
        let ratio = sm.total_dram_bytes() / dense_equiv;
        assert!(
            (ratio - layout.density()).abs() < 0.02,
            "traffic ratio {ratio} vs density {}",
            layout.density()
        );
    }

    #[test]
    fn baseline_softmax_underutilizes_memory() {
        let (layout, dims) = fixture();
        let sm = bs_softmax_baseline(&layout, &dims, "l0");
        // interior rows' active fraction equals their support / L
        if let resoftmax_gpusim::TbSet::Grouped(groups) = &sm.tbs {
            let interior = &groups[layout.n_blocks() / 2];
            assert!(interior.work.mem_active_fraction < 0.2);
            // worst-case resource allocation:
            assert_eq!(sm.shape.shared_bytes, (dims.l * 2) as u32);
        } else {
            panic!("expected grouped TBs");
        }
    }

    #[test]
    fn ls_restores_full_activity() {
        let (layout, dims) = fixture();
        let ls = bs_local_softmax(&layout, &dims, "l0");
        if let resoftmax_gpusim::TbSet::Uniform { work, .. } = &ls.tbs {
            assert_eq!(work.mem_active_fraction, 1.0);
        } else {
            panic!("expected uniform TBs");
        }
        // allocation matches the block, not L
        assert_eq!(ls.shape.shared_bytes, (64 * 64 * 2) as u32);
    }

    #[test]
    fn sd_total_traffic_doubles_baseline_sparse() {
        let (layout, dims) = fixture();
        let mono = bs_softmax_baseline(&layout, &dims, "l0").total_dram_bytes();
        let sd: f64 = [
            bs_local_softmax(&layout, &dims, "l0").total_dram_bytes(),
            bs_inter_reduction(&layout, &dims, "l0").total_dram_bytes(),
            bs_global_scaling(&layout, &dims, "l0").total_dram_bytes(),
        ]
        .iter()
        .sum();
        assert!(sd > 1.9 * mono && sd < 2.4 * mono, "sd {sd} vs mono {mono}");
    }

    #[test]
    fn pv_groups_expose_imbalance() {
        let (layout, dims) = fixture();
        let pv = bs_matmul_pv(&layout, &dims, "l0", BsPvPrologue::None);
        if let resoftmax_gpusim::TbSet::Grouped(groups) = &pv.tbs {
            let works: Vec<f64> = groups.iter().map(|g| g.work.tensor_flops).collect();
            let max = works.iter().copied().fold(0.0, f64::max);
            let mean = works.iter().sum::<f64>() / works.len() as f64;
            assert!(
                max > 3.0 * mean,
                "global rows are stragglers: {max} vs {mean}"
            );
        } else {
            panic!("expected grouped TBs");
        }
    }

    #[test]
    fn fused_epilogue_and_prologue_swap_buffers() {
        let (layout, dims) = fixture();
        let qk = bs_matmul_qk(&layout, &dims, "l0", BsQkEpilogue::ScaleMaskLocalSoftmax);
        assert!(qk.writes.iter().any(|b| b.id == "l0.x_prime"));
        assert!(!qk.writes.iter().any(|b| b.id == "l0.scores"));
        let pv = bs_matmul_pv(&layout, &dims, "l0", BsPvPrologue::GlobalScaling);
        assert!(pv.reads.iter().any(|b| b.id == "l0.x_prime"));
        assert!(pv.reads.iter().any(|b| b.id == "l0.r_prime"));
    }

    #[test]
    fn ir_intermediates_much_smaller_than_attention() {
        let (layout, dims) = fixture();
        let ir = bs_inter_reduction(&layout, &dims, "l0");
        let sm = bs_softmax_baseline(&layout, &dims, "l0");
        assert!(ir.total_dram_bytes() < 0.1 * sm.total_dram_bytes());
    }
}
