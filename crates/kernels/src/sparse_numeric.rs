//! Numeric decomposed softmax over block-sparse attention (§3.4).
//!
//! For block-sparse attention the natural sub-vector is one retained block:
//! `T = block`. LS runs per retained block, IR reduces over each row's
//! retained blocks only, GS scales per retained block. Skipped blocks
//! contribute nothing — exactly the semantics of the masked dense softmax
//! restricted to the support.

use crate::decomposed::{inter_reduce, InterReductionOutput};
use resoftmax_sparse::BlockSparseMatrix;
use resoftmax_tensor::{Matrix, Scalar};

/// Output of block-sparse LS.
#[derive(Debug, Clone, PartialEq)]
pub struct BsLocalSoftmaxOutput<T: Scalar> {
    /// Locally-normalized values, same layout as the input scores.
    pub x_prime: BlockSparseMatrix<T>,
    /// `m'` per (row, retained block of that row): stored dense
    /// `L × n_blocks` with `-inf` where the block is skipped.
    pub m_prime: Matrix<T>,
    /// `d'` with the same convention (`0` where skipped).
    pub d_prime: Matrix<T>,
}

/// LS over each retained block of a block-sparse score matrix.
pub fn bs_local_softmax<T: Scalar>(scores: &BlockSparseMatrix<T>) -> BsLocalSoftmaxOutput<T> {
    let layout = scores.layout().clone();
    let b = layout.block();
    let l = layout.seq_len();
    let n = layout.n_blocks();

    let mut x_prime = scores.clone();
    let mut m_prime = Matrix::filled(l, n, T::neg_infinity());
    let mut d_prime = Matrix::zeros(l, n);

    for (idx, (br, bc)) in layout.iter_blocks().enumerate() {
        let src = &scores.blocks()[idx];
        let dst = &mut x_prime.blocks_mut()[idx];
        for within in 0..b {
            let row = br * b + within;
            let mut m = f64::NEG_INFINITY;
            for c in 0..b {
                m = m.max(src.get(within, c).to_f64());
            }
            if m == f64::NEG_INFINITY {
                continue;
            }
            let mut d = 0.0f64;
            for c in 0..b {
                let e = T::from_f64((src.get(within, c).to_f64() - m).exp());
                d += e.to_f64();
            }
            for c in 0..b {
                let e = T::from_f64((src.get(within, c).to_f64() - m).exp());
                dst.set(within, c, T::from_f64(e.to_f64() / d));
            }
            m_prime.set(row, bc, T::from_f64(m));
            d_prime.set(row, bc, T::from_f64(d));
        }
    }
    BsLocalSoftmaxOutput {
        x_prime,
        m_prime,
        d_prime,
    }
}

/// GS over the retained blocks: `y = x' · r'` where `r'` is indexed by
/// (row, block-column).
///
/// # Panics
///
/// Panics if `r_prime` is not `L × n_blocks`.
pub fn bs_global_scale<T: Scalar>(
    x_prime: &BlockSparseMatrix<T>,
    r_prime: &Matrix<T>,
) -> BlockSparseMatrix<T> {
    let layout = x_prime.layout().clone();
    let b = layout.block();
    assert_eq!(
        r_prime.shape(),
        (layout.seq_len(), layout.n_blocks()),
        "r' shape mismatch"
    );
    let mut y = x_prime.clone();
    for (idx, (br, bc)) in layout.iter_blocks().enumerate() {
        let block = &mut y.blocks_mut()[idx];
        for within in 0..b {
            let rk = r_prime.get(br * b + within, bc).to_f64();
            for c in 0..b {
                let v = block.get(within, c).to_f64() * rk;
                block.set(within, c, T::from_f64(v));
            }
        }
    }
    y
}

/// The full block-sparse decomposed softmax: LS → IR → GS.
///
/// Mathematically identical to
/// [`resoftmax_sparse::block_sparse_softmax`] on the same support.
pub fn bs_decomposed_softmax<T: Scalar>(
    scores: &BlockSparseMatrix<T>,
) -> (BlockSparseMatrix<T>, InterReductionOutput<T>) {
    let ls = bs_local_softmax(scores);
    // IR treats skipped blocks as -inf/0 entries, contributing nothing —
    // the same reduction as the dense decomposition.
    let ir = inter_reduce(&ls.m_prime, &ls.d_prime);
    let y = bs_global_scale(&ls.x_prime, &ir.r_prime);
    (y, ir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_sparse::{block_sparse_softmax, pattern, sddmm, spmm, BigBirdConfig};
    use resoftmax_tensor::{max_abs_diff, randn_matrix};

    fn scores_fixture(l: usize, block: usize) -> BlockSparseMatrix<f64> {
        let layout = pattern::bigbird(
            l,
            &BigBirdConfig {
                block,
                random_blocks: 2,
                ..Default::default()
            },
        );
        let q = randn_matrix::<f64>(l, 16, 1.0, 100);
        let k = randn_matrix::<f64>(l, 16, 1.0, 101);
        sddmm(&q, &k, &layout).unwrap()
    }

    #[test]
    fn decomposed_matches_monolithic_block_sparse() {
        let scores = scores_fixture(128, 16);
        let monolithic = block_sparse_softmax(&scores);
        let (decomposed, _) = bs_decomposed_softmax(&scores);
        let diff = max_abs_diff(&monolithic.to_dense(0.0), &decomposed.to_dense(0.0));
        assert!(diff < 1e-12, "diff {diff}");
    }

    #[test]
    fn rows_sum_to_one_over_support() {
        let scores = scores_fixture(128, 16);
        let (y, _) = bs_decomposed_softmax(&scores);
        for r in 0..128 {
            let (_, vals) = y.row_support(r);
            let s: f64 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {r}: {s}");
        }
    }

    #[test]
    fn ls_blocks_locally_normalized() {
        let scores = scores_fixture(64, 16);
        let ls = bs_local_softmax(&scores);
        for (idx, _) in scores.layout().iter_blocks().enumerate() {
            let block = &ls.x_prime.blocks()[idx];
            for within in 0..16 {
                let s: f64 = (0..16).map(|c| block.get(within, c)).sum();
                assert!((s - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn r_prime_sums_to_one_over_retained_blocks() {
        let scores = scores_fixture(64, 16);
        let (_, ir) = bs_decomposed_softmax(&scores);
        for r in 0..64 {
            let s: f64 = ir.r_prime.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {r}: {s}");
        }
    }

    #[test]
    fn end_to_end_sparse_attention_with_decomposition() {
        // sddmm -> decomposed softmax -> spmm equals monolithic pipeline.
        let l = 128;
        let layout = pattern::longformer(
            l,
            &pattern::LongformerConfig {
                block: 16,
                window: 32,
                global_tokens: 16,
            },
        );
        let q = randn_matrix::<f64>(l, 8, 1.0, 200);
        let k = randn_matrix::<f64>(l, 8, 1.0, 201);
        let v = randn_matrix::<f64>(l, 8, 1.0, 202);
        let scores = sddmm(&q, &k, &layout).unwrap();
        let mono = spmm(&block_sparse_softmax(&scores), &v).unwrap();
        let (dec, _) = bs_decomposed_softmax(&scores);
        let dec_out = spmm(&dec, &v).unwrap();
        assert!(max_abs_diff(&mono, &dec_out) < 1e-12);
    }

    #[test]
    fn gs_panics_on_bad_r_shape() {
        let scores = scores_fixture(64, 16);
        let ls = bs_local_softmax(&scores);
        let bad = Matrix::<f64>::zeros(64, 2);
        let result = std::panic::catch_unwind(|| bs_global_scale(&ls.x_prime, &bad));
        assert!(result.is_err());
    }
}

/// The fully recomposed block-sparse attention pipeline (§3.4): SDDMM with a
/// fused scale+LS epilogue semantics, IR, and GS applied inside the SpMM
/// prologue — never materializing normalized probabilities.
///
/// Numerically this equals [`resoftmax_sparse::block_sparse_softmax`] +
/// [`resoftmax_sparse::spmm`] on the same support; the fused form simply
/// reorders the scaling into the SpMM accumulation (one extra rounding per
/// element, like the dense GS+`P·V` fusion).
///
/// # Errors
///
/// Returns [`resoftmax_tensor::ShapeError`] on dimension mismatch.
pub fn bs_recomposed_attention<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    layout: &resoftmax_sparse::BlockLayout,
    scale: f64,
) -> Result<Matrix<T>, resoftmax_tensor::ShapeError> {
    use resoftmax_tensor::scale as scale_op;

    // Fused QK + scale + LS: numerically, scale then local softmax per block.
    let scores = resoftmax_sparse::sddmm(q, k, layout)?;
    let mut scaled = scores.clone();
    for block in scaled.blocks_mut() {
        *block = scale_op(block, scale);
    }
    let ls = bs_local_softmax(&scaled);
    let ir = inter_reduce(&ls.m_prime, &ls.d_prime);

    // Fused GS + SpMM: scale each x' element by its block's r' as it feeds
    // the accumulation (round once to T, tensor-core style).
    let b = layout.block();
    let l = layout.seq_len();
    let d_out = v.cols();
    if v.rows() != l {
        return Err(resoftmax_tensor::ShapeError::new(format!(
            "v rows {} vs L {l}",
            v.rows()
        )));
    }
    let mut acc = vec![0.0f32; l * d_out];
    for ((br, bc), block) in layout.iter_blocks().zip(ls.x_prime.blocks()) {
        for r in 0..b {
            let global_r = br * b + r;
            let rk = ir.r_prime.get(global_r, bc).to_f32();
            for c in 0..b {
                let p = T::from_f32(block.get(r, c).to_f32() * rk).to_f32();
                if p == 0.0 {
                    continue;
                }
                let k_row = bc * b + c;
                for j in 0..d_out {
                    acc[global_r * d_out + j] += p * v.get(k_row, j).to_f32();
                }
            }
        }
    }
    let mut out = Matrix::zeros(l, d_out);
    for r in 0..l {
        for j in 0..d_out {
            out.set(r, j, T::from_f64(acc[r * d_out + j] as f64));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod recomposed_tests {
    use super::*;
    use resoftmax_sparse::{block_sparse_softmax, pattern, sddmm, spmm, BigBirdConfig};
    use resoftmax_tensor::{max_abs_diff, randn_matrix, scale as scale_op};

    #[test]
    fn fused_block_sparse_equals_unfused() {
        let l = 128;
        let layout = pattern::bigbird(
            l,
            &BigBirdConfig {
                block: 16,
                random_blocks: 2,
                ..Default::default()
            },
        );
        let scale = 0.25;
        let q = randn_matrix::<f64>(l, 16, 1.0, 300);
        let k = randn_matrix::<f64>(l, 16, 1.0, 301);
        let v = randn_matrix::<f64>(l, 16, 1.0, 302);

        // Unfused reference on the same support.
        let mut scores = sddmm(&q, &k, &layout).unwrap();
        for block in scores.blocks_mut() {
            *block = scale_op(block, scale);
        }
        let reference = spmm(&block_sparse_softmax(&scores), &v).unwrap();

        let fused = bs_recomposed_attention(&q, &k, &v, &layout, scale).unwrap();
        assert!(
            max_abs_diff(&reference, &fused) < 1e-5,
            "diff {}",
            max_abs_diff(&reference, &fused)
        );
    }

    #[test]
    fn fused_block_sparse_fp16_stays_finite() {
        use resoftmax_fp16::F16;
        let l = 64;
        let layout = pattern::sliding_window(l, 16, 1);
        let q = randn_matrix::<F16>(l, 8, 1.0, 310);
        let k = randn_matrix::<F16>(l, 8, 1.0, 311);
        let v = randn_matrix::<F16>(l, 8, 1.0, 312);
        let out = bs_recomposed_attention(&q, &k, &v, &layout, 0.35).unwrap();
        assert!(!out.has_nan());
        assert!(out.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn fused_rejects_bad_v() {
        let l = 32;
        let layout = pattern::sliding_window(l, 16, 1);
        let q = randn_matrix::<f64>(l, 8, 1.0, 1);
        let k = randn_matrix::<f64>(l, 8, 1.0, 2);
        let v_bad = randn_matrix::<f64>(16, 8, 1.0, 3);
        assert!(bs_recomposed_attention(&q, &k, &v_bad, &layout, 1.0).is_err());
    }
}

/// Block-sparse decomposed softmax *backward*: given the stored block-sparse
/// `x'` and the `r'` factors (`L × n_blocks`), and the upstream gradient
/// `dy` on the same support, computes `dx = y ⊙ (dy − Σ y·dy)` over the
/// support with the row dot decomposed per retained block — the sparse
/// mirror of [`crate::decomposed_softmax_backward`].
///
/// # Panics
///
/// Panics if `dy`'s layout differs from `x'`'s or `r'` has the wrong shape.
pub fn bs_decomposed_softmax_backward<T: Scalar>(
    x_prime: &BlockSparseMatrix<T>,
    r_prime: &Matrix<T>,
    dy: &BlockSparseMatrix<T>,
) -> BlockSparseMatrix<T> {
    let layout = x_prime.layout().clone();
    assert_eq!(dy.layout(), &layout, "dy layout mismatch");
    assert_eq!(
        r_prime.shape(),
        (layout.seq_len(), layout.n_blocks()),
        "r' shape mismatch"
    );
    let b = layout.block();
    let l = layout.seq_len();

    // Backward LS + IR: per-row dot over the support, decomposed per block.
    let mut dots = vec![0.0f64; l];
    for ((br, bc), (xb, dyb)) in layout
        .iter_blocks()
        .zip(x_prime.blocks().iter().zip(dy.blocks()))
    {
        for r in 0..b {
            let row = br * b + r;
            let rk = r_prime.get(row, bc).to_f64();
            let mut partial = 0.0f64;
            for c in 0..b {
                partial += xb.get(r, c).to_f64() * dyb.get(r, c).to_f64();
            }
            dots[row] += partial * rk;
        }
    }

    // Backward GS: elementwise over the support.
    let mut dx = x_prime.clone();
    let order: Vec<(usize, usize)> = layout.iter_blocks().collect();
    for (idx, (br, bc)) in order.into_iter().enumerate() {
        for r in 0..b {
            let row = br * b + r;
            let rk = r_prime.get(row, bc).to_f64();
            for c in 0..b {
                let y = x_prime.blocks()[idx].get(r, c).to_f64() * rk;
                let g = y * (dy.blocks()[idx].get(r, c).to_f64() - dots[row]);
                dx.blocks_mut()[idx].set(r, c, T::from_f64(g));
            }
        }
    }
    dx
}

#[cfg(test)]
mod backward_tests {
    use super::*;
    use crate::softmax::softmax_backward;
    use resoftmax_sparse::{block_sparse_softmax, pattern, sddmm, BigBirdConfig};
    use resoftmax_tensor::{max_abs_diff, randn_matrix};

    #[test]
    fn sparse_backward_matches_masked_dense() {
        let l = 96;
        let layout = pattern::bigbird(
            l,
            &BigBirdConfig {
                block: 16,
                random_blocks: 1,
                ..Default::default()
            },
        );
        let q = randn_matrix::<f64>(l, 8, 1.0, 600);
        let k = randn_matrix::<f64>(l, 8, 1.0, 601);
        let scores = sddmm(&q, &k, &layout).unwrap();
        let dy_dense = randn_matrix::<f64>(l, l, 1.0, 602);
        let dy = BlockSparseMatrix::from_dense(&dy_dense, layout.clone()).unwrap();

        // Decomposed sparse path.
        let ls = bs_local_softmax(&scores);
        let ir = inter_reduce(&ls.m_prime, &ls.d_prime);
        let dx = bs_decomposed_softmax_backward(&ls.x_prime, &ir.r_prime, &dy);

        // Dense reference restricted to the support: y = sparse softmax,
        // upstream gradient zero outside the support.
        let y = block_sparse_softmax(&scores).to_dense(0.0);
        let dy_masked = dy.to_dense(0.0);
        let reference = softmax_backward(&y, &dy_masked);
        let diff = max_abs_diff(&reference, &dx.to_dense(0.0));
        assert!(diff < 1e-12, "diff {diff}");
    }

    #[test]
    fn sparse_backward_rows_sum_to_zero() {
        let l = 64;
        let layout = pattern::sliding_window(l, 16, 1);
        let q = randn_matrix::<f64>(l, 8, 1.0, 610);
        let k = randn_matrix::<f64>(l, 8, 1.0, 611);
        let scores = sddmm(&q, &k, &layout).unwrap();
        let dy =
            BlockSparseMatrix::from_dense(&randn_matrix::<f64>(l, l, 1.0, 612), layout.clone())
                .unwrap();
        let ls = bs_local_softmax(&scores);
        let ir = inter_reduce(&ls.m_prime, &ls.d_prime);
        let dx = bs_decomposed_softmax_backward(&ls.x_prime, &ir.r_prime, &dy);
        for r in 0..l {
            let (_, vals) = dx.row_support(r);
            let s: f64 = vals.iter().sum();
            assert!(s.abs() < 1e-10, "row {r}: {s}");
        }
    }
}
