//! Numeric implementations of the non-attention layers (§2.1): fully
//! connected (with bias), LayerNorm, and GeLU — completing the kernel
//! catalog's numeric column so a whole transformer block can be executed,
//! not just priced.
//!
//! Same rounding model as the rest of the catalog: elementwise results round
//! once at the working precision; reductions accumulate wide.

use rayon::prelude::*;
use resoftmax_tensor::{Matrix, Scalar, ShapeError};

/// Fully connected layer: `y = x · w + b` with `f32`-style wide accumulation
/// (`x`: rows × d_in, `w`: d_in × d_out, `b`: length d_out).
///
/// # Errors
///
/// Returns [`ShapeError`] on dimension mismatch.
pub fn linear<T: Scalar>(x: &Matrix<T>, w: &Matrix<T>, b: &[T]) -> Result<Matrix<T>, ShapeError> {
    if x.cols() != w.rows() {
        return Err(ShapeError::new(format!(
            "linear x {:?} · w {:?}",
            x.shape(),
            w.shape()
        )));
    }
    if b.len() != w.cols() {
        return Err(ShapeError::new(format!(
            "bias length {} vs d_out {}",
            b.len(),
            w.cols()
        )));
    }
    let (d_in, d_out) = (w.rows(), w.cols());
    let mut y = Matrix::zeros(x.rows(), d_out);
    y.as_mut_slice()
        .par_chunks_mut(d_out.max(1))
        .enumerate()
        .for_each(|(r, out)| {
            let xr = x.row(r);
            for (j, o) in out.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (p, x) in xr.iter().enumerate().take(d_in) {
                    acc += x.to_f32() * w.get(p, j).to_f32();
                }
                *o = T::from_f64(acc as f64 + b[j].to_f64());
            }
        });
    Ok(y)
}

/// LayerNorm over each row: `(x − μ) / √(σ² + ε) · γ + β`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `gamma`/`beta` don't match the row width.
pub fn layernorm<T: Scalar>(
    x: &Matrix<T>,
    gamma: &[T],
    beta: &[T],
    eps: f64,
) -> Result<Matrix<T>, ShapeError> {
    let d = x.cols();
    if gamma.len() != d || beta.len() != d {
        return Err(ShapeError::new(format!(
            "layernorm params {} / {} vs width {d}",
            gamma.len(),
            beta.len()
        )));
    }
    let mut y = Matrix::zeros(x.rows(), d);
    y.as_mut_slice()
        .par_chunks_mut(d.max(1))
        .enumerate()
        .for_each(|(r, out)| {
            let row = x.row(r);
            let mean: f64 = row.iter().map(|v| v.to_f64()).sum::<f64>() / d as f64;
            let var: f64 = row
                .iter()
                .map(|v| {
                    let e = v.to_f64() - mean;
                    e * e
                })
                .sum::<f64>()
                / d as f64;
            let inv = 1.0 / (var + eps).sqrt();
            for ((o, v), (g, b)) in out.iter_mut().zip(row).zip(gamma.iter().zip(beta)) {
                *o = T::from_f64((v.to_f64() - mean) * inv * g.to_f64() + b.to_f64());
            }
        });
    Ok(y)
}

/// GeLU activation (tanh approximation, the BERT/GPT formulation):
/// `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`.
pub fn gelu<T: Scalar>(x: &Matrix<T>) -> Matrix<T> {
    const SQRT_2_OVER_PI: f64 = 0.797_884_560_802_865_4;
    x.map(|v| {
        let x = v.to_f64();
        let inner = SQRT_2_OVER_PI * (x + 0.044715 * x * x * x);
        T::from_f64(0.5 * x * (1.0 + inner.tanh()))
    })
}

/// Residual addition `a + b`.
///
/// # Errors
///
/// Returns [`ShapeError`] on shape mismatch.
pub fn residual<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>, ShapeError> {
    resoftmax_tensor::add(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_fp16::F16;
    use resoftmax_tensor::{matmul, max_abs_diff, randn_matrix};

    #[test]
    fn linear_matches_matmul_plus_bias() {
        let x = randn_matrix::<f64>(8, 16, 1.0, 1);
        let w = randn_matrix::<f64>(16, 4, 1.0, 2);
        let b: Vec<f64> = (0..4).map(|i| i as f64).collect();
        let y = linear(&x, &w, &b).unwrap();
        let reference = matmul(&x, &w).unwrap();
        for r in 0..8 {
            for (c, bias) in b.iter().enumerate() {
                assert!((y.get(r, c) - (reference.get(r, c) + bias)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn linear_shape_errors() {
        let x = randn_matrix::<f64>(8, 16, 1.0, 1);
        let w_bad = randn_matrix::<f64>(8, 4, 1.0, 2);
        assert!(linear(&x, &w_bad, &[0.0; 4]).is_err());
        let w = randn_matrix::<f64>(16, 4, 1.0, 2);
        assert!(linear(&x, &w, &[0.0; 3]).is_err());
    }

    #[test]
    fn layernorm_normalizes() {
        let x = randn_matrix::<f64>(6, 64, 3.0, 3);
        let gamma = vec![1.0; 64];
        let beta = vec![0.0; 64];
        let y = layernorm(&x, &gamma, &beta, 1e-5).unwrap();
        for r in 0..6 {
            let mean: f64 = y.row(r).iter().sum::<f64>() / 64.0;
            let var: f64 = y
                .row(r)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f64>()
                / 64.0;
            assert!(mean.abs() < 1e-12, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_affine_params_apply() {
        let x = randn_matrix::<f64>(2, 8, 1.0, 4);
        let gamma = vec![2.0; 8];
        let beta = vec![3.0; 8];
        let plain = layernorm(&x, &[1.0; 8], &[0.0; 8], 1e-5).unwrap();
        let affine = layernorm(&x, &gamma, &beta, 1e-5).unwrap();
        for (a, p) in affine.as_slice().iter().zip(plain.as_slice()) {
            assert!((a - (p * 2.0 + 3.0)).abs() < 1e-12);
        }
        assert!(layernorm(&x, &[1.0; 7], &[0.0; 8], 1e-5).is_err());
    }

    #[test]
    fn gelu_known_values() {
        let x = Matrix::<f64>::from_rows(&[&[0.0, 1.0, -1.0, 3.0, -3.0]]);
        let y = gelu(&x);
        assert_eq!(y.get(0, 0), 0.0);
        assert!((y.get(0, 1) - 0.8412).abs() < 1e-3);
        assert!((y.get(0, 2) + 0.1588).abs() < 1e-3);
        assert!((y.get(0, 3) - 2.9964).abs() < 1e-3);
        assert!(y.get(0, 4).abs() < 0.01, "gelu(-3) ≈ 0");
        // gelu(x) − gelu(−x) == x (the 0.5·x terms cancel symmetrically)
        assert!((y.get(0, 1) - y.get(0, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fp16_layers_stay_finite() {
        let x = randn_matrix::<F16>(4, 32, 2.0, 5);
        let w = randn_matrix::<F16>(32, 32, 0.3, 6);
        let b = vec![F16::ZERO; 32];
        let y = linear(&x, &w, &b).unwrap();
        assert!(!y.has_nan());
        let g = vec![F16::ONE; 32];
        let z = vec![F16::ZERO; 32];
        let n = layernorm(&y, &g, &z, 1e-5).unwrap();
        assert!(!n.has_nan());
        let a = gelu(&n);
        assert!(!a.has_nan());
        // compare against f64 path
        let y64 = linear(&x.cast::<f64>(), &w.cast::<f64>(), &vec![0.0; 32]).unwrap();
        assert!(max_abs_diff(&y64, &y) < 0.05);
    }

    #[test]
    fn residual_adds() {
        let a = randn_matrix::<f64>(3, 3, 1.0, 7);
        let b = randn_matrix::<f64>(3, 3, 1.0, 8);
        let r = residual(&a, &b).unwrap();
        assert!((r.get(1, 1) - (a.get(1, 1) + b.get(1, 1))).abs() < 1e-15);
    }
}
