//! The kernel catalog: numerically exact implementations *and* cost profiles
//! of every kernel the paper discusses.
//!
//! Each kernel exists twice, deliberately derived from the same tiling:
//!
//! * a **numeric** implementation operating on [`resoftmax_tensor::Matrix`]
//!   values (generic over precision, including bit-exact binary16), used to
//!   *prove* the mathematical claims — the decomposed softmax (LS/IR/GS,
//!   Eq. 2) equals the monolithic safe softmax (Eq. 1), the fused pipelines
//!   equal the unfused ones, the backward pass needs only `Y` (Eq. 3);
//! * a **cost profile** ([`resoftmax_gpusim::KernelDesc`]) describing the
//!   kernel's grid, per-thread-block resources and work, which the simulator
//!   executes to reproduce the paper's performance results.
//!
//! Module map:
//!
//! * [`softmax_rows`], [`softmax_backward`], [`apply_mask`] — monolithic
//!   reference (paper Eq. 1 / Eq. 3).
//! * [`decomposed`] — LS / IR / GS (Eq. 2).
//! * [`fused`] — MatMul+LS epilogue and GS+MatMul prologue numerics (§3.3).
//! * [`sparse_numeric`] — block-sparse decomposed softmax (§3.4).
//! * [`costs`] — cost profiles for all of the above plus FC / FeedForward /
//!   LayerNorm / elementwise kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod decomposed;
pub mod fused;
pub mod layers;
pub mod online;
mod softmax;
pub mod sparse_numeric;

pub use decomposed::{
    decomposed_softmax, decomposed_softmax_backward, decomposed_softmax_narrow_accum, global_scale,
    inter_reduce, local_softmax, local_softmax_narrow_accum, InterReductionOutput,
    LocalSoftmaxOutput,
};
pub use fused::{
    fused_gs_pv, fused_qk_ls, recomposed_attention, reference_attention, FusedQkLsOutput,
};
pub use layers::{gelu, layernorm as layernorm_numeric, linear, residual};
pub use online::{bs_online_attention, online_attention};
pub use softmax::{apply_mask, causal_mask, softmax_backward, softmax_rows, softmax_rows_f64};
pub use sparse_numeric::{
    bs_decomposed_softmax, bs_decomposed_softmax_backward, bs_global_scale, bs_local_softmax,
    bs_recomposed_attention, BsLocalSoftmaxOutput,
};
