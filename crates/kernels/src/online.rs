//! Extension: *online-softmax* fully-fused attention.
//!
//! The paper's related work (§7) notes that libraries ship fused MHA kernels
//! only for short sequences, and cites Milakov & Gimelshein's online
//! normalizer calculation \[21\] without pursuing it. This module implements
//! that pursuit — the approach that later became FlashAttention: a single
//! kernel that streams K/V tiles past each Q tile while maintaining a
//! *running* max `m`, normalizer `d`, and pre-scaled output accumulator,
//! rescaling the accumulator whenever the running max changes:
//!
//! ```text
//! m_new = max(m, m_tile)
//! d_new = d·e^{m−m_new} + d_tile·e^{m_tile−m_new}
//! acc   = acc·(d·e^{m−m_new}/d_new) + (P_tile·V_tile)·(e^{m_tile−m_new}/d_new)
//! ```
//!
//! The attention matrix never exists in memory at all — not even the `x'`
//! the paper's SDF writes — so its off-chip traffic drops to Q/K/V/output
//! only. Mathematically it is yet another regrouping of Eq. 2 and agrees
//! with the reference to the same precision as the SDF pipeline.

use rayon::prelude::*;
use resoftmax_tensor::{Matrix, Scalar, ShapeError};

/// Fully-fused attention via online softmax: computes
/// `softmax(scale · mask(Q·Kᵀ)) · V` in one pass over K/V tiles of width
/// `t`, never materializing the attention matrix.
///
/// Accumulation is `f32` (tensor-core style); the output rounds once to `T`.
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes are inconsistent or `t` does not divide
/// `L`.
///
/// # Panics
///
/// Panics if `mask` has the wrong length.
pub fn online_attention<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    t: usize,
    scale: f64,
    mask: Option<&[bool]>,
) -> Result<Matrix<T>, ShapeError> {
    let l = q.rows();
    if k.rows() != l || v.rows() != l || k.cols() != q.cols() {
        return Err(ShapeError::new(format!(
            "online_attention q {:?}, k {:?}, v {:?}",
            q.shape(),
            k.shape(),
            v.shape()
        )));
    }
    if t == 0 || !l.is_multiple_of(t) {
        return Err(ShapeError::new(format!("tile {t} must divide L {l}")));
    }
    let _span = resoftmax_obs::span!("online_attention", "kernels");
    if let Some(m) = mask {
        assert_eq!(m.len(), l * l, "mask length mismatch");
    }
    let d_head = q.cols();
    let d_out = v.cols();
    let n_tiles = l / t;

    let mut out = Matrix::zeros(l, d_out);
    // Rows are independent: parallelize (the per-row online recurrence is
    // sequential by construction, matching the kernel's dataflow).
    out.as_mut_slice()
        .par_chunks_mut(d_out.max(1))
        .enumerate()
        .for_each(|(r, out_row)| {
            let mut m_run = f32::NEG_INFINITY;
            let mut d_run = 0.0f32;
            let mut acc = vec![0.0f32; d_out];

            for tile in 0..n_tiles {
                // Scores for this K tile (f32 accumulate, scale, mask).
                let mut s = vec![0.0f32; t];
                let mut m_tile = f32::NEG_INFINITY;
                for (j, sj) in s.iter_mut().enumerate() {
                    let c = tile * t + j;
                    let mut dot = 0.0f32;
                    for p in 0..d_head {
                        dot += q.get(r, p).to_f32() * k.get(c, p).to_f32();
                    }
                    dot *= scale as f32;
                    if let Some(mk) = mask {
                        if !mk[r * l + tile * t + j] {
                            dot = f32::NEG_INFINITY;
                        }
                    }
                    *sj = dot;
                    m_tile = m_tile.max(dot);
                }
                if m_tile == f32::NEG_INFINITY {
                    continue; // fully masked tile contributes nothing
                }
                // Online rescale.
                let m_new = m_run.max(m_tile);
                let alpha = if m_run == f32::NEG_INFINITY {
                    0.0
                } else {
                    (m_run - m_new).exp()
                };
                let mut d_tile = 0.0f32;
                let mut pv = vec![0.0f32; d_out];
                for (j, &sj) in s.iter().enumerate() {
                    if sj == f32::NEG_INFINITY {
                        continue;
                    }
                    let e = (sj - m_new).exp();
                    d_tile += e;
                    let c = tile * t + j;
                    for (o, p) in pv.iter_mut().enumerate() {
                        *p += e * v.get(c, o).to_f32();
                    }
                }
                d_run = d_run * alpha + d_tile;
                for (a, p) in acc.iter_mut().zip(&pv) {
                    *a = *a * alpha + p;
                }
                m_run = m_new;
            }
            if d_run > 0.0 {
                for (o, a) in out_row.iter_mut().zip(&acc) {
                    *o = T::from_f64((a / d_run) as f64);
                }
            }
        });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::{recomposed_attention, reference_attention};
    use crate::softmax::{apply_mask, causal_mask};
    use resoftmax_fp16::F16;
    use resoftmax_tensor::{max_abs_diff, randn_matrix};

    const SCALE: f64 = 0.125;

    #[test]
    fn matches_reference_f64() {
        let (l, d) = (64, 16);
        let q = randn_matrix::<f64>(l, d, 1.0, 1);
        let k = randn_matrix::<f64>(l, d, 1.0, 2);
        let v = randn_matrix::<f64>(l, d, 1.0, 3);
        let reference = reference_attention(&q, &k, &v, SCALE, None).unwrap();
        for t in [8, 16, 32, 64] {
            let online = online_attention(&q, &k, &v, t, SCALE, None).unwrap();
            assert!(
                max_abs_diff(&reference, &online) < 1e-5,
                "t={t}: {}",
                max_abs_diff(&reference, &online)
            );
        }
    }

    #[test]
    fn matches_recomposed_fp16() {
        let (l, d) = (64, 32);
        let q = randn_matrix::<F16>(l, d, 0.7, 4);
        let k = randn_matrix::<F16>(l, d, 0.7, 5);
        let v = randn_matrix::<F16>(l, d, 0.7, 6);
        let (sdf, _) = recomposed_attention(&q, &k, &v, 16, SCALE, None).unwrap();
        let online = online_attention(&q, &k, &v, 16, SCALE, None).unwrap();
        assert!(max_abs_diff(&sdf, &online) < 5e-3);
        assert!(!online.has_nan());
    }

    #[test]
    fn causal_mask_agrees() {
        let (l, d) = (32, 8);
        let q = randn_matrix::<f64>(l, d, 1.0, 7);
        let k = randn_matrix::<f64>(l, d, 1.0, 8);
        let v = randn_matrix::<f64>(l, d, 1.0, 9);
        let mask = causal_mask(l);
        let reference = reference_attention(&q, &k, &v, SCALE, Some(&mask)).unwrap();
        let online = online_attention(&q, &k, &v, 8, SCALE, Some(&mask)).unwrap();
        assert!(max_abs_diff(&reference, &online) < 1e-6);
        // row 0 attends only to itself
        for j in 0..d {
            assert!((online.get(0, j) - v.get(0, j)).abs() < 1e-6);
        }
    }

    #[test]
    fn running_rescale_survives_large_late_maxima() {
        // The max appears in the LAST tile: the accumulated prefix must be
        // rescaled away almost entirely without overflow or NaN.
        let (l, d) = (32, 4);
        let q = Matrix::<f64>::filled(l, d, 1.0);
        let mut k = randn_matrix::<f64>(l, d, 0.1, 10);
        for p in 0..d {
            k.set(l - 1, p, 25.0); // huge score for the final key
        }
        let v = randn_matrix::<f64>(l, d, 1.0, 11);
        let reference = reference_attention(&q, &k, &v, 1.0, None).unwrap();
        let online = online_attention(&q, &k, &v, 8, 1.0, None).unwrap();
        assert!(max_abs_diff(&reference, &online) < 1e-5);
        // attention should be ~all on the last value row
        for j in 0..d {
            assert!((online.get(0, j) - v.get(l - 1, j)).abs() < 1e-3);
        }
    }

    #[test]
    fn fully_masked_rows_are_zero() {
        let (l, d) = (16, 4);
        let q = randn_matrix::<f64>(l, d, 1.0, 12);
        let k = randn_matrix::<f64>(l, d, 1.0, 13);
        let v = randn_matrix::<f64>(l, d, 1.0, 14);
        let mut mask = vec![true; l * l];
        mask[..l].fill(false); // row 0 fully masked
        let online = online_attention(&q, &k, &v, 4, SCALE, Some(&mask)).unwrap();
        for j in 0..d {
            assert_eq!(online.get(0, j), 0.0);
        }
    }

    #[test]
    fn shape_errors() {
        let q = randn_matrix::<f64>(16, 8, 1.0, 0);
        let k = randn_matrix::<f64>(16, 8, 1.0, 1);
        let v = randn_matrix::<f64>(16, 8, 1.0, 2);
        assert!(online_attention(&q, &k, &v, 5, 1.0, None).is_err());
        assert!(online_attention(&q, &k, &v, 0, 1.0, None).is_err());
        let k_bad = randn_matrix::<f64>(16, 4, 1.0, 3);
        assert!(online_attention(&q, &k_bad, &v, 4, 1.0, None).is_err());
        let v_bad = randn_matrix::<f64>(8, 8, 1.0, 4);
        assert!(online_attention(&q, &k, &v_bad, 4, 1.0, None).is_err());
    }

    #[test]
    fn equivalent_to_masked_dense_restriction() {
        // masked online == unmasked online on a causal support computed by
        // explicit apply_mask on the scores path (sanity of mask plumbing)
        let (l, d) = (16, 4);
        let q = randn_matrix::<f64>(l, d, 1.0, 20);
        let k = randn_matrix::<f64>(l, d, 1.0, 21);
        let v = randn_matrix::<f64>(l, d, 1.0, 22);
        let mask = causal_mask(l);
        let a = online_attention(&q, &k, &v, 4, SCALE, Some(&mask)).unwrap();
        // reference path through apply_mask
        let scores = resoftmax_tensor::matmul_transpose_b(&q, &k).unwrap();
        let masked = apply_mask(&resoftmax_tensor::scale(&scores, SCALE), &mask);
        let p = crate::softmax::softmax_rows(&masked);
        let b = resoftmax_tensor::matmul(&p, &v).unwrap();
        assert!(max_abs_diff(&a, &b) < 1e-6);
    }
}

/// Extension: block-sparse online-softmax attention — one pass over each
/// row's *retained* K/V blocks with the running-rescale recurrence, never
/// materializing even the sparse attention blocks.
///
/// Equals `sddmm → block_sparse_softmax → spmm` on the same support.
///
/// # Errors
///
/// Returns [`ShapeError`] on dimension mismatch with the layout.
pub fn bs_online_attention<T: Scalar>(
    q: &Matrix<T>,
    k: &Matrix<T>,
    v: &Matrix<T>,
    layout: &resoftmax_sparse::BlockLayout,
    scale: f64,
) -> Result<Matrix<T>, ShapeError> {
    let l = layout.seq_len();
    if q.rows() != l || k.rows() != l || v.rows() != l || k.cols() != q.cols() {
        return Err(ShapeError::new(format!(
            "bs_online_attention q {:?}, k {:?}, v {:?}, L={l}",
            q.shape(),
            k.shape(),
            v.shape()
        )));
    }
    let _span = resoftmax_obs::span!("bs_online_attention", "kernels");
    let b = layout.block();
    let d_head = q.cols();
    let d_out = v.cols();
    let row_ptr = layout.row_ptr();
    let blocks: Vec<(usize, usize)> = layout.iter_blocks().collect();

    let mut out = Matrix::zeros(l, d_out);
    out.as_mut_slice()
        .par_chunks_mut(d_out.max(1))
        .enumerate()
        .for_each(|(r, out_row)| {
            let br = r / b;
            let mut m_run = f32::NEG_INFINITY;
            let mut d_run = 0.0f32;
            let mut acc = vec![0.0f32; d_out];
            for &(_, bc) in &blocks[row_ptr[br]..row_ptr[br + 1]] {
                // Scores for this retained block's columns.
                let mut s = vec![0.0f32; b];
                let mut m_tile = f32::NEG_INFINITY;
                for (j, sj) in s.iter_mut().enumerate() {
                    let c = bc * b + j;
                    let mut dot = 0.0f32;
                    for p in 0..d_head {
                        dot += q.get(r, p).to_f32() * k.get(c, p).to_f32();
                    }
                    *sj = dot * scale as f32;
                    m_tile = m_tile.max(*sj);
                }
                let m_new = m_run.max(m_tile);
                let alpha = if m_run == f32::NEG_INFINITY {
                    0.0
                } else {
                    (m_run - m_new).exp()
                };
                let mut d_tile = 0.0f32;
                let mut pv = vec![0.0f32; d_out];
                for (j, &sj) in s.iter().enumerate() {
                    let e = (sj - m_new).exp();
                    d_tile += e;
                    let c = bc * b + j;
                    for (o, p) in pv.iter_mut().enumerate() {
                        *p += e * v.get(c, o).to_f32();
                    }
                }
                d_run = d_run * alpha + d_tile;
                for (a, p) in acc.iter_mut().zip(&pv) {
                    *a = *a * alpha + p;
                }
                m_run = m_new;
            }
            if d_run > 0.0 {
                for (o, a) in out_row.iter_mut().zip(&acc) {
                    *o = T::from_f64((a / d_run) as f64);
                }
            }
        });
    Ok(out)
}

#[cfg(test)]
mod bs_online_tests {
    use super::*;
    use resoftmax_sparse::{block_sparse_softmax, pattern, sddmm, spmm, BigBirdConfig};
    use resoftmax_tensor::{max_abs_diff, randn_matrix, scale as scale_op};

    #[test]
    fn matches_unfused_block_sparse_pipeline() {
        let l = 128;
        let layout = pattern::bigbird(
            l,
            &BigBirdConfig {
                block: 16,
                random_blocks: 2,
                ..Default::default()
            },
        );
        let sc = 0.25;
        let q = randn_matrix::<f64>(l, 16, 1.0, 700);
        let k = randn_matrix::<f64>(l, 16, 1.0, 701);
        let v = randn_matrix::<f64>(l, 16, 1.0, 702);
        let mut scores = sddmm(&q, &k, &layout).unwrap();
        for block in scores.blocks_mut() {
            *block = scale_op(block, sc);
        }
        let reference = spmm(&block_sparse_softmax(&scores), &v).unwrap();
        let online = bs_online_attention(&q, &k, &v, &layout, sc).unwrap();
        assert!(
            max_abs_diff(&reference, &online) < 1e-5,
            "diff {}",
            max_abs_diff(&reference, &online)
        );
    }

    #[test]
    fn rows_without_blocks_stay_zero() {
        let l = 32;
        let mut layout = resoftmax_sparse::BlockLayout::empty(l, 16);
        layout.set(0, 0, true); // only the first block-row attends
        let q = randn_matrix::<f64>(l, 8, 1.0, 710);
        let k = randn_matrix::<f64>(l, 8, 1.0, 711);
        let v = randn_matrix::<f64>(l, 8, 1.0, 712);
        let out = bs_online_attention(&q, &k, &v, &layout, 1.0).unwrap();
        for r in 16..32 {
            for j in 0..8 {
                assert_eq!(out.get(r, j), 0.0, "empty row {r} must be zero");
            }
        }
        // attended rows are nonzero
        assert!(out.row(0).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn shape_errors() {
        let layout = pattern::sliding_window(32, 16, 1);
        let q = randn_matrix::<f64>(32, 8, 1.0, 0);
        let k_bad = randn_matrix::<f64>(32, 4, 1.0, 1);
        let v = randn_matrix::<f64>(32, 8, 1.0, 2);
        assert!(bs_online_attention(&q, &k_bad, &v, &layout, 1.0).is_err());
        let v_bad = randn_matrix::<f64>(16, 8, 1.0, 3);
        assert!(bs_online_attention(&q, &k_bad, &v_bad, &layout, 1.0).is_err());
    }
}
