//! Numeric safe softmax — the monolithic reference (paper Eq. 1) — plus the
//! masked variant used by attention and the backward pass (paper Eq. 3).
//!
//! Rounding model: elementwise transcendentals round once at the working
//! precision `T`; reductions (the normalizer `d`, backward row-dots)
//! accumulate wide and round once on use — so the `f64` instantiation is an
//! exact oracle while the binary16 instantiation still rounds every stored
//! element, like CUDA softmax kernels that keep partial sums in registers.

use rayon::prelude::*;
use resoftmax_tensor::{Matrix, Scalar};

/// Safe softmax along each row (paper Eq. 1):
/// `y_i = e^{x_i - m} / Σ_j e^{x_j - m}` with `m = max_i x_i`.
///
/// This is the three-sweep monolithic formulation: one sweep for `m`, one for
/// `d`, one to normalize — the data-access pattern that makes the layer
/// unfusable with adjacent MatMuls (§2.3).
///
/// Rows of all `-inf` (fully masked) produce all zeros rather than NaN,
/// matching the convention of attention kernels.
///
/// # Example
///
/// ```
/// use resoftmax_kernels::softmax_rows;
/// use resoftmax_tensor::Matrix;
///
/// let x = Matrix::<f32>::from_rows(&[&[1.0, 2.0, 3.0]]);
/// let y = softmax_rows(&x);
/// let sum: f32 = y.row(0).iter().sum();
/// assert!((sum - 1.0).abs() < 1e-6);
/// ```
pub fn softmax_rows<T: Scalar>(x: &Matrix<T>) -> Matrix<T> {
    let cols = x.cols();
    let mut y = Matrix::zeros(x.rows(), cols);
    // Rows are independent: parallelize across them (deterministic — the
    // per-row accumulation order is unchanged).
    y.as_mut_slice()
        .par_chunks_mut(cols.max(1))
        .enumerate()
        .for_each(|(r, out)| {
            let row = x.row(r);
            // Sweep 1: row max, in working precision.
            let m = row.iter().fold(f64::NEG_INFINITY, |a, v| a.max(v.to_f64()));
            if m == f64::NEG_INFINITY {
                return; // fully masked row -> zeros
            }
            // Sweep 2: normalizer, accumulated wide and rounded once on use
            // (GPU kernels hold the partial sums in f32 registers;
            // accumulating in f64 here keeps the f64 instantiation an exact
            // oracle while the F16 instantiation still rounds every stored
            // element).
            let mut d = 0.0f64;
            for v in row {
                let e = T::from_f64((v.to_f64() - m).exp());
                d += e.to_f64();
            }
            // Sweep 3: normalize.
            for (o, v) in out.iter_mut().zip(row) {
                let e = T::from_f64((v.to_f64() - m).exp());
                *o = T::from_f64(e.to_f64() / d);
            }
        });
    y
}

/// Exact `f64` oracle used by the test suites.
pub fn softmax_rows_f64<T: Scalar>(x: &Matrix<T>) -> Matrix<f64> {
    let mut y = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let m = x
            .row(r)
            .iter()
            .fold(f64::NEG_INFINITY, |a, v| a.max(v.to_f64()));
        if m == f64::NEG_INFINITY {
            continue;
        }
        let d: f64 = x.row(r).iter().map(|v| (v.to_f64() - m).exp()).sum();
        for c in 0..x.cols() {
            y.set(r, c, (x.get(r, c).to_f64() - m).exp() / d);
        }
    }
    y
}

/// Applies an attention mask: elements where `mask` is `false` become `-inf`
/// (paper §2.1: "a mask layer is utilized on the attention matrix to make the
/// elements that fall short of certain criteria equal to −∞").
///
/// # Panics
///
/// Panics if `mask.len() != x.len()` (row-major element mask).
pub fn apply_mask<T: Scalar>(x: &Matrix<T>, mask: &[bool]) -> Matrix<T> {
    assert_eq!(mask.len(), x.len(), "mask length mismatch");
    let cols = x.cols();
    Matrix::from_fn(x.rows(), cols, |r, c| {
        if mask[r * cols + c] {
            x.get(r, c)
        } else {
            T::neg_infinity()
        }
    })
}

/// Causal (autoregressive) element mask for an `l × l` attention matrix:
/// position `i` may attend to `j <= i`.
pub fn causal_mask(l: usize) -> Vec<bool> {
    let mut m = vec![false; l * l];
    for i in 0..l {
        for j in 0..=i {
            m[i * l + j] = true;
        }
    }
    m
}

/// Softmax backward (paper Eq. 3, §6): given the forward *output* `y` and the
/// upstream gradient `dy`, returns `dx` where
/// `dx_k = y_k · (dy_k − Σ_i dy_i · y_i)`.
///
/// The point of Eq. 3 in the paper: the backward pass needs only `Y`, never
/// the softmax *input*, so recomposition (which avoids materializing the
/// input to off-chip memory) remains legal in training.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn softmax_backward<T: Scalar>(y: &Matrix<T>, dy: &Matrix<T>) -> Matrix<T> {
    assert_eq!(y.shape(), dy.shape(), "softmax_backward shape mismatch");
    let cols = y.cols();
    let mut dx = Matrix::zeros(y.rows(), cols);
    dx.as_mut_slice()
        .par_chunks_mut(cols.max(1))
        .enumerate()
        .for_each(|(r, out)| {
            let (yr, dyr) = (y.row(r), dy.row(r));
            // Row dot product, accumulated wide.
            let mut dot = 0.0f64;
            for (a, b) in yr.iter().zip(dyr) {
                dot += a.to_f64() * b.to_f64();
            }
            for ((o, a), b) in out.iter_mut().zip(yr).zip(dyr) {
                *o = T::from_f64(a.to_f64() * (b.to_f64() - dot));
            }
        });
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_fp16::F16;
    use resoftmax_tensor::{max_abs_diff, randn_matrix, uniform_matrix};

    #[test]
    fn rows_sum_to_one() {
        let x = randn_matrix::<f32>(10, 50, 3.0, 1);
        let y = softmax_rows(&x);
        for r in 0..10 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn matches_f64_oracle() {
        let x = randn_matrix::<f64>(8, 64, 2.0, 2);
        let y = softmax_rows(&x);
        let oracle = softmax_rows_f64(&x);
        assert!(max_abs_diff(&y, &oracle) < 1e-6);
    }

    #[test]
    fn shift_invariance() {
        // softmax(x + c) == softmax(x)
        let x = randn_matrix::<f64>(4, 16, 1.0, 3);
        let shifted = x.map(|v| v + 100.0);
        assert!(max_abs_diff(&softmax_rows(&x), &softmax_rows(&shifted)) < 1e-12);
    }

    #[test]
    fn safe_in_half_precision_where_naive_overflows() {
        // Scores around 20: e^20 overflows binary16, but safe softmax with
        // max subtraction stays finite.
        let x = uniform_matrix::<F16>(4, 32, 15.0, 25.0, 4);
        let y = softmax_rows(&x);
        assert!(!y.has_nan());
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        for r in 0..4 {
            let s: f64 = y.row(r).iter().map(|v| v.to_f64()).sum();
            assert!((s - 1.0).abs() < 2e-2, "fp16 row sum {s}");
        }
    }

    #[test]
    fn fully_masked_row_is_zero_not_nan() {
        let x = Matrix::<f32>::filled(2, 8, f32::NEG_INFINITY);
        let y = softmax_rows(&x);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn single_peak_dominates() {
        let mut x = Matrix::<f32>::zeros(1, 100);
        x.set(0, 37, 50.0);
        let y = softmax_rows(&x);
        assert!(y.get(0, 37) > 0.999);
    }

    #[test]
    fn mask_application() {
        let x = Matrix::<f32>::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let mask = [true, false, true, false];
        let masked = apply_mask(&x, &mask);
        assert_eq!(masked.get(0, 0), 1.0);
        assert_eq!(masked.get(0, 1), f32::NEG_INFINITY);
        let y = softmax_rows(&masked);
        assert_eq!(y.get(0, 1), 0.0);
        assert_eq!(y.get(0, 3), 0.0);
        let s: f32 = y.row(0).iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn causal_mask_shape() {
        let m = causal_mask(4);
        assert!(m[0]); // (0,0)
        assert!(!m[1]); // (0,1) future
        assert!(m[4] && m[5]); // (1,0), (1,1)
        assert!(!m[6]); // (1,2)
        assert_eq!(m.iter().filter(|&&b| b).count(), 10);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let x = randn_matrix::<f64>(3, 8, 1.0, 7);
        let y = softmax_rows_f64(&x);
        let dy = randn_matrix::<f64>(3, 8, 1.0, 8);
        let dx = softmax_backward(&y, &dy);

        // Finite differences on a scalar loss Σ dy ⊙ softmax(x).
        let eps = 1e-6;
        for r in 0..3 {
            for c in 0..8 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let loss = |m: &Matrix<f64>| -> f64 {
                    let y = softmax_rows_f64(m);
                    y.as_slice()
                        .iter()
                        .zip(dy.as_slice())
                        .map(|(a, b)| a * b)
                        .sum()
                };
                let numeric = (loss(&xp) - loss(&xm)) / (2.0 * eps);
                assert!(
                    (numeric - dx.get(r, c)).abs() < 1e-5,
                    "({r},{c}): fd {numeric} vs analytic {}",
                    dx.get(r, c)
                );
            }
        }
    }

    #[test]
    fn backward_gradient_rows_sum_to_zero() {
        // Σ_k dx_k = Σ y_k dy_k − (Σ y_k)(Σ y dy) = 0 since Σ y_k = 1.
        let x = randn_matrix::<f64>(5, 32, 1.5, 9);
        let y = softmax_rows_f64(&x);
        let dy = randn_matrix::<f64>(5, 32, 1.0, 10);
        let dx = softmax_backward(&y, &dy);
        for r in 0..5 {
            let s: f64 = dx.row(r).iter().sum();
            assert!(s.abs() < 1e-9, "row {r} gradient sum {s}");
        }
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn bad_mask_panics() {
        let x = Matrix::<f32>::zeros(2, 2);
        let _ = apply_mask(&x, &[true; 3]);
    }
}
