//! Integration tests for the fleet serving simulator: determinism across
//! host thread counts, fault scenarios, legacy-wrapper equivalence, and the
//! TTFT definition under chunked prefill.

use resoftmax_gpusim::{DeviceSpec, Gpu};
use resoftmax_model::{build_batched_decode_schedule, ModelConfig, RunParams};
use resoftmax_serve::{
    kv_bytes_per_token, run_serve, Error, FleetBuilder, LinkSpec, RouterPolicy, ServeConfig,
};

fn model() -> ModelConfig {
    ModelConfig::gpt_neo_1_3b()
}

fn small_cfg() -> ServeConfig {
    ServeConfig {
        requests: 16,
        arrival_rate_hz: 64.0,
        prompt_tokens: (64, 192),
        decode_tokens: (4, 12),
        max_batch: 4,
        prefill_chunk: 64,
        ..ServeConfig::default()
    }
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn fleet_reports_are_bit_identical_across_host_threads() {
    // Two grid cells (round-robin and least-loaded fleets), evaluated under
    // 1 and 4 worker threads: all time is simulated, so the serialized
    // reports must match byte for byte.
    let cells = [RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded];
    let run_grid = || {
        resoftmax_parallel::parallel_map(&cells, |_, &router| {
            let report = FleetBuilder::new()
                .model(model())
                .params(RunParams::new(4096))
                .replicas(3, &DeviceSpec::a100())
                .router(router)
                .link(LinkSpec::nvlink())
                .workload(small_cfg())
                .build()
                .unwrap()
                .run()
                .unwrap();
            serde_json::to_string(&report).unwrap()
        })
    };
    resoftmax_parallel::set_thread_override(Some(1));
    let single = run_grid();
    resoftmax_parallel::set_thread_override(Some(4));
    let multi = run_grid();
    resoftmax_parallel::set_thread_override(None);
    assert_eq!(single, multi, "fleet reports diverged across thread counts");
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn fleet_reruns_are_identical() {
    // The second run hits the warm kernel-pricing cache; the report must be
    // bit-identical to the cold one (and `Fleet::run` must reset all state).
    let fleet = FleetBuilder::new()
        .model(model())
        .params(RunParams::new(4096))
        .replicas(2, &DeviceSpec::a100())
        .router(RouterPolicy::CacheAffinity)
        .workload(small_cfg())
        .build()
        .unwrap();
    let a = fleet.run().unwrap();
    let b = fleet.run().unwrap();
    assert_eq!(a, b);
    assert_eq!(a.completed, small_cfg().requests);
    assert_eq!(a.submitted, small_cfg().requests);
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn drain_migrates_residents_and_completes_everything() {
    // Drain replica 0 early enough that it still holds resident requests:
    // they must migrate (KV over the link) or re-queue, and the workload
    // must still finish on the survivor.
    let cfg = ServeConfig {
        requests: 12,
        arrival_rate_hz: 256.0,
        ..small_cfg()
    };
    let report = FleetBuilder::new()
        .model(model())
        .params(RunParams::new(4096))
        .replicas(2, &DeviceSpec::a100())
        .router(RouterPolicy::RoundRobin)
        .link(LinkSpec::pcie_gen4())
        .workload(cfg.clone())
        .drain_at(0, 0.05)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.completed, cfg.requests);
    assert!(report.replicas[0].drained);
    assert!(!report.replicas[1].drained);
    assert!(
        report.migrations > 0,
        "an early drain must migrate resident KV: {report:?}"
    );
    assert!(report.kv_migrated_bytes > 0);
    assert!(report.migration_time_s > 0.0);
    // Everything after the drain lands on replica 1.
    assert!(report.replicas[1].completed > 0);
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn failure_loses_kv_but_the_fleet_recovers() {
    let cfg = ServeConfig {
        requests: 12,
        arrival_rate_hz: 256.0,
        ..small_cfg()
    };
    let report = FleetBuilder::new()
        .model(model())
        .params(RunParams::new(4096))
        .replicas(2, &DeviceSpec::a100())
        .workload(cfg.clone())
        .fail_at(1, 0.05)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.completed, cfg.requests);
    assert!(report.replicas[1].failed);
    // A failed pool cannot migrate: its residents re-prefill from scratch,
    // so no link traffic is charged for them.
    assert_eq!(report.replicas[1].completed, 0, "{report:?}");
    assert!(report.replicas[0].completed == cfg.requests);
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn legacy_wrappers_match_a_one_replica_fleet() {
    let cfg = ServeConfig {
        requests: 8,
        ..small_cfg()
    };
    let params = RunParams::new(4096);
    let legacy = run_serve(&model(), &DeviceSpec::a100(), &params, &cfg).unwrap();
    let fleet = FleetBuilder::new()
        .model(model())
        .params(params)
        .replica(DeviceSpec::a100())
        .workload(cfg)
        .build()
        .unwrap()
        .run()
        .unwrap()
        .serve_report();
    assert_eq!(
        serde_json::to_string(&legacy).unwrap(),
        serde_json::to_string(&fleet).unwrap(),
        "run_serve must be byte-identical to a one-replica fleet"
    );
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn ttft_is_the_final_prompt_chunk_not_the_first_decode() {
    // One request, prompt 256 in chunks of 64, 4 output tokens. The first
    // token is emitted by the *final prefill chunk's* forward pass, so TTFT
    // is the sum of the four prefill iterations — not that plus the first
    // single-token decode iteration (the old, wrong definition).
    let m = model();
    let params = RunParams::new(4096);
    let cfg = ServeConfig {
        requests: 1,
        prompt_tokens: (256, 256),
        decode_tokens: (4, 4),
        max_batch: 1,
        prefill_chunk: 64,
        ..ServeConfig::default()
    };
    let report = FleetBuilder::new()
        .model(m.clone())
        .params(params.clone())
        .replica(DeviceSpec::a100())
        .workload(cfg.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();

    // Price the same five iterations by hand, accumulating the clock the
    // same way the engine does so the comparison is exact.
    let t0 = resoftmax_serve::poisson_arrivals(&cfg)[0].at_s;
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let mut price = |ctxs: Vec<usize>| -> f64 {
        gpu.run(&build_batched_decode_schedule(&m, &ctxs, &params))
            .unwrap();
        gpu.take_timeline().total_time_s()
    };
    let mut clock = t0;
    for chunk in 0..4 {
        clock += price((chunk * 64 + 1..=chunk * 64 + 64).collect());
    }
    let expected_ttft = clock - t0;
    let first_decode_dt = price(vec![257]);

    assert_eq!(
        report.ttft.max_s, expected_ttft,
        "TTFT must be the final prefill chunk's completion"
    );
    assert!(
        report.ttft.max_s < expected_ttft + first_decode_dt,
        "TTFT must not include the first decode iteration"
    );
    // Tokens 2..4 are decode iterations: exactly decode - 1 TBT samples.
    assert_eq!(report.tbt.n, 3);
    assert_eq!(report.decode_tokens, 4);
}

#[test]
fn builder_rejects_bad_configurations() {
    let base = || {
        FleetBuilder::new()
            .model(model())
            .params(RunParams::new(4096))
            .workload(small_cfg())
    };

    // No replicas.
    let e = base().build().unwrap_err();
    assert!(matches!(e, Error::Config { .. }), "{e}");
    assert!(e.to_string().contains("at least one replica"), "{e}");

    // A decode range that cannot produce a TBT sample.
    let mut cfg = small_cfg();
    cfg.decode_tokens = (1, 8);
    let e = base()
        .replica(DeviceSpec::a100())
        .workload(cfg)
        .build()
        .unwrap_err();
    assert!(e.to_string().contains("TTFT"), "{e}");

    // Every replica has a scripted fault.
    let e = base()
        .replicas(2, &DeviceSpec::a100())
        .fail_at(0, 1.0)
        .drain_at(1, 2.0)
        .build()
        .unwrap_err();
    assert!(e.to_string().contains("survive"), "{e}");

    // A fault event pointing past the fleet.
    let e = base()
        .replica(DeviceSpec::a100())
        .fail_at(3, 1.0)
        .build()
        .unwrap_err();
    assert!(e.to_string().contains("replica 3"), "{e}");

    // KV pool below one worst-case request.
    let mut cfg = small_cfg();
    cfg.kv_capacity_bytes = Some(kv_bytes_per_token(&model()) * 64);
    let e = base()
        .replica(DeviceSpec::a100())
        .workload(cfg)
        .build()
        .unwrap_err();
    assert!(matches!(e, Error::Admission { .. }), "{e}");

    // Sparse models have no decode cost model.
    let e = FleetBuilder::new()
        .model(ModelConfig::bigbird_large())
        .params(RunParams::new(4096))
        .replica(DeviceSpec::a100())
        .workload(small_cfg())
        .build()
        .unwrap_err();
    assert!(e.to_string().contains("dense"), "{e}");
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn sessions_pin_to_replicas_under_cache_affinity() {
    // With 4 sessions and the affinity router, requests of one session all
    // land on (and stay on) the session's rendezvous replica unless
    // displaced — with ample KV there are no displacements, so migrations
    // must be zero.
    let cfg = ServeConfig {
        sessions: 4,
        ..small_cfg()
    };
    let report = FleetBuilder::new()
        .model(model())
        .params(RunParams::new(4096))
        .replicas(4, &DeviceSpec::a100())
        .router(RouterPolicy::CacheAffinity)
        .workload(cfg.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.completed, cfg.requests);
    assert_eq!(report.migrations, 0);
    assert_eq!(report.evictions, 0);
    // 4 sessions over 4 replicas: at most 4 replicas see work, and at least
    // one does.
    let active = report.replicas.iter().filter(|r| r.completed > 0).count();
    assert!((1..=4).contains(&active));
}
