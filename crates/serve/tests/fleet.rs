//! Integration tests for the fleet serving simulator: determinism across
//! host thread counts, fault scenarios, prefill/decode disaggregation,
//! KV-pool conservation, legacy-wrapper equivalence, and the TTFT
//! definition under chunked prefill.

use resoftmax_gpusim::{DeviceSpec, Gpu};
use resoftmax_model::{build_batched_decode_schedule, ModelConfig, RunParams};
use resoftmax_serve::{
    kv_bytes_per_token, poisson_arrivals, run_serve, Error, FleetBuilder, FleetReport, LinkSpec,
    Policy, Role, RouterPolicy, ServeConfig,
};

fn model() -> ModelConfig {
    ModelConfig::gpt_neo_1_3b()
}

fn small_cfg() -> ServeConfig {
    ServeConfig {
        requests: 16,
        arrival_rate_hz: 64.0,
        prompt_tokens: (64, 192),
        decode_tokens: (4, 12),
        max_batch: 4,
        prefill_chunk: 64,
        ..ServeConfig::default()
    }
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn fleet_reports_are_bit_identical_across_host_threads() {
    // Two grid cells (round-robin and least-loaded fleets), evaluated under
    // 1 and 4 worker threads: all time is simulated, so the serialized
    // reports must match byte for byte.
    let cells = [RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded];
    let run_grid = || {
        resoftmax_parallel::parallel_map(&cells, |_, &router| {
            let report = FleetBuilder::new()
                .model(model())
                .params(RunParams::new(4096))
                .replicas(3, &DeviceSpec::a100())
                .router(router)
                .link(LinkSpec::nvlink())
                .workload(small_cfg())
                .build()
                .unwrap()
                .run()
                .unwrap();
            serde_json::to_string(&report).unwrap()
        })
    };
    resoftmax_parallel::set_thread_override(Some(1));
    let single = run_grid();
    resoftmax_parallel::set_thread_override(Some(4));
    let multi = run_grid();
    resoftmax_parallel::set_thread_override(None);
    assert_eq!(single, multi, "fleet reports diverged across thread counts");
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn fleet_reruns_are_identical() {
    // The second run hits the warm kernel-pricing cache; the report must be
    // bit-identical to the cold one (and `Fleet::run` must reset all state).
    let fleet = FleetBuilder::new()
        .model(model())
        .params(RunParams::new(4096))
        .replicas(2, &DeviceSpec::a100())
        .router(RouterPolicy::CacheAffinity)
        .workload(small_cfg())
        .build()
        .unwrap();
    let a = fleet.run().unwrap();
    let b = fleet.run().unwrap();
    assert_eq!(a, b);
    assert_eq!(a.completed, small_cfg().requests);
    assert_eq!(a.submitted, small_cfg().requests);
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn drain_migrates_residents_and_completes_everything() {
    // Drain replica 0 early enough that it still holds resident requests:
    // they must migrate (KV over the link) or re-queue, and the workload
    // must still finish on the survivor.
    let cfg = ServeConfig {
        requests: 12,
        arrival_rate_hz: 256.0,
        ..small_cfg()
    };
    let report = FleetBuilder::new()
        .model(model())
        .params(RunParams::new(4096))
        .replicas(2, &DeviceSpec::a100())
        .router(RouterPolicy::RoundRobin)
        .link(LinkSpec::pcie_gen4())
        .workload(cfg.clone())
        .drain_at(0, 0.05)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.completed, cfg.requests);
    assert!(report.replicas[0].drained);
    assert!(!report.replicas[1].drained);
    assert!(
        report.migrations > 0,
        "an early drain must migrate resident KV: {report:?}"
    );
    assert!(report.kv_migrated_bytes > 0);
    assert!(report.migration_time_s > 0.0);
    // Everything after the drain lands on replica 1.
    assert!(report.replicas[1].completed > 0);
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn failure_loses_kv_but_the_fleet_recovers() {
    let cfg = ServeConfig {
        requests: 12,
        arrival_rate_hz: 256.0,
        ..small_cfg()
    };
    let report = FleetBuilder::new()
        .model(model())
        .params(RunParams::new(4096))
        .replicas(2, &DeviceSpec::a100())
        .workload(cfg.clone())
        .fail_at(1, 0.05)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.completed, cfg.requests);
    assert!(report.replicas[1].failed);
    // A failed pool cannot migrate: its residents re-prefill from scratch,
    // so no link traffic is charged for them.
    assert_eq!(report.replicas[1].completed, 0, "{report:?}");
    assert!(report.replicas[0].completed == cfg.requests);
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn legacy_wrappers_match_a_one_replica_fleet() {
    let cfg = ServeConfig {
        requests: 8,
        ..small_cfg()
    };
    let params = RunParams::new(4096);
    let legacy = run_serve(&model(), &DeviceSpec::a100(), &params, &cfg).unwrap();
    let fleet = FleetBuilder::new()
        .model(model())
        .params(params)
        .replica(DeviceSpec::a100())
        .workload(cfg)
        .build()
        .unwrap()
        .run()
        .unwrap()
        .serve_report();
    assert_eq!(
        serde_json::to_string(&legacy).unwrap(),
        serde_json::to_string(&fleet).unwrap(),
        "run_serve must be byte-identical to a one-replica fleet"
    );
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn ttft_is_the_final_prompt_chunk_not_the_first_decode() {
    // One request, prompt 256 in chunks of 64, 4 output tokens. The first
    // token is emitted by the *final prefill chunk's* forward pass, so TTFT
    // is the sum of the four prefill iterations — not that plus the first
    // single-token decode iteration (the old, wrong definition).
    let m = model();
    let params = RunParams::new(4096);
    let cfg = ServeConfig {
        requests: 1,
        prompt_tokens: (256, 256),
        decode_tokens: (4, 4),
        max_batch: 1,
        prefill_chunk: 64,
        ..ServeConfig::default()
    };
    let report = FleetBuilder::new()
        .model(m.clone())
        .params(params.clone())
        .replica(DeviceSpec::a100())
        .workload(cfg.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();

    // Price the same five iterations by hand, accumulating the clock the
    // same way the engine does so the comparison is exact.
    let t0 = resoftmax_serve::poisson_arrivals(&cfg)[0].at_s;
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let mut price = |ctxs: Vec<usize>| -> f64 {
        gpu.run(&build_batched_decode_schedule(&m, &ctxs, &params))
            .unwrap();
        gpu.take_timeline().total_time_s()
    };
    let mut clock = t0;
    for chunk in 0..4 {
        clock += price((chunk * 64 + 1..=chunk * 64 + 64).collect());
    }
    let expected_ttft = clock - t0;
    let first_decode_dt = price(vec![257]);

    assert_eq!(
        report.ttft.max_s, expected_ttft,
        "TTFT must be the final prefill chunk's completion"
    );
    assert!(
        report.ttft.max_s < expected_ttft + first_decode_dt,
        "TTFT must not include the first decode iteration"
    );
    // Tokens 2..4 are decode iterations: exactly decode - 1 TBT samples.
    assert_eq!(report.tbt.n, 3);
    assert_eq!(report.decode_tokens, 4);
}

#[test]
fn builder_rejects_bad_configurations() {
    let base = || {
        FleetBuilder::new()
            .model(model())
            .params(RunParams::new(4096))
            .workload(small_cfg())
    };

    // No replicas.
    let e = base().build().unwrap_err();
    assert!(matches!(e, Error::Config { .. }), "{e}");
    assert!(e.to_string().contains("at least one replica"), "{e}");

    // A decode range that cannot produce a TBT sample.
    let mut cfg = small_cfg();
    cfg.decode_tokens = (1, 8);
    let e = base()
        .replica(DeviceSpec::a100())
        .workload(cfg)
        .build()
        .unwrap_err();
    assert!(e.to_string().contains("TTFT"), "{e}");

    // Every replica has a scripted fault.
    let e = base()
        .replicas(2, &DeviceSpec::a100())
        .fail_at(0, 1.0)
        .drain_at(1, 2.0)
        .build()
        .unwrap_err();
    assert!(e.to_string().contains("survive"), "{e}");

    // A fault event pointing past the fleet.
    let e = base()
        .replica(DeviceSpec::a100())
        .fail_at(3, 1.0)
        .build()
        .unwrap_err();
    assert!(e.to_string().contains("replica 3"), "{e}");

    // KV pool below one worst-case request.
    let mut cfg = small_cfg();
    cfg.kv_capacity_bytes = Some(kv_bytes_per_token(&model()) * 64);
    let e = base()
        .replica(DeviceSpec::a100())
        .workload(cfg)
        .build()
        .unwrap_err();
    assert!(matches!(e, Error::Admission { .. }), "{e}");

    // Sparse models have no decode cost model.
    let e = FleetBuilder::new()
        .model(ModelConfig::bigbird_large())
        .params(RunParams::new(4096))
        .replica(DeviceSpec::a100())
        .workload(small_cfg())
        .build()
        .unwrap_err();
    assert!(e.to_string().contains("dense"), "{e}");
}

/// A 2-prefill + 4-decode disaggregated fleet over `n` requests.
fn disagg_report(n: usize, link: LinkSpec, router: RouterPolicy) -> FleetReport {
    let cfg = ServeConfig {
        requests: n,
        arrival_rate_hz: 64.0,
        ..small_cfg()
    };
    FleetBuilder::new()
        .model(model())
        .params(RunParams::new(4096))
        .prefill_replicas(2, &DeviceSpec::a100())
        .decode_replicas(4, &DeviceSpec::a100())
        .router(router)
        .link(link)
        .workload(cfg)
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn disaggregated_fleet_hands_off_every_request_without_re_prefill() {
    let n = 96;
    let report = disagg_report(n, LinkSpec::nvlink(), RouterPolicy::RoundRobin);
    assert_eq!(report.completed, n);
    // Every request prefills on the prefill side, hands its KV across the
    // link exactly once (ample KV: nothing is evicted mid-decode), and
    // decodes without recomputing a single prompt token.
    assert_eq!(report.handoffs, n, "{report:?}");
    assert!(report.kv_handoff_bytes > 0);
    assert!(report.kv_handoff_time_s > 0.0);
    assert_eq!(report.decode_side_prefill_tokens, 0, "{report:?}");
    assert_eq!(report.evictions, 0);
    // Handoffs are not migrations: the rebalancing accounting stays zero.
    assert_eq!(report.migrations, 0);
    assert_eq!(report.kv_migrated_bytes, 0);
    for r in &report.replicas {
        match r.role.as_str() {
            "prefill" => {
                assert_eq!(r.completed, 0, "prefill replicas never finish a request");
                assert_eq!(
                    r.decode_tokens as usize, r.handoffs_out,
                    "first tokens only"
                );
                assert!(r.prefill_tokens > 0);
                assert_eq!(r.handoffs_in, 0);
            }
            "decode" => {
                assert_eq!(r.prefill_tokens, 0, "decode side must not re-prefill");
                assert!(r.completed > 0, "round-robin spreads decodes: {report:?}");
                assert_eq!(r.handoffs_out, 0);
            }
            other => panic!("unexpected role {other}"),
        }
    }
    assert_eq!(
        report
            .replicas
            .iter()
            .map(|r| r.handoffs_out)
            .sum::<usize>(),
        report.replicas.iter().map(|r| r.handoffs_in).sum::<usize>(),
    );
    // Every handed-off token is decoded exactly once, fleet-wide.
    assert_eq!(
        report.decode_tokens,
        report.replicas.iter().map(|r| r.decode_tokens).sum::<u64>()
    );
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn disaggregated_reports_are_bit_identical_across_threads_and_reruns() {
    let run = || {
        serde_json::to_string(&disagg_report(
            48,
            LinkSpec::pcie_gen4(),
            RouterPolicy::LeastLoaded,
        ))
        .unwrap()
    };
    // Cold pricing cache, single host thread.
    let cold = run();
    // Warm cache, 4 host threads: all time is simulated, so the report must
    // not move by a bit.
    resoftmax_parallel::set_thread_override(Some(4));
    let warm_multi = run();
    resoftmax_parallel::set_thread_override(Some(1));
    let warm_single = run();
    resoftmax_parallel::set_thread_override(None);
    assert_eq!(cold, warm_multi, "disaggregated report diverged");
    assert_eq!(cold, warm_single, "disaggregated report diverged on rerun");
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn handoff_cost_scales_with_the_link_but_ttft_does_not() {
    // TTFT is sampled when the final prefill chunk completes on the
    // *prefill* side — before the KV crosses the wire — so it is identical
    // across interconnects; the handoff wire time is what grows as the link
    // slows down (NVLink < PCIe < 100GbE) and lands in the token-2 TBT.
    let nvlink = disagg_report(24, LinkSpec::nvlink(), RouterPolicy::RoundRobin);
    let pcie = disagg_report(24, LinkSpec::pcie_gen4(), RouterPolicy::RoundRobin);
    let eth = disagg_report(24, LinkSpec::ethernet_100g(), RouterPolicy::RoundRobin);
    assert_eq!(nvlink.kv_handoff_bytes, pcie.kv_handoff_bytes);
    assert_eq!(pcie.kv_handoff_bytes, eth.kv_handoff_bytes);
    assert!(nvlink.kv_handoff_time_s < pcie.kv_handoff_time_s);
    assert!(pcie.kv_handoff_time_s < eth.kv_handoff_time_s);
    let ttfts = |r: &FleetReport| serde_json::to_string(&r.ttft).unwrap();
    assert_eq!(
        ttfts(&nvlink),
        ttfts(&pcie),
        "TTFT must be link-independent"
    );
    assert_eq!(ttfts(&pcie), ttfts(&eth), "TTFT must be link-independent");
}

#[test]
fn builder_rejects_role_violations() {
    let base = || {
        FleetBuilder::new()
            .model(model())
            .params(RunParams::new(4096))
            .workload(small_cfg())
    };

    // Prefill replicas with nowhere to hand off to.
    let e = base()
        .prefill_replicas(2, &DeviceSpec::a100())
        .build()
        .unwrap_err();
    assert!(matches!(e, Error::Config { .. }), "{e}");
    assert!(e.to_string().contains("zero decode"), "{e}");

    // Decode-only fleets cannot admit arrivals.
    let e = base()
        .decode_replicas(2, &DeviceSpec::a100())
        .build()
        .unwrap_err();
    assert!(e.to_string().contains("prefill-capable"), "{e}");

    // Scripted faults must leave each phase a survivor: here a replica
    // survives (so the blanket check passes) but both prefill-capable
    // replicas are scripted to die.
    let e = base()
        .prefill_replicas(2, &DeviceSpec::a100())
        .decode_replicas(2, &DeviceSpec::a100())
        .fail_at(0, 1.0)
        .drain_at(1, 2.0)
        .build()
        .unwrap_err();
    assert!(e.to_string().contains("prefill-capable"), "{e}");
    assert!(e.to_string().contains("survive"), "{e}");

    // ... and symmetrically for the decode side.
    let e = base()
        .prefill_replicas(2, &DeviceSpec::a100())
        .decode_replicas(1, &DeviceSpec::a100())
        .fail_at(2, 1.0)
        .build()
        .unwrap_err();
    assert!(e.to_string().contains("decode-capable"), "{e}");

    // A Unified replica satisfies both capabilities.
    assert!(base()
        .prefill_replicas(1, &DeviceSpec::a100())
        .replica_with_role(DeviceSpec::a100(), Role::Unified)
        .build()
        .is_ok());
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn kv_pools_return_to_zero_after_every_run() {
    // Property: a completed workload leaves every replica's KV pool empty —
    // across eviction churn, drains, failures, and prefill→decode handoffs.
    // A leak here is an alloc/free accounting bug that otherwise only
    // surfaces as the pool's free-underflow panic.
    let tight_kv = Some(kv_bytes_per_token(&model()) * 320);
    let scenarios: Vec<(&str, FleetReport)> = vec![
        (
            "unified ample",
            FleetBuilder::new()
                .model(model())
                .params(RunParams::new(4096))
                .replicas(2, &DeviceSpec::a100())
                .workload(small_cfg())
                .build()
                .unwrap()
                .run()
                .unwrap(),
        ),
        (
            "unified tight KV (evictions)",
            FleetBuilder::new()
                .model(model())
                .params(RunParams::new(4096))
                .replicas(2, &DeviceSpec::a100())
                .workload(ServeConfig {
                    kv_capacity_bytes: tight_kv,
                    arrival_rate_hz: 256.0,
                    ..small_cfg()
                })
                .build()
                .unwrap()
                .run()
                .unwrap(),
        ),
        (
            "drain mid-run",
            FleetBuilder::new()
                .model(model())
                .params(RunParams::new(4096))
                .replicas(2, &DeviceSpec::a100())
                .workload(ServeConfig {
                    arrival_rate_hz: 256.0,
                    ..small_cfg()
                })
                .drain_at(0, 0.05)
                .build()
                .unwrap()
                .run()
                .unwrap(),
        ),
        (
            "fail mid-run",
            FleetBuilder::new()
                .model(model())
                .params(RunParams::new(4096))
                .replicas(2, &DeviceSpec::a100())
                .workload(ServeConfig {
                    arrival_rate_hz: 256.0,
                    ..small_cfg()
                })
                .fail_at(1, 0.05)
                .build()
                .unwrap()
                .run()
                .unwrap(),
        ),
        (
            "disaggregated handoffs",
            disagg_report(24, LinkSpec::pcie_gen4(), RouterPolicy::RoundRobin),
        ),
        (
            "disaggregated tight decode KV",
            FleetBuilder::new()
                .model(model())
                .params(RunParams::new(4096))
                .prefill_replicas(1, &DeviceSpec::a100())
                .decode_replicas(1, &DeviceSpec::a100())
                .workload(ServeConfig {
                    kv_capacity_bytes: tight_kv,
                    arrival_rate_hz: 256.0,
                    ..small_cfg()
                })
                .link(LinkSpec::ethernet_100g())
                .build()
                .unwrap()
                .run()
                .unwrap(),
        ),
    ];
    let mut eviction_scenarios = 0;
    for (name, report) in &scenarios {
        assert_eq!(report.completed, report.submitted, "{name}: {report:?}");
        for r in &report.replicas {
            assert_eq!(
                r.kv_used_blocks_end, 0,
                "{name}: replica {} leaked KV blocks: {report:?}",
                r.id
            );
        }
        eviction_scenarios += usize::from(report.evictions > 0);
    }
    assert!(
        eviction_scenarios >= 1,
        "the tight-KV scenarios must actually exercise eviction: {:?}",
        scenarios
            .iter()
            .map(|(n, r)| (*n, r.evictions))
            .collect::<Vec<_>>()
    );
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn sessions_pin_to_replicas_under_cache_affinity() {
    // With 4 sessions and the affinity router, requests of one session all
    // land on (and stay on) the session's rendezvous replica unless
    // displaced — with ample KV there are no displacements, so migrations
    // must be zero.
    let cfg = ServeConfig {
        sessions: 4,
        ..small_cfg()
    };
    let report = FleetBuilder::new()
        .model(model())
        .params(RunParams::new(4096))
        .replicas(4, &DeviceSpec::a100())
        .router(RouterPolicy::CacheAffinity)
        .workload(cfg.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.completed, cfg.requests);
    assert_eq!(report.migrations, 0);
    assert_eq!(report.evictions, 0);
    // 4 sessions over 4 replicas: at most 4 replicas see work, and at least
    // one does.
    let active = report.replicas.iter().filter(|r| r.completed > 0).count();
    assert!((1..=4).contains(&active));
}

#[test]
#[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
fn preemptive_priority_preempts_decodes_without_losing_work() {
    // A prefill-heavy burst against one replica: with the batch full of
    // decode-phase requests, `PreemptivePriority` must swap the most-owed
    // decoder out for a ready prefill. The preempted request keeps its KV
    // blocks resident, so re-admission never re-prefills — total prefill
    // work equals the workload's prompt tokens exactly.
    let cfg = ServeConfig {
        requests: 32,
        arrival_rate_hz: 64.0,
        prompt_tokens: (128, 512),
        decode_tokens: (32, 96),
        max_batch: 4,
        prefill_chunk: 128,
        policy: Policy::PreemptivePriority,
        ..ServeConfig::default()
    };
    let report = FleetBuilder::new()
        .model(model())
        .params(RunParams::new(4096))
        .replicas(1, &DeviceSpec::a100())
        .workload(cfg.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(report.completed, cfg.requests);
    assert_eq!(report.policy, "preemptive-priority");
    assert!(
        report.preemptions > 0,
        "the burst must trigger preemptions: {report:?}"
    );
    assert_eq!(report.preemptions, report.replicas[0].preemptions);
    let prompt_total: u64 = poisson_arrivals(&cfg).iter().map(|a| a.prompt as u64).sum();
    assert_eq!(
        report.prefill_tokens, prompt_total,
        "preempted requests re-prefilled: resident KV was not preserved"
    );
}
