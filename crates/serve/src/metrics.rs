//! Latency/throughput aggregation for serving runs.

use serde::{Deserialize, Serialize};

/// Nearest-rank percentiles over a latency sample (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// 50th percentile (nearest rank).
    pub p50_s: f64,
    /// 90th percentile (nearest rank).
    pub p90_s: f64,
    /// 99th percentile (nearest rank).
    pub p99_s: f64,
    /// Maximum.
    pub max_s: f64,
}

impl Percentiles {
    /// Computes nearest-rank percentiles. Sorting uses total order, so the
    /// result is deterministic for any input permutation.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample — callers report "no data" explicitly
    /// rather than fabricating zeros.
    pub fn from_samples(samples: &[f64]) -> Percentiles {
        assert!(!samples.is_empty(), "percentiles need at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |p: f64| sorted[((p * sorted.len() as f64).ceil() as usize).max(1) - 1];
        Percentiles {
            n: sorted.len(),
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_s: rank(0.50),
            p90_s: rank(0.90),
            p99_s: rank(0.99),
            max_s: *sorted.last().expect("nonempty"),
        }
    }
}

/// The outcome of one serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Softmax strategy the engine ran ("baseline", "recomposed", ...).
    pub strategy: String,
    /// Admission policy name.
    pub policy: String,
    /// Requests that ran to completion.
    pub completed: usize,
    /// Engine iterations executed.
    pub iterations: usize,
    /// Times a running request was evicted to free KV blocks.
    pub evictions: usize,
    /// Simulated wall-clock at the last completion, seconds.
    pub sim_time_s: f64,
    /// Prompt tokens prefetched into the cache (re-prefill after eviction
    /// counts again — it is real work).
    pub prefill_tokens: u64,
    /// Output tokens generated.
    pub decode_tokens: u64,
    /// Output tokens per simulated second.
    pub decode_tokens_per_s: f64,
    /// Time to first generated token, per request.
    pub ttft: Percentiles,
    /// Time between output tokens (one sample per decode row per
    /// iteration).
    pub tbt: Percentiles,
    /// Peak KV-pool occupancy in `[0, 1]`.
    pub kv_peak_occupancy: f64,
    /// Mean of the per-iteration KV occupancy samples.
    pub kv_mean_occupancy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let s: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::from_samples(&s);
        assert_eq!(p.p50_s, 50.0);
        assert_eq!(p.p90_s, 90.0);
        assert_eq!(p.p99_s, 99.0);
        assert_eq!(p.max_s, 100.0);
        assert!((p.mean_s - 50.5).abs() < 1e-12);

        let one = Percentiles::from_samples(&[0.25]);
        assert_eq!(one.p50_s, 0.25);
        assert_eq!(one.p99_s, 0.25);
    }

    #[test]
    fn permutation_invariant() {
        let a = Percentiles::from_samples(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        let b = Percentiles::from_samples(&[5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a, b);
    }
}
