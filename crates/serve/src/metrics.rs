//! Latency/throughput aggregation for serving runs.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::control::ControlRecord;

/// Nearest-rank percentiles over a latency sample (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// 50th percentile (nearest rank).
    pub p50_s: f64,
    /// 90th percentile (nearest rank).
    pub p90_s: f64,
    /// 99th percentile (nearest rank).
    pub p99_s: f64,
    /// Maximum.
    pub max_s: f64,
}

/// Zero-based index of the nearest-rank `percent`-ile over a sorted sample
/// of `n` items, computed in exact integer arithmetic:
/// `rank = max(1, ceil(n · percent / 100))`, index `rank - 1`.
///
/// Float rank arithmetic (`(p * n as f64).ceil()`) is *not* equivalent: the
/// f64 rounding of `p` can push `p * n` just above an exact integer rank, so
/// `ceil` overshoots by one — e.g. `0.07f64 * 100.0 == 7.000000000000001`,
/// turning the p7 of 100 samples into the 8th sample instead of the 7th.
/// Integer rank math cannot overshoot by construction.
///
/// # Panics
///
/// Panics when `n == 0` or `percent` is outside `1..=100`.
pub fn nearest_rank_index(n: usize, percent: usize) -> usize {
    assert!(n > 0, "nearest rank needs at least one sample");
    assert!(
        (1..=100).contains(&percent),
        "percent must be in 1..=100, got {percent}"
    );
    (n * percent).div_ceil(100).max(1) - 1
}

impl Percentiles {
    /// Computes nearest-rank percentiles with exact integer rank math (see
    /// [`nearest_rank_index`]). Sorting uses total order, so the result is
    /// deterministic for any input permutation.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample — callers report "no data" explicitly
    /// rather than fabricating zeros.
    pub fn from_samples(samples: &[f64]) -> Percentiles {
        assert!(!samples.is_empty(), "percentiles need at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |percent: usize| sorted[nearest_rank_index(sorted.len(), percent)];
        Percentiles {
            n: sorted.len(),
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_s: rank(50),
            p90_s: rank(90),
            p99_s: rank(99),
            max_s: *sorted.last().expect("nonempty"),
        }
    }
}

/// A sliding window of timestamped samples on the simulated clock, with
/// nearest-rank percentile queries — the signal source for control-plane
/// decisions (windowed TTFT/TBT) and the windowed rows of a controlled
/// fleet's report.
///
/// Samples arrive tagged with their simulated emission time. The window
/// keeps the most recent `cap` samples at most, and a
/// [`stats`](SlidingWindow::stats) query at time `t` aggregates only samples emitted
/// within `[t - window_s, t]`. Sample times need not be monotone — replicas
/// advance their clocks independently, so a sample from a busy replica can
/// carry an earlier timestamp than one already pushed — which is why
/// `stats` *filters* by timestamp instead of assuming front-of-queue
/// staleness. Percentiles reuse [`Percentiles::from_samples`] and therefore
/// the exact integer [`nearest_rank_index`] rank math.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    window_s: f64,
    cap: usize,
    buf: VecDeque<(f64, f64)>,
}

impl SlidingWindow {
    /// An empty window of width `window_s` holding at most `cap` samples.
    ///
    /// # Panics
    ///
    /// Panics when `window_s` is not positive or `cap` is zero.
    pub fn new(window_s: f64, cap: usize) -> Self {
        assert!(
            window_s > 0.0 && window_s.is_finite(),
            "window width must be positive and finite, got {window_s}"
        );
        assert!(cap > 0, "window capacity must be nonzero");
        SlidingWindow {
            window_s,
            cap,
            buf: VecDeque::new(),
        }
    }

    /// The window width, seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Records one sample emitted at simulated time `at_s`. Samples whose
    /// timestamps have aged past the *pushed* sample's window are dropped
    /// from the front, and the capacity bound drops the oldest insertion.
    pub fn push(&mut self, at_s: f64, value: f64) {
        while let Some(&(t, _)) = self.buf.front() {
            if t + self.window_s < at_s {
                self.buf.pop_front();
            } else {
                break;
            }
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back((at_s, value));
    }

    /// Samples currently retained (some may be out-of-window for a given
    /// query time; [`stats`](SlidingWindow::stats) filters).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Nearest-rank percentiles over the samples emitted within
    /// `[now_s - window_s, now_s]`, or `None` when the window holds none.
    pub fn stats(&self, now_s: f64) -> Option<Percentiles> {
        let in_window: Vec<f64> = self
            .buf
            .iter()
            .filter(|&&(t, _)| t + self.window_s >= now_s && t <= now_s)
            .map(|&(_, v)| v)
            .collect();
        if in_window.is_empty() {
            None
        } else {
            Some(Percentiles::from_samples(&in_window))
        }
    }
}

/// The outcome of one serving simulation on a single replica — the legacy
/// report shape of [`run_serve`](crate::run_serve), and the per-fleet
/// aggregate embedded in [`FleetReport`].
///
/// **TTFT definition.** `ttft` measures the *first decoded token*: under
/// chunked prefill the final prompt chunk's forward pass produces the
/// logits for (and therefore emits) the first output token, so TTFT is the
/// completion of that chunk — not the completion of an earlier prefill
/// chunk, and not the first single-token decode iteration (which emits the
/// *second* token). `tbt` measures the gaps between consecutive output
/// tokens — the simulated time between one token's emission and the next,
/// which includes any stall while the request waits (eviction re-queue, a
/// prefill→decode KV handoff in flight) — so the first token contributes to
/// `ttft` only. Percentiles over both are *nearest-rank* with exact integer
/// rank math (`rank = max(1, ceil(n · p / 100))` — see
/// [`nearest_rank_index`]), never interpolated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Softmax strategy the engine ran ("baseline", "recomposed", ...).
    pub strategy: String,
    /// Admission policy name.
    pub policy: String,
    /// Requests that ran to completion.
    pub completed: usize,
    /// Engine iterations executed.
    pub iterations: usize,
    /// Times a running request was evicted to free KV blocks.
    pub evictions: usize,
    /// Simulated wall-clock at the last completion, seconds.
    pub sim_time_s: f64,
    /// Prompt tokens prefetched into the cache (re-prefill after eviction
    /// counts again — it is real work).
    pub prefill_tokens: u64,
    /// Output tokens generated.
    pub decode_tokens: u64,
    /// Output tokens per simulated second.
    pub decode_tokens_per_s: f64,
    /// Time to first generated token, per request (see the struct docs for
    /// the exact definition under chunked prefill).
    pub ttft: Percentiles,
    /// Time between consecutive output tokens (the first token is excluded
    /// — it is the TTFT sample).
    pub tbt: Percentiles,
    /// Peak KV-pool occupancy in `[0, 1]`.
    pub kv_peak_occupancy: f64,
    /// Mean of the per-iteration KV occupancy samples.
    pub kv_mean_occupancy: f64,
}

/// Per-replica accounting inside a [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaStats {
    /// Replica index within the fleet.
    pub id: usize,
    /// Device name ("A100", "T4", ...).
    pub device: String,
    /// Serving role ("prefill", "decode", "unified").
    pub role: String,
    /// Engine iterations this replica executed.
    pub iterations: usize,
    /// Evictions this replica performed.
    pub evictions: usize,
    /// Requests that finished on this replica.
    pub completed: usize,
    /// Prompt tokens prefilled here.
    pub prefill_tokens: u64,
    /// Output tokens decoded here.
    pub decode_tokens: u64,
    /// Simulated seconds this replica's GPU was executing iterations.
    pub busy_s: f64,
    /// `busy_s` over the fleet's total simulated time.
    pub utilization: f64,
    /// Peak KV-pool occupancy in `[0, 1]`.
    pub kv_peak_occupancy: f64,
    /// Mean of the per-iteration KV occupancy samples (0 when the replica
    /// never ran an iteration).
    pub kv_mean_occupancy: f64,
    /// KV blocks still allocated when the run ended. A completed workload
    /// leaves every pool empty, so this is 0 for every replica of a
    /// successful run — any other value is an alloc/free accounting leak.
    pub kv_used_blocks_end: u64,
    /// Requests whose finished prefill KV this replica streamed to a decode
    /// replica (prefill→decode disaggregation handoffs).
    pub handoffs_out: usize,
    /// Handed-off requests whose KV landed here for decoding.
    pub handoffs_in: usize,
    /// Running decode requests preempted here by prefill-owing waiters
    /// (`Policy::PreemptivePriority` only; the preempted KV stays resident).
    pub preemptions: usize,
    /// `true` while the replica sits in standby at the end of the run
    /// (declared standby and never scaled up, or scaled back down).
    pub standby: bool,
    /// `true` once a drain event retired this replica.
    pub drained: bool,
    /// `true` once a fail event killed this replica.
    pub failed: bool,
}

/// The outcome of one fleet serving simulation
/// ([`Fleet::run`](crate::Fleet::run)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Softmax strategy the engines ran.
    pub strategy: String,
    /// Per-replica admission policy name ("fifo", "shortest-remaining").
    pub policy: String,
    /// Fleet routing policy name ("round-robin", "least-loaded",
    /// "cache-affinity").
    pub router: String,
    /// Interconnect preset name.
    pub link: String,
    /// Requests submitted (the workload trace length).
    pub submitted: usize,
    /// Requests that ran to completion. Always equals `submitted` when the
    /// run returns `Ok` — a shortfall is a scheduling bug and panics.
    pub completed: usize,
    /// Engine iterations across all replicas.
    pub iterations: usize,
    /// Evictions across all replicas.
    pub evictions: usize,
    /// Requests whose KV pages moved across the interconnect (eviction
    /// spill-over to a sibling, or drain redistribution).
    pub migrations: usize,
    /// Rebalanced requests whose KV could *not* be placed remotely and was
    /// dropped (re-prefilled from scratch at the destination).
    pub migration_drops: usize,
    /// KV bytes that crossed the interconnect.
    pub kv_migrated_bytes: u64,
    /// Simulated seconds spent on the wire by migrated KV.
    pub migration_time_s: f64,
    /// Prefill→decode handoffs: requests whose finished prefill KV streamed
    /// from a prefill replica to a decode replica over the link (distinct
    /// from rebalancing `migrations`).
    pub handoffs: usize,
    /// KV bytes that crossed the interconnect in handoffs.
    pub kv_handoff_bytes: u64,
    /// Simulated seconds spent on the wire by handed-off KV.
    pub kv_handoff_time_s: f64,
    /// Prompt tokens prefilled on `Role::Decode` replicas. Nonzero only in
    /// the degenerate path where a handed-off request lost its cache to
    /// memory pressure on the decode side and had to re-prefill there; an
    /// amply-provisioned disaggregated fleet keeps this at 0.
    pub decode_side_prefill_tokens: u64,
    /// Simulated wall-clock at the last completion, seconds.
    pub sim_time_s: f64,
    /// Prompt tokens prefilled fleet-wide.
    pub prefill_tokens: u64,
    /// Output tokens generated fleet-wide.
    pub decode_tokens: u64,
    /// Output tokens per simulated second, fleet-wide.
    pub decode_tokens_per_s: f64,
    /// Time to first generated token, per request (see [`ServeReport`] for
    /// the definition).
    pub ttft: Percentiles,
    /// Time between consecutive output tokens (first token excluded).
    pub tbt: Percentiles,
    /// Decode preemptions fleet-wide (`Policy::PreemptivePriority`).
    pub preemptions: usize,
    /// Standby replicas brought into rotation by the control plane.
    pub scale_ups: usize,
    /// Active replicas returned to standby by the control plane.
    pub scale_downs: usize,
    /// The control plane's decision log, in decision order — empty when no
    /// control plane was attached. Every row carries the windowed signal
    /// snapshot it decided on, so the log doubles as the report's
    /// windowed-percentile time series, and replaying the recorded actions
    /// reproduces this report bit-identically.
    pub decisions: Vec<ControlRecord>,
    /// Per-replica accounting, ascending id.
    pub replicas: Vec<ReplicaStats>,
}

impl FleetReport {
    /// The single-replica view of this report, in the legacy
    /// [`ServeReport`] shape. This is what [`run_serve`](crate::run_serve)
    /// returns for a one-replica fleet; calling it on a larger fleet folds
    /// the per-replica KV occupancies by taking replica 0's (the aggregate
    /// latency/throughput fields are fleet-wide either way).
    pub fn serve_report(&self) -> ServeReport {
        let r0 = &self.replicas[0];
        ServeReport {
            strategy: self.strategy.clone(),
            policy: self.policy.clone(),
            completed: self.completed,
            iterations: self.iterations,
            evictions: self.evictions,
            sim_time_s: self.sim_time_s,
            prefill_tokens: self.prefill_tokens,
            decode_tokens: self.decode_tokens,
            decode_tokens_per_s: self.decode_tokens_per_s,
            ttft: self.ttft,
            tbt: self.tbt,
            kv_peak_occupancy: r0.kv_peak_occupancy,
            kv_mean_occupancy: r0.kv_mean_occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let s: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::from_samples(&s);
        assert_eq!(p.p50_s, 50.0);
        assert_eq!(p.p90_s, 90.0);
        assert_eq!(p.p99_s, 99.0);
        assert_eq!(p.max_s, 100.0);
        assert!((p.mean_s - 50.5).abs() < 1e-12);

        let one = Percentiles::from_samples(&[0.25]);
        assert_eq!(one.p50_s, 0.25);
        assert_eq!(one.p99_s, 0.25);
    }

    #[test]
    fn permutation_invariant() {
        let a = Percentiles::from_samples(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        let b = Percentiles::from_samples(&[5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a, b);
    }

    /// The float rank path this replaced: `ceil(p · n)` with `p` an f64.
    fn float_rank_index(n: usize, p: f64) -> usize {
        ((p * n as f64).ceil() as usize).max(1) - 1
    }

    #[test]
    fn integer_rank_is_exact_at_small_sample_counts() {
        // p90 of 10 samples is the 9th sample (rank ceil(10·0.9) = 9), never
        // the max; p90 of 20 is the 18th; p99 of 1000 is the 990th.
        let n10: Vec<f64> = (1..=10).map(f64::from).collect();
        let p = Percentiles::from_samples(&n10);
        assert_eq!(p.p90_s, 9.0, "p90 of 10 samples is the 9th, not the max");
        assert_eq!(p.p50_s, 5.0);
        assert_eq!(p.p99_s, 10.0);

        let n20: Vec<f64> = (1..=20).map(f64::from).collect();
        let p = Percentiles::from_samples(&n20);
        assert_eq!(p.p90_s, 18.0);
        assert_eq!(p.p50_s, 10.0);

        let n1000: Vec<f64> = (1..=1000).map(f64::from).collect();
        let p = Percentiles::from_samples(&n1000);
        assert_eq!(p.p90_s, 900.0);
        assert_eq!(p.p99_s, 990.0);
        assert_eq!(p.p50_s, 500.0);
    }

    #[test]
    fn float_rank_overshoots_where_integer_rank_cannot() {
        // The float path is provably wrong for percentiles whose f64
        // rounding lands *above* the decimal value: 0.07 rounds up, so
        // 0.07 · 100 == 7.000000000000001 and ceil overshoots to rank 8.
        // (0.50/0.90/0.99 happen to round safely on IEEE-754 — 0.90 rounds
        // up but by less than a half-ulp of its products, and 0.99 rounds
        // down, which ceil forgives — so the three shipped percentiles
        // agreed by luck; the integer path removes the luck.)
        assert_eq!(0.07f64 * 100.0, 7.000000000000001);
        assert_eq!(float_rank_index(100, 0.07), 7, "float path overshoots");
        assert_eq!(nearest_rank_index(100, 7), 6, "exact rank is the 7th");
        // More float-path overshoots at other sample counts, all of which
        // the integer path gets right.
        for (n, percent) in [(200usize, 7usize), (50, 14), (400, 28), (25, 28)] {
            let exact = (n * percent).div_ceil(100) - 1;
            assert_eq!(nearest_rank_index(n, percent), exact);
            assert_eq!(
                float_rank_index(n, percent as f64 / 100.0),
                exact + 1,
                "expected the float path to overshoot at p{percent} of {n}"
            );
        }
        // And the shipped percentiles stay in exact agreement at every
        // realistic sample count (documents the "no BENCH shift" claim).
        for n in 1..=4096usize {
            for percent in [50usize, 90, 99] {
                assert_eq!(
                    nearest_rank_index(n, percent),
                    float_rank_index(n, percent as f64 / 100.0),
                    "p{percent} of {n}"
                );
            }
        }
    }

    #[test]
    fn nearest_rank_index_bounds() {
        assert_eq!(nearest_rank_index(1, 1), 0);
        assert_eq!(nearest_rank_index(1, 100), 0);
        assert_eq!(nearest_rank_index(10, 1), 0, "low percentiles clamp to 1");
        assert_eq!(nearest_rank_index(10, 100), 9);
        assert_eq!(nearest_rank_index(3, 50), 1);
    }

    #[test]
    #[should_panic(expected = "percent")]
    fn nearest_rank_index_rejects_percent_zero() {
        let _ = nearest_rank_index(10, 0);
    }

    #[test]
    fn sliding_window_ages_out_samples() {
        let mut w = SlidingWindow::new(10.0, 1024);
        assert!(w.is_empty());
        assert_eq!(w.stats(0.0), None);
        for t in 0..20 {
            w.push(f64::from(t), f64::from(t));
        }
        // At t=19 the window [9, 19] holds samples 9..=19.
        let p = w.stats(19.0).unwrap();
        assert_eq!(p.n, 11);
        assert_eq!(p.p50_s, 14.0);
        assert_eq!(p.max_s, 19.0);
        // Querying later shrinks the window without new pushes.
        let p = w.stats(25.0).unwrap();
        assert_eq!(p.n, 5);
        assert_eq!(p.max_s, 19.0);
        // Past every sample's window: no data, not fabricated zeros.
        assert_eq!(w.stats(100.0), None);
    }

    #[test]
    fn sliding_window_tolerates_out_of_order_timestamps() {
        // Replica clocks advance independently, so pushes are not monotone:
        // a stale-timestamped sample behind a fresh one must still be
        // filtered out of stats (and a fresh one behind it kept).
        let mut w = SlidingWindow::new(5.0, 1024);
        w.push(100.0, 1.0);
        w.push(90.0, 2.0); // stale relative to the query below
        w.push(101.0, 3.0);
        let p = w.stats(101.0).unwrap();
        assert_eq!(p.n, 2, "the t=90 sample is outside [96, 101]");
        assert_eq!(p.max_s, 3.0);
    }

    #[test]
    fn sliding_window_capacity_bounds_memory() {
        let mut w = SlidingWindow::new(1e9, 4);
        for t in 0..100 {
            w.push(f64::from(t), f64::from(t));
        }
        assert_eq!(w.len(), 4);
        let p = w.stats(99.0).unwrap();
        assert_eq!(p.n, 4, "only the 4 newest samples are retained");
        assert_eq!(p.max_s, 99.0);
        assert_eq!(p.p50_s, 97.0);
    }

    #[test]
    fn sliding_window_uses_exact_integer_rank_math() {
        // Regression against the float nearest-rank fix: the window's
        // percentiles go through `nearest_rank_index`, so sample counts
        // where float `ceil(p·n)` overshoots must still land on the exact
        // rank. 100 in-window samples: p50 is the 50th (49.0 here), which
        // the float path got right by luck — but the underlying index
        // matches `nearest_rank_index` at every count, including the
        // overshoot-prone ones exercised in
        // `float_rank_overshoots_where_integer_rank_cannot`.
        let mut w = SlidingWindow::new(1e9, 4096);
        for t in 0..100 {
            w.push(f64::from(t), f64::from(t));
        }
        let p = w.stats(99.0).unwrap();
        assert_eq!(p.n, 100);
        assert_eq!(nearest_rank_index(100, 50), 49);
        assert_eq!(p.p50_s, 49.0);
        assert_eq!(p.p90_s, 89.0);
        assert_eq!(p.p99_s, 98.0);
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn sliding_window_rejects_zero_width() {
        let _ = SlidingWindow::new(0.0, 16);
    }
}
