//! Latency/throughput aggregation for serving runs.

use serde::{Deserialize, Serialize};

/// Nearest-rank percentiles over a latency sample (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// 50th percentile (nearest rank).
    pub p50_s: f64,
    /// 90th percentile (nearest rank).
    pub p90_s: f64,
    /// 99th percentile (nearest rank).
    pub p99_s: f64,
    /// Maximum.
    pub max_s: f64,
}

impl Percentiles {
    /// Computes nearest-rank percentiles. Sorting uses total order, so the
    /// result is deterministic for any input permutation.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample — callers report "no data" explicitly
    /// rather than fabricating zeros.
    pub fn from_samples(samples: &[f64]) -> Percentiles {
        assert!(!samples.is_empty(), "percentiles need at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |p: f64| sorted[((p * sorted.len() as f64).ceil() as usize).max(1) - 1];
        Percentiles {
            n: sorted.len(),
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_s: rank(0.50),
            p90_s: rank(0.90),
            p99_s: rank(0.99),
            max_s: *sorted.last().expect("nonempty"),
        }
    }
}

/// The outcome of one serving simulation on a single replica — the legacy
/// report shape of [`run_serve`](crate::run_serve), and the per-fleet
/// aggregate embedded in [`FleetReport`].
///
/// **TTFT definition.** `ttft` measures the *first decoded token*: under
/// chunked prefill the final prompt chunk's forward pass produces the
/// logits for (and therefore emits) the first output token, so TTFT is the
/// completion of that chunk — not the completion of an earlier prefill
/// chunk, and not the first single-token decode iteration (which emits the
/// *second* token). `tbt` measures the gaps between consecutive output
/// tokens, so the first token contributes to `ttft` only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Softmax strategy the engine ran ("baseline", "recomposed", ...).
    pub strategy: String,
    /// Admission policy name.
    pub policy: String,
    /// Requests that ran to completion.
    pub completed: usize,
    /// Engine iterations executed.
    pub iterations: usize,
    /// Times a running request was evicted to free KV blocks.
    pub evictions: usize,
    /// Simulated wall-clock at the last completion, seconds.
    pub sim_time_s: f64,
    /// Prompt tokens prefetched into the cache (re-prefill after eviction
    /// counts again — it is real work).
    pub prefill_tokens: u64,
    /// Output tokens generated.
    pub decode_tokens: u64,
    /// Output tokens per simulated second.
    pub decode_tokens_per_s: f64,
    /// Time to first generated token, per request (see the struct docs for
    /// the exact definition under chunked prefill).
    pub ttft: Percentiles,
    /// Time between consecutive output tokens (the first token is excluded
    /// — it is the TTFT sample).
    pub tbt: Percentiles,
    /// Peak KV-pool occupancy in `[0, 1]`.
    pub kv_peak_occupancy: f64,
    /// Mean of the per-iteration KV occupancy samples.
    pub kv_mean_occupancy: f64,
}

/// Per-replica accounting inside a [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaStats {
    /// Replica index within the fleet.
    pub id: usize,
    /// Device name ("A100", "T4", ...).
    pub device: String,
    /// Engine iterations this replica executed.
    pub iterations: usize,
    /// Evictions this replica performed.
    pub evictions: usize,
    /// Requests that finished on this replica.
    pub completed: usize,
    /// Prompt tokens prefilled here.
    pub prefill_tokens: u64,
    /// Output tokens decoded here.
    pub decode_tokens: u64,
    /// Simulated seconds this replica's GPU was executing iterations.
    pub busy_s: f64,
    /// `busy_s` over the fleet's total simulated time.
    pub utilization: f64,
    /// Peak KV-pool occupancy in `[0, 1]`.
    pub kv_peak_occupancy: f64,
    /// Mean of the per-iteration KV occupancy samples (0 when the replica
    /// never ran an iteration).
    pub kv_mean_occupancy: f64,
    /// `true` once a drain event retired this replica.
    pub drained: bool,
    /// `true` once a fail event killed this replica.
    pub failed: bool,
}

/// The outcome of one fleet serving simulation
/// ([`Fleet::run`](crate::Fleet::run)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Softmax strategy the engines ran.
    pub strategy: String,
    /// Per-replica admission policy name ("fifo", "shortest-remaining").
    pub policy: String,
    /// Fleet routing policy name ("round-robin", "least-loaded",
    /// "cache-affinity").
    pub router: String,
    /// Interconnect preset name.
    pub link: String,
    /// Requests submitted (the workload trace length).
    pub submitted: usize,
    /// Requests that ran to completion. Always equals `submitted` when the
    /// run returns `Ok` — a shortfall is a scheduling bug and panics.
    pub completed: usize,
    /// Engine iterations across all replicas.
    pub iterations: usize,
    /// Evictions across all replicas.
    pub evictions: usize,
    /// Requests whose KV pages moved across the interconnect (eviction
    /// spill-over to a sibling, or drain redistribution).
    pub migrations: usize,
    /// Rebalanced requests whose KV could *not* be placed remotely and was
    /// dropped (re-prefilled from scratch at the destination).
    pub migration_drops: usize,
    /// KV bytes that crossed the interconnect.
    pub kv_migrated_bytes: u64,
    /// Simulated seconds spent on the wire by migrated KV.
    pub migration_time_s: f64,
    /// Simulated wall-clock at the last completion, seconds.
    pub sim_time_s: f64,
    /// Prompt tokens prefilled fleet-wide.
    pub prefill_tokens: u64,
    /// Output tokens generated fleet-wide.
    pub decode_tokens: u64,
    /// Output tokens per simulated second, fleet-wide.
    pub decode_tokens_per_s: f64,
    /// Time to first generated token, per request (see [`ServeReport`] for
    /// the definition).
    pub ttft: Percentiles,
    /// Time between consecutive output tokens (first token excluded).
    pub tbt: Percentiles,
    /// Per-replica accounting, ascending id.
    pub replicas: Vec<ReplicaStats>,
}

impl FleetReport {
    /// The single-replica view of this report, in the legacy
    /// [`ServeReport`] shape. This is what [`run_serve`](crate::run_serve)
    /// returns for a one-replica fleet; calling it on a larger fleet folds
    /// the per-replica KV occupancies by taking replica 0's (the aggregate
    /// latency/throughput fields are fleet-wide either way).
    pub fn serve_report(&self) -> ServeReport {
        let r0 = &self.replicas[0];
        ServeReport {
            strategy: self.strategy.clone(),
            policy: self.policy.clone(),
            completed: self.completed,
            iterations: self.iterations,
            evictions: self.evictions,
            sim_time_s: self.sim_time_s,
            prefill_tokens: self.prefill_tokens,
            decode_tokens: self.decode_tokens,
            decode_tokens_per_s: self.decode_tokens_per_s,
            ttft: self.ttft,
            tbt: self.tbt,
            kv_peak_occupancy: r0.kv_peak_occupancy,
            kv_mean_occupancy: r0.kv_mean_occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let s: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::from_samples(&s);
        assert_eq!(p.p50_s, 50.0);
        assert_eq!(p.p90_s, 90.0);
        assert_eq!(p.p99_s, 99.0);
        assert_eq!(p.max_s, 100.0);
        assert!((p.mean_s - 50.5).abs() < 1e-12);

        let one = Percentiles::from_samples(&[0.25]);
        assert_eq!(one.p50_s, 0.25);
        assert_eq!(one.p99_s, 0.25);
    }

    #[test]
    fn permutation_invariant() {
        let a = Percentiles::from_samples(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        let b = Percentiles::from_samples(&[5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a, b);
    }
}
