//! Request routing across replicas.
//!
//! Every routing decision — a fresh arrival, an eviction spilling to a
//! sibling, a draining replica redistributing its residents — goes through a
//! [`Router`]. The fleet hands the router a deterministic snapshot of every
//! *accepting* replica ([`ReplicaView`], ascending id) and the request's
//! session id; the router returns the destination replica id. Routers must
//! be deterministic in their inputs and call order: the fleet report is
//! asserted bit-identical across host thread counts and reruns.

use serde::{Deserialize, Serialize};

/// A deterministic snapshot of one replica, as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaView {
    /// Replica index within the fleet.
    pub id: usize,
    /// KV blocks currently resident (running requests plus migrated-in
    /// reservations).
    pub resident_blocks: u64,
    /// Projected KV demand of the waiting queue, in blocks.
    pub queued_blocks: u64,
    /// Total KV pool size in blocks.
    pub total_blocks: u64,
    /// Waiting-queue length.
    pub queue_len: usize,
    /// Requests currently in the running batch.
    pub running: usize,
    /// The replica's simulated clock (busy-until time), seconds.
    pub clock_s: f64,
}

/// A request-routing policy. See the module docs for the determinism
/// contract.
pub trait Router {
    /// Stable lowercase policy name, used in report rows and CLI flags.
    fn name(&self) -> &'static str;

    /// Picks a destination for `session` among `views` — the accepting
    /// replicas in ascending id order, never empty. Returns the chosen
    /// replica's `id` (must be one of the views').
    fn route(&mut self, session: u64, views: &[ReplicaView]) -> usize;
}

/// The built-in routing policies, selectable on
/// [`FleetBuilder::router`](crate::FleetBuilder::router).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Cycle through the accepting replicas in order.
    RoundRobin,
    /// Send to the replica with the fewest KV blocks committed (resident
    /// plus projected waiting-queue demand); ties break on the lowest id.
    LeastLoaded,
    /// Pin each session to a replica by rendezvous (highest-random-weight)
    /// hash of `(session, replica)`: a session keeps hitting the replica
    /// that holds its warm KV pages, and removing a replica remaps *only*
    /// the sessions that lived on it.
    CacheAffinity,
}

impl RouterPolicy {
    /// Stable lowercase name (matches the built router's
    /// [`Router::name`]).
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastLoaded => "least-loaded",
            RouterPolicy::CacheAffinity => "cache-affinity",
        }
    }

    /// Constructs a fresh router implementing this policy. The fleet builds
    /// one per run so reruns start from identical router state.
    pub fn build(self) -> Box<dyn Router> {
        match self {
            RouterPolicy::RoundRobin => Box::new(RoundRobin::default()),
            RouterPolicy::LeastLoaded => Box::new(LeastLoaded),
            RouterPolicy::CacheAffinity => Box::new(CacheAffinity),
        }
    }

    /// All built-in policies, in reporting order.
    pub fn all() -> [RouterPolicy; 3] {
        [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::CacheAffinity,
        ]
    }
}

/// Cycling round-robin over the accepting replicas.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _session: u64, views: &[ReplicaView]) -> usize {
        let v = &views[self.next % views.len()];
        self.next = self.next.wrapping_add(1);
        v.id
    }
}

/// Fewest committed KV blocks wins; ties go to the lowest replica id.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl Router for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&mut self, _session: u64, views: &[ReplicaView]) -> usize {
        views
            .iter()
            .min_by_key(|v| (v.resident_blocks + v.queued_blocks, v.id))
            .expect("router is never called with zero views")
            .id
    }
}

/// Rendezvous (highest-random-weight) hashing of sessions onto replicas.
#[derive(Debug, Default)]
pub struct CacheAffinity;

/// FNV-1a over the little-endian bytes of `x` — the same family the
/// simulator's pricing cache uses; deterministic across platforms.
fn fnv1a64(x: u64, seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for b in x.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Router for CacheAffinity {
    fn name(&self) -> &'static str {
        "cache-affinity"
    }

    fn route(&mut self, session: u64, views: &[ReplicaView]) -> usize {
        views
            .iter()
            .max_by_key(|v| (fnv1a64(session, fnv1a64(v.id as u64, 0)), v.id))
            .expect("router is never called with zero views")
            .id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: usize, resident: u64, queued: u64) -> ReplicaView {
        ReplicaView {
            id,
            resident_blocks: resident,
            queued_blocks: queued,
            total_blocks: 1024,
            queue_len: 0,
            running: 0,
            clock_s: 0.0,
        }
    }

    #[test]
    fn round_robin_cycles_and_survives_shrinkage() {
        let mut r = RoundRobin::default();
        let views: Vec<_> = (0..3).map(|i| view(i, 0, 0)).collect();
        let picks: Vec<_> = (0..6).map(|_| r.route(0, &views)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // A replica disappears mid-stream: the cycle continues over the rest.
        let fewer = vec![view(0, 0, 0), view(2, 0, 0)];
        let picks: Vec<_> = (0..4).map(|_| r.route(0, &fewer)).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn least_loaded_picks_min_resident_blocks() {
        let mut r = LeastLoaded;
        let views = vec![view(0, 40, 0), view(1, 7, 0), view(2, 12, 0)];
        assert_eq!(r.route(9, &views), 1);
        // Queued demand counts as committed load.
        let views = vec![view(0, 10, 0), view(1, 2, 30), view(2, 12, 0)];
        assert_eq!(r.route(9, &views), 0);
        // Ties break on the lowest id.
        let views = vec![view(0, 5, 0), view(1, 5, 0)];
        assert_eq!(r.route(9, &views), 0);
    }

    #[test]
    fn affinity_is_deterministic_and_spreads_sessions() {
        let mut r = CacheAffinity;
        let views: Vec<_> = (0..4).map(|i| view(i, 0, 0)).collect();
        let a: Vec<_> = (0..256).map(|s| r.route(s, &views)).collect();
        let b: Vec<_> = (0..256).map(|s| r.route(s, &views)).collect();
        assert_eq!(a, b, "same session must always map to the same replica");
        // Load does not perturb the mapping (it is a pure session hash).
        let loaded: Vec<_> = (0..4).map(|i| view(i, 100 * i as u64, 9)).collect();
        let c: Vec<_> = (0..256).map(|s| r.route(s, &loaded)).collect();
        assert_eq!(a, c);
        // Every replica owns a reasonable share of 256 sessions.
        for id in 0..4 {
            let n = a.iter().filter(|&&x| x == id).count();
            assert!((20..=110).contains(&n), "replica {id} owns {n}/256");
        }
    }

    #[test]
    fn affinity_is_stable_under_replica_failure() {
        let mut r = CacheAffinity;
        let full: Vec<_> = (0..4).map(|i| view(i, 0, 0)).collect();
        let before: Vec<_> = (0..512).map(|s| r.route(s, &full)).collect();
        // Replica 2 fails: only its sessions may remap.
        let survivors: Vec<_> = full.iter().copied().filter(|v| v.id != 2).collect();
        for (s, &was) in before.iter().enumerate() {
            let now = r.route(s as u64, &survivors);
            if was == 2 {
                assert_ne!(now, 2);
            } else {
                assert_eq!(now, was, "session {s} moved despite its replica surviving");
            }
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for p in RouterPolicy::all() {
            assert_eq!(p.build().name(), p.name());
        }
    }
}
