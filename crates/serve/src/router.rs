//! Request routing across replicas.
//!
//! Every routing decision — a fresh arrival, an eviction spilling to a
//! sibling, a draining replica redistributing its residents, a finished
//! prefill handing its KV to the decode side — goes through a [`Router`].
//! The fleet hands the router a deterministic snapshot of every *accepting*
//! replica that can take the work ([`ReplicaView`], ascending id — in a
//! disaggregated fleet arrivals see only the prefill-capable subset and KV
//! handoffs only the decode-capable subset) and the request's session id;
//! the router returns the destination replica id. Routers must be
//! deterministic in their inputs and call order: the fleet report is
//! asserted bit-identical across host thread counts and reruns.

use crate::replica::Role;
use serde::{Deserialize, Serialize};

/// A deterministic snapshot of one replica, as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaView {
    /// Replica index within the fleet.
    pub id: usize,
    /// The replica's serving role. Views are already filtered to the subset
    /// that can take the work being routed; the role is informational (a
    /// custom router may still weight unified replicas differently).
    pub role: Role,
    /// KV blocks currently resident (running requests plus migrated-in
    /// reservations).
    pub resident_blocks: u64,
    /// Projected KV demand of the waiting queue, in blocks.
    pub queued_blocks: u64,
    /// Total KV pool size in blocks.
    pub total_blocks: u64,
    /// Waiting-queue length.
    pub queue_len: usize,
    /// Requests currently in the running batch.
    pub running: usize,
    /// The replica's simulated clock (busy-until time), seconds.
    pub clock_s: f64,
}

/// A request-routing policy. See the module docs for the determinism
/// contract.
pub trait Router {
    /// Stable lowercase policy name, used in report rows and CLI flags.
    fn name(&self) -> &'static str;

    /// Picks a destination for `session` among `views` — the accepting
    /// replicas in ascending id order, never empty. Returns the chosen
    /// replica's `id` (must be one of the views').
    fn route(&mut self, session: u64, views: &[ReplicaView]) -> usize;
}

/// The built-in routing policies, selectable on
/// [`FleetBuilder::router`](crate::FleetBuilder::router).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Cycle through the accepting replicas in order.
    RoundRobin,
    /// Send to the replica with the fewest KV blocks committed (resident
    /// plus projected waiting-queue demand); ties break on the lowest id.
    LeastLoaded,
    /// Pin each session to a replica by rendezvous (highest-random-weight)
    /// hash of `(session, replica)`: a session keeps hitting the replica
    /// that holds its warm KV pages, and removing a replica remaps *only*
    /// the sessions that lived on it.
    CacheAffinity,
}

impl RouterPolicy {
    /// Stable lowercase name (matches the built router's
    /// [`Router::name`]).
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastLoaded => "least-loaded",
            RouterPolicy::CacheAffinity => "cache-affinity",
        }
    }

    /// Constructs a fresh router implementing this policy. The fleet builds
    /// one per run so reruns start from identical router state.
    pub fn build(self) -> Box<dyn Router> {
        match self {
            RouterPolicy::RoundRobin => Box::new(RoundRobin::default()),
            RouterPolicy::LeastLoaded => Box::new(LeastLoaded),
            RouterPolicy::CacheAffinity => Box::new(CacheAffinity),
        }
    }

    /// All built-in policies, in reporting order.
    pub fn all() -> [RouterPolicy; 3] {
        [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::CacheAffinity,
        ]
    }
}

/// Cycling round-robin over the accepting replicas, tracked by replica *id*
/// rather than a position counter.
///
/// A global counter taken modulo the *current* view count aliases across
/// accepting-set changes: after two routes over `[0, 1, 2]` the counter
/// stands at 2, and if replica 0 then drains, `2 % 2` serves replica 1
/// *again* — which survivor absorbs the next arrival depends on the
/// counter's parity, not on whose turn it is. Remembering the last-routed
/// id and picking the smallest accepting id strictly greater (wrapping to
/// the lowest) keeps the rotation fair through drains, failures, and the
/// disaggregated prefill/decode subsets sharing one router.
#[derive(Debug, Default)]
pub struct RoundRobin {
    last: Option<usize>,
}

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _session: u64, views: &[ReplicaView]) -> usize {
        let pick = match self.last {
            // Views arrive in ascending id order: the first id strictly
            // greater than the last-routed one is the cycle successor.
            Some(last) => views
                .iter()
                .map(|v| v.id)
                .find(|&id| id > last)
                .unwrap_or(views[0].id),
            None => views[0].id,
        };
        self.last = Some(pick);
        pick
    }
}

/// Fewest committed KV blocks wins; ties go to the lowest replica id.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl Router for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&mut self, _session: u64, views: &[ReplicaView]) -> usize {
        views
            .iter()
            .min_by_key(|v| (v.resident_blocks + v.queued_blocks, v.id))
            .expect("router is never called with zero views")
            .id
    }
}

/// Rendezvous (highest-random-weight) hashing of sessions onto replicas.
#[derive(Debug, Default)]
pub struct CacheAffinity;

/// FNV-1a over the little-endian bytes of `x` — the same family the
/// simulator's pricing cache uses; deterministic across platforms.
fn fnv1a64(x: u64, seed: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for b in x.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Router for CacheAffinity {
    fn name(&self) -> &'static str {
        "cache-affinity"
    }

    fn route(&mut self, session: u64, views: &[ReplicaView]) -> usize {
        views
            .iter()
            .max_by_key(|v| (fnv1a64(session, fnv1a64(v.id as u64, 0)), v.id))
            .expect("router is never called with zero views")
            .id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: usize, resident: u64, queued: u64) -> ReplicaView {
        ReplicaView {
            id,
            role: Role::Unified,
            resident_blocks: resident,
            queued_blocks: queued,
            total_blocks: 1024,
            queue_len: 0,
            running: 0,
            clock_s: 0.0,
        }
    }

    #[test]
    fn round_robin_cycles_and_survives_shrinkage() {
        let mut r = RoundRobin::default();
        let views: Vec<_> = (0..3).map(|i| view(i, 0, 0)).collect();
        let picks: Vec<_> = (0..6).map(|_| r.route(0, &views)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // A replica disappears mid-stream: the cycle continues over the rest.
        let fewer = vec![view(0, 0, 0), view(2, 0, 0)];
        let picks: Vec<_> = (0..4).map(|_| r.route(0, &fewer)).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn round_robin_does_not_alias_across_a_mid_cycle_drain() {
        // Regression: the old implementation kept a global counter and took
        // it modulo the *current* view count. After two routes over
        // [0, 1, 2] that counter stood at 2, so when replica 0 drained the
        // next pick was views[2 % 2] = replica 1 — serving 1 twice in a row
        // and skipping 2, purely because of the counter's parity.
        let mut r = RoundRobin::default();
        let full: Vec<_> = (0..3).map(|i| view(i, 0, 0)).collect();
        assert_eq!(r.route(0, &full), 0);
        assert_eq!(r.route(0, &full), 1);
        // Replica 0 drains mid-cycle: the cycle successor of 1 is 2.
        let survivors = vec![view(1, 0, 0), view(2, 0, 0)];
        let picks: Vec<_> = (0..8).map(|_| r.route(0, &survivors)).collect();
        assert_eq!(
            picks,
            vec![2, 1, 2, 1, 2, 1, 2, 1],
            "the survivors must alternate starting from the cycle successor"
        );
        let to_1 = picks.iter().filter(|&&p| p == 1).count();
        assert_eq!(to_1, 4, "survivors must split the stream evenly");
    }

    #[test]
    fn round_robin_wraps_and_routes_each_subset_fairly() {
        // The fleet gives each routing phase its own router instance, so
        // the prefill subset {0, 1} and the decode subset {4, 5} each keep
        // a fair cycle even when arrivals and handoffs interleave.
        let mut prefill = RoundRobin::default();
        let mut decode = RoundRobin::default();
        let pre = vec![view(0, 0, 0), view(1, 0, 0)];
        let dec = vec![view(4, 0, 0), view(5, 0, 0)];
        let picks: Vec<_> = (0..4)
            .flat_map(|_| [prefill.route(0, &pre), decode.route(0, &dec)])
            .collect();
        assert_eq!(picks, vec![0, 4, 1, 5, 0, 4, 1, 5]);
        // A cursor past the top accepting id wraps to the lowest.
        let mut r = RoundRobin::default();
        assert_eq!(r.route(0, &dec), 4);
        assert_eq!(r.route(0, &dec), 5);
        assert_eq!(r.route(0, &pre), 0, "no id > 5: wrap to the lowest");
    }

    #[test]
    fn least_loaded_picks_min_resident_blocks() {
        let mut r = LeastLoaded;
        let views = vec![view(0, 40, 0), view(1, 7, 0), view(2, 12, 0)];
        assert_eq!(r.route(9, &views), 1);
        // Queued demand counts as committed load.
        let views = vec![view(0, 10, 0), view(1, 2, 30), view(2, 12, 0)];
        assert_eq!(r.route(9, &views), 0);
        // Ties break on the lowest id.
        let views = vec![view(0, 5, 0), view(1, 5, 0)];
        assert_eq!(r.route(9, &views), 0);
    }

    #[test]
    fn affinity_is_deterministic_and_spreads_sessions() {
        let mut r = CacheAffinity;
        let views: Vec<_> = (0..4).map(|i| view(i, 0, 0)).collect();
        let a: Vec<_> = (0..256).map(|s| r.route(s, &views)).collect();
        let b: Vec<_> = (0..256).map(|s| r.route(s, &views)).collect();
        assert_eq!(a, b, "same session must always map to the same replica");
        // Load does not perturb the mapping (it is a pure session hash).
        let loaded: Vec<_> = (0..4).map(|i| view(i, 100 * i as u64, 9)).collect();
        let c: Vec<_> = (0..256).map(|s| r.route(s, &loaded)).collect();
        assert_eq!(a, c);
        // Every replica owns a reasonable share of 256 sessions.
        for id in 0..4 {
            let n = a.iter().filter(|&&x| x == id).count();
            assert!((20..=110).contains(&n), "replica {id} owns {n}/256");
        }
    }

    #[test]
    fn affinity_is_stable_under_replica_failure() {
        let mut r = CacheAffinity;
        let full: Vec<_> = (0..4).map(|i| view(i, 0, 0)).collect();
        let before: Vec<_> = (0..512).map(|s| r.route(s, &full)).collect();
        // Replica 2 fails: only its sessions may remap.
        let survivors: Vec<_> = full.iter().copied().filter(|v| v.id != 2).collect();
        for (s, &was) in before.iter().enumerate() {
            let now = r.route(s as u64, &survivors);
            if was == 2 {
                assert_ne!(now, 2);
            } else {
                assert_eq!(now, was, "session {s} moved despite its replica surviving");
            }
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for p in RouterPolicy::all() {
            assert_eq!(p.build().name(), p.name());
        }
    }
}
