//! Block-granular KV-cache pool accounting.
//!
//! Real engines (vLLM-style) carve the post-weights HBM remainder into
//! fixed-size blocks of KV pages; a request holds `ceil(tokens /
//! block_tokens)` blocks and admission fails when the pool cannot cover a
//! request's resident context. Only the *accounting* is simulated here — the
//! timing model already charges the cache-streaming traffic per kernel.

use resoftmax_kernels::costs::FP16_BYTES;
use resoftmax_model::ModelConfig;

/// Bytes of KV cache one token occupies: a K row and a V row of `d_model`
/// fp16 elements per layer (heads × d_head = d_model).
pub fn kv_bytes_per_token(model: &ModelConfig) -> u64 {
    (model.layers * 2 * model.d_model * FP16_BYTES) as u64
}

/// Rough fp16 weight footprint of the model: QKV + output projection
/// (4·d²) plus the two FF matrices (2·d·d_ff) per layer, bias/embedding
/// terms ignored (sub-percent).
pub fn weight_bytes(model: &ModelConfig) -> u64 {
    (model.layers
        * (4 * model.d_model * model.d_model + 2 * model.d_model * model.d_ff)
        * FP16_BYTES) as u64
}

/// A fixed-capacity pool of KV-cache blocks with per-request allocation,
/// occupancy tracking, and admission control on exhaustion.
#[derive(Debug, Clone)]
pub struct KvPool {
    block_bytes: u64,
    block_tokens: usize,
    total_blocks: u64,
    used_blocks: u64,
    peak_blocks: u64,
}

impl KvPool {
    /// Builds a pool of `capacity_bytes` carved into blocks of
    /// `block_tokens` tokens at `bytes_per_token`.
    ///
    /// # Panics
    ///
    /// Panics when the parameters produce zero usable blocks — a pool that
    /// can never admit anything is a configuration error, not a state.
    pub fn new(capacity_bytes: u64, block_tokens: usize, bytes_per_token: u64) -> Self {
        assert!(block_tokens > 0, "KV block size must be nonzero");
        assert!(bytes_per_token > 0, "KV bytes per token must be nonzero");
        let block_bytes = block_tokens as u64 * bytes_per_token;
        let total_blocks = capacity_bytes / block_bytes;
        assert!(
            total_blocks > 0,
            "KV pool capacity {capacity_bytes}B is below one {block_bytes}B block"
        );
        KvPool {
            block_bytes,
            block_tokens,
            total_blocks,
            used_blocks: 0,
            peak_blocks: 0,
        }
    }

    /// Blocks required to hold `tokens` of context.
    pub fn blocks_for(&self, tokens: usize) -> u64 {
        tokens.div_ceil(self.block_tokens) as u64
    }

    /// `true` when `blocks` more blocks fit right now.
    pub fn can_alloc(&self, blocks: u64) -> bool {
        self.used_blocks + blocks <= self.total_blocks
    }

    /// Claims `blocks` blocks; returns `false` (allocating nothing) when the
    /// pool cannot cover them.
    pub fn try_alloc(&mut self, blocks: u64) -> bool {
        if !self.can_alloc(blocks) {
            return false;
        }
        self.used_blocks += blocks;
        self.peak_blocks = self.peak_blocks.max(self.used_blocks);
        true
    }

    /// Returns `blocks` blocks to the pool.
    ///
    /// # Panics
    ///
    /// Panics when freeing more than is allocated — callers own exact
    /// per-request counts, so this is always an accounting bug.
    pub fn free(&mut self, blocks: u64) {
        assert!(
            blocks <= self.used_blocks,
            "freeing {blocks} blocks but only {} allocated",
            self.used_blocks
        );
        self.used_blocks -= blocks;
    }

    /// Total pool size in blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Currently allocated blocks.
    pub fn used_blocks(&self) -> u64 {
        self.used_blocks
    }

    /// Current occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.used_blocks as f64 / self.total_blocks as f64
    }

    /// High-water occupancy in `[0, 1]`.
    pub fn peak_occupancy(&self) -> f64 {
        self.peak_blocks as f64 / self.total_blocks as f64
    }

    /// Bytes per block.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_allocates_and_frees_block_granular() {
        let mut p = KvPool::new(1000, 4, 10); // 40B blocks → 25 blocks
        assert_eq!(p.total_blocks(), 25);
        assert_eq!(p.blocks_for(1), 1);
        assert_eq!(p.blocks_for(4), 1);
        assert_eq!(p.blocks_for(5), 2);
        assert!(p.try_alloc(20));
        assert!(!p.try_alloc(6), "over-capacity alloc must fail");
        assert_eq!(p.used_blocks(), 20, "failed alloc must not leak");
        assert!(p.try_alloc(5));
        assert!((p.occupancy() - 1.0).abs() < 1e-12);
        p.free(25);
        assert_eq!(p.used_blocks(), 0);
        assert!((p.peak_occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "below one")]
    fn zero_block_pool_rejected() {
        let _ = KvPool::new(10, 4, 10);
    }

    #[test]
    fn gpt_neo_footprints_are_plausible() {
        let m = ModelConfig::gpt_neo_1_3b();
        // 24 layers × 2 × 2048 × 2B = 192 KiB per token.
        assert_eq!(kv_bytes_per_token(&m), 196_608);
        // ~1.2B parameters of the 1.3B total (embeddings excluded).
        let params = weight_bytes(&m) / 2;
        assert!((1_000_000_000..1_400_000_000).contains(&params), "{params}");
    }
}
