//! The control-plane hook: how an external controller steers a running
//! fleet on the simulated clock.
//!
//! A [`ControlPlane`] implementation (e.g. `resoftmax-ctrl`'s `Controller`)
//! attaches to a fleet via `FleetBuilder::control_plane`. The fleet then
//! adds a *fifth event source* to its discrete-event loop: at every decision
//! time the fleet snapshots its [`FleetSignals`] (windowed latency
//! percentiles, queue depths, KV occupancy, handoff backlog), asks the
//! controller to [`decide`](ControlPlane::decide), applies the returned
//! [`ControlAction`]s, and appends a [`ControlRecord`] to the report's
//! decision log. Exact-f64 tie order extends the existing ordering to
//! *fault ≤ arrival ≤ handoff ≤ ctrl ≤ step* (within ctrl, scale-up
//! activations land before the decision).
//!
//! Everything here lives on the simulated clock and is deterministic in the
//! builder inputs, so a controlled fleet's report — decision log included —
//! stays bit-identical across host thread counts, reruns, and sim-cache
//! states. The decision log is *replayable*: feeding the recorded actions
//! back through a trivial `ControlPlane` (see `resoftmax-ctrl::Replay`)
//! reproduces the report exactly.

use serde::{Deserialize, Serialize};

use crate::metrics::Percentiles;
use crate::replica::Role;
use crate::request::{Policy, ServeConfig};

/// What the controller asks the fleet to do, decided at one decision point.
/// The fleet validates each action against its current state and records
/// whether it applied (the `applied` vector of the [`ControlRecord`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlAction {
    /// Switch the admission policy every replica schedules with.
    SetPolicy(Policy),
    /// Re-budget chunked prefill: the max prompt tokens one request
    /// contributes to an iteration. Rejected when zero.
    SetPrefillChunk(usize),
    /// Arm (or re-arm) token-bucket admission control: arrivals are delayed
    /// until the bucket covers their prompt tokens. Rejected unless both
    /// parameters are positive and finite.
    SetAdmission {
        /// Sustained refill rate, prompt tokens per simulated second.
        tokens_per_s: f64,
        /// Bucket capacity, tokens (the tolerated burst).
        burst_tokens: f64,
    },
    /// Disarm admission control. Rejected when no bucket is armed.
    ClearAdmission,
    /// Bring a standby replica into rotation. Warm-up is priced over the
    /// link (the model weights stream in); the replica starts accepting
    /// when the transfer lands. Rejected unless the target is standby,
    /// not already warming, and not faulted.
    ScaleUp {
        /// Replica index.
        replica: usize,
    },
    /// Take an active replica back to standby: its resident requests are
    /// displaced exactly like a drain (KV migrates over the link where
    /// possible), but the replica can be scaled up again later. Rejected
    /// unless the target is accepting and its removal leaves at least one
    /// accepting prefill-capable and one decode-capable replica.
    ScaleDown {
        /// Replica index.
        replica: usize,
    },
}

/// Per-replica slice of a [`FleetSignals`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSignal {
    /// Replica index.
    pub id: usize,
    /// Serving role.
    pub role: Role,
    /// `true` while the router sees this replica.
    pub accepting: bool,
    /// `true` while parked in standby (scale-up candidate).
    pub standby: bool,
    /// `true` while a scale-up warm-up transfer is in flight.
    pub warming: bool,
    /// Waiting-queue length.
    pub queue_len: usize,
    /// Requests in the current continuous batch.
    pub running: usize,
    /// KV-pool occupancy in `[0, 1]`.
    pub kv_occupancy: f64,
}

/// The signal snapshot the fleet hands the controller at a decision point.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSignals {
    /// Simulated time of the decision.
    pub now_s: f64,
    /// Requests that have arrived so far.
    pub arrived: usize,
    /// Requests completed so far.
    pub completed: usize,
    /// Total waiting-queue depth across replicas.
    pub queue_depth: usize,
    /// KV handoffs in flight over the link.
    pub handoff_backlog: usize,
    /// The live `max_batch` (per-replica batch capacity).
    pub max_batch: usize,
    /// Windowed TTFT percentiles (`None` until the window holds a sample).
    pub ttft: Option<Percentiles>,
    /// Windowed TBT percentiles (`None` until the window holds a sample).
    pub tbt: Option<Percentiles>,
    /// Per-replica state, ascending id.
    pub replicas: Vec<ReplicaSignal>,
}

/// What [`ControlPlane::begin`] returns: when the first decision fires and
/// how wide the fleet's signal windows are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlInit {
    /// Simulated time of the first decision.
    pub first_decision_s: f64,
    /// Sliding-window width for the TTFT/TBT signal percentiles, seconds.
    pub window_s: f64,
}

/// One decision: the classified regime, the actions to apply, and when to
/// decide next.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlDecision {
    /// The controller's load-regime label ("idle", "steady", "burst",
    /// "overload", ...) — recorded verbatim in the decision log.
    pub regime: String,
    /// Actions to apply, in order.
    pub actions: Vec<ControlAction>,
    /// Simulated time of the next decision. Must be strictly later than the
    /// current decision; a non-finite value stops further decisions.
    pub next_s: f64,
}

/// A feedback controller the fleet consults on its simulated clock.
///
/// Implementations take `&self` (mirroring
/// [`IterationPlanner`](crate::IterationPlanner)) and keep mutable state
/// behind interior
/// mutability; [`begin`](ControlPlane::begin) must reset that state so
/// reruns of the same fleet stay bit-identical. Implementations must be
/// deterministic in the signal sequence.
pub trait ControlPlane {
    /// Called once per `Fleet::run`, before any event. Resets controller
    /// state and returns the first decision time and signal-window width.
    fn begin(&self, cfg: &ServeConfig) -> ControlInit;

    /// Called at each decision time with the fleet's signal snapshot.
    fn decide(&self, signals: &FleetSignals) -> ControlDecision;
}

/// One row of the report's decision log: what the controller saw, what it
/// decided, and what the fleet actually applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlRecord {
    /// Decision sequence number (0-based).
    pub seq: usize,
    /// Simulated time of the decision.
    pub at_s: f64,
    /// The controller's regime label.
    pub regime: String,
    /// The actions the controller issued, in order.
    pub actions: Vec<ControlAction>,
    /// Per-action outcome: `true` when the fleet applied it, `false` when
    /// the fleet's state made it invalid (e.g. scaling a non-standby
    /// replica).
    pub applied: Vec<bool>,
    /// Total waiting-queue depth at the decision.
    pub queue_depth: usize,
    /// Accepting replicas at the decision.
    pub active_replicas: usize,
    /// Mean KV occupancy over the accepting replicas.
    pub kv_occupancy: f64,
    /// KV handoffs in flight at the decision.
    pub handoff_backlog: usize,
    /// Windowed TTFT percentiles at the decision.
    pub ttft: Option<Percentiles>,
    /// Windowed TBT percentiles at the decision.
    pub tbt: Option<Percentiles>,
}

/// Token-bucket admission control on the simulated clock: arrivals pay
/// their prompt tokens; when the bucket runs dry the request's `ready_s` is
/// pushed to when the refill covers the debt.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TokenBucket {
    rate_per_s: f64,
    burst: f64,
    level: f64,
    last_s: f64,
}

impl TokenBucket {
    /// A full bucket as of `now_s`.
    pub fn new(tokens_per_s: f64, burst_tokens: f64, now_s: f64) -> Self {
        TokenBucket {
            rate_per_s: tokens_per_s,
            burst: burst_tokens,
            level: burst_tokens,
            last_s: now_s,
        }
    }

    /// Charges `cost` tokens at `now_s` and returns the earliest simulated
    /// time the charged work may run: `now_s` when the bucket covers it,
    /// later when the refill has to catch up. Over-burst costs are admitted
    /// once the bucket has refilled the shortfall (the bucket goes to zero),
    /// so a single huge prompt cannot stall admission forever.
    pub fn admit(&mut self, now_s: f64, cost: f64) -> f64 {
        let elapsed = (now_s - self.last_s).max(0.0);
        self.level = (self.level + elapsed * self.rate_per_s).min(self.burst);
        self.last_s = now_s;
        if cost <= self.level {
            self.level -= cost;
            now_s
        } else {
            let wait_s = (cost - self.level) / self.rate_per_s;
            self.level = 0.0;
            now_s + wait_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_admits_until_dry_then_meters() {
        let mut b = TokenBucket::new(100.0, 250.0, 0.0);
        // The burst absorbs the first arrivals at full speed.
        assert_eq!(b.admit(0.0, 200.0), 0.0);
        // 50 left; a 150-token prompt owes 100 tokens = 1 s of refill.
        assert_eq!(b.admit(0.0, 150.0), 1.0);
        // The bucket is empty and stays metered at the refill rate.
        assert_eq!(b.admit(0.0, 100.0), 1.0);
        // After 10 idle seconds the bucket is full again (capped at burst).
        assert_eq!(b.admit(10.0, 250.0), 10.0);
        assert_eq!(b.admit(10.0, 1.0), 10.0 + 0.01);
    }

    #[test]
    fn control_record_round_trips_through_serde() {
        let rec = ControlRecord {
            seq: 3,
            at_s: 1.25,
            regime: "burst".to_owned(),
            actions: vec![
                ControlAction::SetPolicy(Policy::PreemptivePriority),
                ControlAction::SetPrefillChunk(128),
                ControlAction::SetAdmission {
                    tokens_per_s: 4096.0,
                    burst_tokens: 8192.0,
                },
                ControlAction::ScaleUp { replica: 2 },
            ],
            applied: vec![true, true, true, false],
            queue_depth: 17,
            active_replicas: 2,
            kv_occupancy: 0.5,
            handoff_backlog: 1,
            ttft: None,
            tbt: None,
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: ControlRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }
}
