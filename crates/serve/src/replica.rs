//! One modeled replica: a GPU, a KV-pool shard, and the continuous-batching
//! engine step that advances it on the shared simulated clock.
//!
//! One *iteration* = one fused GPU schedule over every resident request:
//! decode requests contribute one row each at their current context length,
//! prefilling requests contribute a chunk of rows (chunked prefill). The
//! replica's GPU prices the iteration; the replica clock advances by that
//! much and the scheduler state steps. Eviction policy: when a decode row
//! cannot grow its KV allocation, the *youngest* running request is evicted
//! (its pages are handed back to the fleet, which may migrate them to a
//! sibling replica over the interconnect); the oldest running request is
//! never evicted, so the head of the line always progresses and the loop
//! terminates.
//!
//! In a *disaggregated* fleet a replica additionally carries a [`Role`]: a
//! `Prefill` replica runs only chunked prefill and, on a request's final
//! prefill chunk (the one whose forward pass emits the first token), hands
//! the request off — its KV pages leave this pool and stream over the
//! interconnect to a decode replica the fleet picks. A `Decode` replica
//! takes no fresh arrivals; it receives handed-off KV and decodes. `Unified`
//! is the classic colocated engine doing both.

use crate::engine::IterationPlanner;
use crate::error::Error;
use crate::kv::KvPool;
use crate::request::{Policy, ServeConfig};
use resoftmax_gpusim::{DeviceSpec, Gpu, Timeline};
use resoftmax_model::{build_batched_decode_schedule, ModelConfig, RunParams};
use resoftmax_obs::Counter;

/// A replica's serving role in a (possibly disaggregated) fleet.
///
/// Prefill is DRAM-traffic-bound and decode is latency-bound, so dedicating
/// replicas per phase lets each run the batch shape it is good at: prefill
/// replicas never stall a prompt behind a decode batch, and decode replicas
/// never see a prompt chunk inflate an iteration. The price is the KV
/// handoff: the finished prefill's cache crosses the interconnect before
/// the first decode step can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Runs only chunked prefill; on a request's final prefill chunk its KV
    /// pages stream to a decode replica over the link.
    Prefill,
    /// Receives handed-off KV and decodes. Takes no fresh arrivals (it can
    /// still re-prefill a resident request that lost its cache to memory
    /// pressure — tracked as `decode_side_prefill_tokens`).
    Decode,
    /// Classic colocated serving: prefill and decode on one engine.
    Unified,
}

impl Role {
    /// Stable lowercase name, used in report rows.
    pub fn name(self) -> &'static str {
        match self {
            Role::Prefill => "prefill",
            Role::Decode => "decode",
            Role::Unified => "unified",
        }
    }

    /// `true` when this replica is routed fresh arrivals and displaced
    /// requests that still owe prefill work.
    pub fn prefill_capable(self) -> bool {
        matches!(self, Role::Prefill | Role::Unified)
    }

    /// `true` when this replica is routed KV handoffs and displaced
    /// decode-phase requests.
    pub fn decode_capable(self) -> bool {
        matches!(self, Role::Decode | Role::Unified)
    }
}

/// Fleet-level scheduling state of one request.
#[derive(Debug, Clone)]
pub(crate) struct ReqState {
    pub arrival_s: f64,
    /// Session the request belongs to (cache-affinity routing key).
    pub session: u64,
    pub prompt: usize,
    pub decode: usize,
    /// Output tokens emitted so far (survives eviction/failure — the text
    /// already reached the client).
    pub generated: usize,
    /// Tokens resident in the KV cache (zeroed by eviction or replica
    /// failure; preserved across a successful migration).
    pub cached: usize,
    /// Pool blocks held on the replica currently hosting the request.
    pub blocks: u64,
    /// Earliest simulated time the request can run (arrival time, or the
    /// completion of an in-flight KV migration or prefill→decode handoff).
    pub ready_s: f64,
    pub first_token_s: Option<f64>,
    /// Emission time of the latest output token (meaningful once
    /// `generated > 0`): the TBT sample for token *k+1* is the simulated
    /// gap since token *k*, which charges eviction re-queues and in-flight
    /// handoffs to the tokens they actually delay.
    pub last_token_s: f64,
}

impl ReqState {
    /// Tokens that must be resident in the KV cache before the next decode
    /// row can run: the prompt, plus every already-emitted token except the
    /// latest (the next decode pass embeds that one and writes its KV
    /// entry). Before the first token, the whole prompt — its final prefill
    /// chunk computes the logits that emit token one.
    pub fn prefill_target(&self) -> usize {
        if self.generated == 0 {
            self.prompt
        } else {
            self.prompt + self.generated - 1
        }
    }

    pub fn remaining_work(&self) -> usize {
        (self.prefill_target() - self.cached) + (self.decode - self.generated)
    }
}

enum Row {
    Prefill { id: usize, chunk: usize },
    Decode { id: usize },
}

/// Cached handles for this replica's `serve.replica.{i}.*` counters (the
/// registry lookup takes a lock; the engine loop is hot).
struct ReplicaCounters {
    iterations: Counter,
    evictions: Counter,
    prefill_tokens: Counter,
    decode_tokens: Counter,
    completed: Counter,
    migrations_in: Counter,
    migrations_out: Counter,
    handoffs_in: Counter,
    handoffs_out: Counter,
    preemptions: Counter,
}

impl ReplicaCounters {
    fn new(id: usize) -> Self {
        let c = |what: &str| resoftmax_obs::counter(&format!("serve.replica.{id}.{what}"));
        ReplicaCounters {
            iterations: c("iterations"),
            evictions: c("evictions"),
            prefill_tokens: c("prefill_tokens"),
            decode_tokens: c("decode_tokens"),
            completed: c("completed"),
            migrations_in: c("migrations_in"),
            migrations_out: c("migrations_out"),
            handoffs_in: c("handoffs_in"),
            handoffs_out: c("handoffs_out"),
            preemptions: c("preemptions"),
        }
    }
}

/// One modeled replica of the fleet.
// The lifecycle flags (accepting/drained/failed/standby/warming) are
// deliberately independent booleans: drained+standby and failed+warming
// are reachable, so an enum would misstate the state space.
#[allow(clippy::struct_excessive_bools)]
pub(crate) struct Replica {
    pub id: usize,
    pub device: DeviceSpec,
    pub role: Role,
    pub gpu: Gpu,
    pub pool: KvPool,
    /// Simulated time this replica is committed through (busy-until).
    pub clock_s: f64,
    /// `false` once drained or failed: the router no longer sees it.
    pub accepting: bool,
    pub drained: bool,
    pub failed: bool,
    /// `true` while parked out of rotation as scale-up spare capacity
    /// (distinct from drained: a standby replica can come back).
    pub standby: bool,
    /// `true` while a control-plane scale-up warm-up transfer is in flight.
    pub warming: bool,
    /// Requests in the current continuous batch, admission order (oldest
    /// first — index 0 is never evicted).
    pub running: Vec<usize>,
    /// Admission queue (request ids; entries may hold migrated-in block
    /// reservations and per-request `ready_s` gates).
    pub waiting: Vec<usize>,
    // Accounting.
    pub iterations: usize,
    pub evictions: usize,
    pub completed: usize,
    pub prefill_tokens: u64,
    pub decode_tokens: u64,
    pub handoffs_in: usize,
    pub handoffs_out: usize,
    pub preemptions: usize,
    pub busy_s: f64,
    pub occ_sum: f64,
    pub occ_n: usize,
    /// Accumulated simulated kernel timeline, exported as this replica's
    /// trace stream (`Some` only while tracing is enabled).
    pub timeline: Option<Timeline>,
    counters: ReplicaCounters,
}

/// Fleet-level accumulators a step writes into.
#[derive(Debug, Default)]
pub(crate) struct StepAcc {
    pub ttft: Vec<f64>,
    pub tbt: Vec<f64>,
    pub completed: usize,
    pub last_completion_s: f64,
}

/// What one engine iteration hands back to the fleet for re-routing.
#[derive(Debug, Default)]
pub(crate) struct StepOutcome {
    /// Requests evicted this iteration, in eviction order; the fleet decides
    /// whether their KV pages migrate to a sibling or drop.
    pub evicted: Vec<usize>,
    /// Requests that finished their prefill on a `Prefill` replica this
    /// iteration and still owe decode tokens: their KV pages have left this
    /// pool and must be priced across the link to a decode replica.
    pub handoffs: Vec<usize>,
}

impl Replica {
    pub fn new(id: usize, device: DeviceSpec, role: Role, pool: KvPool) -> Self {
        Replica {
            id,
            gpu: Gpu::new(device.clone()),
            device,
            role,
            pool,
            clock_s: 0.0,
            accepting: true,
            drained: false,
            failed: false,
            standby: false,
            warming: false,
            running: Vec::new(),
            waiting: Vec::new(),
            iterations: 0,
            evictions: 0,
            completed: 0,
            prefill_tokens: 0,
            decode_tokens: 0,
            handoffs_in: 0,
            handoffs_out: 0,
            preemptions: 0,
            busy_s: 0.0,
            occ_sum: 0.0,
            occ_n: 0,
            timeline: None,
            counters: ReplicaCounters::new(id),
        }
    }

    /// The next simulated time this replica can act, or `None` when it has
    /// nothing to do (idle, drained, or failed with empty queues).
    pub fn next_time(&self, states: &[ReqState]) -> Option<f64> {
        if !self.running.is_empty() {
            return Some(self.clock_s);
        }
        self.waiting
            .iter()
            .map(|&id| states[id].ready_s)
            .min_by(f64::total_cmp)
            .map(|ready| ready.max(self.clock_s))
    }

    /// Frees every block `id` holds here (eviction, migration, drain).
    pub fn release(&mut self, states: &mut [ReqState], id: usize) {
        if states[id].blocks > 0 {
            self.pool.free(states[id].blocks);
            states[id].blocks = 0;
        }
    }

    /// Evicts the youngest running request (caller guarantees the tail is
    /// nonempty) and returns its id; the fleet decides whether its KV pages
    /// migrate or drop.
    fn evict_youngest(&mut self, states: &mut [ReqState]) -> usize {
        let victim = self.running.pop().expect("nonempty running tail");
        self.release(states, victim);
        self.evictions += 1;
        self.counters.evictions.incr();
        resoftmax_obs::counter("serve.evictions").incr();
        victim
    }

    /// Reclaims the block reservation of the waiting request closest to the
    /// queue tail (skipping `keep`); returns `false` when no waiting entry
    /// holds blocks. Reclaimed requests lose their cache and re-prefill.
    fn reclaim_waiting_blocks(&mut self, states: &mut [ReqState], keep: usize) -> bool {
        let Some(pos) = self
            .waiting
            .iter()
            .rposition(|&v| v != keep && states[v].blocks > 0)
        else {
            return false;
        };
        let v = self.waiting[pos];
        self.release(states, v);
        states[v].cached = 0;
        self.evictions += 1;
        self.counters.evictions.incr();
        resoftmax_obs::counter("serve.evictions").incr();
        true
    }

    /// Admission: strict head-of-line over the ready part of the waiting
    /// queue — a request is admitted only if the pool covers its full
    /// resident context (migrated-in requests already hold part of it).
    /// Under [`Policy::PreemptivePriority`] a full batch may additionally
    /// *preempt* running decodes for ready prefill-owing waiters (see
    /// [`preempt_for_prefill`](Self::preempt_for_prefill)).
    fn admit(&mut self, states: &mut [ReqState], cfg: &ServeConfig) {
        match cfg.policy {
            Policy::Fifo => {}
            Policy::ShortestRemaining => {
                self.waiting
                    .sort_by_key(|&id| (states[id].remaining_work(), id));
            }
            Policy::PreemptivePriority => {
                // Prefill-owing waiters first (arrival order within each
                // class): a prompt burst should not queue behind decode
                // re-admissions.
                self.waiting
                    .sort_by_key(|&id| (states[id].cached >= states[id].prefill_target(), id));
            }
        }
        while self.running.len() < cfg.max_batch {
            let Some(pos) = self
                .waiting
                .iter()
                .position(|&id| states[id].ready_s <= self.clock_s)
            else {
                break;
            };
            let id = self.waiting[pos];
            let need = self.pool.blocks_for(states[id].prefill_target());
            let extra = need.saturating_sub(states[id].blocks);
            if extra > 0 && !self.pool.try_alloc(extra) {
                // Reclaim migrated-in reservations parked further down the
                // queue before declaring head-of-line blockage.
                while !self.pool.can_alloc(extra) {
                    if !self.reclaim_waiting_blocks(states, id) {
                        break;
                    }
                }
                if !self.pool.try_alloc(extra) {
                    break;
                }
            }
            states[id].blocks = states[id].blocks.max(need);
            self.waiting.remove(pos);
            self.running.push(id);
            resoftmax_obs::counter("serve.admitted").incr();
        }
        if cfg.policy == Policy::PreemptivePriority && self.running.len() == cfg.max_batch {
            self.preempt_for_prefill(states, cfg);
        }
    }

    /// With the batch full, swaps running decode-phase requests out for
    /// ready prefill-owing waiters. Preemption frees a *batch slot*, not
    /// memory: the victim keeps its KV blocks and `cached` tokens, so its
    /// later re-admission allocates nothing (analyzer-clean) and decode
    /// resumes exactly where it stopped. The victim is the running request
    /// with the most decode tokens still owed (ties to the youngest), never
    /// the oldest (index 0) — the head of the line always progresses, so
    /// the loop-termination argument is untouched. Waiters whose KV pages
    /// would not fit do not trigger a preemption (the slot would go idle).
    fn preempt_for_prefill(&mut self, states: &mut [ReqState], cfg: &ServeConfig) {
        loop {
            let Some(pos) = self.waiting.iter().position(|&id| {
                let st = &states[id];
                let extra = self
                    .pool
                    .blocks_for(st.prefill_target())
                    .saturating_sub(st.blocks);
                st.ready_s <= self.clock_s
                    && st.cached < st.prefill_target()
                    && self.pool.can_alloc(extra)
            }) else {
                return;
            };
            // The victim: a running decode-phase request (its preserved KV
            // is exactly resumable), most decode tokens owed, youngest on
            // ties, never index 0.
            let Some(victim_i) = self
                .running
                .iter()
                .enumerate()
                .skip(1)
                .filter(|&(_, &v)| {
                    states[v].generated > 0 && states[v].cached == states[v].prefill_target()
                })
                .max_by_key(|&(_, &v)| (states[v].decode - states[v].generated, v))
                .map(|(i, _)| i)
            else {
                return;
            };
            let victim = self.running.remove(victim_i);
            self.waiting.push(victim);
            self.preemptions += 1;
            self.counters.preemptions.incr();
            resoftmax_obs::counter("serve.preemptions").incr();

            let id = self.waiting[pos];
            let need = self.pool.blocks_for(states[id].prefill_target());
            let extra = need.saturating_sub(states[id].blocks);
            let granted = extra == 0 || self.pool.try_alloc(extra);
            debug_assert!(granted, "preemption candidate was can_alloc-checked");
            if granted {
                states[id].blocks = states[id].blocks.max(need);
                self.waiting.remove(pos);
                self.running.push(id);
                resoftmax_obs::counter("serve.admitted").incr();
            }
            if self.running.len() < cfg.max_batch {
                return;
            }
        }
    }

    /// Runs one engine iteration at `self.clock_s` (the caller has already
    /// advanced it to this replica's next-action time). Returns the evicted
    /// and handed-off request ids for the fleet to re-route.
    pub fn step(
        &mut self,
        states: &mut [ReqState],
        cfg: &ServeConfig,
        model: &ModelConfig,
        params: &RunParams,
        planner: &dyn IterationPlanner,
        acc: &mut StepAcc,
    ) -> Result<StepOutcome, Error> {
        self.admit(states, cfg);

        // Build this iteration's rows, oldest request first. Decode rows
        // grow their KV allocation up front; on exhaustion they evict
        // younger requests (never older ones, and never already-granted
        // ones — victims sit strictly later in `running`).
        let mut ctxs: Vec<usize> = Vec::new();
        let mut rows: Vec<Row> = Vec::new();
        let mut evicted: Vec<usize> = Vec::new();
        let mut i = 0usize;
        while i < self.running.len() {
            let id = self.running[i];
            let (target, cached) = (states[id].prefill_target(), states[id].cached);
            if cached < target {
                let chunk = (target - cached).min(cfg.prefill_chunk);
                ctxs.extend((1..=chunk).map(|t| cached + t));
                rows.push(Row::Prefill { id, chunk });
            } else {
                let need = self.pool.blocks_for(cached + 1);
                let mut granted = need <= states[id].blocks;
                while !granted {
                    if self.pool.try_alloc(need - states[id].blocks) {
                        states[id].blocks = need;
                        granted = true;
                    } else if self.running.len() > i + 1 {
                        let victim = self.evict_youngest(states);
                        evicted.push(victim);
                    } else if self.reclaim_waiting_blocks(states, id) {
                        // Waiting reservations are the only holders left.
                    } else {
                        // Nobody left to evict. The build-time capacity
                        // check guarantees the oldest (i == 0) can always
                        // grow, so this request merely waits.
                        assert!(i > 0, "oldest request starved despite capacity check");
                        break;
                    }
                }
                if granted {
                    ctxs.push(cached + 1);
                    rows.push(Row::Decode { id });
                }
            }
            i += 1;
        }
        assert!(
            !ctxs.is_empty(),
            "replica {} stepped with no runnable rows (scheduler bug)",
            self.id
        );

        // Price the fused iteration on this replica's GPU. `take_timeline`
        // drains cost state (and flushes L2) so one `Gpu` serves the whole
        // run without re-paying construction per iteration.
        let span = resoftmax_obs::span("serve.iteration", "serve");
        let iter_params = planner.plan(&ctxs, params);
        self.gpu
            .run(&build_batched_decode_schedule(model, &ctxs, &iter_params))?;
        let timeline = self.gpu.take_timeline();
        let dt = timeline.total_time_s();
        drop(span);
        if let Some(acc_tl) = &mut self.timeline {
            acc_tl.extend_from(&timeline);
        }
        self.clock_s += dt;
        self.busy_s += dt;
        self.iterations += 1;
        self.counters.iterations.incr();
        resoftmax_obs::counter("serve.iterations").incr();
        self.occ_sum += self.pool.occupancy();
        self.occ_n += 1;

        // Step the per-request state.
        let mut finished: Vec<usize> = Vec::new();
        let mut handoffs: Vec<usize> = Vec::new();
        let mut complete = |st: &mut ReqState, id: usize, pool: &mut KvPool, n: &mut usize| {
            pool.free(st.blocks);
            st.blocks = 0;
            finished.push(id);
            *n += 1;
            acc.completed += 1;
            acc.last_completion_s = acc.last_completion_s.max(self.clock_s);
        };
        for row in rows {
            match row {
                Row::Prefill { id, chunk } => {
                    let st = &mut states[id];
                    st.cached += chunk;
                    self.prefill_tokens += chunk as u64;
                    self.counters.prefill_tokens.add(chunk as u64);
                    resoftmax_obs::counter("serve.prefill_tokens").add(chunk as u64);
                    if st.generated == 0 && st.cached == st.prompt {
                        // The final prompt chunk's forward pass produces the
                        // logits for the first output token: TTFT is *this*
                        // completion, not the first decode iteration's.
                        st.generated = 1;
                        self.decode_tokens += 1;
                        self.counters.decode_tokens.incr();
                        resoftmax_obs::counter("serve.decode_tokens").incr();
                        st.first_token_s = Some(self.clock_s);
                        st.last_token_s = self.clock_s;
                        acc.ttft.push(self.clock_s - st.arrival_s);
                        if st.generated == st.decode {
                            complete(st, id, &mut self.pool, &mut self.completed);
                        } else if self.role == Role::Prefill {
                            // Prefill-only replica: the request owes decode
                            // tokens, so its KV pages leave for the decode
                            // side. (TBT for token two starts ticking now —
                            // the link transfer shows up in that gap.)
                            handoffs.push(id);
                        }
                    } else if st.generated > 0
                        && st.cached == st.prefill_target()
                        && self.role == Role::Prefill
                    {
                        // A displaced request re-prefilled its lost cache
                        // here; no token is emitted (the next decode pass
                        // does that), but the restored KV now hands off.
                        handoffs.push(id);
                    }
                }
                Row::Decode { id } => {
                    let st = &mut states[id];
                    st.cached += 1;
                    st.generated += 1;
                    self.decode_tokens += 1;
                    self.counters.decode_tokens.incr();
                    resoftmax_obs::counter("serve.decode_tokens").incr();
                    debug_assert!(
                        st.first_token_s.is_some(),
                        "decode rows only run after the prefill that emits token one"
                    );
                    // TBT is the simulated gap between consecutive output
                    // tokens, not the iteration time: eviction re-queues and
                    // prefill→decode handoffs land in the token they delay.
                    acc.tbt.push(self.clock_s - st.last_token_s);
                    st.last_token_s = self.clock_s;
                    if st.generated == st.decode {
                        complete(st, id, &mut self.pool, &mut self.completed);
                    }
                }
            }
        }
        for &id in &handoffs {
            // The KV pages depart over the link: free this pool's blocks but
            // keep `cached` — the decode side receives the pages, it does
            // not recompute them.
            self.release(states, id);
            self.handoffs_out += 1;
            self.counters.handoffs_out.incr();
            resoftmax_obs::counter("serve.handoffs").incr();
        }
        if !finished.is_empty() {
            self.counters.completed.add(finished.len() as u64);
        }
        if !finished.is_empty() || !handoffs.is_empty() {
            self.running
                .retain(|id| !finished.contains(id) && !handoffs.contains(id));
        }
        Ok(StepOutcome { evicted, handoffs })
    }

    /// Counts one migrated-in request (fleet bookkeeping hook).
    pub fn note_migration_in(&self) {
        self.counters.migrations_in.incr();
    }

    /// Counts one request whose KV left this replica over the interconnect.
    pub fn note_migration_out(&self) {
        self.counters.migrations_out.incr();
    }

    /// Counts one handed-off request arriving on this (decode) replica.
    pub fn note_handoff_in(&mut self) {
        self.handoffs_in += 1;
        self.counters.handoffs_in.incr();
    }
}
