//! Workload description: request arrivals and scheduler configuration.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Admission-order policy for the waiting queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// First-come, first-served (arrival order).
    Fifo,
    /// Shortest remaining work first (prefill + decode tokens still owed);
    /// ties break on arrival order, so the schedule stays deterministic.
    ShortestRemaining,
    /// Prefill-priority with preemption: requests still owing prefill work
    /// are admitted first, and when the batch is full a ready prefill-owing
    /// waiter may *preempt* the running decode request with the most decode
    /// tokens still owed (never the oldest). A preempted request keeps its
    /// KV blocks resident, so re-admission allocates nothing and decode
    /// resumes where it stopped — distinct from eviction, which drops the
    /// cache. Built for prefill-heavy bursts, where TTFT of the queueing
    /// prompts matters more than the TBT of long decodes.
    PreemptivePriority,
}

impl Policy {
    /// Stable lowercase name, used in report rows and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::ShortestRemaining => "shortest-remaining",
            Policy::PreemptivePriority => "preemptive-priority",
        }
    }
}

/// One request: arrival time plus prompt/decode token counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Simulated arrival time in seconds.
    pub at_s: f64,
    /// Prompt tokens to prefill before the first output token.
    pub prompt: usize,
    /// Output tokens to generate.
    pub decode: usize,
}

/// Serving-simulation configuration (workload + scheduler + pool).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// RNG seed for the arrival process.
    pub seed: u64,
    /// Number of requests in the trace.
    pub requests: usize,
    /// Poisson arrival rate (requests per simulated second).
    pub arrival_rate_hz: f64,
    /// Inclusive range of prompt lengths, sampled uniformly.
    pub prompt_tokens: (usize, usize),
    /// Inclusive range of output lengths, sampled uniformly.
    pub decode_tokens: (usize, usize),
    /// Maximum requests resident in one engine iteration.
    pub max_batch: usize,
    /// Prefill chunk size in tokens (chunked prefill à la Sarathi/vLLM:
    /// long prompts are spread over iterations so decode rows keep flowing).
    pub prefill_chunk: usize,
    /// Waiting-queue order.
    pub policy: Policy,
    /// KV pool capacity override in bytes. `None` sizes the pool from the
    /// device HBM minus the model weights; tests and benches set a small
    /// value to exercise admission control and eviction.
    pub kv_capacity_bytes: Option<u64>,
    /// Tokens per KV block.
    pub kv_block_tokens: usize,
    /// Number of distinct sessions the requests belong to; request `i` is
    /// assigned session `i % sessions`. The session id is the
    /// cache-affinity routing key. `0` (the default) gives every request its
    /// own session.
    pub sessions: usize,
    /// Safety bound on engine iterations (a scheduling bug would otherwise
    /// spin forever on the simulated clock).
    pub max_iterations: usize,
}

impl ServeConfig {
    /// Workload sanity checks — everything [`poisson_arrivals`] would panic
    /// on, plus the metric-shape requirements. `FleetBuilder::build` calls
    /// this and wraps the message in `Error::Config`.
    ///
    /// # Errors
    ///
    /// A human-readable reason when any field is degenerate (zero requests,
    /// non-positive rate, empty token ranges, zero batch/chunk/block sizes).
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 {
            return Err("workload must submit at least one request".to_owned());
        }
        if !(self.arrival_rate_hz > 0.0 && self.arrival_rate_hz.is_finite()) {
            return Err(format!(
                "arrival rate must be positive and finite, got {}",
                self.arrival_rate_hz
            ));
        }
        if self.prompt_tokens.0 == 0 || self.prompt_tokens.0 > self.prompt_tokens.1 {
            return Err(format!(
                "prompt token range {:?} must be nonempty with a nonzero lower bound",
                self.prompt_tokens
            ));
        }
        if self.decode_tokens.0 < 2 || self.decode_tokens.0 > self.decode_tokens.1 {
            return Err(format!(
                "decode token range {:?} must be nonempty with a lower bound of at \
                 least 2 (the first token is the TTFT sample; TBT needs a second)",
                self.decode_tokens
            ));
        }
        if self.max_batch == 0 {
            return Err("max_batch must be nonzero".to_owned());
        }
        if self.prefill_chunk == 0 {
            return Err("prefill_chunk must be nonzero".to_owned());
        }
        if self.kv_block_tokens == 0 {
            return Err("kv_block_tokens must be nonzero".to_owned());
        }
        Ok(())
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 0xC0FFEE,
            requests: 64,
            arrival_rate_hz: 32.0,
            prompt_tokens: (128, 768),
            decode_tokens: (16, 128),
            max_batch: 8,
            prefill_chunk: 256,
            policy: Policy::Fifo,
            kv_capacity_bytes: None,
            kv_block_tokens: 16,
            sessions: 0,
            max_iterations: 100_000,
        }
    }
}

/// Samples the request trace: exponential inter-arrival gaps at
/// `arrival_rate_hz`, uniform prompt/decode lengths. Deterministic in
/// `cfg.seed`.
///
/// # Panics
///
/// Panics on degenerate configs (zero requests, non-positive rate, empty
/// or zero token ranges).
pub fn poisson_arrivals(cfg: &ServeConfig) -> Vec<Arrival> {
    assert!(cfg.requests > 0, "trace needs at least one request");
    assert!(
        cfg.arrival_rate_hz > 0.0,
        "arrival rate must be positive, got {}",
        cfg.arrival_rate_hz
    );
    let ((p_lo, p_hi), (d_lo, d_hi)) = (cfg.prompt_tokens, cfg.decode_tokens);
    assert!(p_lo > 0 && p_lo <= p_hi, "bad prompt range {p_lo}..={p_hi}");
    assert!(d_lo > 0 && d_lo <= d_hi, "bad decode range {d_lo}..={d_hi}");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut now = 0.0f64;
    (0..cfg.requests)
        .map(|_| {
            // Inverse-CDF exponential gap; 1-u keeps the log argument in (0, 1].
            let u: f64 = rng.gen_range(0.0..1.0);
            now += -(1.0 - u).ln() / cfg.arrival_rate_hz;
            Arrival {
                at_s: now,
                prompt: rng.gen_range(p_lo..p_hi + 1),
                decode: rng.gen_range(d_lo..d_hi + 1),
            }
        })
        .collect()
}

/// Samples a *phase-shifting* request trace: a piecewise-constant-rate
/// Poisson process whose rate follows `phases` — a repeating cycle of
/// `(duration_s, rate_hz)` segments — with prompt/decode lengths sampled
/// uniformly from `cfg`'s ranges. This is the workload shape the adaptive
/// control plane is built for: square-wave bursts, diurnal ramps, and
/// overload spikes are all cycles of constant-rate segments.
///
/// The inter-arrival sampling is exact, not approximate: each gap draws one
/// unit-rate exponential and *consumes* it across phase boundaries (a
/// segment at rate `r` lasting `dt` seconds consumes `r · dt` of the
/// exponential), so the instantaneous rate within every segment is exactly
/// that segment's `rate_hz`. Deterministic in `cfg.seed`.
///
/// # Panics
///
/// Panics on degenerate configs (zero requests, empty or zero token ranges,
/// empty `phases`, non-positive durations or rates).
pub fn phased_arrivals(cfg: &ServeConfig, phases: &[(f64, f64)]) -> Vec<Arrival> {
    assert!(cfg.requests > 0, "trace needs at least one request");
    assert!(
        !phases.is_empty(),
        "phase schedule needs at least one phase"
    );
    for &(dur_s, rate_hz) in phases {
        assert!(
            dur_s > 0.0 && dur_s.is_finite(),
            "phase duration must be positive and finite, got {dur_s}"
        );
        assert!(
            rate_hz > 0.0 && rate_hz.is_finite(),
            "phase rate must be positive and finite, got {rate_hz}"
        );
    }
    let ((p_lo, p_hi), (d_lo, d_hi)) = (cfg.prompt_tokens, cfg.decode_tokens);
    assert!(p_lo > 0 && p_lo <= p_hi, "bad prompt range {p_lo}..={p_hi}");
    assert!(d_lo > 0 && d_lo <= d_hi, "bad decode range {d_lo}..={d_hi}");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut now = 0.0f64;
    let mut phase = 0usize;
    // Simulated time already elapsed inside the current phase.
    let mut into_phase = 0.0f64;
    (0..cfg.requests)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            // One unit-rate exponential, consumed across phase boundaries.
            let mut e = -(1.0 - u).ln();
            loop {
                let (dur_s, rate_hz) = phases[phase];
                let left_s = dur_s - into_phase;
                let need_s = e / rate_hz;
                if need_s <= left_s {
                    now += need_s;
                    into_phase += need_s;
                    break;
                }
                e -= left_s * rate_hz;
                now += left_s;
                into_phase = 0.0;
                phase = (phase + 1) % phases.len();
            }
            Arrival {
                at_s: now,
                prompt: rng.gen_range(p_lo..p_hi + 1),
                decode: rng.gen_range(d_lo..d_hi + 1),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_ordered() {
        let cfg = ServeConfig::default();
        let a = poisson_arrivals(&cfg);
        let b = poisson_arrivals(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.requests);
        assert!(a.windows(2).all(|w| w[0].at_s <= w[1].at_s));
        assert!(a.iter().all(|r| {
            (cfg.prompt_tokens.0..=cfg.prompt_tokens.1).contains(&r.prompt)
                && (cfg.decode_tokens.0..=cfg.decode_tokens.1).contains(&r.decode)
        }));
        // Mean gap should be in the ballpark of 1/rate (loose 3x bounds).
        let mean_gap = a.last().unwrap().at_s / a.len() as f64;
        let expect = 1.0 / cfg.arrival_rate_hz;
        assert!(
            (expect / 3.0..expect * 3.0).contains(&mean_gap),
            "mean gap {mean_gap}"
        );
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(ServeConfig::default().validate().is_ok());
        let bad = |f: fn(&mut ServeConfig)| {
            let mut c = ServeConfig::default();
            f(&mut c);
            c.validate().unwrap_err()
        };
        assert!(bad(|c| c.requests = 0).contains("at least one request"));
        assert!(bad(|c| c.arrival_rate_hz = 0.0).contains("positive"));
        assert!(bad(|c| c.arrival_rate_hz = f64::INFINITY).contains("finite"));
        assert!(bad(|c| c.prompt_tokens = (0, 4)).contains("prompt"));
        assert!(bad(|c| c.decode_tokens = (1, 4)).contains("TTFT"));
        assert!(bad(|c| c.max_batch = 0).contains("max_batch"));
        assert!(bad(|c| c.prefill_chunk = 0).contains("prefill_chunk"));
        assert!(bad(|c| c.kv_block_tokens = 0).contains("kv_block_tokens"));
    }

    #[test]
    fn phased_arrivals_follow_the_phase_rates() {
        let cfg = ServeConfig {
            requests: 4000,
            ..ServeConfig::default()
        };
        // Square wave: 10 s at 4 Hz, 10 s at 40 Hz, repeating.
        let phases = [(10.0, 4.0), (10.0, 40.0)];
        let a = phased_arrivals(&cfg, &phases);
        assert_eq!(a, phased_arrivals(&cfg, &phases));
        assert!(a.windows(2).all(|w| w[0].at_s <= w[1].at_s));
        // Count arrivals inside low vs high segments of the first full
        // cycles; rates should be ~10x apart (loose bounds, it is random).
        let (mut low, mut high) = (0usize, 0usize);
        for r in &a {
            let cycle_pos = r.at_s % 20.0;
            if cycle_pos < 10.0 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(
            high > low * 4,
            "high-rate phases must dominate: {high} vs {low}"
        );
        // Mean overall rate is (4 + 40) / 2 = 22 Hz over whole cycles.
        let mean_rate = a.len() as f64 / a.last().unwrap().at_s;
        assert!(
            (10.0..40.0).contains(&mean_rate),
            "mean rate {mean_rate} should sit between the phase rates"
        );
    }

    #[test]
    fn phased_arrivals_single_phase_matches_poisson() {
        // One phase at the config's rate is exactly the homogeneous process:
        // same RNG consumption order, so the traces are bit-identical.
        let cfg = ServeConfig {
            requests: 256,
            ..ServeConfig::default()
        };
        let homogeneous = poisson_arrivals(&cfg);
        let phased = phased_arrivals(&cfg, &[(f64::MAX, cfg.arrival_rate_hz)]);
        assert_eq!(homogeneous, phased);
    }

    #[test]
    fn different_seeds_differ() {
        let a = poisson_arrivals(&ServeConfig::default());
        let b = poisson_arrivals(&ServeConfig {
            seed: 1,
            ..ServeConfig::default()
        });
        assert_ne!(a, b);
    }
}
