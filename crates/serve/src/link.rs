//! Interconnect cost model for KV-cache migration between replicas.
//!
//! When the fleet rebalances a request (eviction overflow to a sibling, or a
//! draining replica redistributing its residents), the request's KV pages
//! cross the interconnect. The model is a latency + bandwidth line — the
//! same first-order shape the GPU simulator uses for DRAM — because what the
//! serving question needs is the *relative* cost of moving a context versus
//! recomputing it, not a fabric simulation.

use serde::{Deserialize, Serialize};

/// A point-to-point interconnect between replicas: per-transfer latency plus
/// a bandwidth term. Transfer time for `bytes` is
/// `latency_us + bytes / bandwidth`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Human-readable name, e.g. `"NVLink3"`.
    pub name: String,
    /// Sustained point-to-point bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Per-transfer setup latency in microseconds (software + fabric).
    pub latency_us: f64,
}

impl LinkSpec {
    /// NVLink3-class intra-node link (per-direction, single pair).
    pub fn nvlink() -> Self {
        LinkSpec {
            name: "NVLink3".to_owned(),
            bandwidth_gbps: 300.0,
            latency_us: 10.0,
        }
    }

    /// PCIe 4.0 x16 host-mediated link — the default.
    pub fn pcie_gen4() -> Self {
        LinkSpec {
            name: "PCIe4x16".to_owned(),
            bandwidth_gbps: 32.0,
            latency_us: 25.0,
        }
    }

    /// 100 Gb/s Ethernet/RDMA inter-node link.
    pub fn ethernet_100g() -> Self {
        LinkSpec {
            name: "100GbE".to_owned(),
            bandwidth_gbps: 12.5,
            latency_us: 50.0,
        }
    }

    /// Seconds to move `bytes` across the link.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / (self.bandwidth_gbps * 1e9)
    }

    /// Checks the spec is physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns the offending field's name when the bandwidth is not positive
    /// or the latency is negative/non-finite.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.bandwidth_gbps > 0.0 && self.bandwidth_gbps.is_finite()) {
            return Err(format!(
                "link bandwidth_gbps must be positive, got {}",
                self.bandwidth_gbps
            ));
        }
        if !(self.latency_us >= 0.0 && self.latency_us.is_finite()) {
            return Err(format!(
                "link latency_us must be non-negative, got {}",
                self.latency_us
            ));
        }
        Ok(())
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self::pcie_gen4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_bandwidth() {
        let l = LinkSpec::pcie_gen4();
        // 32 MB over 32 GB/s = 1 ms, plus 25 us latency.
        let t = l.transfer_time_s(32 * 1024 * 1024);
        assert!((t - (25e-6 + 33.554432e6 / 32e9)).abs() < 1e-12);
        // Zero bytes still pays the latency.
        assert!((l.transfer_time_s(0) - 25e-6).abs() < 1e-15);
    }

    #[test]
    fn presets_validate_and_order_by_speed() {
        for l in [
            LinkSpec::nvlink(),
            LinkSpec::pcie_gen4(),
            LinkSpec::ethernet_100g(),
        ] {
            l.validate().unwrap_or_else(|e| panic!("{}: {e}", l.name));
        }
        let bytes = 64 * 1024 * 1024;
        assert!(
            LinkSpec::nvlink().transfer_time_s(bytes)
                < LinkSpec::pcie_gen4().transfer_time_s(bytes)
        );
        assert!(
            LinkSpec::pcie_gen4().transfer_time_s(bytes)
                < LinkSpec::ethernet_100g().transfer_time_s(bytes)
        );
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut l = LinkSpec::nvlink();
        l.bandwidth_gbps = 0.0;
        assert!(l.validate().unwrap_err().contains("bandwidth"));
        let mut l = LinkSpec::nvlink();
        l.latency_us = -1.0;
        assert!(l.validate().unwrap_err().contains("latency"));
    }
}
