//! Continuous-batching serving simulator on top of the decode cost model —
//! an extension beyond the paper's full-sequence scope.
//!
//! The paper prices one inference iteration at a time. Production LLM
//! serving instead runs an *engine loop*: requests arrive over time, a
//! KV-cache pool admits as many as fit in device memory, and every engine
//! iteration fuses chunked prefill with single-token decode across whatever
//! mix of context lengths is currently resident (iteration-level a.k.a.
//! continuous batching). This crate simulates that loop against the
//! [`resoftmax_gpusim`] timing model so the recomposition question can be
//! asked where it is usually asked in practice — under serving load — with
//! the same measured-not-asserted discipline as the rest of the repo.
//!
//! Everything runs on a *simulated* clock (the GPU timeline advances it), so
//! reports are bit-identical regardless of the host's worker-thread count.
//!
//! ```
//! use resoftmax_gpusim::DeviceSpec;
//! use resoftmax_model::{ModelConfig, RunParams};
//! use resoftmax_serve::{run_serve, ServeConfig};
//!
//! let cfg = ServeConfig {
//!     requests: 4,
//!     ..ServeConfig::default()
//! };
//! let report = run_serve(
//!     &ModelConfig::gpt_neo_1_3b(),
//!     &DeviceSpec::a100(),
//!     &RunParams::new(4096),
//!     &cfg,
//! )
//! .unwrap();
//! assert_eq!(report.completed, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod kv;
mod metrics;
mod request;

pub use engine::{run_serve, run_serve_with, BaselinePlanner, IterationPlanner};
pub use kv::{kv_bytes_per_token, weight_bytes, KvPool};
pub use metrics::{Percentiles, ServeReport};
pub use request::{poisson_arrivals, Arrival, Policy, ServeConfig};
