//! Continuous-batching serving simulator on top of the decode cost model —
//! an extension beyond the paper's full-sequence scope.
//!
//! The paper prices one inference iteration at a time. Production LLM
//! serving instead runs an *engine loop*: requests arrive over time, a
//! KV-cache pool admits as many as fit in device memory, and every engine
//! iteration fuses chunked prefill with single-token decode across whatever
//! mix of context lengths is currently resident (iteration-level a.k.a.
//! continuous batching). This crate simulates that loop against the
//! [`resoftmax_gpusim`] timing model so the recomposition question can be
//! asked where it is usually asked in practice — under serving load — with
//! the same measured-not-asserted discipline as the rest of the repo.
//!
//! Beyond one device, [`FleetBuilder`] models a *cluster*: N replicas (any
//! mix of device presets), each with its own GPU and KV-pool shard, behind a
//! pluggable [`Router`] (round-robin, least-loaded, cache-affinity), with an
//! interconnect cost model ([`LinkSpec`]) charging KV migration whenever a
//! request is rebalanced, and scripted replica faults (fail/drain). Replicas
//! carry a serving [`Role`]: the default `Unified` colocates both phases,
//! while `FleetBuilder::prefill_replicas` / `decode_replicas` build a
//! *disaggregated* fleet whose finished prefills stream their KV across the
//! link to dedicated decode replicas (prefill is DRAM-traffic-bound, decode
//! latency-bound — the paper's recomposition pressure differs per phase).
//!
//! Everything runs on a *simulated* clock (the GPU timeline advances it), so
//! reports are bit-identical regardless of the host's worker-thread count.
//!
//! ```
//! use resoftmax_serve::prelude::*;
//! use resoftmax_gpusim::DeviceSpec;
//! use resoftmax_model::{ModelConfig, RunParams};
//!
//! let report = FleetBuilder::new()
//!     .model(ModelConfig::gpt_neo_1_3b())
//!     .params(RunParams::new(4096))
//!     .replicas(2, &DeviceSpec::a100())
//!     .replica(DeviceSpec::t4())
//!     .router(RouterPolicy::CacheAffinity)
//!     .link(LinkSpec::nvlink())
//!     .workload(ServeConfig {
//!         requests: 6,
//!         ..ServeConfig::default()
//!     })
//!     .build()?
//!     .run()?;
//! assert_eq!(report.completed, 6);
//! assert_eq!(report.replicas.len(), 3);
//! # Ok::<(), resoftmax_serve::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod control;
mod engine;
mod error;
mod kv;
mod link;
mod metrics;
mod replica;
mod request;
mod router;

pub use cluster::{Fleet, FleetBuilder, FleetEvent};
pub use control::{
    ControlAction, ControlDecision, ControlInit, ControlPlane, ControlRecord, FleetSignals,
    ReplicaSignal,
};
pub use engine::{run_serve, run_serve_with, BaselinePlanner, IterationPlanner};
pub use error::Error;
pub use kv::{kv_bytes_per_token, weight_bytes, KvPool};
pub use link::LinkSpec;
pub use metrics::{
    nearest_rank_index, FleetReport, Percentiles, ReplicaStats, ServeReport, SlidingWindow,
};
pub use replica::Role;
pub use request::{phased_arrivals, poisson_arrivals, Arrival, Policy, ServeConfig};
pub use router::{CacheAffinity, LeastLoaded, ReplicaView, RoundRobin, Router, RouterPolicy};

/// One-line import of the serving API:
/// `use resoftmax_serve::prelude::*;`.
pub mod prelude {
    pub use crate::cluster::{Fleet, FleetBuilder, FleetEvent};
    pub use crate::control::{
        ControlAction, ControlDecision, ControlInit, ControlPlane, ControlRecord, FleetSignals,
        ReplicaSignal,
    };
    pub use crate::engine::{run_serve, run_serve_with, BaselinePlanner, IterationPlanner};
    pub use crate::error::Error;
    pub use crate::link::LinkSpec;
    pub use crate::metrics::{FleetReport, Percentiles, ReplicaStats, ServeReport, SlidingWindow};
    pub use crate::replica::Role;
    pub use crate::request::{phased_arrivals, Arrival, Policy, ServeConfig};
    pub use crate::router::{ReplicaView, Router, RouterPolicy};
}
