//! The serving crate's unified error type.

use std::fmt;

/// Everything that can go wrong when configuring or running a serving
/// simulation through the [`FleetBuilder`](crate::FleetBuilder) API (and the
/// legacy [`run_serve`](crate::run_serve) wrappers that delegate to it).
///
/// Marked `#[non_exhaustive]`: future versions may add variants (match with
/// a wildcard arm).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The fleet configuration is invalid (caught at
    /// [`FleetBuilder::build`](crate::FleetBuilder::build), before any
    /// simulation runs): no replicas, a bad workload range, an invalid
    /// device spec, a router/link parameter out of range, a disaggregated
    /// fleet with prefill replicas but zero decode-capable replicas (or no
    /// prefill-capable replica at all), scripted faults leaving a phase
    /// with no surviving replica, or a planner count that does not match
    /// the declared replica roles.
    Config {
        /// What is wrong and, where possible, what would fix it.
        reason: String,
    },
    /// A replica's KV pool cannot admit the workload: the model weights
    /// exceed the device memory, or the post-weights remainder cannot hold
    /// one worst-case request end-to-end (the head of the line could then
    /// stall forever).
    Admission {
        /// Which replica and which capacity is short.
        reason: String,
    },
    /// A schedule failed static analysis (fusion legality, buffer dataflow,
    /// traffic conservation, or the certified-numerics gate — see
    /// `resoftmax-analyzer`).
    Analysis {
        /// Number of error-severity diagnostics.
        errors: usize,
        /// The rendered diagnostic report.
        report: String,
    },
    /// The model layer rejected or failed a run: an invalid
    /// model/device/parameter combination, a failed analyzer gate, or a
    /// kernel that cannot launch on the simulated device.
    Model(resoftmax_model::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config { reason } => write!(f, "invalid fleet configuration: {reason}"),
            Error::Admission { reason } => write!(f, "KV admission infeasible: {reason}"),
            Error::Analysis { errors, report } => write!(
                f,
                "schedule failed static analysis ({errors} errors):\n{report}"
            ),
            Error::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<resoftmax_model::Error> for Error {
    fn from(e: resoftmax_model::Error) -> Self {
        // Analyzer rejections keep their dedicated variant so callers can
        // distinguish "your schedule is illegal" from "your config is".
        if let resoftmax_model::Error::Analysis { errors, report } = e {
            Error::Analysis { errors, report }
        } else {
            Error::Model(e)
        }
    }
}

impl From<resoftmax_gpusim::LaunchError> for Error {
    fn from(e: resoftmax_gpusim::LaunchError) -> Self {
        Error::Model(resoftmax_model::Error::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Config {
            reason: "a fleet needs at least one replica".into(),
        };
        assert!(e.to_string().contains("at least one replica"));
        let e = Error::Admission {
            reason: "replica 2: weights exceed HBM".into(),
        };
        assert!(e.to_string().contains("replica 2"));
        let e = Error::Analysis {
            errors: 3,
            report: "E001 ...".into(),
        };
        assert!(e.to_string().contains("3 errors"));
    }

    #[test]
    fn model_errors_convert_and_chain() {
        let m = resoftmax_model::Error::InvalidConfig {
            reason: "batch must be nonzero".into(),
        };
        let e: Error = m.into();
        assert!(matches!(e, Error::Model(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("batch must be nonzero"));
    }

    #[test]
    fn model_analysis_errors_keep_the_analysis_variant() {
        let m = resoftmax_model::Error::Analysis {
            errors: 1,
            report: "E007 fusion".into(),
        };
        let e: Error = m.into();
        assert!(matches!(e, Error::Analysis { errors: 1, .. }));
    }
}
