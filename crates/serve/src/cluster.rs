//! The fleet: N modeled replicas behind a router, on one simulated clock.
//!
//! [`FleetBuilder`] is the serving crate's public entry point. It validates
//! the whole configuration at build time — replica devices, KV capacity
//! against the model's weight footprint, decode legality and the certified
//! numerics budget (the same analyzer gate `Session` applies) — so a
//! [`Fleet`] that builds always runs to completion or returns a typed
//! [`Error`].
//!
//! The run itself is a discrete-event loop over five event sources: fault
//! injections (fail/drain), workload arrivals, prefill→decode KV-handoff
//! completions, control-plane activity (scale-up activations and
//! [`ControlPlane`] decisions, when one is attached), and replica engine
//! steps. Each replica owns its simulated clock (busy-until time); the
//! fleet always advances whichever source is earliest, breaking exact ties
//! in the fixed order *fault ≤ arrival ≤ handoff ≤ ctrl ≤ step* (handoffs
//! and activations tie on enqueue order, steps on the lowest replica id).
//! All time is simulated GPU/interconnect time, so a fleet report —
//! decision log included — is bit-identical across host thread counts and
//! reruns.
//!
//! Disaggregation: replicas carry a [`Role`]. Fresh arrivals (and displaced
//! requests that owe prefill work) route over the *prefill-capable* subset;
//! when a request finishes its prefill on a `Prefill` replica, its KV pages
//! are priced across the [`LinkSpec`] — accounted as `kv_handoff_bytes` /
//! `kv_handoff_time_s`, distinct from rebalancing migrations — and on
//! transfer completion the request is routed over the *decode-capable*
//! subset, decoding without re-prefill.

use crate::control::{
    ControlAction, ControlPlane, ControlRecord, FleetSignals, ReplicaSignal, TokenBucket,
};
use crate::engine::{BaselinePlanner, IterationPlanner};
use crate::error::Error;
use crate::kv::{kv_bytes_per_token, weight_bytes, KvPool};
use crate::link::LinkSpec;
use crate::metrics::{FleetReport, Percentiles, ReplicaStats, SlidingWindow};
use crate::replica::{Replica, ReqState, Role, StepAcc};
use crate::request::{poisson_arrivals, Arrival, ServeConfig};
use crate::router::{ReplicaView, Router, RouterPolicy};
use resoftmax_gpusim::{DeviceSpec, Timeline};
use resoftmax_model::{decode_error_bound, AttentionKind, ModelConfig, RunParams, SoftmaxStrategy};

static BASELINE: BaselinePlanner = BaselinePlanner;

/// Samples each control-plane signal window retains at most (a memory
/// bound, not a semantic one: the window width does the real filtering).
const SIGNAL_WINDOW_CAP: usize = 8192;

/// A scripted replica fault, injected at a simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetEvent {
    /// The replica dies abruptly: its KV pool is lost, every resident
    /// request loses its cache and is re-routed (re-prefilling elsewhere).
    Fail {
        /// Replica index.
        replica: usize,
        /// Simulated time of the fault, seconds.
        at_s: f64,
    },
    /// The replica is taken out of rotation gracefully: it stops accepting
    /// work and its resident requests migrate their KV pages to siblings
    /// over the interconnect.
    Drain {
        /// Replica index.
        replica: usize,
        /// Simulated time the drain starts, seconds.
        at_s: f64,
    },
}

impl FleetEvent {
    fn at_s(&self) -> f64 {
        match *self {
            FleetEvent::Fail { at_s, .. } | FleetEvent::Drain { at_s, .. } => at_s,
        }
    }

    fn replica(&self) -> usize {
        match *self {
            FleetEvent::Fail { replica, .. } | FleetEvent::Drain { replica, .. } => replica,
        }
    }
}

/// Builder for a [`Fleet`]; the serving crate's recommended entry point.
///
/// ```
/// use resoftmax_serve::{FleetBuilder, LinkSpec, RouterPolicy, ServeConfig};
/// use resoftmax_gpusim::DeviceSpec;
/// use resoftmax_model::{ModelConfig, RunParams};
///
/// let report = FleetBuilder::new()
///     .model(ModelConfig::gpt_neo_1_3b())
///     .params(RunParams::new(4096))
///     .replicas(2, &DeviceSpec::a100())
///     .router(RouterPolicy::LeastLoaded)
///     .link(LinkSpec::nvlink())
///     .workload(ServeConfig {
///         requests: 8,
///         ..ServeConfig::default()
///     })
///     .build()?
///     .run()?;
/// assert_eq!(report.completed, 8);
/// # Ok::<(), resoftmax_serve::Error>(())
/// ```
#[derive(Default)]
pub struct FleetBuilder<'a> {
    model: Option<ModelConfig>,
    params: Option<RunParams>,
    replicas: Vec<DeviceSpec>,
    roles: Vec<Role>,
    standby: Vec<bool>,
    router: Option<RouterPolicy>,
    link: Option<LinkSpec>,
    workload: Option<ServeConfig>,
    arrivals: Option<Vec<Arrival>>,
    events: Vec<FleetEvent>,
    planners: Vec<&'a dyn IterationPlanner>,
    control: Option<&'a dyn ControlPlane>,
    migrate_on_evict: Option<bool>,
    analyze: Option<bool>,
}

impl<'a> FleetBuilder<'a> {
    /// Starts an empty builder. [`model`](Self::model),
    /// [`params`](Self::params), and at least one
    /// [`replica`](Self::replica) are required.
    pub fn new() -> Self {
        FleetBuilder::default()
    }

    /// Sets the model every replica serves (required).
    #[must_use]
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets the base run parameters — strategy, tile, hardware profile —
    /// every iteration is priced with (required). An
    /// [`IterationPlanner`] may re-plan them per iteration.
    #[must_use]
    pub fn params(mut self, params: RunParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Adds one [`Role::Unified`] replica on `device`. Call repeatedly for a
    /// heterogeneous fleet.
    #[must_use]
    pub fn replica(self, device: DeviceSpec) -> Self {
        self.replica_with_role(device, Role::Unified)
    }

    /// Adds `n` [`Role::Unified`] replicas of the same `device`.
    #[must_use]
    pub fn replicas(mut self, n: usize, device: &DeviceSpec) -> Self {
        for _ in 0..n {
            self = self.replica_with_role(device.clone(), Role::Unified);
        }
        self
    }

    /// Adds one replica with an explicit serving [`Role`]. Replica ids follow
    /// declaration order regardless of role, so faults, planners, and report
    /// rows keep addressing replicas by the order they were added.
    #[must_use]
    pub fn replica_with_role(mut self, device: DeviceSpec, role: Role) -> Self {
        self.replicas.push(device);
        self.roles.push(role);
        self.standby.push(false);
        self
    }

    /// Adds one *standby* replica: provisioned (its KV capacity is
    /// validated like any other replica's) but parked out of rotation until
    /// a control plane scales it up with
    /// [`ControlAction::ScaleUp`](crate::ControlAction::ScaleUp) — the
    /// warm-up streams the model weights over the
    /// [`link`](Self::link) before it starts accepting. Standby replicas
    /// do not count toward the capability checks (a fleet whose only
    /// decode-capable replica is standby is still rejected).
    #[must_use]
    pub fn standby_replica_with_role(mut self, device: DeviceSpec, role: Role) -> Self {
        self.replicas.push(device);
        self.roles.push(role);
        self.standby.push(true);
        self
    }

    /// Adds `n` standby [`Role::Unified`] replicas of the same `device`.
    #[must_use]
    pub fn standby_replicas(mut self, n: usize, device: &DeviceSpec) -> Self {
        for _ in 0..n {
            self = self.standby_replica_with_role(device.clone(), Role::Unified);
        }
        self
    }

    /// Adds `n` standby [`Role::Decode`] replicas of the same `device` —
    /// the auto-scaling pool of a disaggregated fleet.
    #[must_use]
    pub fn standby_decode_replicas(mut self, n: usize, device: &DeviceSpec) -> Self {
        for _ in 0..n {
            self = self.standby_replica_with_role(device.clone(), Role::Decode);
        }
        self
    }

    /// Adds `n` dedicated prefill replicas of the same `device`. A fleet
    /// with any [`Role::Prefill`] replica is *disaggregated*: finished
    /// prefills stream their KV over the [`link`](Self::link) to the
    /// decode-capable subset, so the builder requires at least one
    /// [`Role::Decode`] or [`Role::Unified`] replica.
    ///
    /// ```
    /// use resoftmax_serve::{FleetBuilder, LinkSpec, ServeConfig};
    /// use resoftmax_gpusim::DeviceSpec;
    /// use resoftmax_model::{ModelConfig, RunParams};
    ///
    /// let report = FleetBuilder::new()
    ///     .model(ModelConfig::gpt_neo_1_3b())
    ///     .params(RunParams::new(4096))
    ///     .prefill_replicas(1, &DeviceSpec::a100())
    ///     .decode_replicas(2, &DeviceSpec::a100())
    ///     .link(LinkSpec::nvlink())
    ///     .workload(ServeConfig {
    ///         requests: 6,
    ///         ..ServeConfig::default()
    ///     })
    ///     .build()?
    ///     .run()?;
    /// assert_eq!(report.completed, 6);
    /// assert_eq!(report.handoffs, 6);
    /// assert!(report.kv_handoff_bytes > 0);
    /// # Ok::<(), resoftmax_serve::Error>(())
    /// ```
    #[must_use]
    pub fn prefill_replicas(mut self, n: usize, device: &DeviceSpec) -> Self {
        for _ in 0..n {
            self = self.replica_with_role(device.clone(), Role::Prefill);
        }
        self
    }

    /// Adds `n` dedicated decode replicas of the same `device`: they take no
    /// fresh arrivals and receive handed-off KV from the prefill side.
    #[must_use]
    pub fn decode_replicas(mut self, n: usize, device: &DeviceSpec) -> Self {
        for _ in 0..n {
            self = self.replica_with_role(device.clone(), Role::Decode);
        }
        self
    }

    /// Sets the routing policy (default: [`RouterPolicy::RoundRobin`]).
    #[must_use]
    pub fn router(mut self, policy: RouterPolicy) -> Self {
        self.router = Some(policy);
        self
    }

    /// Sets the interconnect KV migrations travel over (default:
    /// [`LinkSpec::pcie_gen4`]).
    #[must_use]
    pub fn link(mut self, link: LinkSpec) -> Self {
        self.link = Some(link);
        self
    }

    /// Sets the workload: arrival process, request shape distribution,
    /// per-replica batch/KV limits, and admission policy (required).
    #[must_use]
    pub fn workload(mut self, cfg: ServeConfig) -> Self {
        self.workload = Some(cfg);
        self
    }

    /// Overrides the workload's Poisson arrival process with an explicit
    /// trace — e.g. [`phased_arrivals`](crate::phased_arrivals) for the
    /// square-wave / diurnal / overload shapes the control plane is
    /// exercised under. The trace must match the workload: exactly
    /// `cfg.requests` entries, sorted by arrival time, with prompt/decode
    /// lengths inside `cfg`'s ranges (the build-time KV capacity and
    /// numerics checks are derived from those ranges).
    #[must_use]
    pub fn arrivals(mut self, trace: Vec<Arrival>) -> Self {
        self.arrivals = Some(trace);
        self
    }

    /// Attaches a feedback control plane
    /// ([`ControlPlane`](crate::ControlPlane)): the run gains a fifth event
    /// source that samples fleet signals on the simulated clock and applies
    /// the controller's actions (policy/chunk switches, admission control,
    /// standby scaling). Decisions land in the report's
    /// [`decisions`](crate::FleetReport::decisions) log.
    #[must_use]
    pub fn control_plane(mut self, control: &'a dyn ControlPlane) -> Self {
        self.control = Some(control);
        self
    }

    /// Attaches a per-iteration planner (e.g. `resoftmax-tune`'s
    /// `TunedPlanner`) to the next replica in declaration order. Either
    /// attach none (every replica prices with the base parameters) or
    /// exactly one per replica.
    #[must_use]
    pub fn planner(mut self, planner: &'a dyn IterationPlanner) -> Self {
        self.planners.push(planner);
        self
    }

    /// Schedules an abrupt replica failure at `at_s` (simulated seconds):
    /// its KV is lost and residents re-route.
    #[must_use]
    pub fn fail_at(mut self, replica: usize, at_s: f64) -> Self {
        self.events.push(FleetEvent::Fail { replica, at_s });
        self
    }

    /// Schedules a graceful drain at `at_s`: the replica leaves rotation
    /// and its residents migrate over the link.
    #[must_use]
    pub fn drain_at(mut self, replica: usize, at_s: f64) -> Self {
        self.events.push(FleetEvent::Drain { replica, at_s });
        self
    }

    /// Whether an evicted request's KV pages may migrate to a sibling
    /// replica instead of being dropped and re-prefilled (default: `true`).
    #[must_use]
    pub fn migrate_on_evict(mut self, on: bool) -> Self {
        self.migrate_on_evict = Some(on);
        self
    }

    /// Enables or disables the static-analysis gate on the decode schedule
    /// shape (enabled by default, exactly like `Session`).
    #[must_use]
    pub fn analyze(mut self, analyze: bool) -> Self {
        self.analyze = Some(analyze);
        self
    }

    /// Validates the whole configuration and builds the [`Fleet`].
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for structural problems (no replicas, invalid
    /// device/link/workload parameters, a disaggregated fleet with zero
    /// decode-capable or zero prefill-capable replicas, fault events leaving
    /// either capability without a survivor, planner count mismatched
    /// against the declared roles), [`Error::Admission`] when a replica's
    /// KV pool cannot hold one worst-case request end-to-end, and the
    /// analyzer-gate errors `Session` would raise for the `(model, params)`
    /// pair (decode legality, certified numerics budget).
    pub fn build(self) -> Result<Fleet<'a>, Error> {
        let config = |reason: String| Err(Error::Config { reason });
        let Some(model) = self.model else {
            return config("a model is required: FleetBuilder::new().model(..)".to_owned());
        };
        let Some(params) = self.params else {
            return config(
                "run parameters are required: FleetBuilder::new().params(..)".to_owned(),
            );
        };
        let Some(cfg) = self.workload else {
            return config("a workload is required: FleetBuilder::new().workload(..)".to_owned());
        };
        if self.replicas.is_empty() {
            return config(
                "a fleet needs at least one replica: .replica(DeviceSpec::a100())".to_owned(),
            );
        }
        debug_assert_eq!(self.roles.len(), self.replicas.len());
        debug_assert_eq!(self.standby.len(), self.replicas.len());
        let n_prefill = self.roles.iter().filter(|r| **r == Role::Prefill).count();
        let n_decode = self.roles.iter().filter(|r| **r == Role::Decode).count();
        let n_unified = self.replicas.len() - n_prefill - n_decode;
        // Capability checks count only replicas that start in rotation: a
        // standby replica cannot take work until a control plane scales it
        // up, which the run cannot rely on happening.
        let starting = |capable: fn(Role) -> bool| {
            self.roles
                .iter()
                .zip(&self.standby)
                .any(|(&r, &sb)| !sb && capable(r))
        };
        if !starting(Role::prefill_capable) {
            return config(format!(
                "every replica is decode-only or standby ({n_decode} decode replicas): \
                 arrivals need at least one active prefill-capable (Prefill or \
                 Unified) replica"
            ));
        }
        if n_prefill > 0 && !starting(Role::decode_capable) {
            return config(format!(
                "disaggregated fleet has {n_prefill} prefill replicas but zero decode \
                 replicas in rotation: finished prefills would have nowhere to hand \
                 their KV off to — add .decode_replicas(..) or a Unified replica"
            ));
        }
        if !self.planners.is_empty() && self.planners.len() != self.replicas.len() {
            return config(format!(
                "attach either no planners or exactly one per replica, in declaration \
                 order across every role ({} planners for {} replicas: {n_prefill} \
                 prefill + {n_decode} decode + {n_unified} unified)",
                self.planners.len(),
                self.replicas.len()
            ));
        }
        for (i, d) in self.replicas.iter().enumerate() {
            if let Err(e) = d.validate() {
                return config(format!("replica {i} device invalid: {e}"));
            }
        }
        let link = self.link.unwrap_or_default();
        if let Err(e) = link.validate() {
            return config(format!("interconnect invalid: {e}"));
        }

        // Workload sanity — everything `poisson_arrivals` would panic on,
        // plus the metric-shape requirements.
        if let Err(reason) = cfg.validate() {
            return config(reason);
        }

        // An explicit arrival trace must match the workload config: the
        // build-time KV-capacity and certified-numerics checks below are
        // derived from `cfg`'s token ranges, so a trace outside them would
        // dodge the very guarantees this builder exists to give.
        if let Some(trace) = &self.arrivals {
            if trace.len() != cfg.requests {
                return config(format!(
                    "explicit arrival trace has {} entries but the workload declares \
                     {} requests",
                    trace.len(),
                    cfg.requests
                ));
            }
            for (k, a) in trace.iter().enumerate() {
                if !(a.at_s.is_finite() && a.at_s >= 0.0) {
                    return config(format!(
                        "arrival {k} has invalid time {}: must be non-negative and \
                         finite",
                        a.at_s
                    ));
                }
                if !(cfg.prompt_tokens.0..=cfg.prompt_tokens.1).contains(&a.prompt) {
                    return config(format!(
                        "arrival {k} prompt length {} is outside the workload range \
                         {:?}",
                        a.prompt, cfg.prompt_tokens
                    ));
                }
                if !(cfg.decode_tokens.0..=cfg.decode_tokens.1).contains(&a.decode) {
                    return config(format!(
                        "arrival {k} decode length {} is outside the workload range \
                         {:?}",
                        a.decode, cfg.decode_tokens
                    ));
                }
            }
            if !trace.windows(2).all(|w| w[0].at_s <= w[1].at_s) {
                return config("explicit arrival trace must be sorted by arrival time".to_owned());
            }
        }

        // Fault events must point at real replicas and leave at least one
        // replica with no scripted fault (otherwise the run provably cannot
        // finish and the failure should surface now, typed).
        for ev in &self.events {
            if ev.replica() >= self.replicas.len() {
                return config(format!(
                    "fault event targets replica {} but the fleet has {}",
                    ev.replica(),
                    self.replicas.len()
                ));
            }
            if !(ev.at_s().is_finite() && ev.at_s() >= 0.0) {
                return config(format!(
                    "fault event time {} must be non-negative",
                    ev.at_s()
                ));
            }
        }
        let faulted: std::collections::BTreeSet<usize> =
            self.events.iter().map(FleetEvent::replica).collect();
        if faulted.len() == self.replicas.len() {
            return config(
                "every replica has a scripted fault; at least one must survive to \
                 finish the workload"
                    .to_owned(),
            );
        }
        // In a disaggregated fleet the survivors must cover both phases:
        // a fleet whose every prefill-capable (or decode-capable) replica is
        // scripted to fault provably strands work mid-pipeline. Standby
        // replicas do not count as survivors — nothing guarantees they ever
        // enter rotation.
        let survives = |capable: fn(Role) -> bool| {
            self.roles
                .iter()
                .enumerate()
                .any(|(i, &r)| capable(r) && !faulted.contains(&i) && !self.standby[i])
        };
        if !survives(Role::prefill_capable) {
            return config(
                "every prefill-capable replica has a scripted fault; at least one \
                 must survive to admit arrivals"
                    .to_owned(),
            );
        }
        if !survives(Role::decode_capable) {
            return config(
                "every decode-capable replica has a scripted fault; at least one \
                 must survive to decode handed-off requests"
                    .to_owned(),
            );
        }

        // The same gates `Session` applies: build-time validation of the
        // (model, params) pair per distinct device, decode legality, and the
        // certified-numerics budget at the worst decode context the workload
        // can reach.
        let analyze = self.analyze.unwrap_or(true);
        let mut seen: Vec<&str> = Vec::new();
        for d in &self.replicas {
            if seen.contains(&d.name.as_str()) {
                continue;
            }
            seen.push(&d.name);
            resoftmax_model::Session::builder()
                .model(model.clone())
                .device(d.clone())
                .params(params.clone())
                .analyze(analyze)
                .build()?;
        }
        if !matches!(model.attention, AttentionKind::Dense { .. }) {
            return config(format!(
                "serving covers dense attention only; model '{}' is sparse",
                model.name
            ));
        }
        if params.strategy == SoftmaxStrategy::OnlineFused {
            return config(
                "decode attention is a single row; online fusion is the GEMV itself".to_owned(),
            );
        }
        let worst_ctx = cfg.prompt_tokens.1 + cfg.decode_tokens.1;
        if let Some(bound) = decode_error_bound(&[worst_ctx], &params) {
            if !bound.certifies(resoftmax_analyzer::CERT_BUDGET_REL) {
                return config(format!(
                    "strategy {} at T={} over the workload's worst decode context {} \
                     has certified relative error bound {:.3e}, exceeding the {:.1e} \
                     budget; use a narrower tile or an fp32-accumulation strategy",
                    params.strategy.label(),
                    params.tile.n,
                    bound.ctx,
                    bound.rel,
                    resoftmax_analyzer::CERT_BUDGET_REL,
                ));
            }
        }

        // Per-replica KV capacity: the weights must fit, and the remainder
        // must hold one worst-case request end-to-end (otherwise the oldest
        // request could stall forever — the old engine's panic, now typed).
        let bytes_per_token = kv_bytes_per_token(&model);
        let weights = weight_bytes(&model);
        let mut pool_caps = Vec::with_capacity(self.replicas.len());
        for (i, d) in self.replicas.iter().enumerate() {
            let capacity = if let Some(b) = cfg.kv_capacity_bytes {
                b
            } else {
                if weights >= d.hbm_bytes() {
                    return Err(Error::Admission {
                        reason: format!(
                            "replica {i} ({}): model '{}' weights ({weights} B) \
                             exceed device HBM ({} B)",
                            d.name,
                            model.name,
                            d.hbm_bytes()
                        ),
                    });
                }
                d.hbm_bytes() - weights
            };
            let block_bytes = cfg.kv_block_tokens as u64 * bytes_per_token;
            let total_blocks = capacity / block_bytes;
            let need = (worst_ctx as u64).div_ceil(cfg.kv_block_tokens as u64);
            if total_blocks < need {
                return Err(Error::Admission {
                    reason: format!(
                        "replica {i} ({}): KV pool ({total_blocks} blocks) cannot hold \
                         one worst-case request ({worst_ctx} tokens = {need} blocks); \
                         the oldest request could stall forever — raise \
                         kv_capacity_bytes or shrink the workload",
                        d.name
                    ),
                });
            }
            pool_caps.push(capacity);
        }

        Ok(Fleet {
            model,
            params,
            cfg,
            devices: self.replicas,
            roles: self.roles,
            standby: self.standby,
            pool_caps,
            router: self.router.unwrap_or(RouterPolicy::RoundRobin),
            link,
            arrivals: self.arrivals,
            events: {
                let mut evs = self.events;
                // Stable by construction: sort_by is stable, so same-time
                // events keep declaration order.
                evs.sort_by(|a, b| a.at_s().total_cmp(&b.at_s()));
                evs
            },
            planners: self.planners,
            control: self.control,
            migrate_on_evict: self.migrate_on_evict.unwrap_or(true),
        })
    }
}

impl std::fmt::Debug for Fleet<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("model", &self.model.name)
            .field("replicas", &self.devices.len())
            .field("router", &self.router.name())
            .field("link", &self.link.name)
            .field("events", &self.events)
            .field("planners", &self.planners.len())
            .field("standby", &self.standby.iter().filter(|&&s| s).count())
            .field("control", &self.control.is_some())
            .finish_non_exhaustive()
    }
}

/// A validated, ready-to-run fleet. Construct through [`FleetBuilder`];
/// every [`run`](Fleet::run) starts from identical state, so reruns are
/// bit-identical.
pub struct Fleet<'a> {
    model: ModelConfig,
    params: RunParams,
    cfg: ServeConfig,
    devices: Vec<DeviceSpec>,
    roles: Vec<Role>,
    standby: Vec<bool>,
    pool_caps: Vec<u64>,
    router: RouterPolicy,
    link: LinkSpec,
    arrivals: Option<Vec<Arrival>>,
    events: Vec<FleetEvent>,
    planners: Vec<&'a dyn IterationPlanner>,
    control: Option<&'a dyn ControlPlane>,
    migrate_on_evict: bool,
}

/// The six things the fleet can do next; ordering on equal times is
/// fault ≤ arrival ≤ handoff ≤ ctrl ≤ step, and within ctrl a scale-up
/// activation lands before the decision (a decision at the same instant
/// sees the fresh replica).
enum Action {
    Fault,
    Arrival,
    /// Index into the pending-handoff queue.
    Handoff(usize),
    /// Index into the pending scale-up activation queue.
    Activate(usize),
    /// A control-plane decision fires.
    Decide,
    Step(usize),
}

/// A prefill→decode KV transfer in flight over the link.
#[derive(Debug, Clone, Copy)]
struct Handoff {
    /// Request id.
    id: usize,
    /// Simulated time the last KV page lands on the decode side.
    at_s: f64,
}

/// Which subset of the fleet a piece of work routes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Fresh arrivals and displaced requests that still owe prefill work:
    /// the prefill-capable subset.
    Prefill,
    /// Handed-off or displaced requests whose cache is decode-ready: the
    /// decode-capable subset.
    Decode,
}

/// The routing phase of a displaced request: decode-ready caches go to the
/// decode side, everything owing prefill work goes to the prefill side.
fn phase_of(st: &ReqState) -> Phase {
    if st.generated > 0 && st.cached == st.prefill_target() {
        Phase::Decode
    } else {
        Phase::Prefill
    }
}

/// One router instance per routing phase, built from the same policy. The
/// *state* is per-phase on purpose: a stateful policy (round-robin's cursor)
/// cycling the prefill subset must not perturb the decode subset's rotation
/// — with a shared cursor, alternating arrival/handoff traffic in a
/// disaggregated fleet would pin each subset to one replica.
struct Routers {
    prefill: Box<dyn Router>,
    decode: Box<dyn Router>,
}

impl Routers {
    fn new(policy: RouterPolicy) -> Self {
        Routers {
            prefill: policy.build(),
            decode: policy.build(),
        }
    }

    fn route(&mut self, phase: Phase, session: u64, views: &[ReplicaView]) -> usize {
        match phase {
            Phase::Prefill => self.prefill.route(session, views),
            Phase::Decode => self.decode.route(session, views),
        }
    }
}

impl Fleet<'_> {
    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` for a zero-replica fleet (never: the builder rejects it).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The validated workload.
    pub fn workload(&self) -> &ServeConfig {
        &self.cfg
    }

    fn planner(&self, replica: usize) -> &dyn IterationPlanner {
        if self.planners.is_empty() {
            &BASELINE
        } else {
            self.planners[replica]
        }
    }

    /// Runs the fleet simulation to completion and aggregates the report.
    ///
    /// Deterministic in the builder inputs: the clock is simulated GPU and
    /// interconnect time, so the report is bit-identical regardless of host
    /// threading, and identical across reruns of the same `Fleet`.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] when fault events leave work outstanding with no
    /// accepting replica, [`Error::Model`] / [`Error::Analysis`] when an
    /// iteration's schedule fails to launch or analyze.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.max_iterations` is exceeded — the loop-termination
    /// backstop, which validated configurations do not hit.
    pub fn run(&self) -> Result<FleetReport, Error> {
        let cfg = &self.cfg;
        let arrivals = match &self.arrivals {
            Some(trace) => trace.clone(),
            None => poisson_arrivals(cfg),
        };
        let bytes_per_token = kv_bytes_per_token(&self.model);
        let sessions = if cfg.sessions == 0 {
            arrivals.len() as u64
        } else {
            cfg.sessions as u64
        };
        let mut states: Vec<ReqState> = arrivals
            .iter()
            .enumerate()
            .map(|(id, a)| ReqState {
                arrival_s: a.at_s,
                session: id as u64 % sessions,
                prompt: a.prompt,
                decode: a.decode,
                generated: 0,
                cached: 0,
                blocks: 0,
                ready_s: a.at_s,
                first_token_s: None,
                last_token_s: a.at_s,
            })
            .collect();

        let trace = resoftmax_obs::trace_enabled();
        let anchor_us = resoftmax_obs::recorder().now_us();
        let mut replicas: Vec<Replica> = self
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let pool = KvPool::new(self.pool_caps[i], cfg.kv_block_tokens, bytes_per_token);
                let mut r = Replica::new(i, d.clone(), self.roles[i], pool);
                if self.standby[i] {
                    r.standby = true;
                    r.accepting = false;
                }
                if trace {
                    r.timeline = Some(Timeline::new());
                }
                r
            })
            .collect();
        let mut routers = Routers::new(self.router);

        let mut next_event = 0usize;
        let mut next_arrival = 0usize;
        let mut acc = StepAcc::default();
        let mut total_iterations = 0usize;
        let mut migrations = 0usize;
        let mut migration_drops = 0usize;
        let mut kv_migrated_bytes = 0u64;
        let mut migration_time_s = 0.0f64;
        let mut pending_handoffs: Vec<Handoff> = Vec::new();
        let mut kv_handoff_bytes = 0u64;
        let mut kv_handoff_time_s = 0.0f64;

        // Control-plane state. `begin` resets the controller so reruns of
        // the same `Fleet` stay bit-identical; the knobs it may actuate
        // live on a working copy of the workload config.
        let mut live_cfg = cfg.clone();
        let mut ctrl_next = f64::INFINITY;
        let mut signal_windows: Option<(SlidingWindow, SlidingWindow)> = None;
        if let Some(control) = self.control {
            let init = control.begin(cfg);
            if !(init.window_s > 0.0 && init.window_s.is_finite()) {
                return Err(Error::Config {
                    reason: format!(
                        "control plane requested signal window {}: must be positive \
                         and finite",
                        init.window_s
                    ),
                });
            }
            if init.first_decision_s.is_finite() {
                ctrl_next = init.first_decision_s;
            }
            signal_windows = Some((
                SlidingWindow::new(init.window_s, SIGNAL_WINDOW_CAP),
                SlidingWindow::new(init.window_s, SIGNAL_WINDOW_CAP),
            ));
        }
        // Scale-ups warming toward activation: (replica, activation time),
        // enqueue order (same-time ties resolve to the earliest enqueued).
        let mut pending_activations: Vec<(usize, f64)> = Vec::new();
        let mut admission: Option<TokenBucket> = None;
        let mut decisions: Vec<ControlRecord> = Vec::new();
        let mut scale_ups = 0usize;
        let mut scale_downs = 0usize;

        while acc.completed < cfg.requests {
            assert!(
                total_iterations < cfg.max_iterations,
                "fleet loop exceeded {} iterations with {}/{} requests done",
                cfg.max_iterations,
                acc.completed,
                cfg.requests
            );

            // Pick the earliest of: next fault, next arrival, earliest
            // handoff completion, control plane (scale-up activation, then
            // decision), earliest replica step. Ties resolve
            // fault ≤ arrival ≤ handoff ≤ ctrl ≤ step; steps tie on the
            // lowest replica id, handoffs and activations on enqueue order
            // (strict `<` in those scans).
            let mut when = f64::INFINITY;
            let mut action: Option<Action> = None;
            for (i, r) in replicas.iter().enumerate() {
                if let Some(t) = r.next_time(&states) {
                    if t < when {
                        when = t;
                        action = Some(Action::Step(i));
                    }
                }
            }
            if ctrl_next <= when {
                when = ctrl_next;
                action = Some(Action::Decide);
            }
            let mut activation: Option<(usize, f64)> = None;
            for (ai, &(_, t)) in pending_activations.iter().enumerate() {
                if activation.is_none_or(|(_, best)| t < best) {
                    activation = Some((ai, t));
                }
            }
            if let Some((ai, t)) = activation {
                if t <= when {
                    when = t;
                    action = Some(Action::Activate(ai));
                }
            }
            let mut handoff: Option<(usize, f64)> = None;
            for (hi, h) in pending_handoffs.iter().enumerate() {
                if handoff.is_none_or(|(_, t)| h.at_s < t) {
                    handoff = Some((hi, h.at_s));
                }
            }
            if let Some((hi, t)) = handoff {
                if t <= when {
                    when = t;
                    action = Some(Action::Handoff(hi));
                }
            }
            if next_arrival < arrivals.len() && arrivals[next_arrival].at_s <= when {
                when = arrivals[next_arrival].at_s;
                action = Some(Action::Arrival);
            }
            if next_event < self.events.len() && self.events[next_event].at_s() <= when {
                when = self.events[next_event].at_s();
                action = Some(Action::Fault);
            }
            let Some(action) = action else {
                unreachable!(
                    "fleet stalled: {}/{} requests done with no arrivals, faults, or \
                     runnable replicas left",
                    acc.completed, cfg.requests
                );
            };

            match action {
                Action::Fault => {
                    let ev = self.events[next_event];
                    next_event += 1;
                    self.apply_fault(
                        ev,
                        &mut replicas,
                        &mut states,
                        &mut routers,
                        &mut migrations,
                        &mut migration_drops,
                        &mut kv_migrated_bytes,
                        &mut migration_time_s,
                        bytes_per_token,
                    )?;
                }
                Action::Arrival => {
                    let id = next_arrival;
                    next_arrival += 1;
                    let views = accepting_views(&replicas, &states, usize::MAX, Phase::Prefill);
                    if views.is_empty() {
                        return Err(Error::Config {
                            reason: format!(
                                "request {id} arrived at {when:.3}s with every \
                                 prefill-capable replica drained or failed"
                            ),
                        });
                    }
                    let dest = routers.route(Phase::Prefill, states[id].session, &views);
                    replicas[dest].waiting.push(id);
                    // Token-bucket admission control (when armed): the
                    // arrival pays its prompt tokens; past the burst its
                    // ready time is pushed to when the refill covers it.
                    if let Some(bucket) = &mut admission {
                        let admit_at = bucket.admit(when, states[id].prompt as f64);
                        if admit_at > when {
                            states[id].ready_s = states[id].ready_s.max(admit_at);
                            resoftmax_obs::counter("ctrl.admission_delays").incr();
                        }
                    }
                }
                Action::Handoff(hi) => {
                    // `remove` (not `swap_remove`) keeps enqueue order for
                    // the remaining in-flight transfers, so same-time ties
                    // stay deterministic.
                    let h = pending_handoffs.remove(hi);
                    let id = h.id;
                    let views = accepting_views(&replicas, &states, usize::MAX, Phase::Decode);
                    if views.is_empty() {
                        return Err(Error::Config {
                            reason: format!(
                                "request {id} finished its KV handoff at {when:.3}s \
                                 with every decode-capable replica drained or failed"
                            ),
                        });
                    }
                    let dest = routers.route(Phase::Decode, states[id].session, &views);
                    // Reserve the landed pages up front when the pool has
                    // room; otherwise the request queues with no reservation
                    // and admission allocates (possibly reclaiming parked
                    // reservations) later — the cache itself is preserved
                    // either way, so decode proceeds without re-prefill.
                    let need = replicas[dest].pool.blocks_for(states[id].cached);
                    if replicas[dest].pool.try_alloc(need) {
                        states[id].blocks = need;
                    }
                    states[id].ready_s = h.at_s;
                    replicas[dest].waiting.push(id);
                    replicas[dest].note_handoff_in();
                }
                Action::Step(i) => {
                    replicas[i].clock_s = when;
                    let (nt, nb) = (acc.ttft.len(), acc.tbt.len());
                    let outcome = replicas[i].step(
                        &mut states,
                        &live_cfg,
                        &self.model,
                        &self.params,
                        self.planner(i),
                        &mut acc,
                    )?;
                    total_iterations += 1;
                    // Feed the step's fresh latency samples into the
                    // control-plane signal windows, stamped at the
                    // replica's post-step clock.
                    if let Some((tw, bw)) = &mut signal_windows {
                        for &v in &acc.ttft[nt..] {
                            tw.push(replicas[i].clock_s, v);
                        }
                        for &v in &acc.tbt[nb..] {
                            bw.push(replicas[i].clock_s, v);
                        }
                    }
                    for victim in outcome.evicted {
                        self.place_displaced(
                            victim,
                            i,
                            replicas[i].clock_s,
                            &mut replicas,
                            &mut states,
                            &mut routers,
                            &mut migrations,
                            &mut migration_drops,
                            &mut kv_migrated_bytes,
                            &mut migration_time_s,
                            bytes_per_token,
                        );
                    }
                    for id in outcome.handoffs {
                        // Price the finished prefill's KV pages across the
                        // link; the request re-enters the fleet when the
                        // transfer lands (the Handoff action above).
                        let bytes = states[id].cached as u64 * bytes_per_token;
                        let transfer = self.link.transfer_time_s(bytes);
                        kv_handoff_bytes += bytes;
                        kv_handoff_time_s += transfer;
                        pending_handoffs.push(Handoff {
                            id,
                            at_s: replicas[i].clock_s + transfer,
                        });
                    }
                }
                Action::Activate(ai) => {
                    // `remove` (not `swap_remove`) keeps enqueue order for
                    // the remaining in-flight warm-ups.
                    let (r, at) = pending_activations.remove(ai);
                    replicas[r].warming = false;
                    // A fault that landed mid-warm-up wins: the weight
                    // transfer is discarded and the replica stays out.
                    if !replicas[r].failed && !replicas[r].drained {
                        replicas[r].standby = false;
                        replicas[r].accepting = true;
                        replicas[r].clock_s = replicas[r].clock_s.max(at);
                        scale_ups += 1;
                        resoftmax_obs::counter("ctrl.scale_ups").incr();
                    }
                }
                Action::Decide => {
                    let control = self
                        .control
                        .expect("Decide fires only with a control plane attached");
                    let queue_depth: usize = replicas.iter().map(|r| r.waiting.len()).sum();
                    let handoff_backlog = pending_handoffs.len();
                    let active = replicas.iter().filter(|r| r.accepting).count();
                    let kv_occupancy = if active > 0 {
                        replicas
                            .iter()
                            .filter(|r| r.accepting)
                            .map(|r| r.pool.occupancy())
                            .sum::<f64>()
                            / active as f64
                    } else {
                        0.0
                    };
                    let (ttft, tbt) = match &signal_windows {
                        Some((tw, bw)) => (tw.stats(when), bw.stats(when)),
                        None => (None, None),
                    };
                    let signals = FleetSignals {
                        now_s: when,
                        arrived: next_arrival,
                        completed: acc.completed,
                        queue_depth,
                        handoff_backlog,
                        max_batch: live_cfg.max_batch,
                        ttft,
                        tbt,
                        replicas: replicas
                            .iter()
                            .map(|r| ReplicaSignal {
                                id: r.id,
                                role: r.role,
                                accepting: r.accepting,
                                standby: r.standby,
                                warming: r.warming,
                                queue_len: r.waiting.len(),
                                running: r.running.len(),
                                kv_occupancy: r.pool.occupancy(),
                            })
                            .collect(),
                    };
                    let decision = control.decide(&signals);
                    let mut applied = Vec::with_capacity(decision.actions.len());
                    for a in &decision.actions {
                        let ok = match *a {
                            ControlAction::SetPolicy(p) => {
                                live_cfg.policy = p;
                                true
                            }
                            ControlAction::SetPrefillChunk(c) => {
                                if c > 0 {
                                    live_cfg.prefill_chunk = c;
                                }
                                c > 0
                            }
                            ControlAction::SetAdmission {
                                tokens_per_s,
                                burst_tokens,
                            } => {
                                let valid = tokens_per_s > 0.0
                                    && tokens_per_s.is_finite()
                                    && burst_tokens > 0.0
                                    && burst_tokens.is_finite();
                                if valid {
                                    admission =
                                        Some(TokenBucket::new(tokens_per_s, burst_tokens, when));
                                }
                                valid
                            }
                            ControlAction::ClearAdmission => admission.take().is_some(),
                            ControlAction::ScaleUp { replica: r } => {
                                let valid = r < replicas.len()
                                    && replicas[r].standby
                                    && !replicas[r].warming
                                    && !replicas[r].failed
                                    && !replicas[r].drained;
                                if valid {
                                    replicas[r].warming = true;
                                    // Warm-up is the model weights streaming
                                    // over the link; the replica activates
                                    // when the transfer lands.
                                    let warm = self.link.transfer_time_s(weight_bytes(&self.model));
                                    pending_activations.push((r, when + warm));
                                }
                                valid
                            }
                            ControlAction::ScaleDown { replica: r } => {
                                let survives = |capable: fn(Role) -> bool| {
                                    replicas
                                        .iter()
                                        .any(|o| o.accepting && o.id != r && capable(o.role))
                                };
                                let valid = r < replicas.len()
                                    && replicas[r].accepting
                                    && survives(Role::prefill_capable)
                                    && survives(Role::decode_capable);
                                if valid {
                                    replicas[r].accepting = false;
                                    replicas[r].standby = true;
                                    self.displace_all(
                                        r,
                                        when,
                                        "scaled down",
                                        &mut replicas,
                                        &mut states,
                                        &mut routers,
                                        &mut migrations,
                                        &mut migration_drops,
                                        &mut kv_migrated_bytes,
                                        &mut migration_time_s,
                                        bytes_per_token,
                                    )?;
                                    scale_downs += 1;
                                    resoftmax_obs::counter("ctrl.scale_downs").incr();
                                }
                                valid
                            }
                        };
                        applied.push(ok);
                    }
                    decisions.push(ControlRecord {
                        seq: decisions.len(),
                        at_s: when,
                        regime: decision.regime,
                        actions: decision.actions,
                        applied,
                        queue_depth,
                        active_replicas: active,
                        kv_occupancy,
                        handoff_backlog,
                        ttft,
                        tbt,
                    });
                    if !decision.next_s.is_finite() {
                        ctrl_next = f64::INFINITY;
                    } else if decision.next_s <= when {
                        return Err(Error::Config {
                            reason: format!(
                                "control plane scheduled its next decision at {} from \
                                 {when}: must be strictly later",
                                decision.next_s
                            ),
                        });
                    } else {
                        ctrl_next = decision.next_s;
                    }
                    // Decisions count against the iteration backstop so a
                    // controller that stalls the fleet still trips it.
                    total_iterations += 1;
                }
            }
        }

        assert_eq!(
            acc.completed, cfg.requests,
            "scheduler bug: loop exited with requests outstanding"
        );
        let sim_time_s = acc.last_completion_s;
        let iterations: usize = replicas.iter().map(|r| r.iterations).sum();
        let evictions: usize = replicas.iter().map(|r| r.evictions).sum();
        let prefill_tokens: u64 = replicas.iter().map(|r| r.prefill_tokens).sum();
        let decode_tokens: u64 = replicas.iter().map(|r| r.decode_tokens).sum();
        let handoffs: usize = replicas.iter().map(|r| r.handoffs_out).sum();
        let preemptions: usize = replicas.iter().map(|r| r.preemptions).sum();
        // Prefill rows run on a dedicated decode replica only when a
        // handed-off request later loses its cache to memory pressure: the
        // disaggregation contract's "no re-prefill" is this staying zero.
        let decode_side_prefill_tokens: u64 = replicas
            .iter()
            .filter(|r| r.role == Role::Decode)
            .map(|r| r.prefill_tokens)
            .sum();
        let replica_stats: Vec<ReplicaStats> = replicas
            .iter()
            .map(|r| ReplicaStats {
                id: r.id,
                device: r.device.name.clone(),
                role: r.role.name().to_owned(),
                iterations: r.iterations,
                evictions: r.evictions,
                completed: r.completed,
                prefill_tokens: r.prefill_tokens,
                decode_tokens: r.decode_tokens,
                handoffs_in: r.handoffs_in,
                handoffs_out: r.handoffs_out,
                preemptions: r.preemptions,
                standby: r.standby,
                kv_used_blocks_end: r.pool.used_blocks(),
                busy_s: r.busy_s,
                utilization: if sim_time_s > 0.0 {
                    r.busy_s / sim_time_s
                } else {
                    0.0
                },
                kv_peak_occupancy: r.pool.peak_occupancy(),
                kv_mean_occupancy: if r.occ_n > 0 {
                    r.occ_sum / r.occ_n as f64
                } else {
                    0.0
                },
                drained: r.drained,
                failed: r.failed,
            })
            .collect();

        if trace {
            for r in &replicas {
                if let Some(tl) = &r.timeline {
                    if !tl.is_empty() {
                        resoftmax_obs::recorder().add_sim_stream(
                            format!("serve.replica.{}/{}", r.id, r.device.name),
                            anchor_us,
                            resoftmax_gpusim::chrome_trace::to_obs_events(tl),
                        );
                    }
                }
            }
        }

        Ok(FleetReport {
            strategy: format!("{:?}", self.params.strategy).to_lowercase(),
            policy: cfg.policy.name().to_owned(),
            router: self.router.name().to_owned(),
            link: self.link.name.clone(),
            submitted: arrivals.len(),
            completed: acc.completed,
            iterations,
            evictions,
            migrations,
            migration_drops,
            kv_migrated_bytes,
            migration_time_s,
            handoffs,
            kv_handoff_bytes,
            kv_handoff_time_s,
            decode_side_prefill_tokens,
            sim_time_s,
            prefill_tokens,
            decode_tokens,
            decode_tokens_per_s: decode_tokens as f64 / sim_time_s,
            ttft: Percentiles::from_samples(&acc.ttft),
            tbt: Percentiles::from_samples(&acc.tbt),
            preemptions,
            scale_ups,
            scale_downs,
            decisions,
            replicas: replica_stats,
        })
    }

    /// Re-homes a request displaced from `source` (eviction overflow, drain,
    /// failure). Attempts a KV migration over the link when the request has
    /// resident cache, migration is enabled, and a sibling has pool room;
    /// otherwise the cache is dropped and the request re-prefills at its
    /// destination.
    #[allow(clippy::too_many_arguments)]
    fn place_displaced(
        &self,
        id: usize,
        source: usize,
        now_s: f64,
        replicas: &mut [Replica],
        states: &mut [ReqState],
        routers: &mut Routers,
        migrations: &mut usize,
        migration_drops: &mut usize,
        kv_migrated_bytes: &mut u64,
        migration_time_s: &mut f64,
        bytes_per_token: u64,
    ) {
        debug_assert_eq!(states[id].blocks, 0, "displaced requests hold no blocks");
        let had_cache = states[id].cached > 0;
        if self.migrate_on_evict && had_cache {
            // Migrate toward the subset that can run the request's next
            // phase: a decode-ready cache goes to the decode side, a partial
            // prefill back to the prefill side.
            let phase = phase_of(&states[id]);
            let views = accepting_views(replicas, states, source, phase);
            if !views.is_empty() {
                let dest = routers.route(phase, states[id].session, &views);
                let need = replicas[dest].pool.blocks_for(states[id].cached);
                if replicas[dest].pool.try_alloc(need) {
                    let bytes = states[id].cached as u64 * bytes_per_token;
                    let transfer = self.link.transfer_time_s(bytes);
                    states[id].blocks = need;
                    states[id].ready_s = states[id].ready_s.max(now_s) + transfer;
                    replicas[dest].waiting.push(id);
                    replicas[source].note_migration_out();
                    replicas[dest].note_migration_in();
                    resoftmax_obs::counter("serve.migrations").incr();
                    *migrations += 1;
                    *kv_migrated_bytes += bytes;
                    *migration_time_s += transfer;
                    return;
                }
            }
        }
        // No migration path: the cache is dropped and the request re-queues
        // wherever the router sends it (the source included, if accepting).
        // With no cache left it owes prefill work, so it routes over the
        // prefill-capable subset.
        states[id].cached = 0;
        states[id].ready_s = states[id].ready_s.max(now_s);
        if had_cache {
            *migration_drops += 1;
            resoftmax_obs::counter("serve.migration_drops").incr();
        }
        let views = accepting_views(replicas, states, usize::MAX, Phase::Prefill);
        let dest = if views.is_empty() {
            // Every replica is out of rotation; park the request back on the
            // source so the stall surfaces as the typed no-accepting-replica
            // error (or the iteration backstop), not a lost request.
            source
        } else {
            routers.route(Phase::Prefill, states[id].session, &views)
        };
        replicas[dest].waiting.push(id);
    }

    /// Applies one scripted fault at its simulated time.
    #[allow(clippy::too_many_arguments)]
    fn apply_fault(
        &self,
        ev: FleetEvent,
        replicas: &mut [Replica],
        states: &mut [ReqState],
        routers: &mut Routers,
        migrations: &mut usize,
        migration_drops: &mut usize,
        kv_migrated_bytes: &mut u64,
        migration_time_s: &mut f64,
        bytes_per_token: u64,
    ) -> Result<(), Error> {
        let i = ev.replica();
        let at_s = ev.at_s();
        match ev {
            FleetEvent::Drain { .. } => {
                replicas[i].accepting = false;
                replicas[i].drained = true;
            }
            FleetEvent::Fail { .. } => {
                replicas[i].accepting = false;
                replicas[i].failed = true;
            }
        }
        let what = if replicas[i].failed {
            "failed"
        } else {
            "drained"
        };
        self.displace_all(
            i,
            at_s,
            what,
            replicas,
            states,
            routers,
            migrations,
            migration_drops,
            kv_migrated_bytes,
            migration_time_s,
            bytes_per_token,
        )
    }

    /// Displaces every request resident on replica `i` after it left
    /// rotation (fault, drain, or control-plane scale-down). Running
    /// requests go first, then the waiting queue, so seniority is preserved
    /// at the destinations; `what` labels the no-survivor error.
    #[allow(clippy::too_many_arguments)]
    fn displace_all(
        &self,
        i: usize,
        at_s: f64,
        what: &str,
        replicas: &mut [Replica],
        states: &mut [ReqState],
        routers: &mut Routers,
        migrations: &mut usize,
        migration_drops: &mut usize,
        kv_migrated_bytes: &mut u64,
        migration_time_s: &mut f64,
        bytes_per_token: u64,
    ) -> Result<(), Error> {
        // The replica finishes its in-flight iteration first (clock_s is its
        // busy-until time): displacement happens at the later of the two.
        let now_s = at_s.max(replicas[i].clock_s);
        let displaced: Vec<usize> = std::mem::take(&mut replicas[i].running)
            .into_iter()
            .chain(std::mem::take(&mut replicas[i].waiting))
            .collect();
        if displaced.is_empty() {
            return Ok(());
        }
        if !replicas.iter().any(|r| r.accepting) {
            return Err(Error::Config {
                reason: format!(
                    "replica {i} {what} at {at_s:.3}s with {} requests resident and no \
                     accepting replica left",
                    displaced.len()
                ),
            });
        }
        for id in displaced {
            replicas[i].release(states, id);
            if replicas[i].failed {
                // The pool died with the replica: the cache is gone before
                // any migration question arises.
                states[id].cached = 0;
            }
            self.place_displaced(
                id,
                i,
                now_s,
                replicas,
                states,
                routers,
                migrations,
                migration_drops,
                kv_migrated_bytes,
                migration_time_s,
                bytes_per_token,
            );
        }
        Ok(())
    }
}

/// Deterministic router snapshot of every accepting replica that can run
/// `phase` work, except `exclude`, ascending id.
fn accepting_views(
    replicas: &[Replica],
    states: &[ReqState],
    exclude: usize,
    phase: Phase,
) -> Vec<ReplicaView> {
    replicas
        .iter()
        .filter(|r| r.accepting && r.id != exclude)
        .filter(|r| match phase {
            Phase::Prefill => r.role.prefill_capable(),
            Phase::Decode => r.role.decode_capable(),
        })
        .map(|r| ReplicaView {
            id: r.id,
            role: r.role,
            resident_blocks: r.pool.used_blocks(),
            queued_blocks: r
                .waiting
                .iter()
                .map(|&id| {
                    r.pool
                        .blocks_for(states[id].prefill_target())
                        .max(states[id].blocks)
                })
                .sum(),
            total_blocks: r.pool.total_blocks(),
            queue_len: r.waiting.len(),
            running: r.running.len(),
            clock_s: r.clock_s,
        })
        .collect()
}
