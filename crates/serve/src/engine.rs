//! The continuous-batching engine loop.
//!
//! One *iteration* = one fused GPU schedule over every resident request:
//! decode requests contribute one row each at their current context length,
//! prefilling requests contribute a chunk of rows (chunked prefill). The
//! GPU timeline prices the iteration; the simulated clock advances by that
//! much and the scheduler state steps. Eviction policy: when a decode row
//! cannot grow its KV allocation, the *youngest* running request is evicted
//! back to the waiting queue (losing its cache, which must be re-prefilled);
//! the oldest running request is never evicted, so the head of the line
//! always progresses and the loop terminates.

use crate::kv::{kv_bytes_per_token, weight_bytes, KvPool};
use crate::metrics::{Percentiles, ServeReport};
use crate::request::{poisson_arrivals, Policy, ServeConfig};
use resoftmax_gpusim::{DeviceSpec, Gpu, LaunchError};
use resoftmax_model::{build_batched_decode_schedule, ModelConfig, RunParams};

#[derive(Debug, Clone)]
struct ReqState {
    arrival_s: f64,
    prompt: usize,
    decode: usize,
    /// Output tokens emitted so far (survives eviction — the text exists).
    generated: usize,
    /// Tokens resident in the KV cache (zeroed by eviction).
    cached: usize,
    /// Pool blocks held.
    blocks: u64,
    first_token_s: Option<f64>,
}

impl ReqState {
    /// Tokens that must be cached before the next output token: the prompt
    /// plus everything already generated.
    fn target_ctx(&self) -> usize {
        self.prompt + self.generated
    }

    fn remaining_work(&self) -> usize {
        (self.target_ctx() - self.cached) + (self.decode - self.generated)
    }
}

enum Row {
    Prefill { id: usize, chunk: usize },
    Decode { id: usize },
}

/// Chooses the run parameters used to price one fused engine iteration.
///
/// Every engine iteration is one batched GPU schedule mixing chunked-prefill
/// rows with single-token decode rows; `ctxs` lists the context length of
/// each row in that schedule. A planner may pick a different strategy, tile,
/// or split per iteration shape — this is the hook an autotuner
/// (`resoftmax-tune`) uses to serve every iteration with its tuned schedule
/// instead of the fixed base parameters.
///
/// Implementations must be deterministic in `ctxs` and `base` (the serving
/// report is asserted bit-identical across host thread counts).
pub trait IterationPlanner {
    /// Returns the parameters for pricing the iteration over `ctxs`. The
    /// returned configuration must be decode-legal (dense attention, not
    /// [`resoftmax_model::SoftmaxStrategy::OnlineFused`]).
    fn plan(&self, ctxs: &[usize], base: &RunParams) -> RunParams;
}

/// The pre-tuner behavior: every iteration is priced with the base
/// parameters unchanged.
pub struct BaselinePlanner;

impl IterationPlanner for BaselinePlanner {
    fn plan(&self, _ctxs: &[usize], base: &RunParams) -> RunParams {
        base.clone()
    }
}

/// Runs the serving simulation to completion and aggregates the report.
///
/// Deterministic in `cfg.seed`: the clock is the simulated GPU timeline, so
/// the report is bit-identical regardless of host threading.
///
/// # Errors
///
/// Returns [`LaunchError`] when a kernel of some iteration cannot launch on
/// `device`.
///
/// # Panics
///
/// Panics when the KV pool cannot hold even one request end-to-end (the
/// oldest request could then never finish — a configuration error), and
/// when `cfg.max_iterations` is exceeded.
pub fn run_serve(
    model: &ModelConfig,
    device: &DeviceSpec,
    params: &RunParams,
    cfg: &ServeConfig,
) -> Result<ServeReport, LaunchError> {
    run_serve_with(model, device, params, cfg, &BaselinePlanner)
}

/// [`run_serve`] with an explicit [`IterationPlanner`]: every engine
/// iteration (chunked prefill fused with batched decode) is priced with the
/// parameters the planner returns for that iteration's row mix.
///
/// # Errors / Panics
///
/// As [`run_serve`].
pub fn run_serve_with(
    model: &ModelConfig,
    device: &DeviceSpec,
    params: &RunParams,
    cfg: &ServeConfig,
    planner: &dyn IterationPlanner,
) -> Result<ServeReport, LaunchError> {
    let arrivals = poisson_arrivals(cfg);
    let capacity = cfg.kv_capacity_bytes.unwrap_or_else(|| {
        device
            .hbm_bytes()
            .saturating_sub(weight_bytes(model))
            .max(1)
    });
    let mut pool = KvPool::new(capacity, cfg.kv_block_tokens, kv_bytes_per_token(model));
    let max_request_tokens = cfg.prompt_tokens.1 + cfg.decode_tokens.1;
    assert!(
        pool.can_alloc(pool.blocks_for(max_request_tokens)),
        "KV pool ({} blocks) cannot hold one worst-case request ({} tokens); \
         the oldest request could stall forever — raise kv_capacity_bytes",
        pool.total_blocks(),
        max_request_tokens
    );

    let mut states: Vec<ReqState> = arrivals
        .iter()
        .map(|a| ReqState {
            arrival_s: a.at_s,
            prompt: a.prompt,
            decode: a.decode,
            generated: 0,
            cached: 0,
            blocks: 0,
            first_token_s: None,
        })
        .collect();
    let mut waiting: Vec<usize> = Vec::new();
    let mut running: Vec<usize> = Vec::new();
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;

    let mut completed = 0usize;
    let mut iterations = 0usize;
    let mut evictions = 0usize;
    let mut prefill_tokens = 0u64;
    let mut decode_tokens = 0u64;
    let mut ttft: Vec<f64> = Vec::new();
    let mut tbt: Vec<f64> = Vec::new();
    let mut occupancy_samples: Vec<f64> = Vec::new();

    let mut gpu = Gpu::new(device.clone());

    while completed < cfg.requests {
        assert!(
            iterations < cfg.max_iterations,
            "serve loop exceeded {} iterations with {completed}/{} requests done",
            cfg.max_iterations,
            cfg.requests
        );

        // Release arrivals; fast-forward the clock when the engine is idle.
        if running.is_empty() && waiting.is_empty() && next_arrival < arrivals.len() {
            now = now.max(states[next_arrival].arrival_s);
        }
        while next_arrival < arrivals.len() && states[next_arrival].arrival_s <= now {
            waiting.push(next_arrival);
            next_arrival += 1;
        }

        // Waiting-queue order. FIFO keeps insertion order (arrivals, then
        // re-queued evictees); shortest-remaining sorts by outstanding work.
        if cfg.policy == Policy::ShortestRemaining {
            waiting.sort_by_key(|&id| (states[id].remaining_work(), id));
        }

        // Admission: strict head-of-line — a request is admitted only if the
        // pool covers its full resident context (prompt plus any output
        // generated before an eviction).
        while running.len() < cfg.max_batch {
            let Some(&id) = waiting.first() else { break };
            let need = pool.blocks_for(states[id].target_ctx());
            if !pool.try_alloc(need) {
                break;
            }
            states[id].blocks = need;
            waiting.remove(0);
            running.push(id);
            resoftmax_obs::counter("serve.admitted").incr();
        }

        // Build this iteration's rows, oldest request first. Decode rows
        // grow their KV allocation up front; on exhaustion they evict
        // younger requests (never older ones, and never already-granted
        // ones — victims sit strictly later in `running`).
        let mut ctxs: Vec<usize> = Vec::new();
        let mut rows: Vec<Row> = Vec::new();
        let mut i = 0usize;
        while i < running.len() {
            let id = running[i];
            let (target, cached) = (states[id].target_ctx(), states[id].cached);
            if cached < target {
                let chunk = (target - cached).min(cfg.prefill_chunk);
                ctxs.extend((1..=chunk).map(|t| cached + t));
                rows.push(Row::Prefill { id, chunk });
            } else {
                let need = pool.blocks_for(cached + 1);
                let mut granted = need <= states[id].blocks;
                while !granted {
                    if pool.try_alloc(need - states[id].blocks) {
                        states[id].blocks = need;
                        granted = true;
                    } else if running.len() > i + 1 {
                        // Evict the youngest running request.
                        let victim = running.pop().expect("nonempty tail");
                        pool.free(states[victim].blocks);
                        states[victim].blocks = 0;
                        states[victim].cached = 0;
                        waiting.push(victim);
                        evictions += 1;
                        resoftmax_obs::counter("serve.evictions").incr();
                    } else {
                        // Nobody younger left to evict. The admission-time
                        // capacity assertion guarantees the oldest (i == 0)
                        // can always grow, so this request merely waits.
                        assert!(i > 0, "oldest request starved despite capacity check");
                        break;
                    }
                }
                if granted {
                    ctxs.push(cached + 1);
                    rows.push(Row::Decode { id });
                }
            }
            i += 1;
        }

        if ctxs.is_empty() {
            // Nothing resident could run: the engine is idle until the next
            // arrival (admission may be head-of-line blocked until then).
            assert!(
                next_arrival < arrivals.len(),
                "serve loop stalled with no runnable rows and no future arrivals"
            );
            now = now.max(states[next_arrival].arrival_s);
            continue;
        }

        // Price the fused iteration on the simulated GPU. `take_timeline`
        // drains cost state (and flushes L2) so one `Gpu` serves the whole
        // run without re-paying construction per iteration.
        let span = resoftmax_obs::span("serve.iteration", "serve");
        let iter_params = planner.plan(&ctxs, params);
        gpu.run(&build_batched_decode_schedule(model, &ctxs, &iter_params))?;
        let dt = gpu.take_timeline().total_time_s();
        drop(span);
        now += dt;
        iterations += 1;
        resoftmax_obs::counter("serve.iterations").incr();
        occupancy_samples.push(pool.occupancy());

        // Step the per-request state.
        let mut finished: Vec<usize> = Vec::new();
        for row in rows {
            match row {
                Row::Prefill { id, chunk } => {
                    states[id].cached += chunk;
                    prefill_tokens += chunk as u64;
                    resoftmax_obs::counter("serve.prefill_tokens").add(chunk as u64);
                }
                Row::Decode { id } => {
                    let st = &mut states[id];
                    st.cached += 1;
                    st.generated += 1;
                    decode_tokens += 1;
                    resoftmax_obs::counter("serve.decode_tokens").incr();
                    tbt.push(dt);
                    if st.first_token_s.is_none() {
                        st.first_token_s = Some(now);
                        ttft.push(now - st.arrival_s);
                    }
                    if st.generated == st.decode {
                        pool.free(st.blocks);
                        st.blocks = 0;
                        finished.push(id);
                        completed += 1;
                    }
                }
            }
        }
        running.retain(|id| !finished.contains(id));
    }

    Ok(ServeReport {
        strategy: format!("{:?}", params.strategy).to_lowercase(),
        policy: cfg.policy.name().to_owned(),
        completed,
        iterations,
        evictions,
        sim_time_s: now,
        prefill_tokens,
        decode_tokens,
        decode_tokens_per_s: decode_tokens as f64 / now,
        ttft: Percentiles::from_samples(&ttft),
        tbt: Percentiles::from_samples(&tbt),
        kv_peak_occupancy: pool.peak_occupancy(),
        kv_mean_occupancy: occupancy_samples.iter().sum::<f64>() / occupancy_samples.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_model::SoftmaxStrategy;

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            requests: 6,
            arrival_rate_hz: 64.0,
            prompt_tokens: (64, 192),
            decode_tokens: (4, 12),
            max_batch: 4,
            prefill_chunk: 64,
            ..ServeConfig::default()
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn completes_all_requests_and_is_deterministic() {
        let m = ModelConfig::gpt_neo_1_3b();
        let cfg = small_cfg();
        let a = run_serve(&m, &DeviceSpec::a100(), &RunParams::new(4096), &cfg).unwrap();
        let b = run_serve(&m, &DeviceSpec::a100(), &RunParams::new(4096), &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.completed, cfg.requests);
        assert_eq!(a.ttft.n, cfg.requests);
        assert!(a.sim_time_s > 0.0);
        assert!(a.decode_tokens_per_s > 0.0);
        assert!(a.tbt.p50_s > 0.0);
        assert!(a.kv_peak_occupancy > 0.0 && a.kv_peak_occupancy <= 1.0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn tiny_pool_forces_evictions_yet_completes() {
        let m = ModelConfig::gpt_neo_1_3b();
        let mut cfg = small_cfg();
        // Two requests fit at admission (prompts alone), but their decode
        // growth overflows the pool: eviction must kick in, and the
        // oldest-never-evicted rule still drains the queue.
        cfg.prompt_tokens = (64, 96);
        cfg.decode_tokens = (16, 32);
        cfg.kv_capacity_bytes = Some(kv_bytes_per_token(&m) * 192);
        let r = run_serve(&m, &DeviceSpec::a100(), &RunParams::new(4096), &cfg).unwrap();
        assert_eq!(r.completed, cfg.requests);
        assert!(r.evictions > 0, "a 256-token pool must evict: {r:?}");
        assert!(r.kv_peak_occupancy > 0.5);
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn recomposed_strategy_serves_too() {
        let m = ModelConfig::gpt_neo_1_3b();
        let cfg = ServeConfig {
            requests: 3,
            ..small_cfg()
        };
        let params = RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed);
        let r = run_serve(&m, &DeviceSpec::a100(), &params, &cfg).unwrap();
        assert_eq!(r.completed, 3);
        assert_eq!(r.strategy, "recomposed");
    }

    #[test]
    #[should_panic(expected = "cannot hold one worst-case request")]
    fn pool_below_one_request_rejected() {
        let m = ModelConfig::gpt_neo_1_3b();
        let mut cfg = small_cfg();
        cfg.kv_capacity_bytes = Some(kv_bytes_per_token(&m) * 64);
        let _ = run_serve(&m, &DeviceSpec::a100(), &RunParams::new(4096), &cfg);
    }
}
