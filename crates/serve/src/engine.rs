//! The single-replica serving entry points and the iteration-planner hook.
//!
//! `run_serve` / `run_serve_with` predate the fleet API and are kept as
//! documented legacy wrappers: each delegates to a one-replica
//! [`FleetBuilder`](crate::FleetBuilder) fleet and returns the legacy
//! [`ServeReport`] view of its [`FleetReport`](crate::FleetReport). New code
//! should use [`FleetBuilder`](crate::FleetBuilder) directly — it exposes
//! the same engine plus routing, interconnect modeling, heterogeneous
//! devices, and fault scenarios.
//!
//! Migration note: the wrappers now return [`crate::Error`] instead of
//! `LaunchError`, and configurations that used to panic (a KV pool below one
//! worst-case request, a degenerate workload range) surface as
//! [`Error::Admission`](crate::Error::Admission) /
//! [`Error::Config`](crate::Error::Config).

use crate::cluster::FleetBuilder;
use crate::error::Error;
use crate::metrics::ServeReport;
use crate::request::ServeConfig;
use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{ModelConfig, RunParams};

/// Chooses the run parameters used to price one fused engine iteration.
///
/// Every engine iteration is one batched GPU schedule mixing chunked-prefill
/// rows with single-token decode rows; `ctxs` lists the context length of
/// each row in that schedule. A planner may pick a different strategy, tile,
/// or split per iteration shape — this is the hook an autotuner
/// (`resoftmax-tune`) uses to serve every iteration with its tuned schedule
/// instead of the fixed base parameters.
///
/// Implementations must be deterministic in `ctxs` and `base` (the serving
/// report is asserted bit-identical across host thread counts).
pub trait IterationPlanner {
    /// Returns the parameters for pricing the iteration over `ctxs`. The
    /// returned configuration must be decode-legal (dense attention, not
    /// [`resoftmax_model::SoftmaxStrategy::OnlineFused`]).
    fn plan(&self, ctxs: &[usize], base: &RunParams) -> RunParams;
}

/// The pre-tuner behavior: every iteration is priced with the base
/// parameters unchanged.
pub struct BaselinePlanner;

impl IterationPlanner for BaselinePlanner {
    fn plan(&self, _ctxs: &[usize], base: &RunParams) -> RunParams {
        base.clone()
    }
}

/// Runs the serving simulation on a single replica and aggregates the
/// report. Legacy wrapper: equivalent to (and implemented as) a one-replica
/// [`FleetBuilder`](crate::FleetBuilder) fleet.
///
/// Deterministic in `cfg.seed`: the clock is the simulated GPU timeline, so
/// the report is bit-identical regardless of host threading.
///
/// # Errors
///
/// [`Error::Config`] for a degenerate workload, [`Error::Admission`] when
/// the KV pool cannot hold one worst-case request end-to-end, and the model
/// layer's errors when an iteration fails to analyze or launch.
pub fn run_serve(
    model: &ModelConfig,
    device: &DeviceSpec,
    params: &RunParams,
    cfg: &ServeConfig,
) -> Result<ServeReport, Error> {
    run_serve_with(model, device, params, cfg, &BaselinePlanner)
}

/// [`run_serve`] with an explicit [`IterationPlanner`]: every engine
/// iteration (chunked prefill fused with batched decode) is priced with the
/// parameters the planner returns for that iteration's row mix.
///
/// # Errors
///
/// As [`run_serve`].
pub fn run_serve_with(
    model: &ModelConfig,
    device: &DeviceSpec,
    params: &RunParams,
    cfg: &ServeConfig,
    planner: &dyn IterationPlanner,
) -> Result<ServeReport, Error> {
    let report = FleetBuilder::new()
        .model(model.clone())
        .params(params.clone())
        .replica(device.clone())
        .planner(planner)
        .workload(cfg.clone())
        .build()?
        .run()?;
    Ok(report.serve_report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::kv_bytes_per_token;
    use resoftmax_model::SoftmaxStrategy;

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            requests: 6,
            arrival_rate_hz: 64.0,
            prompt_tokens: (64, 192),
            decode_tokens: (4, 12),
            max_batch: 4,
            prefill_chunk: 64,
            ..ServeConfig::default()
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn completes_all_requests_and_is_deterministic() {
        let m = ModelConfig::gpt_neo_1_3b();
        let cfg = small_cfg();
        let a = run_serve(&m, &DeviceSpec::a100(), &RunParams::new(4096), &cfg).unwrap();
        let b = run_serve(&m, &DeviceSpec::a100(), &RunParams::new(4096), &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.completed, cfg.requests);
        assert_eq!(a.ttft.n, cfg.requests);
        assert!(a.sim_time_s > 0.0);
        assert!(a.decode_tokens_per_s > 0.0);
        assert!(a.tbt.p50_s > 0.0);
        assert!(a.kv_peak_occupancy > 0.0 && a.kv_peak_occupancy <= 1.0);
        // Every request owes decode - 1 TBT samples (the first token is the
        // TTFT sample).
        assert!(a.tbt.n >= cfg.requests * (cfg.decode_tokens.0 - 1));
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn tiny_pool_forces_evictions_yet_completes() {
        let m = ModelConfig::gpt_neo_1_3b();
        let mut cfg = small_cfg();
        // Two requests fit at admission (prompts alone), but their decode
        // growth overflows the pool: eviction must kick in, and the
        // oldest-never-evicted rule still drains the queue.
        cfg.prompt_tokens = (64, 96);
        cfg.decode_tokens = (16, 32);
        cfg.kv_capacity_bytes = Some(kv_bytes_per_token(&m) * 192);
        let r = run_serve(&m, &DeviceSpec::a100(), &RunParams::new(4096), &cfg).unwrap();
        assert_eq!(r.completed, cfg.requests);
        assert!(r.evictions > 0, "a 192-token pool must evict: {r:?}");
        assert!(r.kv_peak_occupancy > 0.5);
    }

    #[test]
    #[cfg_attr(miri, ignore = "end-to-end simulation is too slow under miri")]
    fn recomposed_strategy_serves_too() {
        let m = ModelConfig::gpt_neo_1_3b();
        let cfg = ServeConfig {
            requests: 3,
            ..small_cfg()
        };
        let params = RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed);
        let r = run_serve(&m, &DeviceSpec::a100(), &params, &cfg).unwrap();
        assert_eq!(r.completed, 3);
        assert_eq!(r.strategy, "recomposed");
    }

    #[test]
    fn pool_below_one_request_rejected() {
        let m = ModelConfig::gpt_neo_1_3b();
        let mut cfg = small_cfg();
        cfg.kv_capacity_bytes = Some(kv_bytes_per_token(&m) * 64);
        let e = run_serve(&m, &DeviceSpec::a100(), &RunParams::new(4096), &cfg).unwrap_err();
        assert!(matches!(e, Error::Admission { .. }), "{e}");
        assert!(e.to_string().contains("worst-case request"), "{e}");
    }
}
