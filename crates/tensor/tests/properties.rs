//! Property-based tests for matrix operations.

use proptest::prelude::*;
use resoftmax_tensor::{
    add, matmul, matmul_tiled, matmul_transpose_b, max_abs_diff, row_max, row_sum, scale,
    transpose, Matrix, TileDims, TileIter,
};

/// Strategy for a small random f64 matrix with bounded entries.
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<f64>> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
}

/// Strategy for matrix dimensions small enough for O(n³) reference math.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..12, 1usize..12)
}

proptest! {
    /// The tiled (outer-product dataflow) matmul agrees with the naive oracle
    /// for every tile shape.
    #[test]
    fn tiled_matmul_matches_naive(
        (m, k, n) in dims(),
        th in 1usize..8,
        tw in 1usize..8,
        seed in 0u64..1000,
    ) {
        let a = resoftmax_tensor::randn_matrix::<f64>(m, k, 1.0, seed);
        let b = resoftmax_tensor::randn_matrix::<f64>(k, n, 1.0, seed + 1);
        let naive = matmul(&a, &b).unwrap();
        let tiled = matmul_tiled(&a, &b, TileDims::new(th, tw)).unwrap();
        // f32 accumulators in the tiled path: tolerance scales with k
        prop_assert!(max_abs_diff(&naive, &tiled) < 1e-3 * k as f64);
    }

    /// A·Bᵀ via the fused-layout function equals the explicit transpose.
    #[test]
    fn transpose_b_consistent((m, k, n) in dims(), seed in 0u64..1000) {
        let a = resoftmax_tensor::randn_matrix::<f64>(m, k, 1.0, seed);
        let b = resoftmax_tensor::randn_matrix::<f64>(n, k, 1.0, seed + 1);
        let direct = matmul_transpose_b(&a, &b).unwrap();
        let explicit = matmul(&a, &transpose(&b)).unwrap();
        prop_assert!(max_abs_diff(&direct, &explicit) < 1e-9);
    }

    /// Matmul distributes over addition: (A+B)·C == A·C + B·C.
    #[test]
    fn matmul_distributes((m, k, n) in dims(), s1 in 0u64..500, s2 in 500u64..1000) {
        let a = resoftmax_tensor::randn_matrix::<f64>(m, k, 1.0, s1);
        let b = resoftmax_tensor::randn_matrix::<f64>(m, k, 1.0, s2);
        let c = resoftmax_tensor::randn_matrix::<f64>(k, n, 1.0, s1 + s2);
        let lhs = matmul(&add(&a, &b).unwrap(), &c).unwrap();
        let rhs = add(&matmul(&a, &c).unwrap(), &matmul(&b, &c).unwrap()).unwrap();
        prop_assert!(max_abs_diff(&lhs, &rhs) < 1e-9);
    }

    /// transpose(A·B) == transpose(B)·transpose(A).
    #[test]
    fn transpose_of_product((m, k, n) in dims(), seed in 0u64..1000) {
        let a = resoftmax_tensor::randn_matrix::<f64>(m, k, 1.0, seed);
        let b = resoftmax_tensor::randn_matrix::<f64>(k, n, 1.0, seed + 7);
        let lhs = transpose(&matmul(&a, &b).unwrap());
        let rhs = matmul(&transpose(&b), &transpose(&a)).unwrap();
        prop_assert!(max_abs_diff(&lhs, &rhs) < 1e-9);
    }

    /// Scaling commutes with matmul.
    #[test]
    fn scale_commutes((m, k, n) in dims(), factor in -3.0f64..3.0, seed in 0u64..1000) {
        let a = resoftmax_tensor::randn_matrix::<f64>(m, k, 1.0, seed);
        let b = resoftmax_tensor::randn_matrix::<f64>(k, n, 1.0, seed + 3);
        let lhs = matmul(&scale(&a, factor), &b).unwrap();
        let rhs = scale(&matmul(&a, &b).unwrap(), factor);
        prop_assert!(max_abs_diff(&lhs, &rhs) < 1e-8);
    }

    /// row_max is invariant under column permutation-ish shuffles (reversal).
    #[test]
    fn row_max_column_order_invariant(m in matrix_strategy(5, 7)) {
        let reversed = Matrix::from_fn(5, 7, |r, c| m.get(r, 6 - c));
        prop_assert_eq!(row_max(&m), row_max(&reversed));
    }

    /// row_sum of the transpose equals column sums.
    #[test]
    fn row_sum_transpose(m in matrix_strategy(4, 6)) {
        let t = transpose(&m);
        let col_sums: Vec<f64> = (0..6).map(|c| (0..4).map(|r| m.get(r, c)).sum()).collect();
        let rs = row_sum(&t);
        for (a, b) in rs.iter().zip(&col_sums) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Tiles always partition the matrix: total area equals matrix area.
    #[test]
    fn tiles_partition(rows in 1usize..40, cols in 1usize..40, th in 1usize..10, tw in 1usize..10) {
        let total: usize = TileIter::new(rows, cols, TileDims::new(th, tw))
            .map(|t| t.area())
            .sum();
        prop_assert_eq!(total, rows * cols);
    }

    /// Casting f64 -> f16 -> f64 introduces at most ~0.1% relative error for
    /// values in binary16's comfortable range.
    #[test]
    fn cast_roundtrip_error_bounded(m in matrix_strategy(3, 3)) {
        let h: Matrix<resoftmax_fp16::F16> = m.cast();
        let back: Matrix<f64> = h.cast();
        for ((_, _, a), (_, _, b)) in m.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-6);
        }
    }
}
