//! Tile partitioning mirroring GPU thread-block work distribution.
//!
//! The paper's central observation is about *which thread block owns which
//! piece of the attention matrix*: MatMul TBs own square output tiles, the
//! monolithic softmax TB owns whole rows, and the decomposed LS kernel's TBs
//! own square tiles again (which is what makes fusion legal). [`TileDims`] and
//! [`TileIter`] express those partitionings so both the numeric kernels and
//! the cost models in `resoftmax-kernels` derive them from one source.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Dimensions of one tile (thread-block working set), `h` rows × `w` cols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileDims {
    /// Tile height in rows.
    pub h: usize,
    /// Tile width in columns. The paper calls the LS sub-vector length `T`;
    /// fusing LS into MatMul requires `w == T == MatMul output tile width`.
    pub w: usize,
}

impl TileDims {
    /// Creates tile dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(h: usize, w: usize) -> Self {
        assert!(h > 0 && w > 0, "tile dims must be nonzero");
        TileDims { h, w }
    }

    /// Square tile.
    pub fn square(side: usize) -> Self {
        TileDims::new(side, side)
    }

    /// Elements per full tile.
    pub fn area(self) -> usize {
        self.h * self.w
    }

    /// Number of tiles needed to cover an `rows x cols` matrix (ceiling
    /// division in both dimensions).
    pub fn grid_for(self, rows: usize, cols: usize) -> (usize, usize) {
        (rows.div_ceil(self.h), cols.div_ceil(self.w))
    }

    /// Total tile count covering an `rows x cols` matrix.
    pub fn count_for(self, rows: usize, cols: usize) -> usize {
        let (gr, gc) = self.grid_for(rows, cols);
        gr * gc
    }
}

/// A rectangular region of a matrix: the working set of one thread block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileView {
    /// First row of the tile.
    pub row0: usize,
    /// First column of the tile.
    pub col0: usize,
    /// Height (clipped at the matrix edge).
    pub h: usize,
    /// Width (clipped at the matrix edge).
    pub w: usize,
}

impl TileView {
    /// Extracts this tile's contents from a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the view exceeds the matrix (cannot happen for views produced
    /// by [`TileIter`] over the same matrix shape).
    pub fn extract<T: Scalar>(&self, m: &Matrix<T>) -> Matrix<T> {
        m.block(self.row0, self.col0, self.h, self.w)
            .expect("tile view within matrix")
    }

    /// Writes `data` back at this tile's position.
    ///
    /// # Panics
    ///
    /// Panics if `data` has different dimensions than the view or exceeds the
    /// destination.
    pub fn write_back<T: Scalar>(&self, m: &mut Matrix<T>, data: &Matrix<T>) {
        assert_eq!((data.rows(), data.cols()), (self.h, self.w));
        m.write_block(self.row0, self.col0, data)
            .expect("tile view within matrix");
    }

    /// Elements in this (possibly edge-clipped) tile.
    pub fn area(&self) -> usize {
        self.h * self.w
    }
}

/// Iterator over the tiles covering an `rows x cols` matrix, row-major over
/// the tile grid, with edge tiles clipped.
#[derive(Debug, Clone)]
pub struct TileIter {
    rows: usize,
    cols: usize,
    dims: TileDims,
    next_r: usize,
    next_c: usize,
}

impl TileIter {
    /// Creates an iterator over all tiles of a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize, dims: TileDims) -> Self {
        TileIter {
            rows,
            cols,
            dims,
            next_r: 0,
            next_c: 0,
        }
    }
}

impl Iterator for TileIter {
    type Item = TileView;

    fn next(&mut self) -> Option<TileView> {
        if self.next_r >= self.rows || self.cols == 0 {
            return None;
        }
        let view = TileView {
            row0: self.next_r,
            col0: self.next_c,
            h: self.dims.h.min(self.rows - self.next_r),
            w: self.dims.w.min(self.cols - self.next_c),
        };
        self.next_c += self.dims.w;
        if self.next_c >= self.cols {
            self.next_c = 0;
            self.next_r += self.dims.h;
        }
        Some(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_grid_math() {
        let t = TileDims::new(64, 64);
        assert_eq!(t.area(), 4096);
        assert_eq!(t.grid_for(128, 128), (2, 2));
        assert_eq!(t.grid_for(130, 127), (3, 2));
        assert_eq!(t.count_for(130, 127), 6);
        assert_eq!(TileDims::square(8), TileDims::new(8, 8));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_panic() {
        let _ = TileDims::new(0, 4);
    }

    #[test]
    fn iter_covers_matrix_exactly_once() {
        let dims = TileDims::new(3, 4);
        let (rows, cols) = (10, 9);
        let mut covered = vec![0u32; rows * cols];
        for t in TileIter::new(rows, cols, dims) {
            for r in t.row0..t.row0 + t.h {
                for c in t.col0..t.col0 + t.w {
                    covered[r * cols + c] += 1;
                }
            }
        }
        assert!(covered.iter().all(|&x| x == 1), "each cell exactly once");
    }

    #[test]
    fn iter_count_matches_dims() {
        let dims = TileDims::new(3, 4);
        assert_eq!(TileIter::new(10, 9, dims).count(), dims.count_for(10, 9));
        assert_eq!(TileIter::new(0, 9, dims).count(), 0);
        assert_eq!(TileIter::new(9, 0, dims).count(), 0);
    }

    #[test]
    fn edge_tiles_clip() {
        let tiles: Vec<_> = TileIter::new(5, 5, TileDims::new(4, 4)).collect();
        assert_eq!(tiles.len(), 4);
        assert_eq!(
            tiles[3],
            TileView {
                row0: 4,
                col0: 4,
                h: 1,
                w: 1
            }
        );
        assert_eq!(tiles[3].area(), 1);
    }

    #[test]
    fn extract_write_back_roundtrip() {
        let m = Matrix::<f32>::from_fn(6, 6, |r, c| (r * 6 + c) as f32);
        let mut out = Matrix::<f32>::zeros(6, 6);
        for t in TileIter::new(6, 6, TileDims::new(4, 3)) {
            let block = t.extract(&m);
            t.write_back(&mut out, &block);
        }
        assert_eq!(out, m);
    }
}
