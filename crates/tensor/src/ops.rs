//! Reference linear-algebra operations.
//!
//! Two matrix-multiply dataflows are provided:
//!
//! * [`matmul`] — the naive triple loop with `f64` accumulation; the oracle
//!   everything else is tested against.
//! * [`matmul_tiled`] — the *outer-product dataflow* used by GPU MatMul
//!   kernels (Fig. 3(b) of the paper): the output is partitioned into
//!   square-ish tiles, one "thread block" per tile, LHS columns / RHS rows
//!   streamed through and accumulated into the resident output tile with
//!   `f32` accumulators (tensor-core style: half inputs, single-precision
//!   accumulate).
//!
//! The tiled variant exists so kernels in `resoftmax-kernels` share its exact
//! accumulation order — making "fused epilogue" results bit-comparable to
//! "separate kernel" results in tests.

use crate::matrix::{Matrix, ShapeError};
use crate::scalar::Scalar;
use crate::tile::TileDims;
use rayon::prelude::*;

/// Naive matrix multiply `A (m×k) · B (k×n)` with `f64` accumulation.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.rows()`.
pub fn matmul<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new(format!(
            "matmul {}x{} · {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    // Rows of the output are independent (the k-reduction happens entirely
    // within one row's dot products), so row bands parallelize bit-exactly.
    out.as_mut_slice()
        .par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(i, row)| {
            for (j, o) in row.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += a.get(i, p).to_f64() * b.get(p, j).to_f64();
                }
                *o = T::from_f64(acc);
            }
        });
    Ok(out)
}

/// `A (m×k) · Bᵀ` where `b` is stored as `n×k` — the `Q·Kᵀ` shape used by the
/// attention layer (both operands row-major, K not physically transposed).
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.cols()`.
pub fn matmul_transpose_b<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Result<Matrix<T>, ShapeError> {
    if a.cols() != b.cols() {
        return Err(ShapeError::new(format!(
            "matmul_transpose_b {}x{} · ({}x{})ᵀ",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut out = Matrix::zeros(m, n);
    out.as_mut_slice()
        .par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(i, row)| {
            for (j, o) in row.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += a.get(i, p).to_f64() * b.get(j, p).to_f64();
                }
                *o = T::from_f64(acc);
            }
        });
    Ok(out)
}

/// Tiled matrix multiply with the GPU outer-product dataflow and `f32`
/// accumulators.
///
/// The output is divided into `tiles.h x tiles.w` tiles; within each tile the
/// reduction dimension is traversed in order, accumulating rank-1 updates —
/// the same order a tensor-core MMA pipeline commits partial sums, so results
/// match fused-kernel implementations bit-for-bit at `T = F16`.
///
/// # Errors
///
/// Returns [`ShapeError`] if inner dimensions mismatch.
pub fn matmul_tiled<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    tiles: TileDims,
) -> Result<Matrix<T>, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new(format!(
            "matmul_tiled {}x{} · {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    // One band of tile-rows per chunk: every tile is computed by exactly one
    // worker with its own accumulator, in the same within-tile order as the
    // serial loop, so results are bit-identical at any thread count.
    out.as_mut_slice()
        .par_chunks_mut((tiles.h * n).max(1))
        .enumerate()
        .for_each(|(strip, band)| {
            let tr = strip * tiles.h;
            let th = band.len().checked_div(n).unwrap_or(0);
            for tc in (0..n).step_by(tiles.w) {
                let tw = tiles.w.min(n - tc);
                // Accumulator tile resident "on chip".
                let mut acc = vec![0.0f32; th * tw];
                for p in 0..k {
                    // One LHS column fragment and RHS row fragment: rank-1
                    // update.
                    for r in 0..th {
                        let av = a.get(tr + r, p).to_f32();
                        for c in 0..tw {
                            acc[r * tw + c] += av * b.get(p, tc + c).to_f32();
                        }
                    }
                }
                for r in 0..th {
                    for c in 0..tw {
                        band[r * n + tc + c] = T::from_f32(acc[r * tw + c]);
                    }
                }
            }
        });
    Ok(out)
}

/// Transposes a matrix.
pub fn transpose<T: Scalar>(m: &Matrix<T>) -> Matrix<T> {
    Matrix::from_fn(m.cols(), m.rows(), |r, c| m.get(c, r))
}

/// Elementwise sum of two equal-shaped matrices.
///
/// # Errors
///
/// Returns [`ShapeError`] on shape mismatch.
pub fn add<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<T>, ShapeError> {
    elementwise_binary(a, b, |x, y| T::from_f64(x.to_f64() + y.to_f64()))
}

/// Multiplies every element by a constant.
pub fn scale<T: Scalar>(m: &Matrix<T>, factor: f64) -> Matrix<T> {
    m.map(|x| T::from_f64(x.to_f64() * factor))
}

/// Applies a unary function elementwise.
pub fn elementwise_unary<T: Scalar, U: Scalar>(m: &Matrix<T>, f: impl FnMut(T) -> U) -> Matrix<U> {
    m.map(f)
}

/// Applies a binary function elementwise to two equal-shaped matrices.
///
/// # Errors
///
/// Returns [`ShapeError`] on shape mismatch.
pub fn elementwise_binary<T: Scalar, F: FnMut(T, T) -> T>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    mut f: F,
) -> Result<Matrix<T>, ShapeError> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new(format!(
            "elementwise {:?} vs {:?}",
            a.shape(),
            b.shape()
        )));
    }
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Matrix::from_vec(a.rows(), a.cols(), data)
}

/// Per-row maximum values.
pub fn row_max<T: Scalar>(m: &Matrix<T>) -> Vec<T> {
    (0..m.rows())
        .map(|r| {
            m.row(r)
                .iter()
                .copied()
                .fold(T::neg_infinity(), |a, b| if b > a { b } else { a })
        })
        .collect()
}

/// Per-row sums with `f64` accumulation.
pub fn row_sum<T: Scalar>(m: &Matrix<T>) -> Vec<T> {
    (0..m.rows())
        .map(|r| T::from_f64(m.row(r).iter().map(|x| x.to_f64()).sum()))
        .collect()
}

/// Largest absolute elementwise difference between two matrices (in `f64`).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn max_abs_diff<T: Scalar, U: Scalar>(a: &Matrix<T>, b: &Matrix<U>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "max_abs_diff shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x.to_f64() - y.to_f64()).abs())
        .fold(0.0, f64::max)
}

/// Frobenius norm in `f64`.
pub fn frobenius_norm<T: Scalar>(m: &Matrix<T>) -> f64 {
    m.as_slice()
        .iter()
        .map(|x| x.to_f64() * x.to_f64())
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::randn_matrix;
    use resoftmax_fp16::F16;

    #[test]
    fn matmul_small_known() {
        let a = Matrix::<f32>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::<f32>::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_tiled(&a, &b, TileDims::new(2, 2)).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = randn_matrix::<f32>(5, 5, 1.0, 42);
        let i = Matrix::<f32>::identity(5);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = randn_matrix::<f32>(4, 6, 1.0, 1);
        let b = randn_matrix::<f32>(5, 6, 1.0, 2); // n x k
        let via_t = matmul(&a, &transpose(&b)).unwrap();
        let direct = matmul_transpose_b(&a, &b).unwrap();
        assert!(max_abs_diff(&via_t, &direct) < 1e-6);
        // mismatched inner dims
        let bad = Matrix::<f32>::zeros(5, 7);
        assert!(matmul_transpose_b(&a, &bad).is_err());
    }

    #[test]
    fn tiled_matches_naive_fp32() {
        let a = randn_matrix::<f32>(13, 9, 1.0, 7);
        let b = randn_matrix::<f32>(9, 11, 1.0, 8);
        let naive = matmul(&a, &b).unwrap();
        for tile in [1, 2, 3, 4, 8, 16] {
            let tiled = matmul_tiled(&a, &b, TileDims::new(tile, tile)).unwrap();
            assert!(
                max_abs_diff(&naive, &tiled) < 1e-4,
                "tile {tile}: diff {}",
                max_abs_diff(&naive, &tiled)
            );
        }
    }

    #[test]
    fn tiled_fp16_close_to_fp64_reference() {
        let a64 = randn_matrix::<f64>(16, 32, 0.5, 3);
        let b64 = randn_matrix::<f64>(32, 16, 0.5, 4);
        let ref64 = matmul(&a64, &b64).unwrap();
        let a16: Matrix<F16> = a64.cast();
        let b16: Matrix<F16> = b64.cast();
        let c16 = matmul_tiled(&a16, &b16, TileDims::new(8, 8)).unwrap();
        // fp16 inputs + fp32 accumulate: expect ~1e-2 relative error at k=32
        assert!(max_abs_diff(&ref64, &c16) < 0.05);
    }

    #[test]
    fn transpose_involution() {
        let m = randn_matrix::<f32>(3, 7, 1.0, 5);
        assert_eq!(transpose(&transpose(&m)), m);
        assert_eq!(transpose(&m).shape(), (7, 3));
        assert_eq!(transpose(&m).get(6, 2), m.get(2, 6));
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::<f32>::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::<f32>::from_rows(&[&[10.0, 20.0]]);
        assert_eq!(add(&a, &b).unwrap().as_slice(), &[11.0, 22.0]);
        assert_eq!(scale(&a, 3.0).as_slice(), &[3.0, 6.0]);
        let bad = Matrix::<f32>::zeros(2, 1);
        assert!(add(&a, &bad).is_err());
    }

    #[test]
    fn row_reductions() {
        let m = Matrix::<f32>::from_rows(&[&[1.0, 5.0, 3.0], &[-2.0, -7.0, -1.0]]);
        assert_eq!(row_max(&m), vec![5.0, -1.0]);
        assert_eq!(row_sum(&m), vec![9.0, -10.0]);
    }

    #[test]
    fn row_max_handles_all_neg_infinity() {
        let m = Matrix::<f32>::filled(1, 3, f32::NEG_INFINITY);
        assert_eq!(row_max(&m), vec![f32::NEG_INFINITY]);
    }

    #[test]
    fn norms_and_diffs() {
        let m = Matrix::<f32>::from_rows(&[&[3.0, 4.0]]);
        assert!((frobenius_norm(&m) - 5.0).abs() < 1e-12);
        let z = Matrix::<f32>::zeros(1, 2);
        assert_eq!(max_abs_diff(&m, &z), 4.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn max_abs_diff_shape_panics() {
        let a = Matrix::<f32>::zeros(1, 2);
        let b = Matrix::<f32>::zeros(2, 1);
        let _ = max_abs_diff(&a, &b);
    }
}
