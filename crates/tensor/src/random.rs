//! Seeded random matrix generation.
//!
//! All randomness in the reproduction flows through explicit seeds so every
//! experiment is deterministic — the substitute for loading pre-trained
//! HuggingFace weights (see DESIGN.md: timing and traffic depend on matrix
//! dimensions, not values).

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use rand::distributions::{Distribution, Uniform};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Standard-normal-ish matrix via Box–Muller from a seeded ChaCha stream,
/// scaled by `std`.
///
/// # Example
///
/// ```
/// use resoftmax_tensor::randn_matrix;
/// let a = randn_matrix::<f32>(4, 4, 1.0, 42);
/// let b = randn_matrix::<f32>(4, 4, 1.0, 42);
/// assert_eq!(a, b); // deterministic in the seed
/// ```
pub fn randn_matrix<T: Scalar>(rows: usize, cols: usize, std: f64, seed: u64) -> Matrix<T> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let unit = Uniform::new(f64::MIN_POSITIVE, 1.0f64);
    let mut spare: Option<f64> = None;
    Matrix::from_fn(rows, cols, |_, _| {
        let z = if let Some(s) = spare.take() {
            s
        } else {
            let u1: f64 = unit.sample(&mut rng);
            let u2: f64 = unit.sample(&mut rng);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            spare = Some(r * theta.sin());
            r * theta.cos()
        };
        T::from_f64(z * std)
    })
}

/// Uniform matrix in `[lo, hi)` from a seeded ChaCha stream.
pub fn uniform_matrix<T: Scalar>(
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
    seed: u64,
) -> Matrix<T> {
    assert!(lo < hi, "empty uniform range");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dist = Uniform::new(lo, hi);
    Matrix::from_fn(rows, cols, |_, _| T::from_f64(dist.sample(&mut rng)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_fp16::F16;

    #[test]
    fn deterministic_in_seed() {
        let a = randn_matrix::<f32>(8, 8, 1.0, 7);
        let b = randn_matrix::<f32>(8, 8, 1.0, 7);
        let c = randn_matrix::<f32>(8, 8, 1.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments_roughly_right() {
        let m = randn_matrix::<f64>(100, 100, 2.0, 123);
        let n = m.len() as f64;
        let mean = m.as_slice().iter().sum::<f64>() / n;
        let var = m
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_in_range() {
        let m = uniform_matrix::<f32>(50, 50, -1.0, 3.0, 99);
        assert!(m.as_slice().iter().all(|&x| (-1.0..3.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "empty uniform range")]
    fn uniform_bad_range_panics() {
        let _ = uniform_matrix::<f32>(1, 1, 1.0, 1.0, 0);
    }

    #[test]
    fn works_at_half_precision() {
        let m = randn_matrix::<F16>(16, 16, 1.0, 5);
        assert!(m.as_slice().iter().all(|x| x.is_finite()));
        // same seed at different precision tracks the f64 stream
        let m64 = randn_matrix::<f64>(16, 16, 1.0, 5);
        for (a, b) in m.as_slice().iter().zip(m64.as_slice()) {
            assert!((a.to_f64() - b).abs() < 1e-2);
        }
    }
}
