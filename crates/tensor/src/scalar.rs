//! The [`Scalar`] element trait connecting `f32`, `f64` and software binary16.

use core::fmt::{Debug, Display};
use resoftmax_fp16::F16;

/// Element types a [`crate::Matrix`] can hold.
///
/// The trait routes all arithmetic through `f64` "accumulator" conversions so
/// generic reference code can be written once and instantiated at any
/// precision; precision-sensitive kernels (e.g. half-precision softmax)
/// instead convert explicitly at each step to model GPU rounding behaviour.
///
/// This trait is sealed: the set of supported element types is fixed
/// (`f32`, `f64`, [`F16`]).
pub trait Scalar:
    Copy + PartialEq + PartialOrd + Debug + Display + Default + Send + Sync + private::Sealed + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Value used by mask layers for "discard": negative infinity.
    fn neg_infinity() -> Self;
    /// Widens to `f64` (exact for all supported types).
    fn to_f64(self) -> f64;
    /// Rounds from `f64` to this precision (single rounding).
    fn from_f64(x: f64) -> Self;
    /// Widens to `f32` (exact for `f32` and `F16`; lossy for `f64`).
    fn to_f32(self) -> f32;
    /// Rounds from `f32` to this precision.
    fn from_f32(x: f32) -> Self;
    /// Returns `true` if the value is NaN.
    fn is_nan(self) -> bool;
    /// Returns `true` if the value is finite.
    fn is_finite(self) -> bool;
    /// Size of one element in bytes when stored in device memory.
    const BYTES: usize;
    /// Human-readable precision name (`"fp16"`, `"fp32"`, `"fp64"`).
    const NAME: &'static str;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for super::F16 {}
}

impl Scalar for f32 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn neg_infinity() -> Self {
        f32::NEG_INFINITY
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self
    }
    #[inline]
    fn from_f32(x: f32) -> Self {
        x
    }
    #[inline]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    const BYTES: usize = 4;
    const NAME: &'static str = "fp32";
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn neg_infinity() -> Self {
        f64::NEG_INFINITY
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }
    #[inline]
    fn from_f32(x: f32) -> Self {
        x as f64
    }
    #[inline]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    const BYTES: usize = 8;
    const NAME: &'static str = "fp64";
}

impl Scalar for F16 {
    #[inline]
    fn zero() -> Self {
        F16::ZERO
    }
    #[inline]
    fn one() -> Self {
        F16::ONE
    }
    #[inline]
    fn neg_infinity() -> Self {
        F16::NEG_INFINITY
    }
    #[inline]
    fn to_f64(self) -> f64 {
        F16::to_f64(self)
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        F16::from_f64(x)
    }
    #[inline]
    fn to_f32(self) -> f32 {
        F16::to_f32(self)
    }
    #[inline]
    fn from_f32(x: f32) -> Self {
        F16::from_f32(x)
    }
    #[inline]
    fn is_nan(self) -> bool {
        F16::is_nan(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        F16::is_finite(self)
    }
    const BYTES: usize = 2;
    const NAME: &'static str = "fp16";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>(vals: &[f64]) {
        for &v in vals {
            let x = T::from_f64(v);
            assert!(x.is_finite());
            assert!((x.to_f64() - v).abs() <= v.abs() * 1e-3 + 1e-6);
        }
    }

    #[test]
    fn roundtrips_all_precisions() {
        let vals = [0.0, 1.0, -2.5, 100.0, 0.125];
        roundtrip::<f32>(&vals);
        roundtrip::<f64>(&vals);
        roundtrip::<F16>(&vals);
    }

    #[test]
    fn constants() {
        assert_eq!(<f32 as Scalar>::zero(), 0.0);
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!(<F16 as Scalar>::one().to_f32(), 1.0);
        assert!(<F16 as Scalar>::neg_infinity().is_infinite());
        assert!(!<f32 as Scalar>::neg_infinity().is_finite());
    }

    #[test]
    fn bytes_and_names() {
        assert_eq!(<F16 as Scalar>::BYTES, 2);
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        assert_eq!(<f64 as Scalar>::BYTES, 8);
        assert_eq!(<F16 as Scalar>::NAME, "fp16");
    }

    #[test]
    fn nan_detection() {
        assert!(<f32 as Scalar>::is_nan(f32::NAN));
        assert!(<F16 as Scalar>::is_nan(F16::NAN));
        assert!(!<f64 as Scalar>::is_nan(1.0));
    }
}
