//! Dense matrix types and reference linear-algebra operations.
//!
//! This crate is the numeric substrate for the softmax-recomposition
//! reproduction: a row-major [`Matrix`] generic over a [`Scalar`] element type
//! (including software binary16 via [`resoftmax_fp16::F16`]), tile views that
//! mirror how GPU thread blocks partition work, and reference implementations
//! of the operations appearing in a transformer's scaled-dot-product-attention
//! block (matrix multiply in several dataflows, transposes, row reductions,
//! elementwise maps).
//!
//! Kernels in `resoftmax-kernels` are written against these primitives and are
//! validated against the naive reference implementations here.
//!
//! # Example
//!
//! ```
//! use resoftmax_tensor::{Matrix, matmul};
//!
//! let a = Matrix::<f32>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::<f32>::identity(2);
//! let c = matmul(&a, &b).unwrap();
//! assert_eq!(c, a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod ops;
mod random;
mod scalar;
mod tile;

pub use matrix::{Matrix, ShapeError};
pub use ops::{
    add, elementwise_binary, elementwise_unary, frobenius_norm, matmul, matmul_tiled,
    matmul_transpose_b, max_abs_diff, row_max, row_sum, scale, transpose,
};
pub use random::{randn_matrix, uniform_matrix};
pub use scalar::Scalar;
pub use tile::{TileDims, TileIter, TileView};
