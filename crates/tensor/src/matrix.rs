//! Row-major dense matrix storage.

use crate::scalar::Scalar;
use core::fmt;

/// Error returned when operand shapes are incompatible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    msg: String,
}

impl ShapeError {
    /// Creates a shape error with a human-readable description.
    ///
    /// Public so downstream crates building on these primitives (e.g. the
    /// block-sparse ops) can report dimension mismatches uniformly.
    pub fn new(msg: impl Into<String>) -> Self {
        ShapeError { msg: msg.into() }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}

/// A dense row-major matrix.
///
/// This is deliberately a simple, safe container: all the performance-relevant
/// modeling happens in `resoftmax-gpusim`; numerics here only need to be
/// *correct* and mirror GPU dataflow ordering where that affects rounding.
///
/// # Example
///
/// ```
/// use resoftmax_tensor::Matrix;
/// let mut m = Matrix::<f32>::zeros(2, 3);
/// m.set(1, 2, 7.0);
/// assert_eq!(m.get(1, 2), 7.0);
/// assert_eq!(m.row(1), &[0.0, 0.0, 7.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Creates a matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a generator function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let ncols = rows.first().map_or(0, |r| r.len());
        assert!(
            rows.iter().all(|r| r.len() == ncols),
            "all rows must have equal length"
        );
        Matrix {
            rows: rows.len(),
            cols: ncols,
            data: rows.concat(),
        }
    }

    /// Creates a matrix taking ownership of a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "data length {} != {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { T::one() } else { T::zero() })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for a 0-element matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes when stored at this precision in device memory.
    #[inline]
    pub fn device_bytes(&self) -> u64 {
        (self.len() * T::BYTES) as u64
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<T> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning the data vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Applies `f` to each element, producing a new matrix of possibly
    /// different element type.
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Converts every element to another scalar precision (rounding once).
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        self.map(|x| U::from_f64(x.to_f64()))
    }

    /// Copies a rectangular region `src` into this matrix with its top-left
    /// corner at `(r0, c0)`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the region does not fit.
    pub fn write_block(&mut self, r0: usize, c0: usize, src: &Matrix<T>) -> Result<(), ShapeError> {
        if r0 + src.rows > self.rows || c0 + src.cols > self.cols {
            return Err(ShapeError::new(format!(
                "block {}x{} at ({},{}) exceeds {}x{}",
                src.rows, src.cols, r0, c0, self.rows, self.cols
            )));
        }
        for r in 0..src.rows {
            let dst_off = (r0 + r) * self.cols + c0;
            self.data[dst_off..dst_off + src.cols].copy_from_slice(src.row(r));
        }
        Ok(())
    }

    /// Extracts a copy of the `h x w` block with top-left corner `(r0, c0)`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the region does not fit.
    pub fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Result<Matrix<T>, ShapeError> {
        if r0 + h > self.rows || c0 + w > self.cols {
            return Err(ShapeError::new(format!(
                "block {}x{} at ({},{}) exceeds {}x{}",
                h, w, r0, c0, self.rows, self.cols
            )));
        }
        Ok(Matrix::from_fn(h, w, |r, c| self.get(r0 + r, c0 + c)))
    }

    /// Iterator over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / cols, i % cols, v))
    }

    /// Returns `true` if any element is NaN.
    pub fn has_nan(&self) -> bool {
        self.data.iter().any(|x| x.is_nan())
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix<{}> {}x{} [", T::NAME, self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.get(r, c))?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_fp16::F16;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::<f32>::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        m.set(2, 3, 5.0);
        assert_eq!(m.get(2, 3), 5.0);
        assert_eq!(m.col(3), vec![0.0, 0.0, 5.0]);
    }

    #[test]
    fn from_rows_and_vec() {
        let m = Matrix::<f32>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(1, 0), 3.0);
        let v = Matrix::<f32>::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m, v);
        assert!(Matrix::<f32>::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::<f32>::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::<f32>::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn identity() {
        let i = Matrix::<f64>::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.get(2, 2), 1.0);
    }

    #[test]
    fn rows_and_slices() {
        let m = Matrix::<f32>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let mut m = m;
        m.row_mut(1)[0] = 9.0;
        assert_eq!(m.get(1, 0), 9.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 9.0, 4.0]);
    }

    #[test]
    fn blocks() {
        let m = Matrix::<f32>::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let b = m.block(1, 2, 2, 2).unwrap();
        assert_eq!(b.as_slice(), &[6.0, 7.0, 10.0, 11.0]);
        assert!(m.block(3, 3, 2, 2).is_err());

        let mut z = Matrix::<f32>::zeros(4, 4);
        z.write_block(2, 2, &b).unwrap();
        assert_eq!(z.get(2, 2), 6.0);
        assert_eq!(z.get(3, 3), 11.0);
        assert!(z.write_block(3, 3, &b).is_err());
    }

    #[test]
    fn map_and_cast() {
        let m = Matrix::<f32>::from_rows(&[&[1.5, -2.5]]);
        let doubled = m.map(|x| x * 2.0);
        assert_eq!(doubled.as_slice(), &[3.0, -5.0]);
        let h: Matrix<F16> = m.cast();
        assert_eq!(h.get(0, 0).to_f32(), 1.5);
        let back: Matrix<f64> = h.cast();
        assert_eq!(back.get(0, 1), -2.5);
    }

    #[test]
    fn device_bytes_accounts_for_precision() {
        let m32 = Matrix::<f32>::zeros(10, 10);
        let m16 = Matrix::<F16>::zeros(10, 10);
        assert_eq!(m32.device_bytes(), 400);
        assert_eq!(m16.device_bytes(), 200);
    }

    #[test]
    fn iter_row_major() {
        let m = Matrix::<f32>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let items: Vec<_> = m.iter().collect();
        assert_eq!(items[0], (0, 0, 1.0));
        assert_eq!(items[3], (1, 1, 4.0));
    }

    #[test]
    fn nan_detection() {
        let mut m = Matrix::<f32>::zeros(2, 2);
        assert!(!m.has_nan());
        m.set(0, 1, f32::NAN);
        assert!(m.has_nan());
    }

    #[test]
    fn debug_is_nonempty_and_truncates() {
        let m = Matrix::<f32>::zeros(20, 20);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix<fp32> 20x20"));
        assert!(s.contains('…'));
    }

    #[test]
    fn shape_error_display() {
        let e = Matrix::<f32>::from_vec(2, 2, vec![0.0]).unwrap_err();
        assert!(e.to_string().contains("shape mismatch"));
    }
}
