//! Traffic conservation: declared DRAM totals vs. analytic formulas.
//!
//! Every cost generator derives a kernel's DRAM traffic from an analytic
//! formula over its shapes; the formula's inputs travel with the kernel as
//! [`KernelMeta`](resoftmax_gpusim::KernelMeta). This module re-evaluates
//! the formula from that metadata and compares it against the declared
//! [`TbSet`](resoftmax_gpusim::TbSet) byte totals, so a refactor that
//! changes one side without the other — or a schedule transformation that
//! corrupts work figures — is caught without running the simulator.
//!
//! Declared totals carry the library-overhead multipliers `build_schedule`
//! applies after generation (and the sparse gather penalty); the comparison
//! divides them back out via [`ScheduleSpec::work_overhead`].
//!
//! A second check guards the L2 model's input contract: per-buffer traffic
//! attribution must not exceed the declared DRAM totals. (Under-attribution
//! is legal — unattributed traffic is modeled as always-miss.)

use crate::diagnostic::{Diagnostic, Rule, Severity};
use crate::spec::{ScheduleSpec, SparseSpec};
use resoftmax_gpusim::{KernelCategory, KernelDesc};

const FP16_BYTES: f64 = 2.0;
/// Relative tolerance on the formula comparison; the mirrored formulas are
/// exact, so this only absorbs float rounding through the overhead scaling.
/// Tight enough that a padded-TB traffic overcount (a remainder thread
/// block charged for a full group) fails the check even at small grids.
const REL_TOL: f64 = 0.005;

/// Outcome of re-deriving a kernel's expected traffic.
enum Expected {
    /// Formula evaluated: expected (read, write) bytes before overheads.
    Bytes { read: f64, write: f64 },
    /// The kernel's category has a formula but the metadata to evaluate it
    /// is missing.
    Missing,
    /// No formula applies (glue without elementwise metadata).
    Skip,
}

/// Attention-shape metadata required by every SDA formula.
struct Attn {
    l: f64,
    l_u: usize,
    kv: f64,
    kv_u: usize,
    d_head: f64,
    d_head_u: usize,
    inst: f64,
}

impl Attn {
    fn from(k: &KernelDesc) -> Option<Attn> {
        let (l, kv, d, i) = (
            k.meta.rows?,
            k.meta.kv_len?,
            k.meta.d_head?,
            k.meta.instances?,
        );
        Some(Attn {
            l: l as f64,
            l_u: l,
            kv: kv as f64,
            kv_u: kv,
            d_head: d as f64,
            d_head_u: d,
            inst: i as f64,
        })
    }

    /// One Q-side activation plane: `L × D_head` FP16 per instance.
    fn q_bytes(&self) -> f64 {
        self.l * self.d_head * FP16_BYTES * self.inst
    }

    /// One KV-side activation plane: `KV × D_head` FP16 per instance.
    fn kv_bytes(&self) -> f64 {
        self.kv * self.d_head * FP16_BYTES * self.inst
    }
}

fn ceil_div(a: usize, b: usize) -> f64 {
    a.div_ceil(b.max(1)) as f64
}

/// Evaluates the analytic traffic formula for `k` from its metadata,
/// mirroring the cost generators in `resoftmax-kernels`.
fn expected(spec: &ScheduleSpec, k: &KernelDesc) -> Expected {
    match k.category {
        KernelCategory::MatMulQk
        | KernelCategory::MatMulPv
        | KernelCategory::Softmax
        | KernelCategory::LocalSoftmax
        | KernelCategory::InterReduction
        | KernelCategory::GlobalScaling
        | KernelCategory::FusedAttention => {
            if let Some(dec) = &spec.decode {
                return expected_decode_attn(spec, dec, k);
            }
            let Some(attn) = Attn::from(k) else {
                return Expected::Missing;
            };
            if k.meta.sparse_block.is_some() {
                let Some(sparse) = &spec.sparse else {
                    return Expected::Missing;
                };
                expected_sparse_attn(k, &attn, sparse)
            } else {
                expected_dense_attn(k, &attn)
            }
        }
        KernelCategory::Fc | KernelCategory::FeedForward => {
            let (Some(rows), Some(d_in), Some(d_out), Some(tm), Some(tn)) = (
                k.meta.rows,
                k.meta.d_in,
                k.meta.d_out,
                k.meta.tile_m,
                k.meta.tile_n,
            ) else {
                return Expected::Missing;
            };
            let grid = ceil_div(rows, tm) * ceil_div(d_out, tn);
            Expected::Bytes {
                read: (rows * d_in + d_in * d_out) as f64 * FP16_BYTES,
                write: grid * (tm * tn) as f64 * FP16_BYTES,
            }
        }
        KernelCategory::LayerNorm => {
            let (Some(rows), Some(d)) = (k.meta.rows, k.meta.d_out) else {
                return Expected::Missing;
            };
            let bytes = (rows * d) as f64 * FP16_BYTES;
            Expected::Bytes {
                read: bytes,
                write: bytes,
            }
        }
        KernelCategory::Scale
        | KernelCategory::Mask
        | KernelCategory::Activation
        | KernelCategory::Other => {
            let (Some(elems), Some(streams)) = (k.meta.elems, k.meta.input_streams) else {
                // Scale/Mask are part of the SDA block; glue without
                // elementwise metadata is simply not modeled.
                return if k.category.in_sda() {
                    Expected::Missing
                } else {
                    Expected::Skip
                };
            };
            let per_tb = 2048u64;
            let grid = elems.div_ceil(per_tb) as f64;
            Expected::Bytes {
                read: grid * (per_tb as usize * streams) as f64 * FP16_BYTES,
                write: grid * per_tb as f64 * FP16_BYTES,
            }
        }
    }
}

fn expected_dense_attn(k: &KernelDesc, a: &Attn) -> Expected {
    match k.category {
        KernelCategory::MatMulQk => {
            let (Some(m), Some(n)) = (k.meta.tile_m, k.meta.tile_n) else {
                return Expected::Missing;
            };
            let grid = a.inst * ceil_div(a.l_u, m) * ceil_div(a.kv_u, n);
            let extra = if k.meta.fused_ls {
                2.0 * m as f64 * FP16_BYTES
            } else {
                0.0
            };
            Expected::Bytes {
                read: a.q_bytes() + a.kv_bytes(),
                write: grid * ((m * n) as f64 * FP16_BYTES + extra),
            }
        }
        KernelCategory::MatMulPv => {
            let (Some(m), Some(n)) = (k.meta.tile_m, k.meta.tile_n) else {
                return Expected::Missing;
            };
            let grid = a.inst * ceil_div(a.l_u, m) * ceil_div(a.d_head_u, n);
            let gs_read = if k.meta.fused_gs {
                let Some(t) = k.meta.sub_vector else {
                    return Expected::Missing;
                };
                grid * (m * (a.kv_u / t.max(1)).max(1)) as f64 * FP16_BYTES
            } else {
                0.0
            };
            Expected::Bytes {
                read: grid * (m * a.kv_u) as f64 * FP16_BYTES + gs_read + a.kv_bytes(),
                write: grid * (m * n) as f64 * FP16_BYTES,
            }
        }
        KernelCategory::Softmax => {
            let bytes = a.l * a.inst * a.kv * FP16_BYTES;
            Expected::Bytes {
                read: bytes,
                write: bytes,
            }
        }
        KernelCategory::LocalSoftmax => {
            let Some(t) = k.meta.sub_vector else {
                return Expected::Missing;
            };
            let tiles = ceil_div(a.l_u, t) * ceil_div(a.kv_u, t) * a.inst;
            let tile_bytes = (t * t) as f64 * FP16_BYTES;
            Expected::Bytes {
                read: tiles * tile_bytes,
                write: tiles * (tile_bytes + 2.0 * t as f64 * FP16_BYTES),
            }
        }
        KernelCategory::InterReduction => {
            let Some(t) = k.meta.sub_vector else {
                return Expected::Missing;
            };
            let n_sv = (a.kv_u / t.max(1)).max(1) as f64;
            let rows_per_tb = 64.0;
            let grid = ((a.l * a.inst) / rows_per_tb).ceil();
            Expected::Bytes {
                read: grid * rows_per_tb * 2.0 * n_sv * FP16_BYTES,
                write: grid * rows_per_tb * n_sv * FP16_BYTES,
            }
        }
        KernelCategory::GlobalScaling => {
            let Some(t) = k.meta.sub_vector else {
                return Expected::Missing;
            };
            let per_tb = 2048usize;
            let grid = ((a.l * a.kv * a.inst) / per_tb as f64).ceil();
            Expected::Bytes {
                read: grid * (per_tb as f64 + (per_tb / t.max(1)) as f64) * FP16_BYTES,
                write: grid * per_tb as f64 * FP16_BYTES,
            }
        }
        KernelCategory::FusedAttention => {
            let Some(m) = k.meta.tile_m else {
                return Expected::Missing;
            };
            let grid = ceil_div(a.l_u, m) * a.inst;
            Expected::Bytes {
                read: a.q_bytes() + 2.0 * a.kv_bytes(),
                write: grid * (m * a.d_head_u) as f64 * FP16_BYTES,
            }
        }
        _ => unreachable!("dense dispatch covers only SDA categories"),
    }
}

/// Exact per-row sums for a batched-decode iteration, mirroring
/// `build_batched_decode_schedule`: each of the `ctxs.len()` rows runs
/// `heads` GEMV instances over its own context length.
fn expected_decode_attn(
    spec: &ScheduleSpec,
    dec: &crate::spec::DecodeSpec,
    k: &KernelDesc,
) -> Expected {
    let h = spec.heads as f64;
    let d_head = spec.d_head() as f64;
    let rows = dec.ctxs.len() as f64;
    let sum_ctx = dec.total_ctx() as f64;
    let sum_sv = dec.total_sub_vectors(spec.tile_n) as f64;
    match k.category {
        // Per instance: stream the K-cache slice plus one q row and one k
        // row; write the score (or x') row, plus m'/d' when LS is fused.
        KernelCategory::MatMulQk => Expected::Bytes {
            read: h * (sum_ctx + 2.0 * rows) * d_head * FP16_BYTES,
            write: h * (sum_ctx + if k.meta.fused_ls { 2.0 * sum_sv } else { 0.0 }) * FP16_BYTES,
        },
        // Monolithic softmax rewrites each score row in place.
        KernelCategory::Softmax => Expected::Bytes {
            read: h * sum_ctx * FP16_BYTES,
            write: h * sum_ctx * FP16_BYTES,
        },
        // IR folds each row's m'/d' pairs into one r' plane.
        KernelCategory::InterReduction => Expected::Bytes {
            read: h * 2.0 * sum_sv * FP16_BYTES,
            write: h * sum_sv * FP16_BYTES,
        },
        // Per instance: stream the V-cache slice plus the probability (or
        // x') row and one v row — and the r' plane under a GS prologue —
        // writing one d_head-wide output row.
        KernelCategory::MatMulPv => Expected::Bytes {
            read: h
                * (sum_ctx * d_head
                    + sum_ctx
                    + rows * d_head
                    + if k.meta.fused_gs { sum_sv } else { 0.0 })
                * FP16_BYTES,
            write: h * rows * d_head * FP16_BYTES,
        },
        // Decode schedules never emit these.
        _ => Expected::Missing,
    }
}

fn expected_sparse_attn(k: &KernelDesc, a: &Attn, s: &SparseSpec) -> Expected {
    let b = s.block;
    let bb = (b * b) as f64 * FP16_BYTES;
    let nnz_bytes = s.nnz_elements() as f64 * FP16_BYTES * a.inst;
    let intermediate_bytes = s.intermediate_elements() as f64 * FP16_BYTES * a.inst;
    match k.category {
        KernelCategory::MatMulQk => {
            let grid = s.nnz_blocks as f64 * a.inst;
            let extra = if k.meta.fused_ls {
                2.0 * b as f64 * FP16_BYTES
            } else {
                0.0
            };
            Expected::Bytes {
                read: 2.0 * a.q_bytes(),
                write: grid * (bb + extra),
            }
        }
        KernelCategory::Softmax => Expected::Bytes {
            read: nnz_bytes,
            write: nnz_bytes,
        },
        KernelCategory::LocalSoftmax => {
            let grid = s.nnz_blocks as f64 * a.inst;
            Expected::Bytes {
                read: grid * bb,
                write: grid * (bb + 2.0 * b as f64 * FP16_BYTES),
            }
        }
        KernelCategory::InterReduction => {
            let svs: f64 = s.row_counts.iter().map(|&c| c.max(1) as f64).sum();
            let plane = svs * b as f64 * FP16_BYTES * a.inst;
            Expected::Bytes {
                read: 2.0 * plane,
                write: plane,
            }
        }
        KernelCategory::GlobalScaling => {
            let grid = s.nnz_blocks as f64 * a.inst;
            Expected::Bytes {
                read: grid * (bb + b as f64 * FP16_BYTES),
                write: grid * bb,
            }
        }
        KernelCategory::MatMulPv => {
            let grid = s.row_counts.len() as f64 * a.inst;
            let gs_read = if k.meta.fused_gs {
                intermediate_bytes
            } else {
                0.0
            };
            Expected::Bytes {
                read: nnz_bytes + gs_read + a.q_bytes(),
                write: grid * (b * a.d_head_u) as f64 * FP16_BYTES,
            }
        }
        KernelCategory::FusedAttention => {
            let grid = s.row_counts.len() as f64 * a.inst;
            Expected::Bytes {
                read: 3.0 * a.q_bytes(),
                write: grid * (b * a.d_head_u) as f64 * FP16_BYTES,
            }
        }
        _ => unreachable!("sparse dispatch covers only SDA categories"),
    }
}

fn close(actual: f64, expected: f64) -> bool {
    (actual - expected).abs() <= REL_TOL * expected.max(1.0)
}

/// Runs the traffic-conservation and attribution checks.
pub fn check(spec: &ScheduleSpec, kernels: &[KernelDesc], diags: &mut Vec<Diagnostic>) {
    for (i, k) in kernels.iter().enumerate() {
        let overhead = spec.work_overhead(k);
        let declared_read = k.tbs.total_read_bytes() / overhead;
        let declared_write = k.tbs.total_write_bytes() / overhead;

        match expected(spec, k) {
            Expected::Bytes { read, write } => {
                if !close(declared_read, read) {
                    diags.push(Diagnostic::error(
                        Rule::TrafficFormula,
                        i,
                        format!(
                            "`{}` declares {declared_read:.0} B of DRAM reads (overhead \
                             removed) but its {} formula implies {read:.0} B",
                            k.name, k.category
                        ),
                    ));
                }
                if !close(declared_write, write) {
                    diags.push(Diagnostic::error(
                        Rule::TrafficFormula,
                        i,
                        format!(
                            "`{}` declares {declared_write:.0} B of DRAM writes (overhead \
                             removed) but its {} formula implies {write:.0} B",
                            k.name, k.category
                        ),
                    ));
                }
            }
            Expected::Missing => diags.push(Diagnostic {
                rule: Rule::TrafficFormula,
                severity: Severity::Warning,
                kernel: Some(i),
                message: format!(
                    "`{}` ({}) carries no shape metadata; its traffic cannot be checked",
                    k.name, k.category
                ),
            }),
            Expected::Skip => {}
        }

        // Attribution: the L2 model treats unattributed traffic as
        // always-miss, so under-attribution is legal — but attributing more
        // bytes to buffers than the kernel moves breaks the model's input
        // contract.
        let attr_read: u64 = k.reads.iter().map(|b| b.bytes).sum();
        let attr_write: u64 = k.writes.iter().map(|b| b.bytes).sum();
        if attr_read as f64 > declared_read * (1.0 + REL_TOL) {
            diags.push(Diagnostic::error(
                Rule::TrafficAttribution,
                i,
                format!(
                    "`{}` attributes {attr_read} B of reads to buffers but declares only \
                     {declared_read:.0} B of DRAM reads (overhead removed)",
                    k.name
                ),
            ));
        }
        if attr_write as f64 > declared_write * (1.0 + REL_TOL) {
            diags.push(Diagnostic::error(
                Rule::TrafficAttribution,
                i,
                format!(
                    "`{}` attributes {attr_write} B of writes to buffers but declares only \
                     {declared_write:.0} B of DRAM writes (overhead removed)",
                    k.name
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScheduleSpec;
    use resoftmax_gpusim::{TbSet, TbWork};
    use resoftmax_kernels::costs::{common, dense, AttnDims, TileConfig};

    fn dims() -> AttnDims {
        AttnDims::new(1024, 64, 16, 1)
    }

    fn spec() -> ScheduleSpec {
        ScheduleSpec::dense_test(1024, 1)
    }

    #[test]
    fn generated_dense_kernels_satisfy_their_formulas() {
        let d = dims();
        let t = TileConfig::default();
        let ks = vec![
            dense::matmul_qk(&d, t, "l0", dense::QkEpilogue::ScaleMaskLocalSoftmax),
            dense::matmul_pv(&d, t, "l0", dense::PvPrologue::GlobalScaling),
            dense::softmax_monolithic(&d, "l0", "scores"),
            dense::local_softmax(&d, 64, "l0", "scores"),
            dense::inter_reduction(&d, 64, "l0"),
            dense::global_scaling(&d, 64, "l0"),
            dense::fused_mha_online(&d, t, "l0"),
            common::fc(1024, 1024, 1024, KernelCategory::Fc, "l0", "x", "q", false),
            common::layernorm(1024, 1024, "l0", "proj", "ln1"),
        ];
        let mut diags = Vec::new();
        check(&spec(), &ks, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn overhead_scaled_totals_still_pass() {
        let mut k = dense::softmax_monolithic(&dims(), "l0", "scores");
        let mut s = spec();
        s.softmax_overhead = 1.4;
        if let TbSet::Uniform { work, .. } = &mut k.tbs {
            work.dram_read_bytes *= 1.4;
            work.dram_write_bytes *= 1.4;
        }
        let mut diags = Vec::new();
        check(&s, &[k], &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn inflated_traffic_is_caught() {
        let mut k = dense::softmax_monolithic(&dims(), "l0", "scores");
        if let TbSet::Uniform { work, .. } = &mut k.tbs {
            work.dram_read_bytes *= 1.5;
        }
        let mut diags = Vec::new();
        check(&spec(), &[k], &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::TrafficFormula && d.severity == Severity::Error));
    }

    #[test]
    fn over_attribution_is_caught() {
        let mut k = dense::softmax_monolithic(&dims(), "l0", "scores");
        // attribute twice the attention matrix as reads
        k.reads[0].bytes *= 2;
        // keep the formula side quiet by inflating nothing else: the declared
        // totals stay correct, only the attribution exceeds them.
        let mut diags = Vec::new();
        check(&spec(), &[k], &mut diags);
        assert!(diags.iter().any(|d| d.rule == Rule::TrafficAttribution));
        assert!(!diags.iter().any(|d| d.rule == Rule::TrafficFormula));
    }

    #[test]
    fn missing_metadata_on_sda_kernel_warns() {
        let k = KernelDesc::builder("hand_rolled", KernelCategory::Softmax)
            .uniform(1, TbWork::memory(100.0, 100.0))
            .build();
        let mut diags = Vec::new();
        check(&spec(), &[k], &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::TrafficFormula && d.severity == Severity::Warning));
    }

    use resoftmax_gpusim::KernelCategory;
    use resoftmax_gpusim::KernelDesc;

    #[test]
    fn sparse_kernels_satisfy_their_formulas() {
        use resoftmax_kernels::costs::sparse;
        use resoftmax_sparse::{pattern, BigBirdConfig};
        let layout = pattern::bigbird(1024, &BigBirdConfig::default());
        let d = dims();
        let mut s = spec();
        s.sparse = Some(crate::SparseSpec {
            block: layout.block(),
            n_blocks: layout.n_blocks(),
            nnz_blocks: layout.nnz_blocks(),
            row_counts: layout.row_counts(),
        });
        let ks = vec![
            sparse::bs_matmul_qk(
                &layout,
                &d,
                "l0",
                sparse::BsQkEpilogue::ScaleMaskLocalSoftmax,
            ),
            sparse::bs_softmax_baseline(&layout, &d, "l0"),
            sparse::bs_local_softmax(&layout, &d, "l0"),
            sparse::bs_inter_reduction(&layout, &d, "l0"),
            sparse::bs_global_scaling(&layout, &d, "l0"),
            sparse::bs_matmul_pv(&layout, &d, "l0", sparse::BsPvPrologue::GlobalScaling),
            sparse::bs_fused_mha_online(&layout, &d, "l0"),
        ];
        let mut diags = Vec::new();
        check(&s, &ks, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
