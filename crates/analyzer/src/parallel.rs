//! Parallel-split legality rule.
//!
//! Every parallel runtime in this project — the simulated GPU grid and the
//! host work-stealing pool (`resoftmax-parallel`) — promises bit-exact FP16
//! results at any degree of parallelism. That promise holds only when work
//! is split along axes whose units own *disjoint* slices of the output, so
//! the per-element accumulation order never depends on how many workers ran.
//! A split that crosses a reduction axis breaks it: partial maxima/sums
//! would combine in a parallelism-dependent order.
//!
//! This rule checks each kernel's declared
//! [`ParallelSplit`] against the reduction
//! structure its category implies:
//!
//! * Row-reducing kernels (monolithic softmax, IR, LayerNorm, fused online
//!   attention) reduce across a full row — only [`OutputRows`] is safe.
//! * Local Softmax reduces within a sub-vector only, so rows may be cut into
//!   segments or tiles as long as segments respect the `T` boundary.
//! * MatMuls reduce along `k`, which no output-side split touches — any
//!   output split is safe.
//! * Elementwise kernels have no reduction at all.
//!
//! Kernels that declare no split are skipped (hand-rolled descriptions);
//! declaring [`ReductionAxis`] is always an error.
//!
//! [`OutputRows`]: resoftmax_gpusim::ParallelSplit::OutputRows
//! [`ReductionAxis`]: resoftmax_gpusim::ParallelSplit::ReductionAxis

use crate::diagnostic::{Diagnostic, Rule};
use resoftmax_gpusim::{KernelCategory, KernelDesc, ParallelSplit};

/// The splits that keep results independent of parallelism for a category.
fn legal_splits(category: KernelCategory) -> &'static [ParallelSplit] {
    use KernelCategory as C;
    use ParallelSplit as S;
    match category {
        // Full-row reductions: max and normalizer span the whole row.
        C::Softmax | C::InterReduction | C::LayerNorm | C::FusedAttention => &[S::OutputRows],
        // LS reduces within one sub-vector; segments and tiles are disjoint.
        C::LocalSoftmax => &[S::OutputRows, S::RowSegments, S::OutputTiles],
        // MatMuls: the k-axis reduction lives inside each output unit.
        C::MatMulQk | C::MatMulPv | C::Fc | C::FeedForward => {
            &[S::OutputRows, S::OutputTiles, S::Elements]
        }
        // Pure elementwise: no reduction anywhere.
        C::GlobalScaling | C::Scale | C::Mask | C::Activation | C::Other => {
            &[S::OutputRows, S::OutputTiles, S::Elements, S::RowSegments]
        }
    }
}

/// Flags kernels whose declared parallel split crosses a reduction axis.
pub fn check(kernels: &[KernelDesc], diags: &mut Vec<Diagnostic>) {
    for (i, k) in kernels.iter().enumerate() {
        let Some(split) = k.meta.split else {
            continue;
        };
        if split == ParallelSplit::ReductionAxis {
            diags.push(Diagnostic::error(
                Rule::ParallelSplitReduction,
                i,
                format!(
                    "`{}` declares its work split along a reduction axis; partial \
                     results would merge in a parallelism-dependent order, breaking \
                     the bit-exactness contract",
                    k.name
                ),
            ));
            continue;
        }
        let legal = legal_splits(k.category);
        if !legal.contains(&split) {
            diags.push(Diagnostic::error(
                Rule::ParallelSplitReduction,
                i,
                format!(
                    "`{}` ({:?}) declares a {split:?} split, but that cuts through \
                     the category's reduction axis; safe splits are {legal:?}",
                    k.name, k.category
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_gpusim::{KernelDesc, KernelMeta};

    fn kernel(category: KernelCategory, split: Option<ParallelSplit>) -> KernelDesc {
        let mut b = KernelDesc::builder("k", category);
        b.meta(KernelMeta {
            split,
            ..KernelMeta::default()
        });
        b.build()
    }

    fn run(kernels: &[KernelDesc]) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        check(kernels, &mut diags);
        diags
    }

    #[test]
    fn undeclared_split_is_skipped() {
        assert!(run(&[kernel(KernelCategory::Softmax, None)]).is_empty());
    }

    #[test]
    fn reduction_axis_always_fails() {
        for category in [
            KernelCategory::MatMulQk,
            KernelCategory::Softmax,
            KernelCategory::Other,
        ] {
            let diags = run(&[kernel(category, Some(ParallelSplit::ReductionAxis))]);
            assert_eq!(diags.len(), 1, "{category:?}");
            assert_eq!(diags[0].rule, Rule::ParallelSplitReduction);
        }
    }

    #[test]
    fn softmax_rows_pass_segments_fail() {
        assert!(run(&[kernel(
            KernelCategory::Softmax,
            Some(ParallelSplit::OutputRows)
        )])
        .is_empty());
        // Cutting a monolithic softmax row into segments splits its max/sum.
        let diags = run(&[kernel(
            KernelCategory::Softmax,
            Some(ParallelSplit::RowSegments),
        )]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kernel, Some(0));
    }

    #[test]
    fn local_softmax_may_split_segments() {
        assert!(run(&[kernel(
            KernelCategory::LocalSoftmax,
            Some(ParallelSplit::RowSegments)
        )])
        .is_empty());
    }

    #[test]
    fn matmul_output_splits_pass() {
        for split in [
            ParallelSplit::OutputRows,
            ParallelSplit::OutputTiles,
            ParallelSplit::Elements,
        ] {
            assert!(
                run(&[kernel(KernelCategory::MatMulPv, Some(split))]).is_empty(),
                "{split:?}"
            );
        }
    }

    #[test]
    fn inter_reduction_rejects_element_split() {
        let diags = run(&[kernel(
            KernelCategory::InterReduction,
            Some(ParallelSplit::Elements),
        )]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("reduction axis"));
    }
}
