//! First-order floating-point error model for the softmax pipelines the
//! schedules implement.
//!
//! The model answers one question: *if every kernel of a schedule rounds
//! where its metadata says it rounds, how far can the attention
//! probabilities it produces drift from the exact softmax of the same
//! binary16 inputs?* The answer is a worst-case **relative** bound per
//! output element, from which a row-sum bound and an ulp bound follow.
//!
//! # Setting
//!
//! Inter-kernel storage is always binary16 (the paper's setting); what a
//! schedule chooses is the *in-register accumulator* format of each
//! reduction ([`AccumFormat`]). One storage rounding contributes a factor
//! `(1 + δ)` with `|δ| ≤ u_s = 2⁻¹¹`; one accumulation step in format `F`
//! contributes `|δ| ≤ u_F` ([`AccumFormat::unit_roundoff`]). The runtime's
//! bit-exactness contract fixes the accumulation order to be *sequential*
//! (see `ParallelSplit`: reductions are never split), so a length-`n` sum
//! costs `(n − 1)` accumulation roundings — deliberately not the `log n` of
//! a tree reduction, because that is not what the kernels do.
//!
//! # Per-operation assumptions
//!
//! * **Max subtraction** is exact: the max of binary16 values is one of
//!   them, and `x − m` with both operands binary16 introduces no error
//!   before `exp` (Sterbenz-style cancellation only sharpens this).
//! * **`exp`** is correctly rounded to the working precision: one storage
//!   rounding per evaluated element. Its *argument* is exact (previous
//!   point), so no condition-number amplification applies.
//! * **Division / multiplication** cost one rounding each.
//! * **First-order arithmetic**: products of `(1 + δᵢ)` factors are summed
//!   to a first-order budget `fo = Σ|δᵢ|ᵐᵃˣ`, then closed rigorously with
//!   `rel = fo / (1 − min(fo, ½))`, which dominates the standard
//!   `γ_n = n·u/(1 − n·u)` correction, stays finite, and is monotone in
//!   `fo`.
//!
//! # Pipelines
//!
//! * [`monolithic`] — one pass: exp store, a length-`ctx` sum, one divide.
//! * [`decomposed`] — the paper's LS → IR → GS recomposition: per
//!   sub-vector sums of length `min(T, ctx)` in the LS accumulator format,
//!   a length-`⌈ctx/T⌉` global sum in the IR accumulator format, plus the
//!   stores of `x'`, `d'`, `r'` and the GS multiply. The division of `x'`
//!   by the local sum and the multiplication of `r'` by the *same stored
//!   sum* cancel to first order, which is why the constant term is 8
//!   storage roundings and not the naive 13.
//! * [`online`] — the online-softmax fusion: the same length-`ctx` sum plus
//!   a max-update/rescale (one multiply, one running-sum fold, one exp
//!   correction) per tile boundary.

use resoftmax_gpusim::AccumFormat;
use serde::{Deserialize, Serialize};

/// Unit roundoff of one binary16 *storage* rounding: `2⁻¹¹`.
pub const U16: f64 = 4.882_812_5e-4;

/// Unit roundoff of one binary32 accumulation step: `2⁻²⁴`.
pub const U32: f64 = 5.960_464_477_539_063e-8;

/// The certification budget: a schedule whose certified relative bound
/// exceeds this is rejected by the `numerics/tolerance` rule.
///
/// Chosen to equal the loosest tolerance the equivalence harness
/// (`resoftmax-core::verify`) has ever accepted for binary16 pipelines
/// (the 2 × 10⁻² row-sum budget), so "certifies" implies "passes verify".
pub const CERT_BUDGET_REL: f64 = 2e-2;

/// A certified worst-case error bound for one softmax pipeline.
///
/// All three tolerances describe the same bound in different currencies:
/// `rel` per element, `row_sum` for `|Σŷ − 1|` (equal to `rel` because
/// `Σ rel·yᵢ = rel` when `Σyᵢ = 1`), and `ulps` in binary16 ulp distance
/// (`⌈rel·2¹¹⌉ + 1`, the extra ulp covering the comparison oracle's own
/// final rounding).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorBound {
    /// Worst-case relative error of any output element.
    pub rel: f64,
    /// Worst-case deviation of a probability row's sum from 1.
    pub row_sum: f64,
    /// Worst-case binary16 ulp distance of any output element.
    pub ulps: u32,
    /// Context length the bound was evaluated at.
    pub ctx: usize,
    /// Sub-vector length `T` (equals `ctx` for monolithic pipelines).
    pub t: usize,
    /// Sub-vector count `⌈ctx / T⌉`.
    pub n_sv: usize,
}

impl ErrorBound {
    /// `true` when this bound implies the given relative budget.
    pub fn certifies(&self, budget: f64) -> bool {
        self.rel.is_finite() && self.rel <= budget
    }

    /// Closes a first-order budget `fo` into a rigorous bound.
    fn close(fo: f64, ctx: usize, t: usize, n_sv: usize) -> Self {
        let fo = fo.max(0.0);
        let rel = fo / (1.0 - fo.min(0.5));
        let ulps = if rel.is_finite() {
            (rel * 2048.0).ceil().min(f64::from(u32::MAX - 1)) as u32 + 1
        } else {
            u32::MAX
        };
        ErrorBound {
            rel,
            row_sum: rel,
            ulps,
            ctx,
            t,
            n_sv,
        }
    }
}

/// Bound for the monolithic (baseline) softmax over a length-`ctx` row:
/// one exp store, a sequential length-`ctx` sum in `accum`, one divide,
/// one output store.
pub fn monolithic(ctx: usize, accum: AccumFormat) -> ErrorBound {
    let fo = 3.0 * U16 + (ctx.saturating_sub(1) as f64) * accum.unit_roundoff();
    ErrorBound::close(fo, ctx, ctx.max(1), 1)
}

/// Bound for the decomposed / recomposed pipeline (LS → IR → GS) with
/// sub-vector length `t`: per-sub-vector sums of length `min(t, ctx)` in
/// `ls_accum`, a global length-`⌈ctx/t⌉` sum in `ir_accum`, 8 storage
/// roundings (exp, `x'`, `d'`, the IR exp and rescale pair, `r'`, the GS
/// multiply and output store — the `x'/d̂'` divide and `r'·d̂'` multiply
/// sharing the *same stored* `d̂'` cancel to first order).
pub fn decomposed(
    ctx: usize,
    t: usize,
    ls_accum: AccumFormat,
    ir_accum: AccumFormat,
) -> ErrorBound {
    let t = t.max(1);
    let n_sv = ctx.div_ceil(t).max(1);
    let ls_len = t.min(ctx.max(1));
    let fo = 8.0 * U16
        + (ls_len.saturating_sub(1) as f64) * ls_accum.unit_roundoff()
        + ((n_sv - 1) as f64) * ir_accum.unit_roundoff();
    ErrorBound::close(fo, ctx, t, n_sv)
}

/// Bound for the online-softmax fusion with tile width `t`: the monolithic
/// roundings plus, per tile boundary, a max-update rescale (one exp
/// correction, one multiply, one running-sum fold) in `accum`.
pub fn online(ctx: usize, t: usize, accum: AccumFormat) -> ErrorBound {
    let t = t.max(1);
    let n_sv = ctx.div_ceil(t).max(1);
    let steps = ctx.saturating_sub(1) as f64 + 3.0 * (n_sv - 1) as f64;
    let fo = 3.0 * U16 + steps * accum.unit_roundoff();
    ErrorBound::close(fo, ctx, t, n_sv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_are_powers_of_two() {
        assert_eq!(U16, (2.0f64).powi(-11));
        assert_eq!(U32, (2.0f64).powi(-24));
        assert_eq!(AccumFormat::Fp16.unit_roundoff(), U16);
        assert_eq!(AccumFormat::Fp32.unit_roundoff(), U32);
    }

    #[test]
    fn fp32_paper_points_certify() {
        // The grid's worst cases stay well inside the budget.
        for &(ctx, t) in &[(256usize, 64usize), (8192, 16), (8192, 256)] {
            let b = decomposed(ctx, t, AccumFormat::Fp32, AccumFormat::Fp32);
            assert!(b.certifies(CERT_BUDGET_REL), "decomposed {ctx}/{t}: {b:?}");
        }
        assert!(monolithic(8192, AccumFormat::Fp32).certifies(CERT_BUDGET_REL));
        assert!(online(8192, 64, AccumFormat::Fp32).certifies(CERT_BUDGET_REL));
    }

    #[test]
    fn fp16_ls_accumulation_certifies_only_at_small_t() {
        let ok = decomposed(8192, 16, AccumFormat::Fp16, AccumFormat::Fp32);
        assert!(ok.certifies(CERT_BUDGET_REL), "{ok:?}");
        let edge = decomposed(8192, 32, AccumFormat::Fp16, AccumFormat::Fp32);
        assert!(edge.certifies(CERT_BUDGET_REL), "{edge:?}");
        let bad = decomposed(8192, 64, AccumFormat::Fp16, AccumFormat::Fp32);
        assert!(!bad.certifies(CERT_BUDGET_REL), "{bad:?}");
    }

    #[test]
    fn fp16_monolithic_blows_up_without_rescale() {
        // The "corrupted" configuration the numerics rule must reject: a
        // long monolithic fp16 accumulation with no intermediate rescale.
        let b = monolithic(512, AccumFormat::Fp16);
        assert!(!b.certifies(CERT_BUDGET_REL), "{b:?}");
    }

    #[test]
    fn bounds_are_monotone_in_ctx() {
        for ctx in 1..512usize {
            for &(a, b) in &[
                (
                    monolithic(ctx, AccumFormat::Fp32),
                    monolithic(ctx + 1, AccumFormat::Fp32),
                ),
                (
                    decomposed(ctx, 64, AccumFormat::Fp32, AccumFormat::Fp32),
                    decomposed(ctx + 1, 64, AccumFormat::Fp32, AccumFormat::Fp32),
                ),
                (
                    online(ctx, 64, AccumFormat::Fp32),
                    online(ctx + 1, 64, AccumFormat::Fp32),
                ),
            ] {
                assert!(a.rel <= b.rel, "ctx {ctx}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn degenerate_inputs_stay_finite() {
        for b in [
            monolithic(0, AccumFormat::Fp16),
            decomposed(0, 0, AccumFormat::Fp16, AccumFormat::Fp16),
            online(0, 0, AccumFormat::Fp16),
            decomposed(usize::MAX, 1, AccumFormat::Fp16, AccumFormat::Fp16),
        ] {
            assert!(b.rel >= 0.0);
            assert!(b.rel.is_finite());
            assert!(b.n_sv >= 1);
        }
    }

    #[test]
    fn serde_round_trip() {
        let b = decomposed(4096, 64, AccumFormat::Fp32, AccumFormat::Fp32);
        let json = serde_json::to_string(&b).unwrap();
        assert_eq!(serde_json::from_str::<ErrorBound>(&json).unwrap(), b);
    }
}
