//! The analyzer's description of the run a schedule was built for.
//!
//! The model crate owns `ModelConfig`/`RunParams`/`LibraryProfile`; this
//! crate sits *below* it in the dependency graph (so the schedule builder
//! can assert against it), so the facts the rules need are flattened into an
//! analyzer-owned [`ScheduleSpec`] that the model layer populates.

use resoftmax_gpusim::{KernelCategory, KernelDesc};
use resoftmax_kernels::costs::AttnDims;
use serde::{Deserialize, Serialize};

/// Which softmax configuration the schedule was built with (mirrors the
/// model layer's `SoftmaxStrategy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Monolithic softmax.
    Baseline,
    /// Softmax decomposition (standalone LS/IR/GS).
    Decomposed,
    /// Decomposition + fusion (LS in the QK epilogue, GS in the PV prologue).
    Recomposed,
    /// Fully fused online-softmax attention.
    OnlineFused,
}

/// Block-sparse layout facts needed by the rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseSpec {
    /// Square block side.
    pub block: usize,
    /// Block rows/columns per instance (`L / block`).
    pub n_blocks: usize,
    /// Retained blocks per instance.
    pub nnz_blocks: usize,
    /// Retained blocks per block-row, `n_blocks` entries.
    pub row_counts: Vec<usize>,
}

impl SparseSpec {
    /// Retained elements per instance.
    pub fn nnz_elements(&self) -> usize {
        self.nnz_blocks * self.block * self.block
    }

    /// Elements of one `m'`/`d'`/`r'` plane per instance: one value per
    /// (row, retained block of its block-row).
    pub fn intermediate_elements(&self) -> usize {
        self.row_counts.iter().map(|&cnt| cnt * self.block).sum()
    }
}

/// Facts about a batched-decode schedule: one generated token per entry,
/// each attending a KV cache of its own length.
///
/// Decode schedules reuse the dense rule families with `seq_len = 1` and
/// `batch = ctxs.len()` (so the FC/LayerNorm/activation-chain formulas hold
/// unchanged), while the SDA traffic and intermediate-footprint formulas
/// switch to exact per-row sums over these context lengths.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeSpec {
    /// Attended context length of each decode row (`heads` instances each),
    /// in schedule order.
    pub ctxs: Vec<usize>,
}

impl DecodeSpec {
    /// Total attended positions across all rows (`Σ ctx`).
    pub fn total_ctx(&self) -> u64 {
        self.ctxs.iter().map(|&c| c as u64).sum()
    }

    /// Total sub-vectors across all rows (`Σ ⌈ctx / T⌉`).
    pub fn total_sub_vectors(&self, t: usize) -> u64 {
        let t = t.max(1);
        self.ctxs.iter().map(|&c| c.div_ceil(t) as u64).sum()
    }
}

/// Everything the rules need to know about the run a schedule implements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSpec {
    /// Sequence length `L`.
    pub seq_len: usize,
    /// Batch size.
    pub batch: usize,
    /// Attention heads.
    pub heads: usize,
    /// Hidden size `D_m`.
    pub d_model: usize,
    /// FeedForward inner size `D_ff`.
    pub d_ff: usize,
    /// Transformer layers.
    pub layers: usize,
    /// Softmax configuration.
    pub strategy: StrategyKind,
    /// MatMul output-tile height.
    pub tile_m: usize,
    /// MatMul output-tile width — the LS sub-vector length `T`.
    pub tile_n: usize,
    /// Library work multiplier applied to softmax-family kernels after
    /// generation.
    pub softmax_overhead: f64,
    /// Library work multiplier applied to MatMul kernels after generation.
    pub matmul_overhead: f64,
    /// Extra work multiplier applied to every *attention* kernel of a
    /// block-sparse schedule (gather-based implementations move the data an
    /// extra time); `1.0` otherwise.
    pub attention_overhead: f64,
    /// Scale and mask run as standalone elementwise kernels (dense path).
    pub separate_scale_mask: bool,
    /// Bias/activation/residual run as standalone kernels.
    pub separate_elementwise: bool,
    /// Block-sparse layout when the schedule uses block-sparse attention
    /// kernels; `None` for dense schedules (including dense fallbacks).
    pub sparse: Option<SparseSpec>,
    /// Per-row context lengths when the schedule is a batched-decode
    /// iteration; `None` for full-sequence schedules.
    pub decode: Option<DecodeSpec>,
}

impl ScheduleSpec {
    /// Per-head hidden size.
    pub fn d_head(&self) -> usize {
        self.d_model / self.heads
    }

    /// Attention instances (`heads × batch`).
    pub fn instances(&self) -> u64 {
        (self.heads * self.batch) as u64
    }

    /// The attention dimensions of this run's (self-attention) SDA blocks.
    pub fn attn_dims(&self) -> AttnDims {
        AttnDims::new(self.seq_len, self.d_head(), self.heads, self.batch)
    }

    /// The work multiplier `build_schedule` applied to this kernel after
    /// generation: the library overhead for its category, times the sparse
    /// gather penalty for attention kernels of block-sparse schedules.
    /// Declared `TbSet` byte/FLOP totals carry this factor; the analytic
    /// formulas and `BufferUse` declarations do not.
    pub fn work_overhead(&self, k: &KernelDesc) -> f64 {
        let gather = if self.sparse.is_some() && k.category.in_sda() {
            self.attention_overhead
        } else {
            1.0
        };
        let library = match k.category {
            c if c.is_softmax_family() => self.softmax_overhead,
            KernelCategory::MatMulQk
            | KernelCategory::MatMulPv
            | KernelCategory::Fc
            | KernelCategory::FeedForward => self.matmul_overhead,
            _ => 1.0,
        };
        gather * library
    }

    /// A plain dense spec for unit tests: BERT-large-like dimensions, the
    /// paper's baseline library profile, baseline strategy.
    pub fn dense_test(seq_len: usize, layers: usize) -> Self {
        ScheduleSpec {
            seq_len,
            batch: 1,
            heads: 16,
            d_model: 1024,
            d_ff: 4096,
            layers,
            strategy: StrategyKind::Baseline,
            tile_m: 64,
            tile_n: 64,
            softmax_overhead: 1.0,
            matmul_overhead: 1.0,
            attention_overhead: 1.0,
            separate_scale_mask: false,
            separate_elementwise: false,
            sparse: None,
            decode: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_gpusim::{KernelCategory, KernelDesc};

    #[test]
    fn derived_dimensions() {
        let spec = ScheduleSpec::dense_test(4096, 24);
        assert_eq!(spec.d_head(), 64);
        assert_eq!(spec.instances(), 16);
        assert_eq!(spec.attn_dims().kv_len, 4096);
    }

    #[test]
    fn overhead_routing() {
        let mut spec = ScheduleSpec::dense_test(1024, 1);
        spec.softmax_overhead = 1.25;
        spec.matmul_overhead = 1.05;
        let softmax = KernelDesc::builder("s", KernelCategory::Softmax).build();
        let fc = KernelDesc::builder("f", KernelCategory::Fc).build();
        let glue = KernelDesc::builder("g", KernelCategory::Other).build();
        assert_eq!(spec.work_overhead(&softmax), 1.25);
        assert_eq!(spec.work_overhead(&fc), 1.05);
        assert_eq!(spec.work_overhead(&glue), 1.0);
        // gather penalty stacks on attention kernels only when sparse
        spec.attention_overhead = 2.0;
        assert_eq!(spec.work_overhead(&softmax), 1.25, "dense: no gather");
        spec.sparse = Some(SparseSpec {
            block: 64,
            n_blocks: 16,
            nnz_blocks: 48,
            row_counts: vec![3; 16],
        });
        assert_eq!(spec.work_overhead(&softmax), 2.5);
        assert_eq!(spec.work_overhead(&fc), 1.05, "FC is outside the SDA");
    }

    #[test]
    fn sparse_spec_counts() {
        let s = SparseSpec {
            block: 64,
            n_blocks: 4,
            nnz_blocks: 6,
            row_counts: vec![1, 2, 2, 1],
        };
        assert_eq!(s.nnz_elements(), 6 * 64 * 64);
        assert_eq!(s.intermediate_elements(), 6 * 64);
    }
}
