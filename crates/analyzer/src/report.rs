//! Aggregated analysis results for CLI / CI consumption.

use crate::diagnostic::{Diagnostic, Severity};
use crate::error_model::ErrorBound;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The outcome of analyzing one schedule: the diagnostics plus severity
/// tallies, renderable as the `analyze` binary's text output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
    /// The certified worst-case numeric error, when the numerics pass
    /// applies to the schedule (dense, at least one softmax-family kernel).
    pub error_bound: Option<ErrorBound>,
}

impl Report {
    /// Wraps the output of [`crate::analyze`].
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        Report {
            diagnostics,
            error_bound: None,
        }
    }

    /// Attaches the certified numeric bound (see [`crate::analyze_certified`]).
    #[must_use]
    pub fn with_bound(mut self, bound: Option<ErrorBound>) -> Self {
        self.error_bound = bound;
        self
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// `true` when any finding is an error (CI gate).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Multi-line rendering: one line per diagnostic, then a tally (with
    /// the certified numeric bound when one was computed).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&self.summary());
        if let Some(b) = &self.error_bound {
            write!(
                out,
                "\ncertified numeric bound: rel ≤ {:.3e} (ctx {}, T {}, {} sub-vectors)",
                b.rel, b.ctx, b.t, b.n_sv
            )
            .expect("write to String");
        }
        out
    }

    /// One-line severity tally, e.g. `2 errors, 1 warning`.
    pub fn summary(&self) -> String {
        let (e, w, i) = (
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        );
        if e == 0 && w == 0 && i == 0 {
            return "clean".into();
        }
        let mut parts = Vec::new();
        for (n, name) in [(e, "error"), (w, "warning"), (i, "info")] {
            if n > 0 {
                let s = if n == 1 { "" } else { "s" };
                parts.push(format!("{n} {name}{s}"));
            }
        }
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::{Diagnostic, Rule};

    #[test]
    fn tallies_and_gate() {
        let r = Report::new(vec![
            Diagnostic::error(Rule::TrafficFormula, 0, "a"),
            Diagnostic::warning(Rule::DataflowDeadStore, 1, "b"),
        ]);
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.summary(), "1 error, 1 warning");
        assert!(r.render().contains("error[traffic/formula] kernel #0: a"));
        let clean = Report::new(vec![]);
        assert!(!clean.has_errors());
        assert_eq!(clean.summary(), "clean");
    }

    #[test]
    fn bound_renders_and_round_trips() {
        use resoftmax_gpusim::AccumFormat;
        let b = crate::error_model::decomposed(4096, 64, AccumFormat::Fp32, AccumFormat::Fp32);
        let r = Report::new(vec![]).with_bound(Some(b));
        assert!(r.render().contains("certified numeric bound"));
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<Report>(&json).unwrap(), r);
        // A bound-less report renders without the bound line.
        assert!(!Report::new(vec![]).render().contains("certified"));
    }
}
