//! Numerics rule family: abstract interpretation of a schedule's softmax
//! kernel sequence into a certified worst-case error bound.
//!
//! The pass walks the schedule once and classifies every kernel that
//! *accumulates* attention probabilities — monolithic softmax, Local
//! Softmax (standalone or riding a `Q·Kᵀ` epilogue), Inter-Reduction, and
//! fully fused online attention — by the accumulator format its
//! [`KernelMeta::accum`](resoftmax_gpusim::KernelMeta) declares. Each
//! pipeline present in the stream is then bounded by the matching
//! [`error_model`] formula at the schedule's worst
//! context length, and the loosest bound becomes the schedule's certified
//! [`ErrorBound`].
//!
//! Three rules fire on the way:
//!
//! * `numerics/accumulation` (error) — a structurally unsound format
//!   choice: binary16 accumulation with no rescaling stage to absorb it
//!   (a monolithic or fused softmax accumulating in fp16, or an fp16 LS
//!   with no Inter-Reduction anywhere downstream).
//! * `numerics/tolerance` (error) — the certified bound exceeds
//!   [`CERT_BUDGET_REL`], i.e. the schedule cannot promise the tolerance
//!   the equivalence harness verifies against.
//! * `numerics/assumed-format` (info) — accumulating kernels without
//!   declared formats were assumed fp32; hand-rolled schedules get this
//!   note instead of a spurious rejection.
//!
//! Block-sparse schedules are skipped (their gather pipelines store the
//! same intermediates but the per-row lengths are data-dependent; the
//! dense worst case does not transfer), as are schedules with no softmax
//! kernels at all — both certify as `None`, not as zero error.

use crate::diagnostic::{Diagnostic, Rule, Severity};
use crate::error_model::{self, ErrorBound, CERT_BUDGET_REL};
use crate::spec::ScheduleSpec;
use resoftmax_gpusim::{AccumFormat, KernelCategory, KernelDesc};

/// What a kernel contributes to the softmax error pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Monolithic softmax: one unrescaled sum over the full context.
    Monolithic,
    /// Local Softmax: per-sub-vector sums (standalone or fused epilogue).
    LocalSoftmax,
    /// Inter-Reduction: the global rescaling sum over sub-vector partials.
    InterReduction,
    /// Fully fused online-softmax attention.
    Fused,
}

fn role_of(k: &KernelDesc) -> Option<Role> {
    match k.category {
        KernelCategory::Softmax => Some(Role::Monolithic),
        KernelCategory::LocalSoftmax => Some(Role::LocalSoftmax),
        KernelCategory::MatMulQk if k.meta.fused_ls => Some(Role::LocalSoftmax),
        KernelCategory::InterReduction => Some(Role::InterReduction),
        KernelCategory::FusedAttention => Some(Role::Fused),
        _ => None,
    }
}

/// The worse (larger-roundoff) of two accumulator formats.
fn worst(a: AccumFormat, b: AccumFormat) -> AccumFormat {
    if a.unit_roundoff() >= b.unit_roundoff() {
        a
    } else {
        b
    }
}

/// Runs the numerics pass, appending findings to `diags`.
pub fn check(spec: &ScheduleSpec, kernels: &[KernelDesc], diags: &mut Vec<Diagnostic>) {
    let (_, mut found) = evaluate(spec, kernels);
    diags.append(&mut found);
}

/// The certified worst-case bound of a schedule, when the pass applies
/// (dense, at least one softmax-family kernel); `None` otherwise. The bound
/// is reported even when it exceeds the budget — the accompanying
/// `numerics/tolerance` error carries the rejection.
pub fn certified_bound(spec: &ScheduleSpec, kernels: &[KernelDesc]) -> Option<ErrorBound> {
    evaluate(spec, kernels).0
}

fn evaluate(spec: &ScheduleSpec, kernels: &[KernelDesc]) -> (Option<ErrorBound>, Vec<Diagnostic>) {
    if spec.sparse.is_some() || kernels.is_empty() {
        return (None, Vec::new());
    }
    // Worst context any probability row spans: the longest decode row, or
    // the full sequence length.
    let ctx = spec
        .decode
        .as_ref()
        .and_then(|d| d.ctxs.iter().copied().max())
        .unwrap_or(spec.seq_len);
    if ctx == 0 {
        return (None, Vec::new());
    }
    let t = spec.tile_n.max(1);

    let mut diags = Vec::new();
    let mut assumed = 0usize;
    // Worst declared accumulator format per role, where present.
    let (mut mono, mut ls, mut ir, mut fused) = (None, None, None, None);
    let mut classified: Vec<(usize, Role, AccumFormat)> = Vec::new();
    for (i, k) in kernels.iter().enumerate() {
        let Some(role) = role_of(k) else { continue };
        let accum = k.meta.accum.unwrap_or_else(|| {
            assumed += 1;
            AccumFormat::Fp32
        });
        let slot = match role {
            Role::Monolithic => &mut mono,
            Role::LocalSoftmax => &mut ls,
            Role::InterReduction => &mut ir,
            Role::Fused => &mut fused,
        };
        *slot = Some(slot.map_or(accum, |prev| worst(prev, accum)));
        classified.push((i, role, accum));
    }

    // Structural rule: fp16 accumulation is only admissible where a
    // rescaling stage follows to renormalize it.
    let has_ir = ir.is_some();
    for &(i, role, accum) in &classified {
        if accum != AccumFormat::Fp16 {
            continue;
        }
        match role {
            Role::Monolithic | Role::Fused => diags.push(Diagnostic::error(
                Rule::NumericsAccumulation,
                i,
                format!(
                    "'{}' accumulates a length-{ctx} softmax sum in fp16 with no \
                     rescaling stage; certified error grows as (ctx-1)·2⁻¹¹",
                    kernels[i].name
                ),
            )),
            Role::LocalSoftmax if !has_ir => diags.push(Diagnostic::error(
                Rule::NumericsAccumulation,
                i,
                format!(
                    "'{}' accumulates fp16 Local Softmax partials but the schedule \
                     has no Inter-Reduction rescale to renormalize them",
                    kernels[i].name
                ),
            )),
            Role::LocalSoftmax | Role::InterReduction => {}
        }
    }

    // Bound every pipeline present; the schedule certifies at the loosest.
    let mut bound: Option<ErrorBound> = None;
    let mut fold = |b: ErrorBound| {
        bound = Some(match bound {
            Some(prev) if prev.rel >= b.rel => prev,
            _ => b,
        });
    };
    if let Some(accum) = mono {
        fold(error_model::monolithic(ctx, accum));
    }
    if ls.is_some() || ir.is_some() {
        fold(error_model::decomposed(
            ctx,
            t,
            ls.unwrap_or(AccumFormat::Fp32),
            ir.unwrap_or(AccumFormat::Fp32),
        ));
    }
    if let Some(accum) = fused {
        fold(error_model::online(ctx, t, accum));
    }

    if let Some(b) = bound {
        if !b.certifies(CERT_BUDGET_REL) {
            diags.push(Diagnostic::schedule_error(
                Rule::NumericsTolerance,
                format!(
                    "certified relative error bound {:.3e} (ctx {}, T {}, {} sub-vectors) \
                     exceeds the verify budget {CERT_BUDGET_REL:.1e}",
                    b.rel, b.ctx, b.t, b.n_sv
                ),
            ));
        }
    }
    if assumed > 0 {
        let s = if assumed == 1 { "" } else { "s" };
        diags.push(Diagnostic {
            rule: Rule::NumericsAssumedFormat,
            severity: Severity::Info,
            kernel: None,
            message: format!(
                "{assumed} accumulating kernel{s} declare no accumulator format; assumed fp32"
            ),
        });
    }
    (bound, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use resoftmax_gpusim::KernelMeta;

    fn kernel(category: KernelCategory, accum: Option<AccumFormat>) -> KernelDesc {
        let mut b = KernelDesc::builder("k", category);
        b.meta(KernelMeta {
            accum,
            ..KernelMeta::default()
        });
        b.build()
    }

    fn diags_of(spec: &ScheduleSpec, kernels: &[KernelDesc]) -> Vec<Diagnostic> {
        let mut d = Vec::new();
        check(spec, kernels, &mut d);
        d
    }

    #[test]
    fn fp32_pipelines_certify_silently() {
        let spec = ScheduleSpec::dense_test(4096, 1);
        for cat in [
            KernelCategory::Softmax,
            KernelCategory::LocalSoftmax,
            KernelCategory::FusedAttention,
        ] {
            let ks = vec![kernel(cat, Some(AccumFormat::Fp32))];
            assert!(diags_of(&spec, &ks).is_empty(), "{cat:?}");
            let b = certified_bound(&spec, &ks).unwrap();
            assert!(b.certifies(CERT_BUDGET_REL), "{cat:?}: {b:?}");
        }
    }

    #[test]
    fn fp16_monolithic_is_rejected_structurally_and_by_tolerance() {
        let spec = ScheduleSpec::dense_test(4096, 1);
        let ks = vec![kernel(KernelCategory::Softmax, Some(AccumFormat::Fp16))];
        let diags = diags_of(&spec, &ks);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::NumericsAccumulation && d.severity == Severity::Error));
        assert!(diags.iter().any(|d| d.rule == Rule::NumericsTolerance));
    }

    #[test]
    fn fp16_ls_with_rescale_certifies_at_small_t() {
        let mut spec = ScheduleSpec::dense_test(4096, 1);
        spec.tile_n = 16;
        let ks = vec![
            kernel(KernelCategory::LocalSoftmax, Some(AccumFormat::Fp16)),
            kernel(KernelCategory::InterReduction, Some(AccumFormat::Fp32)),
        ];
        assert!(diags_of(&spec, &ks).is_empty());
        // Same pipeline at T = 64 blows the budget but is structurally fine.
        spec.tile_n = 64;
        let diags = diags_of(&spec, &ks);
        assert!(diags.iter().all(|d| d.rule == Rule::NumericsTolerance));
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn fp16_ls_without_rescale_is_structural_error() {
        let mut spec = ScheduleSpec::dense_test(4096, 1);
        spec.tile_n = 16;
        let ks = vec![kernel(
            KernelCategory::LocalSoftmax,
            Some(AccumFormat::Fp16),
        )];
        assert!(diags_of(&spec, &ks)
            .iter()
            .any(|d| d.rule == Rule::NumericsAccumulation));
    }

    #[test]
    fn missing_formats_are_an_info_note_not_an_error() {
        let spec = ScheduleSpec::dense_test(1024, 1);
        let ks = vec![
            kernel(KernelCategory::Softmax, None),
            kernel(KernelCategory::LocalSoftmax, None),
        ];
        let diags = diags_of(&spec, &ks);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::NumericsAssumedFormat);
        assert_eq!(diags[0].severity, Severity::Info);
        assert!(diags[0].message.contains("2 accumulating kernels"));
    }

    #[test]
    fn sparse_and_empty_schedules_are_skipped() {
        let mut spec = ScheduleSpec::dense_test(1024, 1);
        assert!(certified_bound(&spec, &[]).is_none());
        spec.sparse = Some(crate::spec::SparseSpec {
            block: 64,
            n_blocks: 16,
            nnz_blocks: 48,
            row_counts: vec![3; 16],
        });
        let ks = vec![kernel(KernelCategory::Softmax, Some(AccumFormat::Fp16))];
        assert!(certified_bound(&spec, &ks).is_none());
        assert!(diags_of(&spec, &ks).is_empty());
    }

    #[test]
    fn decode_bound_tracks_the_longest_row() {
        let mut spec = ScheduleSpec::dense_test(1, 1);
        spec.decode = Some(crate::spec::DecodeSpec {
            ctxs: vec![256, 4096, 1000],
        });
        let ks = vec![kernel(KernelCategory::Softmax, Some(AccumFormat::Fp32))];
        let b = certified_bound(&spec, &ks).unwrap();
        assert_eq!(b.ctx, 4096);
    }

    #[test]
    fn fused_ls_epilogue_counts_as_local_softmax() {
        let spec = ScheduleSpec::dense_test(4096, 1);
        let mut b = KernelDesc::builder("qk", KernelCategory::MatMulQk);
        b.meta(KernelMeta {
            fused_ls: true,
            accum: Some(AccumFormat::Fp16),
            ..KernelMeta::default()
        });
        let ks = vec![
            b.build(),
            kernel(KernelCategory::InterReduction, Some(AccumFormat::Fp32)),
        ];
        let bound = certified_bound(&spec, &ks).unwrap();
        // T = 64 with fp16 LS accumulation: structurally fine, over budget.
        assert!(!bound.certifies(CERT_BUDGET_REL));
    }
}
