//! Static analysis of kernel schedules.
//!
//! A schedule produced by the model layer is a `Vec<KernelDesc>` — an opaque
//! list of launches whose work figures were derived from analytic formulas.
//! Nothing in the type system stops a generator bug (or a refactor of the
//! cost layer) from emitting a schedule whose kernels are individually
//! plausible but jointly wrong: a Local Softmax whose sub-vector length no
//! longer matches the MatMul tile that produced its input (§3.3 of the
//! paper makes that equality the fusion-legality condition), a `P·V` MatMul
//! reading probabilities nobody wrote, or declared DRAM traffic that drifted
//! from the formula its category implies.
//!
//! This crate checks those invariants *statically* — no simulation — in
//! five rule families:
//!
//! * **Fusion legality** ([`fusion`], [`fsm`]): the LS sub-vector length `T`
//!   must equal the `Q·Kᵀ` MatMul output-tile width; Global Scaling must be
//!   an elementwise prologue on the `P·V` LHS operand; and each layer's SDA
//!   kernel sequence must follow the category grammar of the configured
//!   [`StrategyKind`].
//! * **Buffer dataflow** ([`dataflow`]): def-use analysis over the named
//!   [`BufferUse`](resoftmax_gpusim::BufferUse) declarations — use before
//!   def, dead stores, write-after-write hazards, and footprint/shape
//!   mismatches against the sizes implied by `L`, `N_sv` and the FP16
//!   element width.
//! * **Traffic conservation** ([`traffic`]): every kernel's declared DRAM
//!   byte totals must match the analytic formula implied by its category and
//!   shape metadata (within tolerance), and per-buffer traffic attribution
//!   must not exceed the DRAM totals.
//! * **Parallel-split legality** ([`parallel`]): a kernel's declared
//!   [`ParallelSplit`](resoftmax_gpusim::ParallelSplit) must not cross the
//!   reduction axis its category implies, or results would depend on the
//!   degree of parallelism.
//! * **Numerics** ([`numerics`], [`error_model`]): abstract interpretation
//!   of the softmax kernel sequence — max-subtraction, `exp`, LS partial
//!   sums, IR rescaling, GS renormalization — into a certified worst-case
//!   error bound, parameterized by each kernel's declared accumulator
//!   format, the tile width `T`, and the context length. The bound must
//!   imply the equivalence harness's verify tolerance.
//!
//! The entry point is [`analyze`]; inputs are the schedule plus a
//! [`ScheduleSpec`] describing the run (dimensions, strategy, library
//! overhead factors, block-sparse layout). The model crate wires this in as
//! a debug-mode assertion on every schedule build, and
//! `cargo run -p resoftmax-bench --bin analyze` sweeps the full evaluation
//! grid in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod diagnostic;
pub mod error_model;
pub mod fsm;
pub mod fusion;
pub mod numerics;
pub mod parallel;
pub mod report;
pub mod spec;
pub mod traffic;

pub use diagnostic::{Diagnostic, Rule, Severity};
pub use error_model::{ErrorBound, CERT_BUDGET_REL};
pub use report::Report;
pub use spec::{DecodeSpec, ScheduleSpec, SparseSpec, StrategyKind};

use resoftmax_gpusim::KernelDesc;

/// Runs all five rule families over a schedule.
///
/// Diagnostics are returned sorted by severity (errors first), then by
/// kernel index. An empty vector means the schedule passed every check.
pub fn analyze(spec: &ScheduleSpec, kernels: &[KernelDesc]) -> Vec<Diagnostic> {
    let _span = resoftmax_obs::span!("analyze", "analyzer");
    let mut diags = Vec::new();
    fsm::check(spec, kernels, &mut diags);
    fusion::check(spec, kernels, &mut diags);
    dataflow::check(spec, kernels, &mut diags);
    traffic::check(spec, kernels, &mut diags);
    parallel::check(kernels, &mut diags);
    numerics::check(spec, kernels, &mut diags);
    diags.sort_by_key(|d| {
        (
            std::cmp::Reverse(d.severity),
            d.kernel.unwrap_or(usize::MAX),
        )
    });
    diags
}

/// Runs [`analyze`] and attaches the certified numeric bound to the report
/// — the form the model layer's `check_schedule`/`check_decode_schedule`
/// return.
pub fn analyze_certified(spec: &ScheduleSpec, kernels: &[KernelDesc]) -> Report {
    let diags = analyze(spec, kernels);
    Report::new(diags).with_bound(numerics::certified_bound(spec, kernels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_clean_except_sequence() {
        // An empty schedule trivially satisfies dataflow/traffic, but a spec
        // promising N layers of SDA kernels must flag the missing sequence.
        let spec = ScheduleSpec::dense_test(1024, 1);
        let diags = analyze(&spec, &[]);
        assert!(diags.iter().all(|d| d.rule == Rule::FusionSequence));
        assert!(diags.iter().any(|d| d.severity == Severity::Error));
    }
}
