//! Diagnostic types shared by every rule family.

use serde::{Deserialize, Serialize};

/// How bad a finding is.
///
/// The ordering is semantic: `Info < Warning < Error`, so diagnostics can be
/// sorted or thresholded with comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Observation with no action needed (e.g. a rule skipped for lack of
    /// metadata on a hand-rolled kernel).
    Info,
    /// Suspicious but not provably wrong — tolerated in CI.
    Warning,
    /// Invariant violation; the `analyze` binary exits nonzero and the
    /// debug-mode schedule assertion panics.
    Error,
}

impl Severity {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Identity of the rule that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rule {
    /// LS sub-vector length must equal the producing MatMul's tile width
    /// (§3.3 fusion-legality condition).
    FusionTileWidth,
    /// Global Scaling must be an elementwise prologue on the `P·V` LHS.
    FusionGsPlacement,
    /// SDA category sequence must follow the strategy's grammar.
    FusionSequence,
    /// A buffer is read before any kernel has written it (but is written
    /// later — buffers never written are treated as external inputs).
    DataflowUseBeforeDef,
    /// A buffer write is never read by any later kernel.
    DataflowDeadStore,
    /// A buffer is overwritten with no intervening reader.
    DataflowWawHazard,
    /// A buffer's declared footprint disagrees between uses, or with the
    /// size implied by the run dimensions.
    DataflowShape,
    /// Declared DRAM totals deviate from the category's analytic formula.
    TrafficFormula,
    /// Per-buffer traffic attribution exceeds the declared DRAM totals.
    TrafficAttribution,
    /// A kernel's declared parallel split crosses one of its reduction axes,
    /// so partial results would combine in a parallelism-dependent order and
    /// the bit-exactness contract of the runtime would not hold.
    ParallelSplitReduction,
    /// A kernel's thread-block size is not a multiple of the warp width (32):
    /// real launches round up to whole warps, so a fractional-warp figure
    /// skews the occupancy model.
    ShapeWarpAlignment,
    /// The schedule's certified worst-case numeric error exceeds the budget
    /// the equivalence harness verifies against.
    NumericsTolerance,
    /// A structurally unsound accumulator-format choice: binary16
    /// accumulation with no downstream rescaling stage to renormalize it.
    NumericsAccumulation,
    /// Accumulating kernels without a declared accumulator format were
    /// assumed fp32 by the numerics pass.
    NumericsAssumedFormat,
}

impl Rule {
    /// Stable, grep-friendly rule code (`family/name`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::FusionTileWidth => "fusion/tile-width",
            Rule::FusionGsPlacement => "fusion/gs-placement",
            Rule::FusionSequence => "fusion/sequence",
            Rule::DataflowUseBeforeDef => "dataflow/use-before-def",
            Rule::DataflowDeadStore => "dataflow/dead-store",
            Rule::DataflowWawHazard => "dataflow/waw-hazard",
            Rule::DataflowShape => "dataflow/shape",
            Rule::TrafficFormula => "traffic/formula",
            Rule::TrafficAttribution => "traffic/attribution",
            Rule::ParallelSplitReduction => "parallel/split-reduction",
            Rule::ShapeWarpAlignment => "shape/warp-alignment",
            Rule::NumericsTolerance => "numerics/tolerance",
            Rule::NumericsAccumulation => "numerics/accumulation",
            Rule::NumericsAssumedFormat => "numerics/assumed-format",
        }
    }
}

/// One finding, tied to a rule and (usually) a kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Finding severity.
    pub severity: Severity,
    /// Index of the offending kernel in the analyzed schedule; `None` for
    /// schedule-wide findings.
    pub kernel: Option<usize>,
    /// Human-readable description (includes the kernel name when relevant).
    pub message: String,
}

impl Diagnostic {
    /// Error-severity diagnostic for a specific kernel.
    pub fn error(rule: Rule, kernel: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            kernel: Some(kernel),
            message: message.into(),
        }
    }

    /// Warning-severity diagnostic for a specific kernel.
    pub fn warning(rule: Rule, kernel: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Warning,
            kernel: Some(kernel),
            message: message.into(),
        }
    }

    /// Error-severity diagnostic not tied to a single kernel.
    pub fn schedule_error(rule: Rule, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            kernel: None,
            message: message.into(),
        }
    }

    /// One-line rendering: `error[fusion/tile-width] kernel #12: ...`.
    pub fn render(&self) -> String {
        match self.kernel {
            Some(i) => format!(
                "{}[{}] kernel #{i}: {}",
                self.severity.label(),
                self.rule.code(),
                self.message
            ),
            None => format!(
                "{}[{}] {}",
                self.severity.label(),
                self.rule.code(),
                self.message
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn render_includes_code_and_kernel() {
        let d = Diagnostic::error(Rule::TrafficFormula, 3, "boom");
        assert_eq!(d.render(), "error[traffic/formula] kernel #3: boom");
        let s = Diagnostic::schedule_error(Rule::FusionSequence, "short");
        assert!(s.render().starts_with("error[fusion/sequence]"));
    }

    #[test]
    fn serde_round_trip() {
        let d = Diagnostic::warning(Rule::DataflowDeadStore, 7, "unread");
        let json = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
