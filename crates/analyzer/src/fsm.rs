//! SDA sequence grammar: the attention kernels of each layer must follow
//! the category sequence the configured strategy implies.
//!
//! The grammar is a tiny cyclic FSM — one cycle per layer:
//!
//! ```text
//! Baseline   : QK → (Scale → Mask)? → Softmax → PV
//! Decomposed : QK → (Scale → Mask)? → LS → IR → GS → PV
//! Recomposed : QK+LS → IR → PV+GS        (fused scale/mask)
//!              QK → Scale → Mask → LS → IR → PV+GS   (separate scale/mask)
//! OnlineFused: FusedMHA
//! ```
//!
//! where the optional Scale/Mask pair appears exactly when the library
//! profile runs them standalone (dense path only — the block-sparse kernels
//! always fuse them).

use crate::diagnostic::{Diagnostic, Rule};
use crate::spec::{ScheduleSpec, StrategyKind};
use resoftmax_gpusim::{KernelCategory, KernelDesc};

/// One state of the SDA grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdaState {
    /// `Q·Kᵀ`; `fused_ls` when Local Softmax rides its epilogue.
    Qk {
        /// Local Softmax fused into the epilogue.
        fused_ls: bool,
    },
    /// Standalone elementwise scale.
    Scale,
    /// Standalone elementwise mask.
    Mask,
    /// Monolithic softmax.
    Softmax,
    /// Standalone Local Softmax.
    Ls,
    /// Inter-sub-vector reduction.
    Ir,
    /// Standalone Global Scaling.
    Gs,
    /// `P·V`; `fused_gs` when Global Scaling rides its prologue.
    Pv {
        /// Global Scaling fused into the prologue.
        fused_gs: bool,
    },
    /// Fully fused online-softmax attention.
    Fused,
}

impl SdaState {
    fn label(self) -> String {
        match self {
            SdaState::Qk { fused_ls: true } => "QK+LS".into(),
            SdaState::Qk { fused_ls: false } => "QK".into(),
            SdaState::Scale => "Scale".into(),
            SdaState::Mask => "Mask".into(),
            SdaState::Softmax => "Softmax".into(),
            SdaState::Ls => "LS".into(),
            SdaState::Ir => "IR".into(),
            SdaState::Gs => "GS".into(),
            SdaState::Pv { fused_gs: true } => "PV+GS".into(),
            SdaState::Pv { fused_gs: false } => "PV".into(),
            SdaState::Fused => "FusedMHA".into(),
        }
    }
}

/// Classifies one SDA kernel into its grammar state. Fusion flags come from
/// the structured metadata with the buffer declarations as a fallback, so
/// hand-rolled descriptions still classify.
pub fn classify(k: &KernelDesc) -> Option<SdaState> {
    let state = match k.category {
        KernelCategory::MatMulQk => SdaState::Qk {
            fused_ls: k.meta.fused_ls || k.writes.iter().any(|b| b.id.ends_with("x_prime")),
        },
        KernelCategory::Scale => SdaState::Scale,
        KernelCategory::Mask => SdaState::Mask,
        KernelCategory::Softmax => SdaState::Softmax,
        KernelCategory::LocalSoftmax => SdaState::Ls,
        KernelCategory::InterReduction => SdaState::Ir,
        KernelCategory::GlobalScaling => SdaState::Gs,
        KernelCategory::MatMulPv => SdaState::Pv {
            fused_gs: k.meta.fused_gs || k.reads.iter().any(|b| b.id.ends_with("r_prime")),
        },
        KernelCategory::FusedAttention => SdaState::Fused,
        _ => return None,
    };
    Some(state)
}

/// The per-layer SDA state sequence the spec's strategy implies.
pub fn expected_pattern(spec: &ScheduleSpec) -> Vec<SdaState> {
    // Block-sparse kernels always fuse scale/mask into the QK epilogue.
    let separate = spec.separate_scale_mask && spec.sparse.is_none();
    let mut p = Vec::new();
    if spec.strategy == StrategyKind::OnlineFused {
        p.push(SdaState::Fused);
        return p;
    }
    let qk_ls = spec.strategy == StrategyKind::Recomposed && !separate;
    p.push(SdaState::Qk { fused_ls: qk_ls });
    if separate {
        p.push(SdaState::Scale);
        p.push(SdaState::Mask);
    }
    match spec.strategy {
        StrategyKind::Baseline => {
            p.push(SdaState::Softmax);
            p.push(SdaState::Pv { fused_gs: false });
        }
        StrategyKind::Decomposed => {
            p.extend([
                SdaState::Ls,
                SdaState::Ir,
                SdaState::Gs,
                SdaState::Pv { fused_gs: false },
            ]);
        }
        StrategyKind::Recomposed => {
            // With separate scale/mask the LS epilogue cannot ride the QK
            // MatMul; LS runs standalone, GS still fuses into PV.
            if separate {
                p.push(SdaState::Ls);
            }
            p.push(SdaState::Ir);
            p.push(SdaState::Pv { fused_gs: true });
        }
        StrategyKind::OnlineFused => unreachable!("returned above"),
    }
    p
}

/// Checks the schedule's SDA kernels against the cyclic grammar.
pub fn check(spec: &ScheduleSpec, kernels: &[KernelDesc], diags: &mut Vec<Diagnostic>) {
    let pattern = expected_pattern(spec);
    let sda: Vec<(usize, SdaState)> = kernels
        .iter()
        .enumerate()
        .filter_map(|(i, k)| classify(k).map(|s| (i, s)))
        .collect();

    let expected_len = pattern.len() * spec.layers;
    if sda.len() != expected_len {
        diags.push(Diagnostic::schedule_error(
            Rule::FusionSequence,
            format!(
                "expected {expected_len} SDA kernels ({} layers x {:?}-pattern of {}), found {}",
                spec.layers,
                spec.strategy,
                pattern.len(),
                sda.len()
            ),
        ));
    }

    for (pos, &(idx, actual)) in sda.iter().enumerate() {
        let want = pattern[pos % pattern.len()];
        if actual != want {
            diags.push(Diagnostic::error(
                Rule::FusionSequence,
                idx,
                format!(
                    "`{}`: SDA sequence position {} of layer {} should be {} but is {}",
                    kernels[idx].name,
                    pos % pattern.len(),
                    pos / pattern.len(),
                    want.label(),
                    actual.label()
                ),
            ));
            // One clear mismatch beats a cascade of follow-on errors.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScheduleSpec;
    use resoftmax_gpusim::KernelDesc;

    fn mk(cat: KernelCategory) -> KernelDesc {
        KernelDesc::builder("k", cat).build()
    }

    #[test]
    fn patterns_per_strategy() {
        let mut spec = ScheduleSpec::dense_test(1024, 1);
        assert_eq!(expected_pattern(&spec).len(), 3);
        spec.strategy = StrategyKind::Decomposed;
        assert_eq!(expected_pattern(&spec).len(), 5);
        spec.strategy = StrategyKind::Recomposed;
        assert_eq!(
            expected_pattern(&spec),
            vec![
                SdaState::Qk { fused_ls: true },
                SdaState::Ir,
                SdaState::Pv { fused_gs: true }
            ]
        );
        spec.separate_scale_mask = true;
        assert_eq!(expected_pattern(&spec).len(), 6);
        spec.strategy = StrategyKind::OnlineFused;
        assert_eq!(expected_pattern(&spec), vec![SdaState::Fused]);
    }

    #[test]
    fn clean_baseline_sequence_passes() {
        let spec = ScheduleSpec::dense_test(1024, 2);
        let layer = [
            KernelCategory::MatMulQk,
            KernelCategory::Softmax,
            KernelCategory::MatMulPv,
        ];
        let ks: Vec<KernelDesc> = layer.iter().chain(layer.iter()).map(|&c| mk(c)).collect();
        let mut diags = Vec::new();
        check(&spec, &ks, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn swapped_kernels_caught() {
        let spec = ScheduleSpec::dense_test(1024, 1);
        let ks = vec![
            mk(KernelCategory::MatMulQk),
            mk(KernelCategory::MatMulPv),
            mk(KernelCategory::Softmax),
        ];
        let mut diags = Vec::new();
        check(&spec, &ks, &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::FusionSequence && d.kernel == Some(1)));
    }

    #[test]
    fn missing_ir_changes_count() {
        let mut spec = ScheduleSpec::dense_test(1024, 1);
        spec.strategy = StrategyKind::Recomposed;
        let mut qk = KernelDesc::builder("qk", KernelCategory::MatMulQk);
        qk.writes("l0.x_prime", 4);
        let mut pv = KernelDesc::builder("pv", KernelCategory::MatMulPv);
        pv.reads("l0.r_prime", 4);
        let ks = vec![qk.build(), pv.build()];
        let mut diags = Vec::new();
        check(&spec, &ks, &mut diags);
        assert!(diags.iter().any(|d| d.rule == Rule::FusionSequence));
    }

    #[test]
    fn classification_uses_buffer_fallback() {
        let mut qk = KernelDesc::builder("qk", KernelCategory::MatMulQk);
        qk.writes("l3.x_prime", 128);
        assert_eq!(classify(&qk.build()), Some(SdaState::Qk { fused_ls: true }));
        assert_eq!(classify(&mk(KernelCategory::Fc)), None);
    }
}
