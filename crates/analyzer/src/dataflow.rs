//! Buffer def-use analysis over the schedule's [`BufferUse`] declarations.
//!
//! The schedule is a straight-line program whose "variables" are the named
//! device buffers; kernels are its statements. Within one kernel, reads
//! observe the *old* contents and writes happen after — in-place updates
//! (scale/mask rewriting the score matrix, fused bias epilogues) are
//! therefore ordinary read-then-write events, not hazards.
//!
//! Checks:
//!
//! * **use-before-def** — a buffer is read before any kernel wrote it.
//!   Buffers the schedule never writes at all are external inputs (token
//!   ids, weights) and exempt — *except* the attention intermediates
//!   (`scores`, `x'`, `m'`, `d'`, `r'`, `probs`, `q`/`k`/`v`, `attn_out`),
//!   which by construction must be produced in-schedule; a renamed or
//!   dropped producer surfaces here.
//! * **dead store** — a write no later kernel reads (the final layer
//!   boundary `l{layers}.x` is the schedule's sink and exempt).
//! * **WAW hazard** — a buffer overwritten with no intervening reader: the
//!   first write was wasted work.
//! * **shape** — all uses of a buffer must agree on its resident footprint,
//!   and buffers with a known role must match the size implied by the run
//!   dimensions (`L`, `N_sv`, FP16 element width).
//!
//! [`BufferUse`]: resoftmax_gpusim::BufferUse

use crate::diagnostic::{Diagnostic, Rule};
use crate::spec::ScheduleSpec;
use resoftmax_gpusim::KernelDesc;
use std::collections::BTreeMap;

const FP16_BYTES: u64 = 2;

#[derive(Debug, Clone, Copy)]
struct Event {
    kernel: usize,
    is_write: bool,
    footprint: u64,
}

/// Buffer roles that must be produced by the schedule itself; reading one
/// that nothing writes is a wiring bug, not an external input.
fn is_attention_intermediate(suffix: &str) -> bool {
    matches!(
        suffix,
        "scores"
            | "probs"
            | "x_prime"
            | "m_prime"
            | "d_prime"
            | "r_prime"
            | "q"
            | "k"
            | "v"
            | "attn_out"
    )
}

/// The footprint the run dimensions imply for a buffer of known role;
/// `None` for buffers the analyzer has no formula for (weights, token ids,
/// model-specific extras).
fn expected_footprint(spec: &ScheduleSpec, suffix: &str) -> Option<u64> {
    let inst = spec.instances();
    let l = spec.seq_len as u64;
    let rows = (spec.seq_len * spec.batch) as u64;
    let heads = spec.heads as u64;
    // Batched decode: each row's score slice and m'/d'/r' plane are sized by
    // its own context length, so the footprints are per-row sums.
    let attn = match (&spec.decode, &spec.sparse) {
        (Some(dec), _) => dec.total_ctx() * FP16_BYTES * heads,
        (None, Some(s)) => s.nnz_elements() as u64 * FP16_BYTES * inst,
        (None, None) => l * spec.seq_len as u64 * FP16_BYTES * inst,
    };
    let intermediate = match (&spec.decode, &spec.sparse) {
        (Some(dec), _) => dec.total_sub_vectors(spec.tile_n) * FP16_BYTES * heads,
        (None, Some(s)) => s.intermediate_elements() as u64 * FP16_BYTES * inst,
        (None, None) => {
            let n_sv = (spec.seq_len / spec.tile_n).max(1) as u64;
            l * n_sv * FP16_BYTES * inst
        }
    };
    match suffix {
        "scores" | "probs" | "x_prime" => Some(attn),
        "m_prime" | "d_prime" | "r_prime" => Some(intermediate),
        "q" | "k" | "v" | "attn_out" => Some(l * spec.d_head() as u64 * FP16_BYTES * inst),
        "x" | "proj" | "ln1" | "ff2" => Some(rows * spec.d_model as u64 * FP16_BYTES),
        "ff1" => Some(rows * spec.d_ff as u64 * FP16_BYTES),
        _ => None,
    }
}

fn buffer_suffix(id: &str) -> &str {
    id.rsplit('.').next().unwrap_or(id)
}

/// Runs the def-use checks over the whole schedule.
pub fn check(spec: &ScheduleSpec, kernels: &[KernelDesc], diags: &mut Vec<Diagnostic>) {
    let mut buffers: BTreeMap<&str, Vec<Event>> = BTreeMap::new();
    for (i, k) in kernels.iter().enumerate() {
        for b in &k.reads {
            buffers.entry(&b.id).or_default().push(Event {
                kernel: i,
                is_write: false,
                footprint: b.footprint,
            });
        }
        for b in &k.writes {
            buffers.entry(&b.id).or_default().push(Event {
                kernel: i,
                is_write: true,
                footprint: b.footprint,
            });
        }
    }

    let sink = format!("l{}.x", spec.layers);
    for (id, events) in &buffers {
        let suffix = buffer_suffix(id);
        check_def_use(spec, kernels, id, suffix, events, &sink, diags);
        check_shape(spec, id, suffix, events, diags);
    }
}

fn check_def_use(
    _spec: &ScheduleSpec,
    kernels: &[KernelDesc],
    id: &str,
    suffix: &str,
    events: &[Event],
    sink: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let first_write = events.iter().find(|e| e.is_write);
    match first_write {
        None => {
            // Never written: an external input — unless it's an attention
            // intermediate, which the schedule itself must produce.
            if is_attention_intermediate(suffix) {
                let reader = events[0].kernel;
                diags.push(Diagnostic::error(
                    Rule::DataflowUseBeforeDef,
                    reader,
                    format!(
                        "`{}` reads `{id}`, an attention intermediate no kernel writes",
                        kernels[reader].name
                    ),
                ));
            }
            return;
        }
        Some(w) => {
            for e in events.iter().take_while(|e| !e.is_write) {
                if e.kernel < w.kernel {
                    diags.push(Diagnostic::error(
                        Rule::DataflowUseBeforeDef,
                        e.kernel,
                        format!(
                            "`{}` reads `{id}` before its first writer (`{}`, kernel #{}) runs",
                            kernels[e.kernel].name, kernels[w.kernel].name, w.kernel
                        ),
                    ));
                }
            }
        }
    }

    // Dead store: no read event after the last write event.
    let last_write_pos = events
        .iter()
        .rposition(|e| e.is_write)
        .expect("has a write");
    let read_after = events[last_write_pos + 1..].iter().any(|e| !e.is_write);
    if !read_after && id != sink {
        let k = events[last_write_pos].kernel;
        diags.push(Diagnostic::warning(
            Rule::DataflowDeadStore,
            k,
            format!(
                "`{}` writes `{id}` but no later kernel reads it",
                kernels[k].name
            ),
        ));
    }

    // WAW hazard: two writes from different kernels with no read between.
    let mut last: Option<&Event> = None;
    for e in events {
        if e.is_write {
            if let Some(prev) = last {
                if prev.is_write && prev.kernel != e.kernel {
                    diags.push(Diagnostic::warning(
                        Rule::DataflowWawHazard,
                        e.kernel,
                        format!(
                            "`{}` overwrites `{id}` though nothing read the value \
                             `{}` (kernel #{}) wrote",
                            kernels[e.kernel].name, kernels[prev.kernel].name, prev.kernel
                        ),
                    ));
                }
            }
        }
        last = Some(e);
    }
}

fn check_shape(
    spec: &ScheduleSpec,
    id: &str,
    suffix: &str,
    events: &[Event],
    diags: &mut Vec<Diagnostic>,
) {
    let first = events[0].footprint;
    if let Some(e) = events.iter().find(|e| e.footprint != first) {
        diags.push(Diagnostic::error(
            Rule::DataflowShape,
            e.kernel,
            format!(
                "`{id}` is used with conflicting resident footprints: {first} B vs {} B",
                e.footprint
            ),
        ));
        return; // one size conflict per buffer is enough
    }
    if let Some(expected) = expected_footprint(spec, suffix) {
        if first != expected {
            diags.push(Diagnostic::error(
                Rule::DataflowShape,
                events[0].kernel,
                format!("`{id}` has footprint {first} B but the run dimensions imply {expected} B"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScheduleSpec;
    use resoftmax_gpusim::{KernelCategory, KernelDesc};

    fn spec() -> ScheduleSpec {
        let mut s = ScheduleSpec::dense_test(1024, 1);
        s.layers = 1;
        s
    }

    fn attn_bytes(s: &ScheduleSpec) -> u64 {
        (s.seq_len * s.seq_len * 2) as u64 * s.instances()
    }

    #[test]
    fn clean_chain_passes() {
        let s = spec();
        let a = attn_bytes(&s);
        let mut qk = KernelDesc::builder("qk", KernelCategory::MatMulQk);
        qk.reads("tokens", 100).writes("l0.scores", a);
        let mut sm = KernelDesc::builder("sm", KernelCategory::Softmax);
        sm.reads("l0.scores", a)
            .writes("l1.x", (s.seq_len * s.d_model * 2) as u64);
        let mut diags = Vec::new();
        check(&s, &[qk.build(), sm.build()], &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn in_place_update_is_not_a_hazard() {
        let s = spec();
        let a = attn_bytes(&s);
        let mut qk = KernelDesc::builder("qk", KernelCategory::MatMulQk);
        qk.writes("l0.scores", a);
        let mut scale = KernelDesc::builder("scale", KernelCategory::Scale);
        scale.reads("l0.scores", a).writes("l0.scores", a);
        let mut sm = KernelDesc::builder("sm", KernelCategory::Softmax);
        sm.reads("l0.scores", a)
            .writes("l1.x", (s.seq_len * s.d_model * 2) as u64);
        let mut diags = Vec::new();
        check(&s, &[qk.build(), scale.build(), sm.build()], &mut diags);
        assert!(
            !diags.iter().any(|d| d.rule == Rule::DataflowWawHazard),
            "{diags:?}"
        );
    }

    #[test]
    fn unwritten_intermediate_is_use_before_def() {
        let s = spec();
        let mut pv = KernelDesc::builder("pv", KernelCategory::MatMulPv);
        pv.reads("l0.probs", attn_bytes(&s));
        let mut diags = Vec::new();
        check(&s, &[pv.build()], &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::DataflowUseBeforeDef && d.kernel == Some(0)));
    }

    #[test]
    fn read_before_later_writer_is_flagged() {
        let s = spec();
        let a = attn_bytes(&s);
        let mut sm = KernelDesc::builder("sm", KernelCategory::Softmax);
        sm.reads("l0.scores", a);
        let mut qk = KernelDesc::builder("qk", KernelCategory::MatMulQk);
        qk.writes("l0.scores", a);
        let mut diags = Vec::new();
        check(&s, &[sm.build(), qk.build()], &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::DataflowUseBeforeDef && d.kernel == Some(0)));
        // ... and the now-unread write is dead.
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::DataflowDeadStore && d.kernel == Some(1)));
    }

    #[test]
    fn waw_without_reader_is_flagged() {
        let s = spec();
        let a = attn_bytes(&s);
        let mut qk1 = KernelDesc::builder("qk1", KernelCategory::MatMulQk);
        qk1.writes("l0.scores", a);
        let mut qk2 = KernelDesc::builder("qk2", KernelCategory::MatMulQk);
        qk2.writes("l0.scores", a);
        let mut sm = KernelDesc::builder("sm", KernelCategory::Softmax);
        sm.reads("l0.scores", a)
            .writes("l1.x", (s.seq_len * s.d_model * 2) as u64);
        let mut diags = Vec::new();
        check(&s, &[qk1.build(), qk2.build(), sm.build()], &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::DataflowWawHazard && d.kernel == Some(1)));
    }

    #[test]
    fn sink_write_is_not_dead() {
        let s = spec();
        let mut ln = KernelDesc::builder("ln", KernelCategory::LayerNorm);
        ln.writes("l1.x", (s.seq_len * s.d_model * 2) as u64);
        let mut diags = Vec::new();
        check(&s, &[ln.build()], &mut diags);
        assert!(!diags.iter().any(|d| d.rule == Rule::DataflowDeadStore));
    }

    #[test]
    fn footprint_conflict_and_wrong_size_are_shape_errors() {
        let s = spec();
        let a = attn_bytes(&s);
        let mut qk = KernelDesc::builder("qk", KernelCategory::MatMulQk);
        qk.writes("l0.scores", a);
        let mut sm = KernelDesc::builder("sm", KernelCategory::Softmax);
        sm.reads("l0.scores", a / 2)
            .writes("l1.x", (s.seq_len * s.d_model * 2) as u64);
        let mut diags = Vec::new();
        check(&s, &[qk.build(), sm.build()], &mut diags);
        assert!(diags.iter().any(|d| d.rule == Rule::DataflowShape));

        // consistent but wrong against the run dimensions
        let mut qk = KernelDesc::builder("qk", KernelCategory::MatMulQk);
        qk.writes("l0.scores", a * 2);
        let mut sm = KernelDesc::builder("sm", KernelCategory::Softmax);
        sm.reads("l0.scores", a * 2)
            .writes("l1.x", (s.seq_len * s.d_model * 2) as u64);
        let mut diags = Vec::new();
        check(&s, &[qk.build(), sm.build()], &mut diags);
        assert!(
            diags.iter().any(|d| d.rule == Rule::DataflowShape),
            "{diags:?}"
        );
    }
}
