//! Fusion-legality rules.
//!
//! Two checks from §3.3 of the paper, beyond the sequence grammar in
//! [`crate::fsm`]:
//!
//! * **Tile width** — recomposition is only legal when the LS sub-vector
//!   length `T` equals the output-tile width of the MatMul it is fused with
//!   (or feeds): an LS over sub-vectors that straddle tile boundaries would
//!   need cross-tile reductions inside the epilogue. The rule also pins
//!   every `T` in the SDA block (LS, IR, GS, fused epilogue/prologue) to the
//!   schedule-wide value, since `m'`/`d'`/`r'` layouts are shared.
//! * **GS placement** — Global Scaling must be an *elementwise* rescale of
//!   the `P·V` MatMul's LHS operand: fused, it reads `x'` and `r'` (never
//!   finished probabilities); standalone, it must be shape-preserving and
//!   its output must be what `P·V` consumes.

use crate::diagnostic::{Diagnostic, Rule};
use crate::spec::{ScheduleSpec, StrategyKind};
use resoftmax_gpusim::{KernelCategory, KernelDesc};

fn reads_suffix(k: &KernelDesc, suffix: &str) -> bool {
    k.reads.iter().any(|b| b.id.ends_with(suffix))
}

/// The schedule-wide LS sub-vector length the spec implies: the MatMul tile
/// width on the dense path, the block side on the block-sparse path (block
/// tiles are the natural LS unit there).
pub fn expected_sub_vector(spec: &ScheduleSpec) -> usize {
    match &spec.sparse {
        Some(s) => s.block,
        None => spec.tile_n,
    }
}

/// Runs the tile-width and GS-placement checks.
pub fn check(spec: &ScheduleSpec, kernels: &[KernelDesc], diags: &mut Vec<Diagnostic>) {
    let t_expected = expected_sub_vector(spec);
    let kv_len = spec.seq_len;
    // Batched decode keys by per-row context lengths, not `seq_len`, and its
    // formulas use exact `⌈ctx / T⌉` sub-vector counts — no approximation to
    // warn about.
    if spec.decode.is_none() && !kv_len.is_multiple_of(t_expected) {
        diags.push(Diagnostic {
            rule: Rule::FusionTileWidth,
            severity: crate::Severity::Warning,
            kernel: None,
            message: format!(
                "sub-vector length T={t_expected} does not divide the key length {kv_len}; \
                 edge sub-vectors are approximated"
            ),
        });
    }

    let mut last_qk_tile_n: Option<usize> = None;
    for (i, k) in kernels.iter().enumerate() {
        // Warp alignment: hardware launches whole warps, so a thread-block
        // size that is not a multiple of 32 misstates occupancy.
        if !(k.shape.threads as usize).is_multiple_of(32) {
            diags.push(Diagnostic::error(
                Rule::ShapeWarpAlignment,
                i,
                format!(
                    "`{}` launches {}-thread blocks; block sizes must be a \
                     multiple of the 32-lane warp width",
                    k.name, k.shape.threads
                ),
            ));
        }

        // Every kernel that participates in the decomposed-softmax dataflow
        // must agree on T.
        if let Some(t) = k.meta.sub_vector {
            if t != t_expected {
                diags.push(Diagnostic::error(
                    Rule::FusionTileWidth,
                    i,
                    format!(
                        "`{}` uses sub-vector length T={t} but the schedule's \
                         m'/d'/r' layout implies T={t_expected}",
                        k.name
                    ),
                ));
            }
        }

        match k.category {
            KernelCategory::MatMulQk => {
                last_qk_tile_n = k.meta.tile_n;
                if k.meta.fused_ls {
                    match (k.meta.sub_vector, k.meta.tile_n) {
                        (Some(t), Some(n)) if t != n => diags.push(Diagnostic::error(
                            Rule::FusionTileWidth,
                            i,
                            format!(
                                "`{}` fuses LS with sub-vector length T={t} into a MatMul \
                                 with output-tile width {n}; recomposition requires T to \
                                 equal the tile width (paper §3.3)",
                                k.name
                            ),
                        )),
                        (None, _) | (_, None) => diags.push(Diagnostic::warning(
                            Rule::FusionTileWidth,
                            i,
                            format!(
                                "`{}` fuses LS but does not declare both its sub-vector \
                                 length and tile width; legality cannot be checked",
                                k.name
                            ),
                        )),
                        _ => {}
                    }
                }
            }
            KernelCategory::LocalSoftmax => {
                // Standalone LS (the SD configuration): its tiles must align
                // with the tiles of the QK MatMul that produced its input,
                // or recomposing later would be illegal.
                match (k.meta.sub_vector, last_qk_tile_n) {
                    (Some(t), Some(n)) if t != n => diags.push(Diagnostic::error(
                        Rule::FusionTileWidth,
                        i,
                        format!(
                            "`{}` runs LS with sub-vector length T={t} over scores \
                             produced by a MatMul with output-tile width {n}",
                            k.name
                        ),
                    )),
                    (None, _) => diags.push(Diagnostic::warning(
                        Rule::FusionTileWidth,
                        i,
                        format!("`{}` declares no sub-vector length", k.name),
                    )),
                    _ => {}
                }
            }
            KernelCategory::MatMulPv => check_pv_gs(spec, i, k, diags),
            KernelCategory::GlobalScaling => check_standalone_gs(i, k, kernels, diags),
            _ => {}
        }
    }
}

/// GS fused into the `P·V` prologue: present exactly under the recomposed
/// strategy, reading `x'`+`r'` rather than finished probabilities.
fn check_pv_gs(spec: &ScheduleSpec, i: usize, k: &KernelDesc, diags: &mut Vec<Diagnostic>) {
    let fused_gs = k.meta.fused_gs || reads_suffix(k, "r_prime");
    match spec.strategy {
        StrategyKind::Recomposed => {
            if !fused_gs {
                diags.push(Diagnostic::error(
                    Rule::FusionGsPlacement,
                    i,
                    format!(
                        "`{}`: recomposed schedules must fuse Global Scaling into the \
                         P·V prologue, but this P·V has none",
                        k.name
                    ),
                ));
                return;
            }
            if !reads_suffix(k, "x_prime") || !reads_suffix(k, "r_prime") {
                diags.push(Diagnostic::error(
                    Rule::FusionGsPlacement,
                    i,
                    format!(
                        "`{}` fuses GS but does not read both x' and r'; the prologue \
                         must rescale the LHS operand elementwise",
                        k.name
                    ),
                ));
            }
            if reads_suffix(k, "probs") {
                diags.push(Diagnostic::error(
                    Rule::FusionGsPlacement,
                    i,
                    format!(
                        "`{}` fuses GS yet reads finished probabilities; the fused \
                         prologue must consume unscaled x' instead",
                        k.name
                    ),
                ));
            }
            if k.tbs.total_cuda_flops() == 0.0 {
                diags.push(Diagnostic::error(
                    Rule::FusionGsPlacement,
                    i,
                    format!(
                        "`{}` claims a GS prologue but declares zero CUDA-core FLOPs; \
                         the elementwise rescale is unaccounted",
                        k.name
                    ),
                ));
            }
        }
        _ => {
            if fused_gs {
                diags.push(Diagnostic::error(
                    Rule::FusionGsPlacement,
                    i,
                    format!(
                        "`{}` fuses Global Scaling into P·V under the {:?} strategy; \
                         only recomposed schedules may do so",
                        k.name, spec.strategy
                    ),
                ));
            }
        }
    }
}

/// Standalone GS (the SD configuration): an elementwise, shape-preserving
/// rescale whose output is exactly what the following `P·V` consumes.
fn check_standalone_gs(
    i: usize,
    k: &KernelDesc,
    kernels: &[KernelDesc],
    diags: &mut Vec<Diagnostic>,
) {
    if !reads_suffix(k, "x_prime") || !reads_suffix(k, "r_prime") {
        diags.push(Diagnostic::error(
            Rule::FusionGsPlacement,
            i,
            format!("`{}`: standalone GS must read x' and r'", k.name),
        ));
    }
    let in_fp = k
        .reads
        .iter()
        .find(|b| b.id.ends_with("x_prime"))
        .map(|b| b.footprint);
    let out = k.writes.first();
    match (in_fp, out) {
        (Some(inf), Some(o)) if o.footprint != inf => diags.push(Diagnostic::error(
            Rule::FusionGsPlacement,
            i,
            format!(
                "`{}`: GS must be shape-preserving, but its x' input footprint \
                 ({inf} B) differs from its output footprint ({} B)",
                k.name, o.footprint
            ),
        )),
        _ => {}
    }
    // The next P·V must consume this GS's output (the scaled probabilities).
    if let Some(out) = out {
        if let Some(pv) = kernels[i..]
            .iter()
            .find(|n| n.category == KernelCategory::MatMulPv)
        {
            if !pv.reads.iter().any(|b| b.id == out.id) {
                diags.push(Diagnostic::error(
                    Rule::FusionGsPlacement,
                    i,
                    format!(
                        "`{}` writes `{}` but the following P·V (`{}`) does not read it; \
                         GS must feed the P·V LHS",
                        k.name, out.id, pv.name
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ScheduleSpec, SparseSpec};
    use resoftmax_gpusim::{KernelCategory, KernelDesc, KernelMeta, TbWork};

    #[test]
    fn matching_tiles_pass() {
        let spec = ScheduleSpec::dense_test(1024, 1);
        let mut qk = KernelDesc::builder("qk", KernelCategory::MatMulQk);
        qk.meta(KernelMeta {
            tile_n: Some(64),
            sub_vector: Some(64),
            fused_ls: true,
            ..KernelMeta::default()
        });
        let mut diags = Vec::new();
        check(&spec, &[qk.build()], &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn mismatched_ls_tile_fails() {
        let spec = ScheduleSpec::dense_test(1024, 1);
        let mut qk = KernelDesc::builder("qk", KernelCategory::MatMulQk);
        qk.meta(KernelMeta {
            tile_n: Some(64),
            sub_vector: Some(32),
            fused_ls: true,
            ..KernelMeta::default()
        });
        let mut diags = Vec::new();
        check(&spec, &[qk.build()], &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::FusionTileWidth && d.severity == crate::Severity::Error));
    }

    #[test]
    fn standalone_ls_must_match_preceding_qk() {
        let spec = ScheduleSpec::dense_test(1024, 1);
        let mut qk = KernelDesc::builder("qk", KernelCategory::MatMulQk);
        qk.meta(KernelMeta {
            tile_n: Some(128),
            ..KernelMeta::default()
        });
        let mut ls = KernelDesc::builder("ls", KernelCategory::LocalSoftmax);
        ls.meta(KernelMeta {
            sub_vector: Some(64),
            ..KernelMeta::default()
        });
        let mut diags = Vec::new();
        check(&spec, &[qk.build(), ls.build()], &mut diags);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::FusionTileWidth && d.kernel == Some(1)),
            "{diags:?}"
        );
    }

    #[test]
    fn sparse_sub_vector_is_the_block() {
        let mut spec = ScheduleSpec::dense_test(1024, 1);
        spec.sparse = Some(SparseSpec {
            block: 64,
            n_blocks: 16,
            nnz_blocks: 32,
            row_counts: vec![2; 16],
        });
        assert_eq!(expected_sub_vector(&spec), 64);
    }

    #[test]
    fn gs_prologue_required_under_recomposed() {
        let mut spec = ScheduleSpec::dense_test(1024, 1);
        spec.strategy = StrategyKind::Recomposed;
        let mut pv = KernelDesc::builder("pv", KernelCategory::MatMulPv);
        pv.reads("l0.probs", 64).uniform(1, TbWork::default());
        let mut diags = Vec::new();
        check(&spec, &[pv.build()], &mut diags);
        assert!(diags.iter().any(|d| d.rule == Rule::FusionGsPlacement));
    }

    #[test]
    fn gs_prologue_forbidden_under_baseline() {
        let spec = ScheduleSpec::dense_test(1024, 1);
        let mut pv = KernelDesc::builder("pv", KernelCategory::MatMulPv);
        pv.reads("l0.x_prime", 64)
            .reads("l0.r_prime", 4)
            .meta(KernelMeta {
                fused_gs: true,
                ..KernelMeta::default()
            });
        let mut diags = Vec::new();
        check(&spec, &[pv.build()], &mut diags);
        assert!(diags.iter().any(|d| d.rule == Rule::FusionGsPlacement));
    }

    #[test]
    fn standalone_gs_must_feed_pv() {
        let spec = ScheduleSpec::dense_test(1024, 1);
        let mut gs = KernelDesc::builder("gs", KernelCategory::GlobalScaling);
        gs.reads("l0.x_prime", 64)
            .reads("l0.r_prime", 4)
            .writes("l0.probs", 64);
        let mut pv = KernelDesc::builder("pv", KernelCategory::MatMulPv);
        pv.reads("l0.scores", 64); // wrong operand
        let mut diags = Vec::new();
        check(&spec, &[gs.build(), pv.build()], &mut diags);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::FusionGsPlacement && d.kernel == Some(0)),
            "{diags:?}"
        );
    }
}
