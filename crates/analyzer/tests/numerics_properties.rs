//! Property tests for the numerics pass and its error model.
//!
//! The certified bound is a *certificate*: it must exist (or be declined)
//! without panicking for any kernel stream, and it must be monotone in the
//! directions the abstract interpretation claims — error never shrinks when
//! the context grows, and an evenly divided context is the floor of its
//! tile bucket.

use proptest::collection::vec;
use proptest::prelude::*;
use resoftmax_analyzer::{analyze_certified, error_model, ScheduleSpec, StrategyKind};
use resoftmax_gpusim::{
    AccumFormat, BufferUse, KernelCategory, KernelDesc, KernelMeta, TbSet, TbShape, TbWork,
};

const CATEGORIES: [KernelCategory; 8] = [
    KernelCategory::MatMulQk,
    KernelCategory::MatMulPv,
    KernelCategory::Softmax,
    KernelCategory::LocalSoftmax,
    KernelCategory::InterReduction,
    KernelCategory::GlobalScaling,
    KernelCategory::FusedAttention,
    KernelCategory::Other,
];

fn any_accum() -> impl Strategy<Value = Option<AccumFormat>> {
    prop_oneof![
        Just(None),
        Just(Some(AccumFormat::Fp32)),
        Just(Some(AccumFormat::Fp16)),
    ]
}

/// Kernels with arbitrary category/fusion/accumulation metadata — the only
/// fields the numerics pass reads — plus degenerate dimensions.
fn any_kernel() -> impl Strategy<Value = KernelDesc> {
    (
        0usize..CATEGORIES.len(),
        any_accum(),
        any::<bool>(),
        prop_oneof![
            Just(None),
            Just(Some(0usize)),
            (1usize..=512).prop_map(Some)
        ],
    )
        .prop_map(|(c, accum, fused_ls, sub_vector)| KernelDesc {
            name: format!("arb_{}", CATEGORIES[c].label()),
            category: CATEGORIES[c],
            shape: TbShape::new(128, 0, 32),
            tbs: TbSet::Uniform {
                count: 1,
                work: TbWork::default(),
            },
            reads: vec![BufferUse {
                id: "l0.x".into(),
                bytes: 64,
                footprint: 64,
            }],
            writes: vec![],
            meta: KernelMeta {
                accum,
                fused_ls,
                sub_vector,
                ..KernelMeta::default()
            },
        })
}

fn any_spec() -> impl Strategy<Value = ScheduleSpec> {
    (
        prop_oneof![
            Just(StrategyKind::Baseline),
            Just(StrategyKind::Decomposed),
            Just(StrategyKind::Recomposed),
            Just(StrategyKind::OnlineFused),
        ],
        0usize..=8192,
        0usize..=512,
    )
        .prop_map(|(strategy, seq_len, tile_n)| {
            let mut spec = ScheduleSpec::dense_test(seq_len.max(1), 1);
            spec.strategy = strategy;
            spec.seq_len = seq_len; // allow the degenerate 0 too
            spec.tile_n = tile_n;
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The numerics pass must produce (or decline) a certificate for any
    /// kernel stream without panicking, and a produced bound must be
    /// well-formed: finite non-negative error terms, at least one ULP.
    #[test]
    fn certified_bound_never_panics(spec in any_spec(), kernels in vec(any_kernel(), 0..10)) {
        let report = analyze_certified(&spec, &kernels);
        if let Some(b) = report.error_bound {
            prop_assert!(b.rel.is_finite() && b.rel >= 0.0, "{b:?}");
            prop_assert!(b.row_sum.is_finite() && b.row_sum >= 0.0, "{b:?}");
            prop_assert!(b.ulps >= 1, "{b:?}");
            prop_assert!(b.n_sv >= 1, "{b:?}");
        }
        // The bound and the tolerance diagnostic must agree: an error-level
        // "numerics/tolerance" finding exists iff the bound fails the budget.
        let tolerance_error = report
            .diagnostics
            .iter()
            .any(|d| d.rule.code() == "numerics/tolerance");
        match report.error_bound {
            Some(b) => prop_assert_eq!(
                tolerance_error,
                !b.certifies(resoftmax_analyzer::CERT_BUDGET_REL)
            ),
            None => prop_assert!(!tolerance_error),
        }
    }

    /// Growing the context can never shrink the certified error, for every
    /// pipeline shape and accumulation format.
    #[test]
    fn bounds_monotone_in_ctx(
        ctx in 1usize..=16384,
        extra in 0usize..=4096,
        t in 1usize..=512,
        acc in prop_oneof![Just(AccumFormat::Fp32), Just(AccumFormat::Fp16)],
    ) {
        let long = ctx + extra;
        prop_assert!(
            error_model::monolithic(ctx, acc).rel <= error_model::monolithic(long, acc).rel
        );
        prop_assert!(
            error_model::decomposed(ctx, t, acc, AccumFormat::Fp32).rel
                <= error_model::decomposed(long, t, acc, AccumFormat::Fp32).rel
        );
        prop_assert!(
            error_model::online(ctx, t, acc).rel <= error_model::online(long, t, acc).rel
        );
    }

    /// An evenly divided context is the floor of its tile bucket: padding a
    /// multiple of `t` by any partial sub-vector never improves the bound.
    #[test]
    fn even_division_is_bucket_floor(
        n in 1usize..=64,
        t in 1usize..=256,
        j in 1usize..=255,
        acc in prop_oneof![Just(AccumFormat::Fp32), Just(AccumFormat::Fp16)],
    ) {
        prop_assume!(j < t);
        let even = error_model::decomposed(n * t, t, acc, AccumFormat::Fp32);
        let ragged = error_model::decomposed(n * t + j, t, acc, AccumFormat::Fp32);
        prop_assert_eq!(even.n_sv, n);
        prop_assert_eq!(ragged.n_sv, n + 1);
        prop_assert!(even.rel <= ragged.rel, "{even:?} vs {ragged:?}");
        prop_assert!(even.row_sum <= ragged.row_sum);
        prop_assert!(even.ulps <= ragged.ulps);
    }
}
