//! Property-based robustness tests: [`resoftmax_analyzer::analyze`] is a
//! diagnostic tool, so whatever schedule it is handed — including garbage no
//! generator would ever emit — it must return diagnostics, not panic.
//!
//! Kernel shapes are drawn from an adversarial strategy that mixes plausible
//! metadata (real categories, dotted buffer ids, power-of-two tiles) with
//! degenerate values (zero tiles, zero-length buffers, metadata on the wrong
//! category, mismatched footprints), under every strategy/sparsity spec.

use proptest::collection::vec;
use proptest::prelude::*;
use resoftmax_analyzer::{analyze, ScheduleSpec, SparseSpec, StrategyKind};
use resoftmax_gpusim::{
    AccumFormat, BufferUse, KernelCategory, KernelDesc, KernelMeta, ParallelSplit, TbSet, TbShape,
    TbWork,
};

const CATEGORIES: [KernelCategory; 14] = [
    KernelCategory::MatMulQk,
    KernelCategory::MatMulPv,
    KernelCategory::Softmax,
    KernelCategory::LocalSoftmax,
    KernelCategory::InterReduction,
    KernelCategory::GlobalScaling,
    KernelCategory::Fc,
    KernelCategory::FeedForward,
    KernelCategory::Scale,
    KernelCategory::Mask,
    KernelCategory::LayerNorm,
    KernelCategory::Activation,
    KernelCategory::FusedAttention,
    KernelCategory::Other,
];

/// Buffer ids the dataflow rules know about, plus junk they do not.
const BUFFER_IDS: [&str; 12] = [
    "l0.scores",
    "l0.probs",
    "l0.x_prime",
    "l0.m_prime",
    "l0.d_prime",
    "l0.r_prime",
    "l0.q",
    "l0.attn_out",
    "l0.x",
    "l1.x",
    "tokens",
    "junk_without_dots",
];

/// Dimension values including the degenerate 0 that exercises the
/// divide-guards; bounded so shape products stay far from usize overflow.
fn any_dim() -> impl Strategy<Value = Option<usize>> {
    prop_oneof![
        Just(None),
        (0usize..=3).prop_map(|k| Some(k * 64)),
        Just(Some(1)),
        Just(Some(8192)),
    ]
}

fn any_split() -> impl Strategy<Value = Option<ParallelSplit>> {
    prop_oneof![
        Just(None),
        Just(Some(ParallelSplit::OutputRows)),
        Just(Some(ParallelSplit::OutputTiles)),
        Just(Some(ParallelSplit::Elements)),
        Just(Some(ParallelSplit::RowSegments)),
        Just(Some(ParallelSplit::ReductionAxis)),
    ]
}

fn any_accum() -> impl Strategy<Value = Option<AccumFormat>> {
    prop_oneof![
        Just(None),
        Just(Some(AccumFormat::Fp32)),
        Just(Some(AccumFormat::Fp16)),
    ]
}

fn any_meta() -> impl Strategy<Value = KernelMeta> {
    (
        (any_dim(), any_dim(), any_dim(), any_dim(), any_dim()),
        (any_dim(), any_dim(), any_dim()),
        (0u64..=64, 0u64..=1_000_000, 0usize..=4),
        (any::<bool>(), any::<bool>(), any::<bool>(), any_dim()),
        (any_split(), any_accum()),
    )
        .prop_map(
            |(
                (tile_m, tile_n, sub_vector, rows, kv_len),
                (d_head, d_in, d_out),
                (instances, elems, input_streams),
                (fused_scale_mask, fused_ls, fused_gs, sparse_block),
                (split, accum),
            )| KernelMeta {
                tile_m,
                tile_n,
                sub_vector,
                rows,
                kv_len,
                d_head,
                d_in,
                d_out,
                instances: Some(instances),
                elems: Some(elems),
                input_streams: Some(input_streams),
                fused_scale_mask,
                fused_ls,
                fused_gs,
                sparse_block,
                split,
                accum,
            },
        )
}

fn any_buffer() -> impl Strategy<Value = BufferUse> {
    (
        0usize..BUFFER_IDS.len(),
        0u64..=1_000_000_000,
        any::<bool>(),
    )
        .prop_map(|(i, bytes, same_footprint)| BufferUse {
            id: BUFFER_IDS[i].to_owned(),
            bytes,
            footprint: if same_footprint { bytes } else { bytes / 2 },
        })
}

fn any_kernel() -> impl Strategy<Value = KernelDesc> {
    (
        0usize..CATEGORIES.len(),
        (0.0f64..1e12, 0.0f64..1e12, 0.0f64..1e12, 0.0f64..1e12),
        1u64..=100_000,
        any_meta(),
        vec(any_buffer(), 0..4),
        vec(any_buffer(), 0..4),
    )
        .prop_map(
            |(c, (cuda, tensor, read, write), count, meta, reads, writes)| KernelDesc {
                name: format!("arb_{}", CATEGORIES[c].label()),
                category: CATEGORIES[c],
                shape: TbShape::new(128, 0, 32),
                tbs: TbSet::Uniform {
                    count,
                    work: TbWork {
                        cuda_flops: cuda,
                        tensor_flops: tensor,
                        dram_read_bytes: read,
                        dram_write_bytes: write,
                        mem_active_fraction: 1.0,
                        efficiency: 1.0,
                    },
                },
                reads,
                writes,
                meta,
            },
        )
}

fn any_spec() -> impl Strategy<Value = ScheduleSpec> {
    (
        prop_oneof![
            Just(StrategyKind::Baseline),
            Just(StrategyKind::Decomposed),
            Just(StrategyKind::Recomposed),
            Just(StrategyKind::OnlineFused),
        ],
        any::<bool>(),
        1usize..=4,
    )
        .prop_map(|(strategy, sparse, layers)| {
            let mut spec = ScheduleSpec::dense_test(512, layers);
            spec.strategy = strategy;
            if sparse {
                spec.sparse = Some(SparseSpec {
                    block: 64,
                    n_blocks: 8,
                    nnz_blocks: 20,
                    row_counts: vec![3, 2, 2, 3, 2, 2, 3, 3],
                });
            }
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The analyzer must survive any kernel stream without panicking, and
    /// its report must come out sorted most-severe-first.
    #[test]
    fn analyze_never_panics(spec in any_spec(), kernels in vec(any_kernel(), 0..12)) {
        let diags = analyze(&spec, &kernels);
        for w in diags.windows(2) {
            prop_assert!(w[0].severity >= w[1].severity);
        }
        for d in &diags {
            // Kernel references must point into the schedule.
            if let Some(k) = d.kernel {
                prop_assert!(k < kernels.len());
            }
            // Rendering must not panic either.
            let _ = d.render();
        }
    }

    /// Same spec + kernels in, same diagnostics out.
    #[test]
    fn analyze_is_deterministic(spec in any_spec(), kernels in vec(any_kernel(), 0..8)) {
        prop_assert_eq!(analyze(&spec, &kernels), analyze(&spec, &kernels));
    }
}
