//! A dependency-free work-stealing thread pool for data-parallel loops.
//!
//! The workspace's numeric kernels and sweep drivers are embarrassingly
//! parallel over *disjoint output regions* — matrix rows, block-sparse
//! block-rows, (model, strategy, length) sweep combos. This crate provides
//! exactly that shape of parallelism and nothing else:
//!
//! * [`parallel_chunks_mut`] — fixed-size chunks of one mutable slice
//!   (the `par_chunks_mut` shape the vendored `rayon` facade delegates to).
//! * [`parallel_ranges_mut`] — variable-length contiguous ranges of one
//!   mutable slice (block-sparse block-rows have ragged widths).
//! * [`parallel_chunks_mut3`] — three slices chunked in lockstep (kernels
//!   that write one wide output plus per-row side outputs, e.g. the fused
//!   `Q·Kᵀ`+LS epilogue producing `X'`, `m'`, `d'`).
//! * [`parallel_map`] — index-ordered map over a shared slice (sweep
//!   binaries fan combos out and print results in deterministic order).
//!
//! # Execution model
//!
//! Work items are dealt into per-worker deques as contiguous index ranges
//! (preserving locality), then `std::thread::scope` spawns one worker per
//! deque. Each worker pops *its own* deque from the front; when empty it
//! steals from the *back* of a victim's deque. Items only ever leave deques,
//! so an empty full scan proves global completion and workers exit without
//! any further synchronization.
//!
//! # Determinism contract
//!
//! Every entry point hands each closure invocation a disjoint output region
//! identified by a stable index. The closure's arithmetic depends only on
//! that index and on shared read-only inputs — never on scheduling — so
//! results are bit-identical at any thread count, including the serial
//! fallback. Reduction axes are *never* split across workers: a parallel
//! reduction would need a combine step whose association order (and hence
//! floating-point rounding) depends on timing. See `DESIGN.md` §8.
//!
//! # Thread-count selection
//!
//! [`num_threads`] resolves, in order: the programmatic override
//! ([`set_thread_override`], used by benchmarks to compare 1 vs N in one
//! process), the `RESOFTMAX_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]. At 1 thread every entry point
//! degrades to a plain sequential loop with no pool machinery. Nested calls
//! from inside a worker also run sequentially (the outermost loop owns the
//! hardware), so parallel sweeps calling parallel kernels do not oversubscribe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Programmatic thread-count override; `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while the current thread is a pool worker: nested parallel calls
    /// run sequentially instead of spawning a second level of threads.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Elements below this count run sequentially in [`parallel_chunks_mut`] /
/// [`parallel_chunks_mut3`]: spawning scoped threads costs tens of
/// microseconds, which dwarfs the work of a tiny matrix. Results are
/// bit-identical either way; this is purely a latency heuristic.
const MIN_PARALLEL_ELEMS: usize = 4096;

/// Counts `n` work items executed on the serial fallback path, so
/// `pool.tasks_executed` agrees between 1-worker and N-worker runs of the
/// same program.
fn record_serial_items(n: usize) {
    if resoftmax_obs::metrics_enabled() {
        resoftmax_obs::counter("pool.tasks_executed").add(n as u64);
    }
}

/// Overrides the thread count for subsequent parallel regions.
///
/// `Some(n)` forces `n` workers (1 = serial); `None` restores the
/// environment/hardware default. Process-global: intended for benchmark
/// harnesses that time serial vs parallel in one process, not for scoping.
pub fn set_thread_override(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The number of workers a parallel region started now would use.
///
/// Resolution order: [`set_thread_override`] value, then the
/// `RESOFTMAX_THREADS` environment variable (non-numeric or zero values are
/// ignored), then [`std::thread::available_parallelism`], then 1.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(s) = std::env::var("RESOFTMAX_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// `true` while called from inside a pool worker (nested regions serialize).
pub fn in_parallel_region() -> bool {
    IN_POOL.with(Cell::get)
}

/// The work-stealing executor: deals `entries` into per-worker deques and
/// runs `f` on every entry exactly once. `entries` must be nonempty and
/// `workers >= 2` (callers handle the serial cases).
fn execute<T: Send, F>(entries: Vec<(usize, T)>, workers: usize, f: &F)
where
    F: Fn(usize, T) + Sync,
{
    let n = entries.len();
    let workers = workers.min(n);
    let mut deques: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    // Deal contiguous index ranges: entry e goes to worker e·W/n, giving each
    // worker a run of neighboring chunks (locality) of near-equal length.
    for (e, entry) in entries.into_iter().enumerate() {
        let w = e * workers / n;
        deques[w]
            .get_mut()
            .expect("fresh mutex cannot be poisoned")
            .push_back(entry);
    }
    let deques = &deques;
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || {
                IN_POOL.with(|c| c.set(true));
                // Accumulated locally; flushed to the process-wide counters
                // once per worker so the hot loop stays contention-free.
                let mut executed = 0u64;
                let mut stolen_count = 0u64;
                loop {
                    // Owner end: front of our own deque.
                    let own = deques[w].lock().expect("worker panicked").pop_front();
                    if let Some((i, item)) = own {
                        f(i, item);
                        executed += 1;
                        continue;
                    }
                    // Steal end: back of the first non-empty victim.
                    let mut stolen = None;
                    for off in 1..workers {
                        let v = (w + off) % workers;
                        stolen = deques[v].lock().expect("worker panicked").pop_back();
                        if stolen.is_some() {
                            break;
                        }
                    }
                    match stolen {
                        Some((i, item)) => {
                            f(i, item);
                            executed += 1;
                            stolen_count += 1;
                        }
                        // All deques empty: no item can reappear, so done.
                        None => break,
                    }
                }
                IN_POOL.with(|c| c.set(false));
                if resoftmax_obs::metrics_enabled() {
                    resoftmax_obs::counter("pool.tasks_executed").add(executed);
                    resoftmax_obs::counter(&format!("pool.worker{w}.executed")).add(executed);
                    resoftmax_obs::counter(&format!("pool.worker{w}.stolen")).add(stolen_count);
                }
            });
        }
    });
}

/// Decides whether a region over `n_items` work items (covering
/// `total_elems` slice elements) runs in parallel, and with how many workers.
fn plan(n_items: usize, total_elems: usize, min_elems: usize) -> Option<usize> {
    let threads = num_threads();
    if threads <= 1 || n_items <= 1 || total_elems < min_elems || in_parallel_region() {
        return None;
    }
    Some(threads)
}

/// Runs `f(chunk_index, chunk)` over non-overlapping mutable chunks of
/// length `chunk_size` (last may be shorter), in parallel across workers.
///
/// Equivalent to `data.chunks_mut(chunk_size).enumerate().for_each(..)` —
/// bit-identically so, at any thread count, provided `f` writes only through
/// its chunk (the types enforce this) and reads only shared inputs.
///
/// # Panics
///
/// Panics if `chunk_size` is zero, or propagates a panic from `f`.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size != 0, "chunk_size must be non-zero");
    let _span = resoftmax_obs::span!("parallel_chunks_mut", "parallel");
    let n_chunks = data.len().div_ceil(chunk_size);
    match plan(n_chunks, data.len(), MIN_PARALLEL_ELEMS) {
        None => {
            record_serial_items(n_chunks);
            for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
                f(i, chunk);
            }
        }
        Some(workers) => {
            let entries: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_size).enumerate().collect();
            execute(entries, workers, &f);
        }
    }
}

/// Runs `f(range_index, range)` over variable-length contiguous ranges of
/// `data`, where `lens[i]` is the length of range `i` (zero-length ranges
/// are visited with an empty slice).
///
/// This is the ragged counterpart of [`parallel_chunks_mut`], used for
/// block-sparse block-rows whose retained-block counts differ per row.
///
/// # Panics
///
/// Panics if `lens` does not sum to `data.len()`, or propagates from `f`.
pub fn parallel_ranges_mut<T, F>(data: &mut [T], lens: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert_eq!(
        lens.iter().sum::<usize>(),
        data.len(),
        "range lengths must cover the slice exactly"
    );
    let _span = resoftmax_obs::span!("parallel_ranges_mut", "parallel");
    match plan(lens.len(), data.len().max(lens.len()), 0) {
        None => {
            record_serial_items(lens.len());
            let mut rest = data;
            for (i, &len) in lens.iter().enumerate() {
                let (range, tail) = rest.split_at_mut(len);
                f(i, range);
                rest = tail;
            }
        }
        Some(workers) => {
            let mut entries: Vec<(usize, &mut [T])> = Vec::with_capacity(lens.len());
            let mut rest = data;
            for (i, &len) in lens.iter().enumerate() {
                let (range, tail) = rest.split_at_mut(len);
                entries.push((i, range));
                rest = tail;
            }
            execute(entries, workers, &|i, range| f(i, range));
        }
    }
}

/// Runs `f(i, chunk_a, chunk_b, chunk_c)` over three slices chunked in
/// lockstep: chunk `i` of `a` has length `ca`, of `b` length `cb`, of `c`
/// length `cc`. All three must yield the same number of chunks.
///
/// Kernels with one wide output and narrow per-row side outputs (fused
/// `Q·Kᵀ`+LS writes `X'` rows plus `m'`/`d'` rows) parallelize over rows
/// without restructuring their storage.
///
/// # Panics
///
/// Panics if any chunk size is zero or the chunk counts disagree, or
/// propagates a panic from `f`.
pub fn parallel_chunks_mut3<T, U, V, F>(
    a: &mut [T],
    ca: usize,
    b: &mut [U],
    cb: usize,
    c: &mut [V],
    cc: usize,
    f: F,
) where
    T: Send,
    U: Send,
    V: Send,
    F: Fn(usize, &mut [T], &mut [U], &mut [V]) + Sync,
{
    assert!(
        ca != 0 && cb != 0 && cc != 0,
        "chunk sizes must be non-zero"
    );
    let n_chunks = a.len().div_ceil(ca);
    assert_eq!(n_chunks, b.len().div_ceil(cb), "chunk counts disagree");
    assert_eq!(n_chunks, c.len().div_ceil(cc), "chunk counts disagree");
    let _span = resoftmax_obs::span!("parallel_chunks_mut3", "parallel");
    let total = a.len() + b.len() + c.len();
    match plan(n_chunks, total, MIN_PARALLEL_ELEMS) {
        None => {
            record_serial_items(n_chunks);
            for ((i, (xa, xb)), xc) in a
                .chunks_mut(ca)
                .zip(b.chunks_mut(cb))
                .enumerate()
                .zip(c.chunks_mut(cc))
            {
                f(i, xa, xb, xc);
            }
        }
        Some(workers) => {
            type Entry<'s, T, U, V> = (usize, (&'s mut [T], &'s mut [U], &'s mut [V]));
            let entries: Vec<Entry<'_, T, U, V>> = a
                .chunks_mut(ca)
                .zip(b.chunks_mut(cb))
                .zip(c.chunks_mut(cc))
                .map(|((xa, xb), xc)| (xa, xb, xc))
                .enumerate()
                .collect();
            execute(entries, workers, &|i, (xa, xb, xc)| f(i, xa, xb, xc));
        }
    }
}

/// Maps `f` over `items` in parallel, returning results in item order.
///
/// The order of the returned vector (and therefore anything printed from
/// it afterwards) is independent of scheduling — sweep binaries rely on
/// this for byte-identical serial-vs-parallel output. Unlike the chunk
/// entry points, no element-count heuristic applies: even two items go
/// parallel, because sweep items are individually heavy.
///
/// # Panics
///
/// Propagates a panic from `f`.
pub fn parallel_map<I, R, F>(items: &[I], f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    let _span = resoftmax_obs::span!("parallel_map", "parallel");
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    match plan(items.len(), usize::MAX, 0) {
        None => {
            record_serial_items(items.len());
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = Some(f(i, &items[i]));
            }
        }
        Some(workers) => {
            let entries: Vec<(usize, &mut [Option<R>])> = out.chunks_mut(1).enumerate().collect();
            execute(entries, workers, &|i, slot: &mut [Option<R>]| {
                slot[0] = Some(f(i, &items[i]));
            });
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Forces a worker count for one test body, restoring the default after.
    /// Tests in this crate share the process-global override, so they run
    /// under a lock to avoid trampling each other.
    fn with_threads<R>(n: usize, body: impl FnOnce() -> R) -> R {
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap();
        set_thread_override(Some(n));
        let r = body();
        set_thread_override(None);
        r
    }

    #[test]
    fn chunks_visit_every_chunk_once_parallel() {
        with_threads(4, || {
            let mut data = vec![0u32; 10_000];
            parallel_chunks_mut(&mut data, 3, |i, chunk| {
                for x in chunk {
                    *x += 1 + i as u32;
                }
            });
            for (e, &x) in data.iter().enumerate() {
                assert_eq!(x, 1 + (e / 3) as u32);
            }
        });
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut data: Vec<f64> = (0..9999).map(|i| f64::from(i as u32) * 0.1).collect();
                parallel_chunks_mut(&mut data, 7, |i, chunk| {
                    let mut acc = 0.0f64;
                    for x in chunk.iter() {
                        acc += x.sin();
                    }
                    for x in chunk.iter_mut() {
                        *x = acc * (i as f64 + 1.0);
                    }
                });
                data
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn small_slices_stay_serial_but_correct() {
        with_threads(8, || {
            let mut data = vec![1u8; 16]; // below MIN_PARALLEL_ELEMS
            parallel_chunks_mut(&mut data, 4, |i, c| c.fill(i as u8));
            assert_eq!(&data[..4], &[0; 4]);
            assert_eq!(&data[12..], &[3; 4]);
        });
    }

    #[test]
    #[should_panic(expected = "chunk_size must be non-zero")]
    fn zero_chunk_size_panics() {
        parallel_chunks_mut(&mut [0u8; 4], 0, |_, _| {});
    }

    #[test]
    fn ranges_cover_ragged_rows() {
        with_threads(4, || {
            let mut data = vec![0u32; 10];
            let lens = [3, 0, 5, 2];
            parallel_ranges_mut(&mut data, &lens, |i, range| {
                range.fill(i as u32 + 1);
            });
            assert_eq!(data, [1, 1, 1, 3, 3, 3, 3, 3, 4, 4]);
        });
    }

    #[test]
    #[should_panic(expected = "cover the slice exactly")]
    fn ranges_must_cover() {
        parallel_ranges_mut(&mut [0u8; 4], &[1, 2], |_, _| {});
    }

    #[test]
    fn chunks3_locksteps_three_slices() {
        with_threads(4, || {
            let rows = 800;
            let mut a = vec![0u32; rows * 8];
            let mut b = vec![0u16; rows * 2];
            let mut c = vec![0u8; rows];
            parallel_chunks_mut3(&mut a, 8, &mut b, 2, &mut c, 1, |i, xa, xb, xc| {
                xa.fill(i as u32);
                xb.fill(i as u16);
                xc.fill(1);
            });
            assert_eq!(a[8 * 13], 13);
            assert_eq!(b[2 * 13], 13);
            assert!(c.iter().all(|&x| x == 1));
        });
    }

    #[test]
    #[should_panic(expected = "chunk counts disagree")]
    fn chunks3_rejects_mismatched_counts() {
        parallel_chunks_mut3(
            &mut [0u8; 4],
            2,
            &mut [0u8; 9],
            2,
            &mut [0u8; 2],
            1,
            |_, _, _, _| {},
        );
    }

    #[test]
    fn map_preserves_order() {
        with_threads(8, || {
            let items: Vec<usize> = (0..500).collect();
            let out = parallel_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..500).map(|x| x * 2).collect::<Vec<_>>());
        });
    }

    #[test]
    fn nested_regions_serialize() {
        with_threads(4, || {
            let inner_parallel = AtomicUsize::new(0);
            let items: Vec<usize> = (0..8).collect();
            parallel_map(&items, |_, _| {
                assert!(in_parallel_region());
                // A nested region must not spawn: plan() returns None.
                let mut data = vec![0u8; 10_000];
                parallel_chunks_mut(&mut data, 16, |_, c| c.fill(1));
                if data.iter().all(|&x| x == 1) {
                    inner_parallel.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(!in_parallel_region());
            assert_eq!(inner_parallel.load(Ordering::Relaxed), 8);
        });
    }

    #[test]
    fn stealing_drains_imbalanced_deques() {
        // One huge chunk pins a worker; the others must steal the rest.
        with_threads(4, || {
            let mut data = vec![0u64; 64 * 1024];
            let lens: Vec<usize> = std::iter::once(60 * 1024)
                .chain(std::iter::repeat_n(64, 64))
                .collect();
            parallel_ranges_mut(&mut data, &lens, |_, range| {
                let mut acc = 0u64;
                for (e, x) in range.iter_mut().enumerate() {
                    acc = acc.wrapping_add(e as u64);
                    *x = acc;
                }
            });
            assert!(data[60 * 1024 - 1] > 0);
        });
    }

    #[test]
    fn override_beats_env_and_restores() {
        with_threads(3, || assert_eq!(num_threads(), 3));
        // After restoration the default resolution path is active again.
        assert!(num_threads() >= 1);
    }
}
