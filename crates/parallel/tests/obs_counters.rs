//! Pool instrumentation: `pool.tasks_executed` must not depend on the worker
//! count (serial fallback counts items too), and per-worker counters must sum
//! to the parallel total.

use resoftmax_obs as obs;
use resoftmax_parallel as pool;

/// One test function: the thread override and the counters are process-global
/// state, so the two legs must run in a fixed order.
#[test]
fn task_counters_agree_across_worker_counts() {
    obs::set_metrics_enabled(Some(true));
    let total = obs::counter("pool.tasks_executed");

    let run = |threads: usize| {
        pool::set_thread_override(Some(threads));
        let before = total.get();
        let mut data = vec![0u32; 64 * 1024];
        pool::parallel_chunks_mut(&mut data, 64, |i, c| {
            c.fill(u32::try_from(i).expect("small index"));
        });
        pool::set_thread_override(None);
        total.get() - before
    };

    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, 1024, "one task per chunk on the serial path");
    assert_eq!(parallel, serial, "worker count must not change task totals");

    // Per-worker executed counts cover exactly the parallel leg (the serial
    // leg spawns no workers, so it contributes nothing here).
    let snap = obs::metrics_snapshot();
    let per_worker: u64 = snap
        .counts
        .iter()
        .filter(|(n, _)| n.starts_with("pool.worker") && n.ends_with(".executed"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(per_worker, parallel);

    // Steal counters exist for every worker (they may legitimately be zero).
    let stolen_slots = snap
        .counts
        .iter()
        .filter(|(n, _)| n.starts_with("pool.worker") && n.ends_with(".stolen"))
        .count();
    assert!(stolen_slots >= 1);

    obs::set_metrics_enabled(None);
}
