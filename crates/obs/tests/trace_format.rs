//! Round-trip tests: the dependency-free emitters must produce JSON that a
//! real parser accepts, and the recorder must survive record → export →
//! reset cycles.

use resoftmax_obs as obs;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes the tests in this binary: they all mutate the process-global
/// recorder and counters.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn enable() {
    obs::set_trace_enabled(Some(true));
    obs::set_metrics_enabled(Some(true));
}

#[test]
fn chrome_trace_is_valid_json_with_both_stream_kinds() {
    let _g = lock();
    enable();
    obs::reset();
    {
        let _outer = obs::span!("outer \"quoted\"", "itest");
        let _inner = obs::span!("inner", "itest");
    }
    obs::recorder().add_sim_stream(
        "sim:unit",
        obs::recorder().now_us(),
        vec![obs::SimEvent {
            name: "qk_matmul".to_owned(),
            category: "MatMul".to_owned(),
            track: 0,
            start_us: 0.0,
            dur_us: 12.5,
            args: vec![("dram_read_mb", 1.5), ("bad", f64::NAN)],
        }],
    );
    let trace = obs::recorder().export(&obs::ChromeTraceSink);
    let v: serde_json::Value = serde_json::from_str(&trace).expect("chrome trace parses");
    let events = v.as_array().expect("top level is an array");

    // Wall-clock spans live on pid 1, sim events on pid >= 100.
    let has_wall = events
        .iter()
        .any(|e| e["pid"] == 1 && e["ph"] == "X" && e["name"] == "inner");
    let has_sim = events
        .iter()
        .any(|e| e["pid"].as_u64().unwrap_or(0) >= 100 && e["name"] == "qk_matmul");
    assert!(has_wall, "wall-clock span missing: {trace}");
    assert!(has_sim, "sim stream event missing: {trace}");

    // Process-name metadata for both process kinds.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e["name"] == "process_name")
        .filter_map(|e| e["args"]["name"].as_str())
        .collect();
    assert!(names.contains(&"wall-clock"));
    assert!(names.iter().any(|n| n.contains("sim:unit")));

    // Non-finite args were sanitized, not emitted as bare NaN.
    assert!(!trace.contains("NaN"));
}

#[test]
fn metrics_json_parses_and_counts_survive_roundtrip() {
    let _g = lock();
    enable();
    obs::counter("itest.kernels").add(42);
    obs::float_counter("itest.bytes").add(1.0e9);
    {
        let _s = obs::span!("roundtrip", "itest");
    }
    let json = obs::recorder().export(&obs::JsonMetricsSink);
    let v: serde_json::Value = serde_json::from_str(&json).expect("metrics json parses");
    assert!(v["counters"]["itest.kernels"].as_u64().unwrap_or(0) >= 42);
    assert!(v["counters"]["itest.bytes"].as_f64().unwrap_or(0.0) >= 1.0e9);
    let spans = v["spans"].as_object().expect("span aggregates present");
    assert!(spans.iter().any(|(k, _)| k == "roundtrip"));

    // The human summary renders the same state without panicking.
    let summary = obs::recorder().export(&obs::SummarySink);
    assert!(summary.contains("itest.kernels"));

    // Reset really clears: a fresh export has no recorded spans.
    obs::reset();
    assert_eq!(obs::counter("itest.kernels").get(), 0);
    assert!(obs::recorder().spans().is_empty());
}

#[test]
fn counters_sum_across_threads() {
    let _g = lock();
    enable();
    let c = obs::counter("itest.cross_thread");
    let base = c.get();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..2500 {
                    obs::counter("itest.cross_thread").incr();
                }
            });
        }
    });
    assert_eq!(c.get() - base, 10_000);
}
