//! RAII wall-clock spans.

use crate::recorder::{recorder, SpanRecord};
use std::borrow::Cow;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Next thread id to hand out (1-based; 0 is never used).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stable small id for this thread in trace output.
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// The calling thread's stable trace id (assigned on first use).
pub(crate) fn thread_id() -> u64 {
    THREAD_ID.with(|c| {
        let mut id = c.get();
        if id == 0 {
            id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            c.set(id);
        }
        id
    })
}

/// An open span. Dropping it records the interval into the global
/// [`Recorder`](crate::Recorder). When tracing is disabled this is an empty
/// shell and both construction and drop are no-ops.
#[must_use = "a span measures the scope it is bound to; use `let _span = ...`"]
pub struct Span(Option<ActiveSpan>);

struct ActiveSpan {
    name: Cow<'static, str>,
    category: &'static str,
    start_us: f64,
    depth: u32,
}

/// Opens a span named `name` in `category` (by convention the crate name:
/// `"model"`, `"gpusim"`, `"kernels"`, `"sparse"`, `"parallel"`,
/// `"analyzer"`). Prefer the [`span!`](crate::span!) macro.
///
/// Accepts `&'static str` (free) or `String` (owning) names.
pub fn span(name: impl Into<Cow<'static, str>>, category: &'static str) -> Span {
    if !crate::trace_enabled() {
        return Span(None);
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    Span(Some(ActiveSpan {
        name: name.into(),
        category,
        start_us: recorder().now_us(),
        depth,
    }))
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            let end_us = recorder().now_us();
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            recorder().push_span(SpanRecord {
                name: s.name,
                category: s.category,
                thread: thread_id(),
                depth: s.depth,
                start_us: s.start_us,
                dur_us: end_us - s.start_us,
            });
        }
    }
}

/// Opens a [`Span`]: `span!("name")` or `span!("name", "category")`.
///
/// Bind the result — `let _span = resoftmax_obs::span!("pv_matmul",
/// "kernels");` — so the guard lives for the scope being measured.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name, "uncategorized")
    };
    ($name:expr, $category:expr) => {
        $crate::span($name, $category)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = crate::test_lock();
        crate::set_trace_enabled(Some(false));
        {
            let _s = span("ghost", "test");
        }
        assert!(!recorder().spans().iter().any(|s| s.name == "ghost"));
        crate::set_trace_enabled(None);
    }

    #[test]
    fn enabled_spans_nest_and_time() {
        let _g = crate::test_lock();
        crate::set_trace_enabled(Some(true));
        {
            let _outer = span("nest_outer", "test");
            let _inner = span("nest_inner", "test");
        }
        crate::set_trace_enabled(Some(false));
        let spans = recorder().spans();
        let outer = spans.iter().find(|s| s.name == "nest_outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "nest_inner").unwrap();
        assert_eq!(inner.depth, outer.depth + 1);
        assert_eq!(inner.thread, outer.thread);
        // The outer span encloses the inner one.
        assert!(outer.start_us <= inner.start_us);
        assert!(outer.start_us + outer.dur_us >= inner.start_us + inner.dur_us);
        crate::set_trace_enabled(None);
    }

    #[test]
    fn thread_ids_are_stable_and_nonzero() {
        let a = thread_id();
        let b = thread_id();
        assert_eq!(a, b);
        assert!(a > 0);
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, other);
    }
}
