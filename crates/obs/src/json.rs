//! Minimal JSON emission (this crate is dependency-free by contract).

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal, including the quotes.
pub(crate) fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (non-finite values become 0, which JSON
/// cannot represent and trace viewers reject).
pub(crate) fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_stay_valid_json() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
    }
}
