//! Observability for the resoftmax workspace: spans, counters, and a
//! unified trace export — with **zero overhead when disabled**.
//!
//! The paper's argument is a traffic/latency accounting story (Fig. 2/5/8:
//! where time and DRAM bytes go per kernel category). This crate is the
//! substrate that lets the rest of the workspace tell that story *live*:
//!
//! * **Spans** ([`span!`], [`span()`]) — RAII wall-clock intervals on the
//!   thread that opened them. The engine wraps each run, the simulator wraps
//!   each heterogeneous kernel, the pool wraps each parallel region.
//! * **Counters** ([`counter`], [`float_counter`]) — process-wide atomics:
//!   kernels launched, per-category DRAM bytes, pool tasks executed/stolen
//!   per worker, wave-fast-path waves vs event-loop steps.
//! * **Recorder** ([`recorder`]) — collects spans and *simulated* kernel
//!   timelines (streams), and exports them through pluggable [`Sink`]s: a
//!   JSON metrics snapshot ([`JsonMetricsSink`]), a human summary table
//!   ([`SummarySink`]), and a Chrome-trace exporter ([`ChromeTraceSink`])
//!   that merges simulator timelines with real wall-clock spans onto one
//!   timeline (open in `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! # Enabling
//!
//! Everything is off by default. Two independent switches:
//!
//! * `RESOFTMAX_TRACE` — spans + sim-stream recording. Set to `1` (or any
//!   value other than `0`/empty) to enable; a value ending in `.json` also
//!   names the output path the bench binaries write the merged trace to
//!   (default `resoftmax_trace.json`).
//! * `RESOFTMAX_METRICS` — counter updates.
//!
//! Both can be overridden programmatically ([`set_trace_enabled`],
//! [`set_metrics_enabled`]), which is how `Session::builder().instrument(..)`
//! opts a process in without touching the environment.
//!
//! When disabled, every instrumentation site costs one relaxed atomic load
//! and a predictable branch — the `perf_baseline` binary measures the full
//! experiment suite with instrumentation force-disabled vs force-enabled to
//! keep that claim honest.
//!
//! # Example
//!
//! ```
//! use resoftmax_obs as obs;
//!
//! obs::set_trace_enabled(Some(true));
//! obs::set_metrics_enabled(Some(true));
//! {
//!     let _outer = obs::span!("outer", "example");
//!     let _inner = obs::span!("inner", "example");
//!     obs::counter("example.events").add(3);
//! }
//! let spans = obs::recorder().spans();
//! assert!(spans.iter().any(|s| s.name == "outer"));
//! assert_eq!(obs::counter("example.events").get(), 3);
//! let trace = obs::recorder().export(&obs::ChromeTraceSink);
//! assert!(trace.starts_with('['));
//! obs::set_trace_enabled(Some(false));
//! obs::set_metrics_enabled(Some(false));
//! # obs::reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod metrics;
mod recorder;
mod span;

pub use metrics::{
    counter, float_counter, metrics_snapshot, reset_metrics, Counter, FloatCounter, MetricsSnapshot,
};
pub use recorder::{
    recorder, ChromeTraceSink, JsonMetricsSink, Recorder, SimEvent, SimStream, Sink, SpanRecord,
    SummarySink,
};
pub use span::{span, Span};

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state switch: 0 = uninitialized (read the environment on first use),
/// 1 = off, 2 = on.
struct Switch {
    state: AtomicU8,
    env_var: &'static str,
}

impl Switch {
    const fn new(env_var: &'static str) -> Switch {
        Switch {
            state: AtomicU8::new(0),
            env_var,
        }
    }

    /// The hot-path check: one relaxed load; falls back to the environment
    /// only on the very first call.
    fn enabled(&self) -> bool {
        match self.state.load(Ordering::Relaxed) {
            0 => self.init_from_env(),
            1 => false,
            _ => true,
        }
    }

    #[cold]
    fn init_from_env(&self) -> bool {
        let on = std::env::var(self.env_var).is_ok_and(|v| !matches!(v.trim(), "" | "0"));
        // Racing initializers agree (the env does not change under us).
        self.state.store(if on { 2 } else { 1 }, Ordering::Relaxed);
        on
    }

    fn set(&self, v: Option<bool>) {
        let s = match v {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        };
        self.state.store(s, Ordering::Relaxed);
    }
}

static TRACE: Switch = Switch::new("RESOFTMAX_TRACE");
static METRICS: Switch = Switch::new("RESOFTMAX_METRICS");

/// `true` if span/stream recording is on (`RESOFTMAX_TRACE` or programmatic
/// override).
#[inline]
pub fn trace_enabled() -> bool {
    TRACE.enabled()
}

/// `true` if counter updates are on (`RESOFTMAX_METRICS` or programmatic
/// override).
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS.enabled()
}

/// Overrides the trace switch: `Some(v)` forces it, `None` restores
/// environment-driven resolution (re-read on next check).
pub fn set_trace_enabled(v: Option<bool>) {
    TRACE.set(v);
}

/// Overrides the metrics switch: `Some(v)` forces it, `None` restores
/// environment-driven resolution.
pub fn set_metrics_enabled(v: Option<bool>) {
    METRICS.set(v);
}

/// Where the merged chrome-trace should be written, if tracing is enabled.
///
/// `RESOFTMAX_TRACE=out.json` (any value ending in `.json`) names the path;
/// any other truthy value yields the default `resoftmax_trace.json`. Returns
/// `None` when tracing is disabled. The library never writes files itself —
/// binaries consult this and write at exit.
pub fn trace_output_path() -> Option<String> {
    if !trace_enabled() {
        return None;
    }
    match std::env::var("RESOFTMAX_TRACE") {
        Ok(v) if v.trim().ends_with(".json") => Some(v.trim().to_owned()),
        _ => Some("resoftmax_trace.json".to_owned()),
    }
}

/// Clears all recorded state: spans, sim streams, and counters. Switches are
/// left as they are. Intended for tests and long-lived processes that export
/// periodic snapshots.
pub fn reset() {
    recorder().clear();
    reset_metrics();
}

/// Serializes unit tests that mutate the process-global switches/recorder.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
use std::sync::Mutex;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switches_force_and_restore() {
        let _g = test_lock();
        set_trace_enabled(Some(true));
        assert!(trace_enabled());
        set_trace_enabled(Some(false));
        assert!(!trace_enabled());
        // Restore env-driven resolution; the test env has no RESOFTMAX_TRACE
        // (or CI sets it — accept either, just require a stable answer).
        set_trace_enabled(None);
        let a = trace_enabled();
        assert_eq!(a, trace_enabled());
    }

    #[test]
    fn trace_path_none_when_disabled() {
        let _g = test_lock();
        set_trace_enabled(Some(false));
        assert_eq!(trace_output_path(), None);
        set_trace_enabled(Some(true));
        let p = trace_output_path().expect("enabled implies a path");
        assert!(p.ends_with(".json"));
        set_trace_enabled(None);
    }
}
