//! Process-wide atomic counters.
//!
//! Two registries keyed by name: integer counters ([`counter`]) and
//! floating-point accumulators ([`float_counter`], bit-packed into an
//! `AtomicU64` with a CAS loop). Handles are `Copy` references to leaked
//! atomics, so hot paths can look a counter up once and update it lock-free
//! thereafter. The set of distinct names is small and long-lived by design
//! (the leak is bounded by the name vocabulary, not by update volume).
//!
//! Callers gate updates on [`crate::metrics_enabled`] themselves where the
//! *construction* of the name would cost (formatting per-worker names);
//! [`Counter::add`] itself is always safe to call.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

struct Registry {
    ints: Mutex<BTreeMap<String, &'static AtomicU64>>,
    floats: Mutex<BTreeMap<String, &'static AtomicU64>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        ints: Mutex::new(BTreeMap::new()),
        floats: Mutex::new(BTreeMap::new()),
    })
}

fn slot(map: &Mutex<BTreeMap<String, &'static AtomicU64>>, name: &str) -> &'static AtomicU64 {
    let mut m = map.lock().expect("metrics registry poisoned");
    if let Some(a) = m.get(name) {
        return a;
    }
    let a: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    m.insert(name.to_owned(), a);
    a
}

/// A process-wide monotonic integer counter.
#[derive(Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A process-wide floating-point accumulator (e.g. DRAM bytes, which the
/// simulator models as `f64` after L2 filtering).
#[derive(Clone, Copy)]
pub struct FloatCounter(&'static AtomicU64);

impl FloatCounter {
    /// Adds `x` (compare-and-swap loop on the bit pattern).
    pub fn add(self, x: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Looks up (creating on first use) the integer counter `name`.
pub fn counter(name: &str) -> Counter {
    Counter(slot(&registry().ints, name))
}

/// Looks up (creating on first use) the float accumulator `name`.
pub fn float_counter(name: &str) -> FloatCounter {
    FloatCounter(slot(&registry().floats, name))
}

/// A point-in-time copy of every registered counter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Integer counters, sorted by name.
    pub counts: Vec<(String, u64)>,
    /// Float accumulators, sorted by name.
    pub values: Vec<(String, f64)>,
}

impl MetricsSnapshot {
    /// The integer counter `name`, or 0 if never registered.
    pub fn count(&self, name: &str) -> u64 {
        self.counts
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The float accumulator `name`, or 0.0 if never registered.
    pub fn value(&self, name: &str) -> f64 {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v)
    }
}

/// Snapshots every registered counter (sorted by name).
pub fn metrics_snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counts = reg
        .ints
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(n, a)| (n.clone(), a.load(Ordering::Relaxed)))
        .collect();
    let values = reg
        .floats
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(n, a)| (n.clone(), f64::from_bits(a.load(Ordering::Relaxed))))
        .collect();
    MetricsSnapshot { counts, values }
}

/// Zeroes every registered counter (names stay registered).
pub fn reset_metrics() {
    let reg = registry();
    for a in reg.ints.lock().expect("metrics registry poisoned").values() {
        a.store(0, Ordering::Relaxed);
    }
    for a in reg
        .floats
        .lock()
        .expect("metrics registry poisoned")
        .values()
    {
        a.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_counters_accumulate_across_threads() {
        let c = counter("test.metrics.int");
        let base = c.get();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        counter("test.metrics.int").incr();
                    }
                });
            }
        });
        assert_eq!(c.get() - base, 4000);
    }

    #[test]
    fn float_counters_accumulate_exactly_on_one_thread() {
        let c = float_counter("test.metrics.float");
        let base = c.get();
        let mut expect = base;
        for i in 1..=100 {
            let x = f64::from(i) * 0.125;
            c.add(x);
            expect += x;
        }
        assert_eq!(c.get(), expect, "same add sequence => bit-identical");
    }

    #[test]
    fn snapshot_sees_both_kinds() {
        counter("test.metrics.snap_i").add(7);
        float_counter("test.metrics.snap_f").add(1.5);
        let s = metrics_snapshot();
        assert!(s.count("test.metrics.snap_i") >= 7);
        assert!(s.value("test.metrics.snap_f") >= 1.5);
        assert_eq!(s.count("test.metrics.never_registered"), 0);
    }
}
