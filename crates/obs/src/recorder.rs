//! The process-wide [`Recorder`] and its export [`Sink`]s.

use crate::json;
use crate::metrics::metrics_snapshot;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Memory backstop: spans beyond this are counted but not stored
/// (tier-1 test suites run with `RESOFTMAX_TRACE=1` in CI).
const MAX_SPANS: usize = 1 << 18;
/// Memory backstop for recorded simulator streams.
const MAX_STREAMS: usize = 4096;

/// One completed wall-clock span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (e.g. `"run_inference"`, or a kernel name).
    pub name: Cow<'static, str>,
    /// Category, by convention the instrumented crate's name.
    pub category: &'static str,
    /// Stable id of the thread the span ran on (1-based).
    pub thread: u64,
    /// Nesting depth on that thread when the span opened (0 = top level).
    pub depth: u32,
    /// Start, in microseconds since the recorder epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

/// One event of a *simulated* timeline (virtual time, not wall clock).
#[derive(Debug, Clone, PartialEq)]
pub struct SimEvent {
    /// Event name (kernel name).
    pub name: String,
    /// Category label (kernel category).
    pub category: String,
    /// Swim lane within the stream (category index).
    pub track: u32,
    /// Start in simulated microseconds from the stream origin.
    pub start_us: f64,
    /// Duration in simulated microseconds.
    pub dur_us: f64,
    /// Accounting details rendered into the trace's `args`.
    pub args: Vec<(&'static str, f64)>,
}

/// A named simulated timeline anchored at a wall-clock instant, so the
/// merged trace shows the virtual kernel sequence under the real span of the
/// run that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStream {
    /// Stream name (e.g. `"BERT-large/SDF"`).
    pub name: String,
    /// Wall-clock anchor (µs since the recorder epoch) the virtual t=0 maps
    /// to in the merged trace.
    pub anchor_us: f64,
    /// The events, in execution order.
    pub events: Vec<SimEvent>,
}

/// Collects spans and simulated streams; exports through [`Sink`]s.
///
/// One process-wide instance exists ([`recorder`]); sessions and binaries
/// share it. All methods are thread-safe.
pub struct Recorder {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    streams: Mutex<Vec<SimStream>>,
    dropped_spans: AtomicU64,
    dropped_streams: AtomicU64,
}

/// The process-wide recorder.
pub fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        spans: Mutex::new(Vec::new()),
        streams: Mutex::new(Vec::new()),
        dropped_spans: AtomicU64::new(0),
        dropped_streams: AtomicU64::new(0),
    })
}

impl Recorder {
    /// Microseconds elapsed since the recorder epoch (first use).
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Stores one completed span (drops it beyond the memory backstop).
    pub fn push_span(&self, rec: SpanRecord) {
        let mut spans = self.spans.lock().expect("recorder poisoned");
        if spans.len() < MAX_SPANS {
            spans.push(rec);
        } else {
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds a simulated stream anchored at `anchor_us` (µs since the epoch,
    /// typically the wall-clock start of the run that was simulated).
    pub fn add_sim_stream(&self, name: impl Into<String>, anchor_us: f64, events: Vec<SimEvent>) {
        let mut streams = self.streams.lock().expect("recorder poisoned");
        if streams.len() < MAX_STREAMS {
            streams.push(SimStream {
                name: name.into(),
                anchor_us,
                events,
            });
        } else {
            self.dropped_streams.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A copy of all recorded spans.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("recorder poisoned").clone()
    }

    /// A copy of all recorded simulated streams.
    pub fn sim_streams(&self) -> Vec<SimStream> {
        self.streams.lock().expect("recorder poisoned").clone()
    }

    /// Spans + streams dropped at the memory backstop.
    pub fn dropped(&self) -> (u64, u64) {
        (
            self.dropped_spans.load(Ordering::Relaxed),
            self.dropped_streams.load(Ordering::Relaxed),
        )
    }

    /// Clears recorded spans and streams (counters live in
    /// [`crate::reset_metrics`]; [`crate::reset`] clears both).
    pub fn clear(&self) {
        self.spans.lock().expect("recorder poisoned").clear();
        self.streams.lock().expect("recorder poisoned").clear();
        self.dropped_spans.store(0, Ordering::Relaxed);
        self.dropped_streams.store(0, Ordering::Relaxed);
    }

    /// Renders this recorder's state through `sink`.
    pub fn export(&self, sink: &dyn Sink) -> String {
        sink.render(self)
    }

    /// Renders through `sink` and writes the result to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the path is not writable.
    pub fn write(&self, sink: &dyn Sink, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.export(sink))
    }
}

/// An export format over the recorder's state.
///
/// The three built-ins cover the workspace's needs ([`ChromeTraceSink`],
/// [`JsonMetricsSink`], [`SummarySink`]); downstream tools can implement
/// their own.
pub trait Sink {
    /// Short name for logs (`"chrome-trace"`, `"metrics-json"`, ...).
    fn label(&self) -> &'static str;
    /// Renders the recorder's current state.
    fn render(&self, recorder: &Recorder) -> String;
}

/// Chrome Trace Event Format (viewable in `chrome://tracing` /
/// <https://ui.perfetto.dev>) merging wall-clock spans (pid 1, one tid per
/// thread) with every simulated stream (pid 100+i, one tid per kernel
/// category), anchored at the wall-clock start of its run.
pub struct ChromeTraceSink;

/// JSON snapshot of every counter plus span aggregates.
pub struct JsonMetricsSink;

/// Human-readable table of counters and span aggregates.
pub struct SummarySink;

impl Sink for ChromeTraceSink {
    fn label(&self) -> &'static str {
        "chrome-trace"
    }

    fn render(&self, recorder: &Recorder) -> String {
        let spans = recorder.spans();
        let streams = recorder.sim_streams();
        let mut out = String::from("[\n");
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            // Closure keeps the separator logic in one place.
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str("  ");
            out.push_str(&s);
        };

        push(
            r#"{"name":"process_name","ph":"M","pid":1,"args":{"name":"wall-clock"}}"#.to_owned(),
            &mut first,
        );
        let mut threads: Vec<u64> = spans.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        for t in &threads {
            push(
                format!(
                    r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{t},"args":{{"name":"thread-{t}"}}}}"#
                ),
                &mut first,
            );
        }
        for s in &spans {
            push(
                format!(
                    r#"{{"name":{},"cat":{},"ph":"X","pid":1,"tid":{},"ts":{},"dur":{},"args":{{"depth":{}}}}}"#,
                    json::string(&s.name),
                    json::string(s.category),
                    s.thread,
                    json::number(s.start_us),
                    json::number(s.dur_us),
                    s.depth,
                ),
                &mut first,
            );
        }
        for (i, stream) in streams.iter().enumerate() {
            let pid = 100 + i;
            push(
                format!(
                    r#"{{"name":"process_name","ph":"M","pid":{pid},"args":{{"name":{}}}}}"#,
                    json::string(&format!("sim:{}", stream.name)),
                ),
                &mut first,
            );
            for e in &stream.events {
                let mut args = String::new();
                for (k, v) in &e.args {
                    if !args.is_empty() {
                        args.push(',');
                    }
                    let _ = write!(args, "{}:{}", json::string(k), json::number(*v));
                }
                push(
                    format!(
                        r#"{{"name":{},"cat":{},"ph":"X","pid":{pid},"tid":{},"ts":{},"dur":{},"args":{{{args}}}}}"#,
                        json::string(&e.name),
                        json::string(&e.category),
                        e.track + 1,
                        json::number(stream.anchor_us + e.start_us),
                        json::number(e.dur_us),
                    ),
                    &mut first,
                );
            }
        }
        out.push_str("\n]\n");
        out
    }
}

/// Aggregates spans by name: (count, total µs).
fn span_rollup(spans: &[SpanRecord]) -> BTreeMap<(String, &'static str), (u64, f64)> {
    let mut agg: BTreeMap<(String, &'static str), (u64, f64)> = BTreeMap::new();
    for s in spans {
        let e = agg
            .entry((s.name.clone().into_owned(), s.category))
            .or_insert((0, 0.0));
        e.0 += 1;
        e.1 += s.dur_us;
    }
    agg
}

impl Sink for JsonMetricsSink {
    fn label(&self) -> &'static str {
        "metrics-json"
    }

    fn render(&self, recorder: &Recorder) -> String {
        let snap = metrics_snapshot();
        let spans = recorder.spans();
        let (dropped_spans, dropped_streams) = recorder.dropped();
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &snap.counts {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {}: {v}", json::string(name));
        }
        for (name, v) in &snap.values {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {}: {}", json::string(name), json::number(*v));
        }
        out.push_str("\n  },\n  \"spans\": {");
        let rollup = span_rollup(&spans);
        let mut first = true;
        for ((name, cat), (count, total_us)) in &rollup {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {}: {{\"category\": {}, \"count\": {count}, \"total_us\": {}}}",
                json::string(name),
                json::string(cat),
                json::number(*total_us),
            );
        }
        let _ = write!(
            out,
            "\n  }},\n  \"recorded_spans\": {},\n  \"sim_streams\": {},\n  \"dropped_spans\": {dropped_spans},\n  \"dropped_streams\": {dropped_streams}\n}}\n",
            spans.len(),
            recorder.sim_streams().len(),
        );
        out
    }
}

impl Sink for SummarySink {
    fn label(&self) -> &'static str {
        "summary"
    }

    fn render(&self, recorder: &Recorder) -> String {
        let snap = metrics_snapshot();
        let spans = recorder.spans();
        let mut out = String::new();
        let _ = writeln!(out, "== resoftmax observability summary ==");
        if snap.counts.is_empty() && snap.values.is_empty() {
            let _ = writeln!(out, "(no counters registered)");
        } else {
            let _ = writeln!(out, "-- counters --");
            for (name, v) in &snap.counts {
                let _ = writeln!(out, "{name:<44} {v:>16}");
            }
            for (name, v) in &snap.values {
                let _ = writeln!(out, "{name:<44} {v:>16.3e}");
            }
        }
        let rollup = span_rollup(&spans);
        if rollup.is_empty() {
            let _ = writeln!(out, "(no spans recorded)");
        } else {
            let _ = writeln!(out, "-- spans (by name) --");
            let _ = writeln!(
                out,
                "{:<36} {:<10} {:>8} {:>14}",
                "name", "category", "count", "total ms"
            );
            for ((name, cat), (count, total_us)) in &rollup {
                let _ = writeln!(
                    out,
                    "{name:<36} {cat:<10} {count:>8} {:>14.3}",
                    total_us / 1e3
                );
            }
        }
        let streams = recorder.sim_streams();
        if !streams.is_empty() {
            let _ = writeln!(out, "-- simulated streams --");
            for s in &streams {
                let total_ms: f64 = s.events.iter().map(|e| e.dur_us).sum::<f64>() / 1e3;
                let _ = writeln!(
                    out,
                    "{:<44} {:>6} kernels {:>12.3} ms simulated",
                    s.name,
                    s.events.len(),
                    total_ms
                );
            }
        }
        let (ds, dt) = recorder.dropped();
        if ds + dt > 0 {
            let _ = writeln!(out, "(dropped at backstop: {ds} spans, {dt} streams)");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, thread: u64, start: f64, dur: f64) -> SpanRecord {
        SpanRecord {
            name: Cow::Borrowed(name),
            category: "test",
            thread,
            depth: 0,
            start_us: start,
            dur_us: dur,
        }
    }

    #[test]
    fn chrome_trace_merges_spans_and_streams() {
        let _g = crate::test_lock();
        let rec = recorder();
        rec.clear();
        rec.push_span(span("alpha", 1, 10.0, 5.0));
        rec.add_sim_stream(
            "unit/SDF",
            10.0,
            vec![SimEvent {
                name: "qk".into(),
                category: "MatMulQk".into(),
                track: 2,
                start_us: 0.0,
                dur_us: 3.0,
                args: vec![("dram_read_mb", 1.25)],
            }],
        );
        let json = rec.export(&ChromeTraceSink);
        assert!(json.contains("\"alpha\""));
        assert!(json.contains("sim:unit/SDF"));
        assert!(json.contains("\"dram_read_mb\":1.25"));
        // sim event anchored at the stream anchor
        assert!(json.contains("\"ts\":10,"));
        rec.clear();
    }

    #[test]
    fn summary_and_json_render_without_panicking() {
        let _g = crate::test_lock();
        let rec = recorder();
        rec.clear();
        rec.push_span(span("beta", 1, 0.0, 2.0));
        rec.push_span(span("beta", 2, 1.0, 4.0));
        let summary = rec.export(&SummarySink);
        assert!(summary.contains("beta"));
        let json = rec.export(&JsonMetricsSink);
        assert!(json.contains("\"beta\""));
        assert!(json.contains("\"count\": 2"));
        rec.clear();
    }

    #[test]
    fn clear_resets_everything() {
        let _g = crate::test_lock();
        let rec = recorder();
        rec.clear();
        rec.push_span(span("gamma", 1, 0.0, 1.0));
        rec.add_sim_stream("s", 0.0, Vec::new());
        rec.clear();
        assert!(rec.spans().is_empty());
        assert!(rec.sim_streams().is_empty());
        assert_eq!(rec.dropped(), (0, 0));
    }
}
