//! End-to-end observability: the engine, the simulator, and the parallel
//! runtime all feed the one process-wide recorder, and the merged
//! chrome-trace carries both wall-clock spans and simulated kernel streams.
//!
//! The observability switches and the recorder are process-wide, so every
//! test takes the file-local lock first and leaves the switches off.

use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{run_inference, ModelConfig, RunParams, Session, SoftmaxStrategy};
use std::sync::{Mutex, PoisonError};

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Enables both switches and clears all recorded state.
fn fresh_enabled() {
    resoftmax_obs::set_trace_enabled(Some(true));
    resoftmax_obs::set_metrics_enabled(Some(true));
    resoftmax_obs::reset();
}

fn disable() {
    resoftmax_obs::set_trace_enabled(Some(false));
    resoftmax_obs::set_metrics_enabled(Some(false));
}

#[test]
fn merged_trace_has_spans_from_three_crates_and_sim_streams() {
    let _g = lock();
    fresh_enabled();

    // Sweep two strategies through the parallel runtime so the trace picks
    // up a `parallel` span alongside the `model` and `gpusim` ones.
    let strategies = [SoftmaxStrategy::Baseline, SoftmaxStrategy::Recomposed];
    let reports = resoftmax_parallel::parallel_map(&strategies, |_, s| {
        run_inference(
            &ModelConfig::bert_large(),
            &RunParams::new(1024).strategy(*s),
            DeviceSpec::a100(),
        )
        .unwrap()
    });
    assert_eq!(reports.len(), 2);

    let spans = resoftmax_obs::recorder().spans();
    for cat in ["model", "gpusim", "parallel"] {
        assert!(
            spans.iter().any(|s| s.category == cat),
            "no span from crate category {cat:?}; got {:?}",
            spans
                .iter()
                .map(|s| (s.name.clone(), s.category))
                .collect::<Vec<_>>()
        );
    }

    // One simulated stream per run, anchored inside the wall-clock session.
    let streams = resoftmax_obs::recorder().sim_streams();
    assert_eq!(streams.len(), 2, "one sim stream per simulated run");
    assert!(streams.iter().any(|s| s.name.contains("SDF")));
    assert!(streams.iter().all(|s| !s.events.is_empty()));

    // The merged export is one JSON document containing both worlds.
    let trace = resoftmax_obs::recorder().export(&resoftmax_obs::ChromeTraceSink);
    let doc: serde_json::Value = serde_json::from_str(&trace).expect("chrome trace parses");
    let events = doc.as_array().expect("trace is a JSON array");
    let has_wall = events.iter().any(|e| {
        e.get("pid").and_then(serde_json::Value::as_u64) == Some(1)
            && e.get("ph").and_then(serde_json::Value::as_str) == Some("X")
    });
    let has_sim = events.iter().any(|e| {
        e.get("pid")
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0)
            >= 100
            && e.get("ph").and_then(serde_json::Value::as_str) == Some("X")
    });
    assert!(has_wall, "wall-clock complete events present");
    assert!(has_sim, "simulated kernel events present");

    disable();
}

#[test]
fn dram_counters_reconcile_exactly_with_report_breakdown() {
    let _g = lock();
    fresh_enabled();
    // Single-threaded so sweep sums are deterministic run-ordered adds.
    resoftmax_parallel::set_thread_override(Some(1));

    let report = Session::builder()
        .model(ModelConfig::bert_large())
        .device(DeviceSpec::a100())
        .params(RunParams::new(2048))
        .strategy(SoftmaxStrategy::Recomposed)
        .build()
        .unwrap()
        .run()
        .unwrap();

    let snap = resoftmax_obs::metrics_snapshot();
    let breakdown = report.breakdown();
    assert!(!breakdown.categories.is_empty());
    for c in &breakdown.categories {
        let counter = snap.value(&format!("sim.dram_bytes.{}", c.category.label()));
        assert!(
            counter == c.dram_bytes(),
            "category {} counter {counter} != breakdown {}",
            c.category.label(),
            c.dram_bytes()
        );
    }
    assert!(snap.value("sim.dram_bytes.total") == breakdown.total_dram_bytes());
    assert!(snap.value("sim.time_s.total") == report.total_time_s());
    assert!(snap.count("sim.kernels_launched") > 0);

    resoftmax_parallel::set_thread_override(None);
    disable();
}

#[test]
fn disabled_switches_record_nothing() {
    let _g = lock();
    disable();
    resoftmax_obs::reset();

    run_inference(
        &ModelConfig::bert_large(),
        &RunParams::new(512),
        DeviceSpec::a100(),
    )
    .unwrap();

    assert!(resoftmax_obs::recorder().spans().is_empty());
    assert!(resoftmax_obs::recorder().sim_streams().is_empty());
    let snap = resoftmax_obs::metrics_snapshot();
    assert_eq!(snap.count("sim.kernels_launched"), 0);
    assert!(snap.value("sim.dram_bytes.total") == 0.0);
}
