//! Property-based tests of the engine: determinism, monotonicity, and
//! scaling laws that must hold for any model/strategy/device combination.

use proptest::prelude::*;
use resoftmax_gpusim::DeviceSpec;
use resoftmax_model::{build_schedule, run_inference, ModelConfig, RunParams, SoftmaxStrategy};

fn any_model() -> impl Strategy<Value = ModelConfig> {
    prop_oneof![
        Just(ModelConfig::bert_base()),
        Just(ModelConfig::bert_large()),
        Just(ModelConfig::gpt_neo_1_3b()),
        Just(ModelConfig::bigbird_large()),
        Just(ModelConfig::longformer_large()),
        Just(ModelConfig::sparse_transformer()),
    ]
}

fn any_strategy() -> impl Strategy<Value = SoftmaxStrategy> {
    prop_oneof![
        Just(SoftmaxStrategy::Baseline),
        Just(SoftmaxStrategy::Decomposed),
        Just(SoftmaxStrategy::Recomposed),
        Just(SoftmaxStrategy::OnlineFused),
    ]
}

fn any_device() -> impl Strategy<Value = DeviceSpec> {
    prop_oneof![
        Just(DeviceSpec::a100()),
        Just(DeviceSpec::rtx3090()),
        Just(DeviceSpec::t4()),
    ]
}

/// L values compatible with every pattern/tile in play (multiples of 512).
fn any_seq_len() -> impl Strategy<Value = usize> {
    (1usize..8).prop_map(|k| k * 512)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same inputs produce bit-identical schedules and timings.
    #[test]
    fn engine_is_deterministic(model in any_model(), s in any_strategy(), l in any_seq_len()) {
        let params = RunParams::new(l).strategy(s);
        let a = build_schedule(&model, &params);
        let b = build_schedule(&model, &params);
        prop_assert_eq!(&a, &b);
        let ra = run_inference(&model, &params, DeviceSpec::a100()).unwrap();
        let rb = run_inference(&model, &params, DeviceSpec::a100()).unwrap();
        prop_assert_eq!(ra.total_time_s(), rb.total_time_s());
        prop_assert_eq!(ra.total_dram_bytes(), rb.total_dram_bytes());
    }

    /// Longer sequences never run faster.
    #[test]
    fn time_monotone_in_seq_len(
        model in any_model(),
        s in any_strategy(),
        device in any_device(),
        k in 1usize..4,
    ) {
        let l1 = k * 512;
        let l2 = (k + 1) * 512;
        let t1 = run_inference(&model, &RunParams::new(l1).strategy(s), device.clone())
            .unwrap()
            .total_time_s();
        let t2 = run_inference(&model, &RunParams::new(l2).strategy(s), device)
            .unwrap()
            .total_time_s();
        prop_assert!(t2 > t1, "{}: L {l1}->{l2}: {t1} -> {t2}", model.name);
    }

    /// Batch b costs at least (b-eps)× batch 1 and at most b× plus overheads
    /// (batching can only amortize, never multiply, fixed costs).
    #[test]
    fn batch_scaling_bounded(model in any_model(), b in 2usize..8) {
        let t1 = run_inference(&model, &RunParams::new(1024), DeviceSpec::a100())
            .unwrap()
            .total_time_s();
        let tb = run_inference(&model, &RunParams::new(1024).batch(b), DeviceSpec::a100())
            .unwrap()
            .total_time_s();
        let ratio = tb / t1;
        prop_assert!(ratio <= b as f64 * 1.05, "{}: batch {b} ratio {ratio}", model.name);
        prop_assert!(ratio >= 0.5 * b as f64, "{}: batch {b} ratio {ratio}", model.name);
    }

    /// Faster GPU (A100) never loses to T4 on the same workload.
    #[test]
    fn a100_beats_t4(model in any_model(), s in any_strategy(), l in any_seq_len()) {
        let params = RunParams::new(l).strategy(s);
        let ta = run_inference(&model, &params, DeviceSpec::a100()).unwrap().total_time_s();
        let tt = run_inference(&model, &params, DeviceSpec::t4()).unwrap().total_time_s();
        prop_assert!(ta < tt, "{} {}: A100 {ta} vs T4 {tt}", model.name, s.label());
    }

    /// Traffic is strategy-dependent but device-independent (the same
    /// schedule moves the same bytes everywhere, modulo L2 size effects
    /// which only *reduce* traffic on bigger caches).
    #[test]
    fn traffic_weakly_decreases_with_l2(model in any_model(), s in any_strategy()) {
        let params = RunParams::new(1024).strategy(s);
        let big = run_inference(&model, &params, DeviceSpec::a100()).unwrap().total_dram_bytes();
        let small = run_inference(&model, &params, DeviceSpec::t4()).unwrap().total_dram_bytes();
        prop_assert!(big <= small * 1.001, "{}: 40MB L2 {big} vs 4MB L2 {small}", model.name);
    }
}
