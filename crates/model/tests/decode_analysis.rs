//! Static analysis of every decode schedule the model crate can build:
//! dense models × {Baseline, Recomposed} × context lengths that exercise
//! the awkward remainders (non-multiples of 64 and of the sub-vector tile),
//! plus heterogeneous continuous-batching mixes. Each schedule must pass the
//! analyzer with zero errors AND zero dataflow warnings — the r'-dead-store
//! bug this pins down surfaced only as a dataflow warning plus a fusion
//! error, so both channels are asserted.

use resoftmax_analyzer::{Rule, Severity};
use resoftmax_model::{
    build_batched_decode_schedule, check_decode_schedule, ModelConfig, RunParams, SoftmaxStrategy,
};

fn dense_models() -> Vec<ModelConfig> {
    [
        ModelConfig::bert_base(),
        ModelConfig::bert_large(),
        ModelConfig::gpt_neo_1_3b(),
    ]
    .into_iter()
    .collect()
}

#[test]
fn every_decode_schedule_passes_analysis() {
    // 260 is neither a multiple of 64 (IR remainder TB) nor of the default
    // sub-vector tile; 1000 isn't warp-divisible by the old threads formula;
    // 4096 is the paper's sequence length.
    let batches: &[&[usize]] = &[
        &[260],
        &[1000],
        &[4096],
        &[260, 1000, 1000, 4096],
        &[1, 64, 65, 2048],
    ];
    for model in dense_models() {
        for strategy in [SoftmaxStrategy::Baseline, SoftmaxStrategy::Recomposed] {
            for &ctxs in batches {
                let params = RunParams::new(4096).strategy(strategy);
                let kernels = build_batched_decode_schedule(&model, ctxs, &params);
                let report = check_decode_schedule(&model, ctxs, &params, &kernels);
                assert!(
                    !report.has_errors(),
                    "{} {strategy:?} {ctxs:?}:\n{}",
                    model.name,
                    report.render()
                );
                let dataflow_warnings: Vec<_> = report
                    .diagnostics
                    .iter()
                    .filter(|d| {
                        d.severity == Severity::Warning
                            && matches!(
                                d.rule,
                                Rule::DataflowDeadStore
                                    | Rule::DataflowUseBeforeDef
                                    | Rule::DataflowShape
                            )
                    })
                    .collect();
                assert!(
                    dataflow_warnings.is_empty(),
                    "{} {strategy:?} {ctxs:?}: {dataflow_warnings:?}",
                    model.name
                );
            }
        }
    }
}

/// The bug this PR fixes, reconstructed: a recomposed decode PV that never
/// reads `r_prime` (the inter-reduction output is a dead store and the GS
/// prologue is unaccounted). The analyzer must refuse such a schedule — the
/// fusion/FSM rules flag the missing GS fusion as an error and dataflow
/// flags the dead store — so the regression cannot silently return.
#[test]
fn analyzer_catches_r_prime_dead_store() {
    let model = ModelConfig::gpt_neo_1_3b();
    let params = RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed);
    let ctxs = [4096usize];
    let mut kernels = build_batched_decode_schedule(&model, &ctxs, &params);
    for k in &mut kernels {
        if k.category == resoftmax_gpusim::KernelCategory::MatMulPv {
            k.reads.retain(|b| !b.id.ends_with("r_prime"));
            k.meta.fused_gs = false;
            k.meta.sub_vector = None;
        }
    }
    let report = check_decode_schedule(&model, &ctxs, &params, &kernels);
    assert!(
        report.has_errors(),
        "a PV that ignores r_prime must fail analysis:\n{}",
        report.render()
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::DataflowDeadStore && d.message.contains("r_prime")),
        "dead store on r_prime must be reported:\n{}",
        report.render()
    );
}

/// Traffic conservation on the batched schedules: per-TB byte totals and
/// buffer declarations must agree with the analyzer's closed-form decode
/// expectations (the IR padded-remainder overcount tripped exactly this).
#[test]
fn decode_traffic_matches_expectations_exactly() {
    let model = ModelConfig::gpt_neo_1_3b();
    for strategy in [SoftmaxStrategy::Baseline, SoftmaxStrategy::Recomposed] {
        let params = RunParams::new(4096).strategy(strategy);
        let ctxs = [260usize, 1000, 4096];
        let kernels = build_batched_decode_schedule(&model, &ctxs, &params);
        let report = check_decode_schedule(&model, &ctxs, &params, &kernels);
        let traffic: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| matches!(d.rule, Rule::TrafficFormula | Rule::TrafficAttribution))
            .collect();
        assert!(traffic.is_empty(), "{strategy:?}: {traffic:?}");
    }
}

/// The analyzer's warp-alignment lint rejects non-warp-multiple blocks —
/// the old decode softmax launched e.g. 65-thread blocks at ctx 260.
#[test]
fn warp_alignment_lint_fires_on_ragged_blocks() {
    let model = ModelConfig::gpt_neo_1_3b();
    let params = RunParams::new(4096);
    let ctxs = [260usize];
    let mut kernels = build_batched_decode_schedule(&model, &ctxs, &params);
    for k in &mut kernels {
        if k.category == resoftmax_gpusim::KernelCategory::Softmax {
            k.shape.threads = 65; // the pre-fix (ctx/4).clamp(32, 1024) value
        }
    }
    let report = check_decode_schedule(&model, &ctxs, &params, &kernels);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::ShapeWarpAlignment && d.severity == Severity::Error),
        "65-thread block must trip the warp lint:\n{}",
        report.render()
    );
}
