//! Full-sweep equivalence check for the simulator's wave-class fast path:
//! replaying whole waves of identical thread blocks must leave every
//! per-kernel statistic bit-identical to the plain event loop, across the
//! complete evaluation schedules (all models × strategies, dense and
//! block-sparse, including the heterogeneous block-sparse tails).

use resoftmax_gpusim::{DeviceSpec, Gpu};
use resoftmax_model::{build_schedule, ModelConfig, RunParams, SoftmaxStrategy};

fn sweep_points() -> Vec<(ModelConfig, RunParams)> {
    let mut points = Vec::new();
    // Debug builds re-run static analysis inside build_schedule, so keep the
    // grid small there; release (the tier-1 configuration) takes the full one.
    let seq_lens: &[usize] = if cfg!(debug_assertions) {
        &[4096]
    } else {
        &[2048, 4096]
    };
    for model in ModelConfig::all_eval_models() {
        for &seq_len in seq_lens {
            for strategy in SoftmaxStrategy::all() {
                points.push((model.clone(), RunParams::new(seq_len).strategy(strategy)));
            }
        }
    }
    points
}

#[test]
fn fast_path_matches_event_loop_on_full_sweep() {
    for device in [DeviceSpec::a100(), DeviceSpec::t4()] {
        for (model, params) in sweep_points() {
            let kernels = build_schedule(&model, &params);
            let mut fast = Gpu::new(device.clone());
            let mut slow = Gpu::new(device.clone());
            slow.set_wave_fast_path(false);
            for k in &kernels {
                let sf = fast.launch(k).expect("fast launch");
                let ss = slow.launch(k).expect("slow launch");
                assert_eq!(
                    sf,
                    ss,
                    "stats diverge for {} / {} / L={} / kernel {}",
                    model.name,
                    params.strategy.label(),
                    params.seq_len,
                    k.name
                );
            }
            assert_eq!(
                fast.timeline().total_time_s().to_bits(),
                slow.timeline().total_time_s().to_bits(),
                "timeline totals diverge for {} / {}",
                model.name,
                params.strategy.label()
            );
        }
    }
}
