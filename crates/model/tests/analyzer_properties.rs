//! End-to-end properties of the static analyzer against the real engine.
//!
//! Soundness: every schedule `build_schedule` emits — any model, strategy,
//! sequence length, batch, or library profile — must analyze clean (zero
//! errors). Completeness: corrupting one kernel of a clean schedule must be
//! caught by the rule family that owns the broken invariant (fusion
//! legality, buffer dataflow, traffic conservation, SDA sequencing).

use proptest::prelude::*;
use resoftmax_analyzer::{Rule, Severity};
use resoftmax_gpusim::{KernelCategory, KernelDesc, TbSet};
use resoftmax_model::{
    build_schedule, check_schedule, LibraryProfile, ModelConfig, RunParams, SoftmaxStrategy,
};

fn any_model() -> impl Strategy<Value = ModelConfig> {
    prop_oneof![
        Just(ModelConfig::bert_base()),
        Just(ModelConfig::bert_large()),
        Just(ModelConfig::gpt_neo_1_3b()),
        Just(ModelConfig::bigbird_large()),
        Just(ModelConfig::longformer_large()),
        Just(ModelConfig::sparse_transformer()),
    ]
}

fn any_strategy() -> impl Strategy<Value = SoftmaxStrategy> {
    prop_oneof![
        Just(SoftmaxStrategy::Baseline),
        Just(SoftmaxStrategy::Decomposed),
        Just(SoftmaxStrategy::Recomposed),
        Just(SoftmaxStrategy::OnlineFused),
    ]
}

fn any_profile() -> impl Strategy<Value = LibraryProfile> {
    (0usize..LibraryProfile::fig7_lineup().len())
        .prop_map(|i| LibraryProfile::fig7_lineup().swap_remove(i))
}

/// L values compatible with every sparse pattern/tile in play.
fn any_seq_len() -> impl Strategy<Value = usize> {
    (1usize..8).prop_map(|k| k * 512)
}

fn params(l: usize, batch: usize, s: SoftmaxStrategy, p: LibraryProfile) -> RunParams {
    RunParams::new(l).batch(batch).strategy(s).profile(p)
}

/// Rules a diagnostic list hits at `Error` severity.
fn error_rules(report: &resoftmax_analyzer::Report) -> Vec<Rule> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.rule)
        .collect()
}

fn scale_traffic(k: &mut KernelDesc, factor: f64) {
    let scale = |w: &mut resoftmax_gpusim::TbWork| {
        w.dram_read_bytes *= factor;
        w.dram_write_bytes *= factor;
    };
    match &mut k.tbs {
        TbSet::Uniform { work, .. } => scale(work),
        TbSet::PerTb(v) => v.iter_mut().for_each(scale),
        TbSet::Grouped(v) => v.iter_mut().for_each(|g| scale(&mut g.work)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: generated schedules carry zero analyzer errors under any
    /// model/strategy/seq-len/batch/profile combination.
    #[test]
    fn generated_schedules_analyze_clean(
        model in any_model(),
        s in any_strategy(),
        l in any_seq_len(),
        batch in 1usize..=4,
        profile in any_profile(),
    ) {
        let p = params(l, batch, s, profile);
        let kernels = build_schedule(&model, &p);
        let report = check_schedule(&model, &p, &kernels);
        prop_assert!(
            !report.has_errors(),
            "clean schedule reported errors:\n{}",
            report.render()
        );
    }

    /// Completeness, fusion family: disagreeing on the sub-vector length T
    /// anywhere in the SDA block is an error attributed to the tile-width
    /// rule.
    #[test]
    fn tile_width_corruption_is_caught(
        model in any_model(),
        l in any_seq_len(),
        s in prop_oneof![
            Just(SoftmaxStrategy::Decomposed),
            Just(SoftmaxStrategy::Recomposed),
        ],
    ) {
        let p = params(l, 1, s, LibraryProfile::ours_baseline());
        let mut kernels = build_schedule(&model, &p);
        let Some(k) = kernels.iter_mut().find(|k| k.meta.sub_vector.is_some()) else {
            return Err("schedule carries no sub-vector metadata".into());
        };
        k.meta.sub_vector = k.meta.sub_vector.map(|t| t * 2);
        let report = check_schedule(&model, &p, &kernels);
        prop_assert!(
            error_rules(&report).contains(&Rule::FusionTileWidth),
            "doubled sub-vector not caught:\n{}",
            report.render()
        );
    }

    /// Completeness, dataflow family: renaming a producer's output buffer
    /// leaves its consumers reading a never-written intermediate.
    #[test]
    fn renamed_producer_is_caught(
        model in any_model(),
        l in any_seq_len(),
        s in any_strategy(),
    ) {
        let p = params(l, 1, s, LibraryProfile::ours_baseline());
        let mut kernels = build_schedule(&model, &p);
        let Some(w) = kernels
            .iter_mut()
            .flat_map(|k| k.writes.iter_mut())
            .find(|w| w.id.ends_with(".attn_out"))
        else {
            return Err("no attn_out writer in schedule".into());
        };
        w.id = format!("{}_detached", w.id);
        let report = check_schedule(&model, &p, &kernels);
        prop_assert!(
            error_rules(&report).contains(&Rule::DataflowUseBeforeDef),
            "renamed producer not caught:\n{}",
            report.render()
        );
    }

    /// Completeness, traffic family: inflating a kernel's declared DRAM
    /// totals away from its analytic formula is an error attributed to the
    /// traffic rule.
    #[test]
    fn inflated_traffic_is_caught(
        model in any_model(),
        l in any_seq_len(),
        s in any_strategy(),
        idx in 0usize..1_000,
    ) {
        let p = params(l, 1, s, LibraryProfile::ours_baseline());
        let mut kernels = build_schedule(&model, &p);
        // Pick a kernel the formula engine actually models (SDA or FC/FF).
        let candidates: Vec<usize> = kernels
            .iter()
            .enumerate()
            .filter(|(_, k)| {
                k.category.in_sda()
                    || matches!(
                        k.category,
                        KernelCategory::Fc | KernelCategory::FeedForward
                    )
            })
            .map(|(i, _)| i)
            .collect();
        prop_assert!(!candidates.is_empty());
        let victim = candidates[idx % candidates.len()];
        scale_traffic(&mut kernels[victim], 1.5);
        let report = check_schedule(&model, &p, &kernels);
        prop_assert!(
            error_rules(&report).contains(&Rule::TrafficFormula),
            "inflated traffic on kernel #{victim} not caught:\n{}",
            report.render()
        );
    }

    /// Completeness, sequence family: deleting the inter-reduction step
    /// from a decomposed/recomposed schedule breaks the SDA grammar.
    #[test]
    fn missing_ir_is_caught(
        model in any_model(),
        l in any_seq_len(),
        s in prop_oneof![
            Just(SoftmaxStrategy::Decomposed),
            Just(SoftmaxStrategy::Recomposed),
        ],
    ) {
        let p = params(l, 1, s, LibraryProfile::ours_baseline());
        let mut kernels = build_schedule(&model, &p);
        let before = kernels.len();
        let Some(pos) = kernels
            .iter()
            .position(|k| k.category == KernelCategory::InterReduction)
        else {
            return Err("no IR kernel in decomposed schedule".into());
        };
        kernels.remove(pos);
        prop_assert_eq!(kernels.len(), before - 1);
        let report = check_schedule(&model, &p, &kernels);
        prop_assert!(
            error_rules(&report).contains(&Rule::FusionSequence),
            "missing IR not caught:\n{}",
            report.render()
        );
    }
}
