//! Structural invariants of every schedule the model crate can build:
//! buffer wiring (reads reference external inputs or earlier writes),
//! launchability on all three evaluation GPUs, and traffic sanity.
//!
//! The L2 model keys on buffer identity, so a misspelled id would silently
//! disable inter-kernel forwarding; this suite makes that a test failure.

use resoftmax_gpusim::{DeviceSpec, Gpu, KernelDesc};
use resoftmax_model::{
    build_decode_schedule, build_schedule, build_seq2seq_schedule, build_training_schedule,
    LibraryProfile, ModelConfig, RunParams, Seq2SeqConfig, SoftmaxStrategy,
};
use std::collections::HashSet;

/// Buffers a schedule may read without anyone having written them.
fn is_external(id: &str) -> bool {
    id == "tokens"
        || id.ends_with(".w")            // weights
        || id.ends_with("k_cache")       // decode KV caches
        || id.ends_with("v_cache")
        || id.ends_with("enc_out")       // encoder output fed to the decoder
        || id.ends_with(".x")            // layer-boundary activations*
        || id.ends_with(".d_out")        // training boundary gradient
        || id.ends_with(".ff1")          // training reuses fwd activations
        || id.ends_with(".ln1")
        || id.ends_with(".attn_out")
        || id.ends_with(".q")
        || id.ends_with(".k")
        || id.ends_with(".v")
}

fn check_wiring(kernels: &[KernelDesc], strict: bool) {
    let mut written: HashSet<&str> = HashSet::new();
    for k in kernels {
        for r in &k.reads {
            let ok = written.contains(r.id.as_str()) || is_external(&r.id);
            if strict {
                assert!(
                    ok,
                    "kernel {} reads {} which nothing wrote and is not external",
                    k.name, r.id
                );
            }
        }
        for w in &k.writes {
            written.insert(&w.id);
        }
    }
}

fn all_inference_schedules() -> Vec<(String, Vec<KernelDesc>)> {
    let mut out = Vec::new();
    let strategies = [
        SoftmaxStrategy::Baseline,
        SoftmaxStrategy::Decomposed,
        SoftmaxStrategy::Recomposed,
        SoftmaxStrategy::OnlineFused,
    ];
    let mut models = ModelConfig::all_eval_models();
    models.push(ModelConfig::sparse_transformer());
    models.push(ModelConfig::bert_base());
    for model in &models {
        for s in strategies {
            let params = RunParams::new(1024).strategy(s);
            out.push((
                format!("{} / {}", model.name, s.label()),
                build_schedule(model, &params),
            ));
        }
    }
    out
}

#[test]
fn inference_schedules_are_fully_wired() {
    for (label, ks) in all_inference_schedules() {
        assert!(!ks.is_empty(), "{label}: empty schedule");
        check_wiring(&ks, true);
    }
}

#[test]
fn training_and_decode_and_seq2seq_wiring() {
    for s in [SoftmaxStrategy::Baseline, SoftmaxStrategy::Recomposed] {
        let ks = build_training_schedule(
            &ModelConfig::bert_large(),
            &RunParams::new(1024).strategy(s),
        );
        check_wiring(&ks, true);

        let ks = build_decode_schedule(
            &ModelConfig::gpt_neo_1_3b(),
            1024,
            &RunParams::new(1024).strategy(s),
        );
        check_wiring(&ks, true);

        let ks = build_seq2seq_schedule(
            &Seq2SeqConfig::vanilla_transformer_big(),
            1024,
            512,
            &RunParams::new(1024).strategy(s),
        );
        check_wiring(&ks, true);
    }
}

#[test]
fn every_schedule_launches_on_every_gpu() {
    for device in DeviceSpec::all_presets() {
        for (label, ks) in all_inference_schedules() {
            let mut gpu = Gpu::new(device.clone());
            gpu.run(&ks)
                .unwrap_or_else(|e| panic!("{label} on {}: {e}", device.name));
            assert!(gpu.timeline().total_time_s() > 0.0);
        }
        // ...and the extension schedules.
        for s in [SoftmaxStrategy::Baseline, SoftmaxStrategy::Recomposed] {
            let extension_schedules = [
                (
                    "training",
                    build_training_schedule(
                        &ModelConfig::bert_large(),
                        &RunParams::new(1024).strategy(s),
                    ),
                ),
                (
                    "decode",
                    build_decode_schedule(
                        &ModelConfig::gpt_neo_1_3b(),
                        1024,
                        &RunParams::new(1024).strategy(s),
                    ),
                ),
                (
                    "seq2seq",
                    build_seq2seq_schedule(
                        &Seq2SeqConfig::vanilla_transformer_big(),
                        1024,
                        512,
                        &RunParams::new(1024).strategy(s),
                    ),
                ),
            ];
            for (label, ks) in extension_schedules {
                let mut gpu = Gpu::new(device.clone());
                gpu.run(&ks)
                    .unwrap_or_else(|e| panic!("{label}/{} on {}: {e}", s.label(), device.name));
            }
        }
    }
}

#[test]
fn library_profiles_all_launch() {
    let mut lineup = LibraryProfile::fig7_lineup();
    lineup.push(LibraryProfile::autotvm());
    for profile in lineup {
        for model in [ModelConfig::bert_large(), ModelConfig::bigbird_large()] {
            let ks = build_schedule(&model, &RunParams::new(1024).profile(profile.clone()));
            check_wiring(&ks, true);
            let mut gpu = Gpu::new(DeviceSpec::a100());
            gpu.run(&ks).unwrap();
        }
    }
}

#[test]
fn traffic_is_positive_and_finite_everywhere() {
    for (label, ks) in all_inference_schedules() {
        let total: f64 = ks.iter().map(KernelDesc::total_dram_bytes).sum();
        assert!(total.is_finite() && total > 0.0, "{label}: traffic {total}");
        for k in &ks {
            assert!(
                k.total_dram_bytes().is_finite() && k.total_dram_bytes() >= 0.0,
                "{label}/{}: bad traffic",
                k.name
            );
            assert!(k.tbs.count() > 0, "{label}/{}: empty grid", k.name);
        }
    }
}
