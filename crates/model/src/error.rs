//! The crate's unified error type.

use resoftmax_gpusim::LaunchError;
use std::fmt;

/// Everything that can go wrong when configuring or running a simulated
/// inference through the [`Session`](crate::Session) API.
///
/// Marked `#[non_exhaustive]`: future versions may add variants (match with a
/// wildcard arm).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A kernel could not launch on the simulated device (thread block
    /// exceeds SM resources).
    Launch(LaunchError),
    /// The requested model / device / parameter combination is invalid
    /// (caught up front, before any schedule is built).
    InvalidConfig {
        /// What is wrong and, where possible, what would fix it.
        reason: String,
    },
    /// The built schedule failed static analysis (fusion legality, buffer
    /// dataflow, or traffic conservation — see `resoftmax-analyzer`).
    Analysis {
        /// Number of error-severity diagnostics.
        errors: usize,
        /// The rendered diagnostic report.
        report: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Launch(e) => write!(f, "kernel launch failed: {e}"),
            Error::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Error::Analysis { errors, report } => {
                write!(
                    f,
                    "schedule failed static analysis ({errors} errors):\n{report}"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Launch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LaunchError> for Error {
    fn from(e: LaunchError) -> Self {
        Error::Launch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidConfig {
            reason: "batch must be nonzero".into(),
        };
        assert!(e.to_string().contains("batch must be nonzero"));
        let a = Error::Analysis {
            errors: 2,
            report: "E001 ...".into(),
        };
        assert!(a.to_string().contains("2 errors"));
    }

    #[test]
    fn launch_errors_convert_and_chain() {
        // Provoke a real launch error: a block that cannot fit on any SM.
        let launch = resoftmax_gpusim::occupancy(
            &resoftmax_gpusim::DeviceSpec::a100(),
            &resoftmax_gpusim::TbShape::new(1 << 20, 0, 32),
        )
        .unwrap_err();
        let e: Error = launch.into();
        assert!(matches!(e, Error::Launch(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
