//! Library profiles: the kernel-schedule variants of Fig. 7.
//!
//! The libraries the paper compares (HuggingFace, FasterTransformer,
//! TensorRT, DeepSpeed, AutoTVM, and the paper's own baseline) differ in
//! *which kernels they launch* — what is fused, whether block sparsity is
//! exploited — and in implementation efficiency. A [`LibraryProfile`]
//! captures exactly those degrees of freedom; the schedule builder consumes
//! it.

use serde::{Deserialize, Serialize};

/// How a library handles block-sparse attention models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SparseSupport {
    /// Native block-sparse kernels (DeepSpeed/Triton).
    BlockSparse,
    /// Falls back to dense attention, computing the full matrix
    /// (FasterTransformer / TensorRT have no block-sparse path).
    DenseFallback,
    /// Gather/scatter-based sparse implementation (HuggingFace BigBird):
    /// exploits sparsity but with heavy data-movement overheads.
    GatherBased,
}

/// A GPU inference library's scheduling/fusion behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibraryProfile {
    /// Display name.
    pub name: String,
    /// `true` if scale and mask run as standalone elementwise kernels
    /// (instead of fused into the `Q·Kᵀ` epilogue).
    pub separate_scale_mask: bool,
    /// `true` if bias/activation/residual run as standalone kernels.
    pub separate_elementwise: bool,
    /// Work multiplier (≥ 1) on softmax kernels — generic implementations
    /// are less tuned than TensorRT's.
    pub softmax_overhead: f64,
    /// Work multiplier (≥ 1) on MatMul kernels.
    pub matmul_overhead: f64,
    /// Block-sparse capability.
    pub sparse_support: SparseSupport,
}

impl LibraryProfile {
    /// The paper's baseline (§4): CUTLASS dense MatMuls + the TensorRT
    /// softmax kernel, DeepSpeed-equivalent block-sparse kernels, fused
    /// elementwise layers. Everything in Fig. 8/9 is measured against this.
    pub fn ours_baseline() -> Self {
        LibraryProfile {
            name: "Ours-baseline".into(),
            separate_scale_mask: false,
            separate_elementwise: false,
            softmax_overhead: 1.0,
            matmul_overhead: 1.0,
            sparse_support: SparseSupport::BlockSparse,
        }
    }

    /// HuggingFace Transformers on stock PyTorch: unfused elementwise
    /// kernels, generic softmax, gather-based BigBird.
    pub fn huggingface() -> Self {
        LibraryProfile {
            name: "HG".into(),
            separate_scale_mask: true,
            separate_elementwise: true,
            softmax_overhead: 1.25,
            matmul_overhead: 1.05,
            sparse_support: SparseSupport::GatherBased,
        }
    }

    /// NVIDIA FasterTransformer: fused elementwise, tuned dense kernels, no
    /// block-sparse support.
    pub fn faster_transformer() -> Self {
        LibraryProfile {
            name: "FT".into(),
            separate_scale_mask: false,
            separate_elementwise: false,
            softmax_overhead: 1.1,
            matmul_overhead: 1.0,
            sparse_support: SparseSupport::DenseFallback,
        }
    }

    /// NVIDIA TensorRT: the best dense softmax (the paper adopts it for the
    /// baseline), no block-sparse support.
    pub fn tensorrt() -> Self {
        LibraryProfile {
            name: "TRT".into(),
            separate_scale_mask: false,
            separate_elementwise: false,
            softmax_overhead: 1.0,
            matmul_overhead: 1.0,
            sparse_support: SparseSupport::DenseFallback,
        }
    }

    /// Microsoft DeepSpeed v0.5.1: fused elementwise, Triton block-sparse
    /// kernels, softmax slightly behind TensorRT on dense models (§4: the
    /// paper replaces it with TensorRT's in their baseline).
    pub fn deepspeed() -> Self {
        LibraryProfile {
            name: "DS".into(),
            separate_scale_mask: false,
            separate_elementwise: false,
            softmax_overhead: 1.15,
            matmul_overhead: 1.02,
            sparse_support: SparseSupport::BlockSparse,
        }
    }

    /// AutoTVM (§4: "our baseline is 1.49× faster than it for BERT-large"):
    /// operator fusion is TVM's strength, but its auto-tuned kernels do not
    /// reach hand-tuned CUTLASS/TensorRT throughput.
    pub fn autotvm() -> Self {
        LibraryProfile {
            name: "AutoTVM".into(),
            separate_scale_mask: false,
            separate_elementwise: false,
            softmax_overhead: 1.5,
            matmul_overhead: 1.45,
            sparse_support: SparseSupport::DenseFallback,
        }
    }

    /// The Fig. 7 line-up: HG, FT, TRT, DS, ours.
    pub fn fig7_lineup() -> Vec<LibraryProfile> {
        vec![
            Self::huggingface(),
            Self::faster_transformer(),
            Self::tensorrt(),
            Self::deepspeed(),
            Self::ours_baseline(),
        ]
    }
}

impl Default for LibraryProfile {
    fn default() -> Self {
        Self::ours_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_fusion_quality() {
        let hg = LibraryProfile::huggingface();
        let trt = LibraryProfile::tensorrt();
        assert!(hg.separate_scale_mask && !trt.separate_scale_mask);
        assert!(hg.softmax_overhead > trt.softmax_overhead);
    }

    #[test]
    fn sparse_support_assignments() {
        assert_eq!(
            LibraryProfile::deepspeed().sparse_support,
            SparseSupport::BlockSparse
        );
        assert_eq!(
            LibraryProfile::tensorrt().sparse_support,
            SparseSupport::DenseFallback
        );
        assert_eq!(
            LibraryProfile::huggingface().sparse_support,
            SparseSupport::GatherBased
        );
    }

    #[test]
    fn lineup_has_five_entries_ending_with_ours() {
        let lineup = LibraryProfile::fig7_lineup();
        assert_eq!(lineup.len(), 5);
        assert_eq!(lineup[4].name, "Ours-baseline");
        assert_eq!(LibraryProfile::default(), LibraryProfile::ours_baseline());
    }
}
