//! The builder-style [`Session`] API — the recommended way to run simulated
//! inference.
//!
//! A session bundles a validated `(model, device, params)` triple. Building
//! one checks every precondition the free functions would panic on
//! (sequence length vs block size, tile divisibility, zero batch, decode
//! support), and running one routes the schedule through the static analyzer
//! before it reaches the simulator — so every failure mode surfaces as a
//! typed [`Error`] instead of a panic or a silent bad schedule.

use crate::config::{AttentionKind, ModelConfig};
use crate::engine::{simulate_schedule, RunReport};
use crate::error::Error;
use crate::library::SparseSupport;
use crate::schedule::{
    build_schedule, check_schedule, static_error_bound, RunParams, SoftmaxStrategy,
};
use resoftmax_analyzer::CERT_BUDGET_REL;
use resoftmax_gpusim::DeviceSpec;

/// A validated, ready-to-run inference configuration.
///
/// Construct through [`Session::builder`]:
///
/// ```
/// use resoftmax_model::{ModelConfig, RunParams, Session, SoftmaxStrategy};
/// use resoftmax_gpusim::DeviceSpec;
///
/// let session = Session::builder()
///     .model(ModelConfig::bert_large())
///     .device(DeviceSpec::a100())
///     .params(RunParams::new(1024))
///     .strategy(SoftmaxStrategy::Recomposed)
///     .build()?;
/// let report = session.run()?;
/// assert!(report.total_time_s() > 0.0);
/// # Ok::<(), resoftmax_model::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    model: ModelConfig,
    device: DeviceSpec,
    params: RunParams,
    analyze: bool,
}

/// Builder for [`Session`]; see [`Session::builder`].
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    model: Option<ModelConfig>,
    device: Option<DeviceSpec>,
    params: Option<RunParams>,
    strategy: Option<SoftmaxStrategy>,
    analyze: bool,
    instrument: Option<bool>,
}

impl Session {
    /// Starts building a session. [`model`](SessionBuilder::model) and
    /// [`params`](SessionBuilder::params) are required; the device defaults
    /// to the A100.
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            analyze: true,
            ..SessionBuilder::default()
        }
    }

    /// The model this session runs.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The simulated device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The run parameters.
    pub fn params(&self) -> &RunParams {
        &self.params
    }

    /// The process-wide observability recorder (spans, simulated streams);
    /// export it through a [`resoftmax_obs::Sink`] after running.
    pub fn recorder(&self) -> &'static resoftmax_obs::Recorder {
        resoftmax_obs::recorder()
    }

    /// Simulates one full-sequence inference iteration.
    ///
    /// # Errors
    ///
    /// [`Error::Analysis`] if the built schedule fails static analysis (and
    /// analysis was not disabled), [`Error::Launch`] if a kernel cannot
    /// launch on the device.
    pub fn run(&self) -> Result<RunReport, Error> {
        let schedule = build_schedule(&self.model, &self.params);
        if self.analyze {
            let report = check_schedule(&self.model, &self.params, &schedule);
            if report.has_errors() {
                return Err(Error::Analysis {
                    errors: report.count(resoftmax_analyzer::Severity::Error),
                    report: report.render(),
                });
            }
        }
        Ok(simulate_schedule(
            "Session::run",
            &self.model,
            &self.params,
            self.device.clone(),
            &schedule,
        )?)
    }

    /// Simulates generating one token at context length `ctx` (KV cache
    /// already populated).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for the combinations the decode cost model
    /// does not cover (sparse attention, the online-fused strategy, zero
    /// `ctx`); [`Error::Analysis`] if the schedule fails static analysis
    /// (and analysis was not disabled); [`Error::Launch`] if a kernel cannot
    /// launch.
    pub fn decode_step(&self, ctx: usize) -> Result<RunReport, Error> {
        if ctx == 0 {
            return Err(Error::InvalidConfig {
                reason: "decode context length must be nonzero".to_owned(),
            });
        }
        self.decode_batch(&vec![ctx; self.params.batch])
    }

    /// Simulates one continuous-batching engine iteration: one token is
    /// generated per entry of `ctxs`, each row attending a KV cache of that
    /// (possibly different) length. This is the entry point the serving
    /// scheduler drives; `ctxs.len()` overrides the session batch size.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for the combinations the decode cost model
    /// does not cover (sparse attention, the online-fused strategy, an empty
    /// batch, a zero context); [`Error::Analysis`] if the schedule fails
    /// static analysis (and analysis was not disabled); [`Error::Launch`] if
    /// a kernel cannot launch.
    pub fn decode_batch(&self, ctxs: &[usize]) -> Result<RunReport, Error> {
        if !matches!(self.model.attention, AttentionKind::Dense { .. }) {
            return Err(Error::InvalidConfig {
                reason: format!(
                    "decode cost model covers dense attention only; model '{}' is sparse",
                    self.model.name
                ),
            });
        }
        if self.params.strategy == SoftmaxStrategy::OnlineFused {
            return Err(Error::InvalidConfig {
                reason: "decode attention is a single row; online fusion is the GEMV itself"
                    .to_owned(),
            });
        }
        if ctxs.is_empty() {
            return Err(Error::InvalidConfig {
                reason: "decode batch must contain at least one row".to_owned(),
            });
        }
        if ctxs.contains(&0) {
            return Err(Error::InvalidConfig {
                reason: "decode context length must be nonzero".to_owned(),
            });
        }
        // Numerics gate, applied statically (the decode builder debug-asserts
        // its own analysis, so an uncertifiable point must never reach it).
        // Independent of the session-build gate: decode contexts are not
        // bounded by the session's sequence length.
        if let Some(bound) = crate::decode::decode_error_bound(ctxs, &self.params) {
            if !bound.certifies(CERT_BUDGET_REL) {
                return Err(Error::InvalidConfig {
                    reason: format!(
                        "strategy {} at T={} over decode context {} has certified \
                         relative error bound {:.3e}, exceeding the {:.1e} budget; \
                         use a narrower tile or an fp32-accumulation strategy",
                        self.params.strategy.label(),
                        self.params.tile.n,
                        bound.ctx,
                        bound.rel,
                        CERT_BUDGET_REL,
                    ),
                });
            }
        }
        let schedule =
            crate::decode::build_batched_decode_schedule(&self.model, ctxs, &self.params);
        if self.analyze {
            let report =
                crate::decode::check_decode_schedule(&self.model, ctxs, &self.params, &schedule);
            if report.has_errors() {
                return Err(Error::Analysis {
                    errors: report.count(resoftmax_analyzer::Severity::Error),
                    report: report.render(),
                });
            }
        }
        Ok(simulate_schedule(
            "Session::decode_step",
            &self.model,
            &self.params,
            self.device.clone(),
            &schedule,
        )?)
    }
}

impl SessionBuilder {
    /// Sets the model (required).
    #[must_use]
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets the simulated device (default: [`DeviceSpec::a100`]).
    #[must_use]
    pub fn device(mut self, device: DeviceSpec) -> Self {
        self.device = Some(device);
        self
    }

    /// Sets the run parameters (required).
    #[must_use]
    pub fn params(mut self, params: RunParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Overrides the softmax strategy of the run parameters.
    #[must_use]
    pub fn strategy(mut self, strategy: SoftmaxStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Enables or disables the static-analysis gate in [`Session::run`]
    /// (enabled by default).
    #[must_use]
    pub fn analyze(mut self, analyze: bool) -> Self {
        self.analyze = analyze;
        self
    }

    /// Opts the **process** in to (or out of) observability: forces both the
    /// trace and metrics switches, exactly like setting `RESOFTMAX_TRACE` /
    /// `RESOFTMAX_METRICS`. The recorder and counters are process-wide
    /// singletons shared by every session.
    #[must_use]
    pub fn instrument(mut self, on: bool) -> Self {
        self.instrument = Some(on);
        self
    }

    /// Validates the configuration and builds the [`Session`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when the combination cannot run: missing
    /// model or parameters, zero batch or sequence length, a sequence length
    /// that is not a multiple of a sparse model's block size, or a tile
    /// width that does not divide the sequence length.
    pub fn build(self) -> Result<Session, Error> {
        let invalid = |reason: String| Err(Error::InvalidConfig { reason });
        let Some(model) = self.model else {
            return invalid("a model is required: Session::builder().model(..)".to_owned());
        };
        let Some(mut params) = self.params else {
            return invalid(
                "run parameters are required: Session::builder().params(..)".to_owned(),
            );
        };
        if let Some(strategy) = self.strategy {
            params.strategy = strategy;
        }
        if params.batch == 0 {
            return invalid("batch must be nonzero".to_owned());
        }
        if params.seq_len == 0 {
            return invalid("sequence length must be nonzero".to_owned());
        }
        if model.attention.is_sparse() {
            let block = model.attention.block_size();
            if !params.seq_len.is_multiple_of(block) {
                return invalid(format!(
                    "sequence length {} must be a multiple of model '{}' block size {block}",
                    params.seq_len, model.name
                ));
            }
        }
        if params.tile.n == 0 || !params.seq_len.is_multiple_of(params.tile.n) {
            return invalid(format!(
                "tile width {} must divide sequence length {}",
                params.tile.n, params.seq_len
            ));
        }
        if params.strategy == SoftmaxStrategy::RecomposedFp16
            && model.attention.is_sparse()
            && !matches!(params.profile.sparse_support, SparseSupport::DenseFallback)
        {
            return invalid(format!(
                "strategy SDF16 has no block-sparse implementation (no certified \
                 bound exists for it); model '{}' needs a dense-fallback profile \
                 or an fp32-accumulation strategy",
                model.name
            ));
        }
        // Numerics gate: reject combinations whose certified worst-case
        // softmax error exceeds the budget the verify tolerances are derived
        // from. Checked statically — `build_schedule` debug-asserts its own
        // analysis, so an uncertifiable point must never reach the builder.
        if let Some(bound) = static_error_bound(&model, &params) {
            if !bound.certifies(CERT_BUDGET_REL) {
                return invalid(format!(
                    "strategy {} at T={} over L={} has certified relative error \
                     bound {:.3e}, exceeding the {:.1e} budget; use a narrower \
                     tile or an fp32-accumulation strategy",
                    params.strategy.label(),
                    params.tile.n,
                    params.seq_len,
                    bound.rel,
                    CERT_BUDGET_REL,
                ));
            }
        }
        if let Some(on) = self.instrument {
            resoftmax_obs::set_trace_enabled(Some(on));
            resoftmax_obs::set_metrics_enabled(Some(on));
        }
        Ok(Session {
            model,
            device: self.device.unwrap_or_else(DeviceSpec::a100),
            params,
            analyze: self.analyze,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_requires_model_and_params() {
        let e = Session::builder().build().unwrap_err();
        assert!(matches!(e, Error::InvalidConfig { .. }));
        let e = Session::builder()
            .model(ModelConfig::bert_large())
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("parameters"));
    }

    #[test]
    fn builder_rejects_bad_combinations() {
        // Sequence length incompatible with BigBird's block size.
        let e = Session::builder()
            .model(ModelConfig::bigbird_large())
            .params(RunParams::new(1000))
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("block size"), "{e}");

        // Tile width not dividing the sequence length.
        let mut p = RunParams::new(1024);
        p.tile.n = 192;
        let e = Session::builder()
            .model(ModelConfig::bert_large())
            .params(p)
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("tile width"), "{e}");

        // Zero batch.
        let e = Session::builder()
            .model(ModelConfig::bert_large())
            .params(RunParams::new(1024).batch(0))
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("batch"), "{e}");
    }

    #[test]
    fn strategy_override_applies() {
        let s = Session::builder()
            .model(ModelConfig::bert_large())
            .params(RunParams::new(512))
            .strategy(SoftmaxStrategy::OnlineFused)
            .build()
            .unwrap();
        assert_eq!(s.params().strategy, SoftmaxStrategy::OnlineFused);
    }

    #[test]
    fn session_runs_and_matches_free_function() {
        let model = ModelConfig::bert_large();
        let params = RunParams::new(512);
        let s = Session::builder()
            .model(model.clone())
            .params(params.clone())
            .build()
            .unwrap();
        let via_session = s.run().unwrap();
        let via_free = crate::engine::run_inference(&model, &params, DeviceSpec::a100()).unwrap();
        assert_eq!(via_session.total_time_s(), via_free.total_time_s());
        assert_eq!(via_session.total_dram_bytes(), via_free.total_dram_bytes());
    }

    #[test]
    fn decode_rejects_unsupported_combinations() {
        let sparse = Session::builder()
            .model(ModelConfig::bigbird_large())
            .params(RunParams::new(1024))
            .build()
            .unwrap();
        assert!(matches!(
            sparse.decode_step(1024),
            Err(Error::InvalidConfig { .. })
        ));

        let online = Session::builder()
            .model(ModelConfig::gpt_neo_1_3b())
            .params(RunParams::new(1024))
            .strategy(SoftmaxStrategy::OnlineFused)
            .build()
            .unwrap();
        assert!(matches!(
            online.decode_step(1024),
            Err(Error::InvalidConfig { .. })
        ));

        let dense = Session::builder()
            .model(ModelConfig::gpt_neo_1_3b())
            .params(RunParams::new(1024))
            .build()
            .unwrap();
        assert!(dense.decode_step(1024).is_ok());
        assert!(matches!(
            dense.decode_step(0),
            Err(Error::InvalidConfig { .. })
        ));
        assert!(matches!(
            dense.decode_batch(&[]),
            Err(Error::InvalidConfig { .. })
        ));
        assert!(matches!(
            dense.decode_batch(&[512, 0]),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn fp16_recomposition_gated_by_certified_bound() {
        use resoftmax_kernels::costs::TileConfig;
        // Uncertifiable at the default 64-wide tile: typed rejection.
        let e = Session::builder()
            .model(ModelConfig::bert_large())
            .params(RunParams::new(4096))
            .strategy(SoftmaxStrategy::RecomposedFp16)
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("certified"), "{e}");

        // Certifiable at T=16: builds and runs.
        let s = Session::builder()
            .model(ModelConfig::bert_large())
            .params(RunParams::new(4096).tile(TileConfig::new(64, 16)))
            .strategy(SoftmaxStrategy::RecomposedFp16)
            .build()
            .unwrap();
        assert!(s.run().unwrap().total_time_s() > 0.0);

        // No block-sparse implementation exists: typed rejection, not the
        // builder's panic.
        let e = Session::builder()
            .model(ModelConfig::bigbird_large())
            .params(RunParams::new(4096).tile(TileConfig::new(64, 16)))
            .strategy(SoftmaxStrategy::RecomposedFp16)
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("block-sparse"), "{e}");
    }

    #[test]
    fn decode_numerics_gate_is_independent_of_session_length() {
        use resoftmax_kernels::costs::TileConfig;
        // T=32 certifies at the session's own length (bound ~1.90e-2)...
        let s = Session::builder()
            .model(ModelConfig::gpt_neo_1_3b())
            .params(RunParams::new(1024).tile(TileConfig::new(64, 32)))
            .strategy(SoftmaxStrategy::RecomposedFp16)
            .build()
            .unwrap();
        assert!(s.decode_batch(&[1024]).is_ok());
        // ...but a decode context long enough to push the inter-reduction
        // term over budget is rejected before any schedule is built.
        let e = s.decode_batch(&[1 << 24]).unwrap_err();
        assert!(matches!(e, Error::InvalidConfig { .. }));
        assert!(e.to_string().contains("certified"), "{e}");
    }

    #[test]
    fn decode_batch_accepts_heterogeneous_contexts() {
        let s = Session::builder()
            .model(ModelConfig::gpt_neo_1_3b())
            .params(RunParams::new(1024))
            .build()
            .unwrap();
        let r = s.decode_batch(&[260, 1000, 4096]).unwrap();
        assert!(r.total_time_s() > 0.0);
    }
}
