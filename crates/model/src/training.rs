//! Extension (§6): cost model of a full *training* iteration —
//! forward pass + backward pass — under the baseline and recomposed
//! strategies.
//!
//! The paper shows (Eq. 3) that recomposition stays legal in training; this
//! module quantifies what it is worth there. The forward pass is the
//! inference schedule; the backward pass adds, per layer: FC/FF data- and
//! weight-gradient MatMuls, activation/LayerNorm backward, and the
//! attention backward chain (`dV`, `dP`, Eq. 3, `dQ`, `dK`) in either its
//! baseline form (standalone barrier-bound softmax-backward row kernel,
//! stored `P`) or its recomposed form (partial row-dots in the `dP`
//! epilogue + IR reduction + an *elementwise* `dS` kernel, stored
//! `x'`/`r'` — the paper's access-pattern argument applied to backward).
//!
//! Block-sparse models train through the mirrored block-sparse backward
//! kernels (`costs::sparse_training`); their baseline softmax-backward has
//! the same §5.1 utilization pathology as the forward one, so recomposition
//! gains even more in sparse training than dense.

use crate::config::{AttentionKind, ModelConfig};
use crate::engine::RunReport;
use crate::schedule::{build_schedule, RunParams, SoftmaxStrategy};
use resoftmax_gpusim::{DeviceSpec, Gpu, KernelCategory, KernelDesc, LaunchError};
use resoftmax_kernels::costs::{common, sparse_training, training, AttnDims};

/// Builds the kernel schedule of one training iteration (forward + backward),
/// for dense and block-sparse models alike.
///
/// # Panics
///
/// Panics if the strategy is [`SoftmaxStrategy::OnlineFused`] (its backward
/// would be a recompute-based FlashAttention backward, out of scope for the
/// §6 extension).
pub fn build_training_schedule(model: &ModelConfig, params: &RunParams) -> Vec<KernelDesc> {
    assert!(
        params.strategy != SoftmaxStrategy::OnlineFused,
        "online-fused backward is out of scope"
    );
    let recomposed = params.strategy == SoftmaxStrategy::Recomposed;
    let rows = params.seq_len * params.batch;
    let d_model = model.d_model;
    let dims = AttnDims::new(params.seq_len, model.d_head(), model.heads, params.batch);
    let tile = params.tile;

    // Forward pass (identical to inference; activations stay resident in the
    // cost model via the same buffer ids the backward kernels reference).
    let mut kernels = build_schedule(model, params);

    // Backward pass, reverse layer order.
    for layer in (0..model.layers).rev() {
        let prefix = format!("l{layer}");

        // LayerNorm-2 backward (reads dY + stats, writes dX; ~LN cost).
        kernels.push(common::layernorm(rows, d_model, &prefix, "d_out", "d_ff2"));

        // FF backward: dgrad + wgrad for both FCs, activation backward.
        kernels.push(common::fc(
            rows,
            d_model,
            model.d_ff,
            KernelCategory::FeedForward,
            &prefix,
            "d_ff2",
            "d_ff1",
            false,
        ));
        kernels.push(common::fc(
            model.d_ff,
            rows,
            d_model,
            KernelCategory::FeedForward,
            &prefix,
            "ff1",
            "w2_grad",
            false,
        ));
        kernels.push(common::elementwise(
            (rows * model.d_ff) as u64,
            17.0,
            2,
            KernelCategory::Activation,
            "gelu_bwd",
            &prefix,
            &["d_ff1", "ff1"],
            "d_ff1",
        ));
        kernels.push(common::fc(
            rows,
            model.d_ff,
            d_model,
            KernelCategory::FeedForward,
            &prefix,
            "d_ff1",
            "d_ln1",
            false,
        ));
        kernels.push(common::fc(
            d_model,
            rows,
            model.d_ff,
            KernelCategory::FeedForward,
            &prefix,
            "ln1",
            "w1_grad",
            false,
        ));

        // LayerNorm-1 backward.
        kernels.push(common::layernorm(rows, d_model, &prefix, "d_ln1", "d_proj"));

        // Attention output projection backward: dgrad + wgrad.
        kernels.push(common::fc(
            rows,
            d_model,
            d_model,
            KernelCategory::Fc,
            &prefix,
            "d_proj",
            "d_attn_out",
            false,
        ));
        kernels.push(common::fc(
            d_model,
            rows,
            d_model,
            KernelCategory::Fc,
            &prefix,
            "attn_out",
            "wo_grad",
            false,
        ));

        // The attention backward chain (the §6 heart).
        if let AttentionKind::Dense { .. } = model.attention {
            kernels.push(training::matmul_dv(&dims, tile, &prefix, recomposed));
            kernels.push(training::matmul_dp(&dims, tile, &prefix, recomposed));
            if recomposed {
                kernels.push(training::rowdot_reduction(&dims, tile.n, &prefix));
                kernels.push(training::ds_elementwise(&dims, tile.n, &prefix));
            } else {
                kernels.push(training::softmax_backward_monolithic(&dims, &prefix));
            }
            kernels.push(training::matmul_dq_or_dk(&dims, tile, &prefix, "d_q", "k"));
            kernels.push(training::matmul_dq_or_dk(&dims, tile, &prefix, "d_k", "q"));
        } else {
            let layout = model.attention.layout(params.seq_len);
            kernels.push(sparse_training::bs_matmul_dv(
                &layout, &dims, &prefix, recomposed,
            ));
            kernels.push(sparse_training::bs_matmul_dp(
                &layout, &dims, &prefix, recomposed,
            ));
            if recomposed {
                kernels.push(sparse_training::bs_rowdot_reduction(
                    &layout, &dims, &prefix,
                ));
                kernels.push(sparse_training::bs_ds_elementwise(&layout, &dims, &prefix));
            } else {
                kernels.push(sparse_training::bs_softmax_backward(
                    &layout, &dims, &prefix,
                ));
            }
            kernels.push(sparse_training::bs_matmul_dq_or_dk(
                &layout, &dims, &prefix, "d_q",
            ));
            kernels.push(sparse_training::bs_matmul_dq_or_dk(
                &layout, &dims, &prefix, "d_k",
            ));
        }

        // QKV projection backward: 3 × (dgrad + wgrad).
        for g in ["d_q", "d_k", "d_v"] {
            kernels.push(common::fc(
                rows,
                d_model,
                d_model,
                KernelCategory::Fc,
                &prefix,
                g,
                "d_x_partial",
                false,
            ));
            kernels.push(common::fc(
                d_model,
                rows,
                d_model,
                KernelCategory::Fc,
                &prefix,
                "x",
                &format!("w_{g}_grad"),
                false,
            ));
        }
    }
    kernels
}

/// Simulates one training iteration.
///
/// # Errors
///
/// Returns [`LaunchError`] if any kernel cannot launch.
///
/// # Panics
///
/// Panics for sparse models or the online-fused strategy (see
/// [`build_training_schedule`]).
pub fn run_training_iteration(
    model: &ModelConfig,
    params: &RunParams,
    device: DeviceSpec,
) -> Result<RunReport, LaunchError> {
    let schedule = build_training_schedule(model, params);
    let device_name = device.name.clone();
    let mut gpu = Gpu::new(device);
    gpu.run(&schedule)?;
    Ok(RunReport {
        model: model.name.clone(),
        device: device_name,
        params: params.clone(),
        timeline: gpu.into_timeline(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_schedule_is_superset_of_inference() {
        let m = ModelConfig::bert_large();
        let p = RunParams::new(4096);
        let fwd = build_schedule(&m, &p);
        let train = build_training_schedule(&m, &p);
        assert!(train.len() > fwd.len() * 2 - m.layers * 5);
        // forward prefix is identical
        assert_eq!(&train[..fwd.len()], &fwd[..]);
    }

    #[test]
    fn recomposition_speeds_up_training() {
        let m = ModelConfig::bert_large();
        let base = run_training_iteration(&m, &RunParams::new(4096), DeviceSpec::a100()).unwrap();
        let sdf = run_training_iteration(
            &m,
            &RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed),
            DeviceSpec::a100(),
        )
        .unwrap();
        let speedup = base.total_time_s() / sdf.total_time_s();
        assert!(
            speedup > 1.1,
            "training speedup {speedup} should be substantial"
        );
        assert!(sdf.total_dram_bytes() < base.total_dram_bytes());
    }

    #[test]
    fn backward_roughly_doubles_cost() {
        let m = ModelConfig::bert_large();
        let p = RunParams::new(4096);
        let fwd = crate::engine::run_inference(&m, &p, DeviceSpec::a100()).unwrap();
        let train = run_training_iteration(&m, &p, DeviceSpec::a100()).unwrap();
        let ratio = train.total_time_s() / fwd.total_time_s();
        assert!((1.8..3.5).contains(&ratio), "train/inference ratio {ratio}");
    }

    #[test]
    fn sparse_training_gains_exceed_dense() {
        let dense = {
            let base = run_training_iteration(
                &ModelConfig::bert_large(),
                &RunParams::new(4096),
                DeviceSpec::a100(),
            )
            .unwrap();
            let sdf = run_training_iteration(
                &ModelConfig::bert_large(),
                &RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed),
                DeviceSpec::a100(),
            )
            .unwrap();
            base.total_time_s() / sdf.total_time_s()
        };
        let sparse = {
            let base = run_training_iteration(
                &ModelConfig::bigbird_large(),
                &RunParams::new(4096),
                DeviceSpec::a100(),
            )
            .unwrap();
            let sdf = run_training_iteration(
                &ModelConfig::bigbird_large(),
                &RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed),
                DeviceSpec::a100(),
            )
            .unwrap();
            base.total_time_s() / sdf.total_time_s()
        };
        assert!(sparse > 1.1, "sparse training speedup {sparse}");
        assert!(
            sparse > dense,
            "sparse training ({sparse}) should gain more than dense ({dense})"
        );
    }

    #[test]
    #[should_panic(expected = "out of scope")]
    fn online_fused_rejected() {
        let _ = build_training_schedule(
            &ModelConfig::bert_large(),
            &RunParams::new(4096).strategy(SoftmaxStrategy::OnlineFused),
        );
    }
}
