//! Transformer model definitions and the simulated inference engine.
//!
//! Ties the substrates together: model configurations at the paper's
//! published dimensions ([`ModelConfig`]), library schedule profiles
//! ([`LibraryProfile`], Fig. 7), the kernel-schedule builder implementing the
//! Baseline / SD / SDF configurations ([`build_schedule`], Fig. 6), the
//! engine that executes a schedule on the GPU simulator ([`run_inference`]),
//! and the synthetic long-document workload ([`Workload`], the TriviaQA
//! substitute).
//!
//! # Example
//!
//! ```
//! use resoftmax_model::{run_inference, ModelConfig, RunParams, SoftmaxStrategy};
//! use resoftmax_gpusim::DeviceSpec;
//!
//! let base = run_inference(
//!     &ModelConfig::bigbird_large(),
//!     &RunParams::new(1024),
//!     DeviceSpec::a100(),
//! )?;
//! let sdf = run_inference(
//!     &ModelConfig::bigbird_large(),
//!     &RunParams::new(1024).strategy(SoftmaxStrategy::Recomposed),
//!     DeviceSpec::a100(),
//! )?;
//! assert!(sdf.total_time_s() < base.total_time_s());
//! # Ok::<(), resoftmax_gpusim::LaunchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod decode;
mod engine;
mod error;
mod library;
mod schedule;
mod seq2seq;
mod session;
mod training;
mod workload;

pub use config::{AttentionKind, ModelConfig};
pub use decode::{
    build_batched_decode_schedule, build_decode_schedule, check_decode_schedule,
    decode_analysis_spec, decode_error_bound, run_decode_step,
};
pub use engine::{run_inference, RunReport};
pub use error::Error;
pub use library::{LibraryProfile, SparseSupport};
pub use resoftmax_gpusim::ParallelSplit;
pub use schedule::{
    analysis_spec, build_schedule, check_schedule, static_error_bound, RunParams, SoftmaxStrategy,
};
pub use seq2seq::{build_seq2seq_schedule, run_seq2seq, Seq2SeqConfig};
pub use session::{Session, SessionBuilder};
pub use training::{build_training_schedule, run_training_iteration};
pub use workload::{Document, Workload, WorkloadConfig};

/// The items almost every user of this crate needs, importable in one line:
/// `use resoftmax_model::prelude::*;`.
pub mod prelude {
    pub use crate::config::ModelConfig;
    pub use crate::engine::{run_inference, RunReport};
    pub use crate::error::Error;
    pub use crate::library::LibraryProfile;
    pub use crate::schedule::{RunParams, SoftmaxStrategy};
    pub use crate::session::{Session, SessionBuilder};
    pub use resoftmax_gpusim::DeviceSpec;
}
