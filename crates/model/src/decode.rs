//! Extension: autoregressive *decode* (token generation with a KV cache)
//! — a scope boundary of the paper.
//!
//! The paper evaluates full-sequence inference, where the attention matrix
//! is `L × L` and dwarfs the L2. In token-by-token generation the "attention
//! matrix" is a single `1 × ctx` row per head (kilobytes): it lives in L2
//! between kernels, so eliminating its off-chip traffic — the entire point
//! of recomposition — has nothing to eliminate. Decode is bound by weight
//! and KV-cache streaming instead. This module prices that regime so the
//! boundary is measured, not asserted.
//!
//! The batched builder generalizes the single-request schedule to one fused
//! engine iteration over rows at *heterogeneous* context lengths — the shape
//! a continuous-batching serving loop produces (`resoftmax-serve`): each row
//! is one token being generated (or one prefill-chunk position), attending a
//! KV cache of its own length.

use crate::config::{AttentionKind, ModelConfig};
use crate::engine::RunReport;
use crate::schedule::{RunParams, SoftmaxStrategy};
use resoftmax_analyzer::{error_model, DecodeSpec, ErrorBound, ScheduleSpec, StrategyKind};
use resoftmax_gpusim::{
    AccumFormat, DeviceSpec, KernelCategory, KernelDesc, KernelDescBuilder, KernelMeta,
    LaunchError, ParallelSplit, TbGroup, TbShape, TbWork,
};
use resoftmax_kernels::costs::{
    buf, common, row_threads, EXP_FLOP_EQUIV, FP16_BYTES, SOFTMAX_PHASE_EFFICIENCY,
    STREAM_EFFICIENCY,
};

/// Attaches one thread block per attention instance to the builder: `heads`
/// TBs per row, each sized by that row's context length. Adjacent rows with
/// equal contexts merge into one group (a single run collapses to a uniform
/// grid, which the simulator replays on its wave fast path).
fn per_row_tbs(
    b: &mut KernelDescBuilder,
    ctxs: &[usize],
    heads: u64,
    work_of: impl Fn(usize) -> TbWork,
) {
    let mut runs: Vec<(usize, u64)> = Vec::new();
    for &c in ctxs {
        match runs.last_mut() {
            Some((prev, n)) if *prev == c => *n += heads,
            _ => runs.push((c, heads)),
        }
    }
    if let [(c, n)] = runs[..] {
        b.uniform(n, work_of(c));
    } else {
        b.grouped(
            runs.into_iter()
                .map(|(c, n)| TbGroup::new(work_of(c), n))
                .collect(),
        );
    }
}

/// Builds the kernel schedule for ONE engine iteration that generates one
/// token per entry of `ctxs`, each attending a KV cache of that length.
///
/// Every attention kernel is launched once for the whole batch (continuous
/// batching: heterogeneous rows share a grid); the feed-forward stack runs
/// as `ctxs.len()`-row GEMMs. `params` supplies the strategy and the
/// sub-vector tile width; its `batch`/`seq_len` are ignored here — the row
/// count is `ctxs.len()`.
///
/// # Panics
///
/// Panics for non-dense models (decode with block-sparse caches is not
/// modeled), for the online-fused strategy, and for empty or zero contexts.
pub fn build_batched_decode_schedule(
    model: &ModelConfig,
    ctxs: &[usize],
    params: &RunParams,
) -> Vec<KernelDesc> {
    assert!(
        matches!(model.attention, AttentionKind::Dense { .. }),
        "decode cost model covers dense attention only"
    );
    assert!(
        params.strategy != SoftmaxStrategy::OnlineFused,
        "decode attention is a single row; online fusion is the GEMV itself"
    );
    assert!(
        !ctxs.is_empty(),
        "decode batch must contain at least one row"
    );
    assert!(
        ctxs.iter().all(|&c| c > 0),
        "decode context lengths must be nonzero"
    );
    let recomposed = matches!(
        params.strategy,
        SoftmaxStrategy::Recomposed | SoftmaxStrategy::RecomposedFp16
    );
    // The LS epilogue's partial-sum accumulation format (the GEMV dot
    // products themselves always accumulate in binary32).
    let ls_accum = if params.strategy == SoftmaxStrategy::RecomposedFp16 {
        AccumFormat::Fp16
    } else {
        AccumFormat::Fp32
    };
    let rows = ctxs.len();
    let d_model = model.d_model;
    let heads = model.heads;
    let d_head = model.d_head();
    let h = heads as u64;
    let inst = h * rows as u64;
    let t_sub = params.tile.n.max(1);
    let n_sv = |ctx: usize| ctx.div_ceil(t_sub);
    let max_ctx = *ctxs.iter().max().expect("nonempty batch");

    // Batch-wide byte totals for the buffer declarations (all `heads`
    // instances of all rows).
    let cache_total: u64 = ctxs
        .iter()
        .map(|&c| (c * d_head * FP16_BYTES) as u64)
        .sum::<u64>()
        * h;
    let row_total: u64 = ctxs.iter().map(|&c| (c * FP16_BYTES) as u64).sum::<u64>() * h;
    let sv_total: u64 = ctxs
        .iter()
        .map(|&c| (n_sv(c) * FP16_BYTES) as u64)
        .sum::<u64>()
        * h;
    let qkv_total = (rows * d_model * FP16_BYTES) as u64;

    let mut kernels = Vec::new();
    for layer in 0..model.layers {
        let prefix = format!("l{layer}");
        // QKV projections: `rows`-row GEMVs, weight-streaming bound.
        for out in ["q", "k", "v"] {
            kernels.push(common::fc(
                rows,
                d_model,
                d_model,
                KernelCategory::Fc,
                &prefix,
                "x",
                out,
                true,
            ));
        }

        // q·Kᵀ over the KV cache: one GEMV per instance, streaming that
        // row's K-cache slice plus its q and (appended) k rows. With
        // recomposition the LS epilogue rides along (scale + exp + local
        // max), fused as in Fig. 6, emitting the per-sub-vector m'/d'.
        let mut qk = KernelDesc::builder(
            format!(
                "decode_qk{}(rows={rows},max_ctx={max_ctx})",
                match (recomposed, ls_accum) {
                    (false, _) => "",
                    (true, AccumFormat::Fp32) => "+ls",
                    (true, AccumFormat::Fp16) => "+ls16",
                }
            ),
            KernelCategory::MatMulQk,
        );
        qk.shape(TbShape::new(256, 16 * 1024, 64));
        per_row_tbs(&mut qk, ctxs, h, |ctx| TbWork {
            cuda_flops: 2.0 * (ctx * d_head) as f64
                + if recomposed {
                    (EXP_FLOP_EQUIV + 6.0) * ctx as f64
                } else {
                    2.0 * ctx as f64
                },
            tensor_flops: 0.0,
            dram_read_bytes: ((ctx + 2) * d_head * FP16_BYTES) as f64,
            dram_write_bytes: (ctx * FP16_BYTES) as f64
                + if recomposed {
                    (2 * n_sv(ctx) * FP16_BYTES) as f64
                } else {
                    0.0
                },
            mem_active_fraction: 1.0,
            efficiency: STREAM_EFFICIENCY,
        });
        qk.meta(KernelMeta {
            d_head: Some(d_head),
            instances: Some(inst),
            fused_ls: recomposed,
            sub_vector: recomposed.then_some(t_sub),
            tile_n: recomposed.then_some(t_sub),
            split: Some(ParallelSplit::OutputRows),
            accum: Some(if recomposed {
                ls_accum
            } else {
                AccumFormat::Fp32
            }),
            ..KernelMeta::default()
        })
        .reads(buf(&prefix, "k_cache"), cache_total)
        .reads(buf(&prefix, "q"), qkv_total)
        .reads(buf(&prefix, "k"), qkv_total)
        .writes(
            buf(&prefix, if recomposed { "x_prime" } else { "scores" }),
            row_total,
        );
        if recomposed {
            qk.writes(buf(&prefix, "m_prime"), sv_total)
                .writes(buf(&prefix, "d_prime"), sv_total);
        }
        kernels.push(qk.build());

        if recomposed {
            // IR over each row's sub-vectors: trivially small. 64 instance
            // rows per TB; the remainder TB charges only its true rows — a
            // padded figure here is a 4x overcount at GPT-Neo batch 1.
            let per_inst_sv: Vec<usize> = ctxs
                .iter()
                .flat_map(|&c| std::iter::repeat_n(n_sv(c), heads))
                .collect();
            let tbs: Vec<TbWork> = per_inst_sv
                .chunks(64)
                .map(|chunk| {
                    let sv: f64 = chunk.iter().map(|&v| v as f64).sum();
                    TbWork {
                        cuda_flops: sv * (EXP_FLOP_EQUIV + 4.0),
                        dram_read_bytes: sv * (2 * FP16_BYTES) as f64,
                        dram_write_bytes: sv * FP16_BYTES as f64,
                        ..TbWork::default()
                    }
                })
                .collect();
            let mut ir = KernelDesc::builder(
                format!("decode_ir(rows={rows},max_ctx={max_ctx})"),
                KernelCategory::InterReduction,
            );
            ir.shape(TbShape::new(128, 4096, 32))
                .per_tb(tbs)
                .meta(KernelMeta {
                    instances: Some(inst),
                    sub_vector: Some(t_sub),
                    split: Some(ParallelSplit::OutputRows),
                    accum: Some(AccumFormat::Fp32),
                    ..KernelMeta::default()
                })
                .reads(buf(&prefix, "m_prime"), sv_total)
                .reads(buf(&prefix, "d_prime"), sv_total)
                .writes(buf(&prefix, "r_prime"), sv_total);
            kernels.push(ir.build());
        } else {
            // Monolithic softmax over ONE row per instance: only
            // `heads × rows` thread blocks exist — a parallelism desert.
            // Threads are allocated for the longest row (real kernels size
            // the block for the worst case), in whole warps.
            let mut sm = KernelDesc::builder(
                format!("decode_softmax(rows={rows},max_ctx={max_ctx})"),
                KernelCategory::Softmax,
            );
            sm.shape(TbShape::new(
                row_threads(max_ctx),
                (max_ctx * FP16_BYTES) as u32,
                40,
            ));
            per_row_tbs(&mut sm, ctxs, h, |ctx| TbWork {
                cuda_flops: (EXP_FLOP_EQUIV + 4.0) * ctx as f64,
                dram_read_bytes: (ctx * FP16_BYTES) as f64,
                dram_write_bytes: (ctx * FP16_BYTES) as f64,
                mem_active_fraction: 1.0,
                efficiency: SOFTMAX_PHASE_EFFICIENCY,
                ..TbWork::default()
            });
            sm.meta(KernelMeta {
                instances: Some(inst),
                split: Some(ParallelSplit::OutputRows),
                accum: Some(AccumFormat::Fp32),
                ..KernelMeta::default()
            })
            .reads(buf(&prefix, "scores"), row_total)
            .writes(buf(&prefix, "probs"), row_total);
            kernels.push(sm.build());
        }

        // P·V over the V cache. Under recomposition the GS prologue rescales
        // the x' row by the reconstruction factors, so the kernel streams
        // that row's r' slice too — its traffic is part of the cost model.
        let mut pv = KernelDesc::builder(
            format!(
                "decode_pv{}(rows={rows},max_ctx={max_ctx})",
                if recomposed { "+gs" } else { "" }
            ),
            KernelCategory::MatMulPv,
        );
        pv.shape(TbShape::new(256, 16 * 1024, 64));
        per_row_tbs(&mut pv, ctxs, h, |ctx| TbWork {
            cuda_flops: 2.0 * (ctx * d_head) as f64 + if recomposed { ctx as f64 } else { 0.0 },
            dram_read_bytes: ((ctx + 1) * d_head * FP16_BYTES) as f64
                + (ctx * FP16_BYTES) as f64
                + if recomposed {
                    (n_sv(ctx) * FP16_BYTES) as f64
                } else {
                    0.0
                },
            dram_write_bytes: (d_head * FP16_BYTES) as f64,
            mem_active_fraction: 1.0,
            efficiency: STREAM_EFFICIENCY,
            ..TbWork::default()
        });
        pv.meta(KernelMeta {
            d_head: Some(d_head),
            instances: Some(inst),
            fused_gs: recomposed,
            sub_vector: recomposed.then_some(t_sub),
            split: Some(ParallelSplit::OutputRows),
            accum: Some(AccumFormat::Fp32),
            ..KernelMeta::default()
        })
        .reads(buf(&prefix, "v_cache"), cache_total)
        .reads(
            buf(&prefix, if recomposed { "x_prime" } else { "probs" }),
            row_total,
        )
        .reads(buf(&prefix, "v"), qkv_total);
        if recomposed {
            pv.reads(buf(&prefix, "r_prime"), sv_total);
        }
        pv.writes(buf(&prefix, "attn_out"), qkv_total);
        kernels.push(pv.build());

        // Output projection + FF, all weight-bound GEMVs.
        kernels.push(common::fc(
            rows,
            d_model,
            d_model,
            KernelCategory::Fc,
            &prefix,
            "attn_out",
            "proj",
            true,
        ));
        kernels.push(common::layernorm(rows, d_model, &prefix, "proj", "ln1"));
        kernels.push(common::fc(
            rows,
            d_model,
            model.d_ff,
            KernelCategory::FeedForward,
            &prefix,
            "ln1",
            "ff1",
            true,
        ));
        kernels.push(common::fc(
            rows,
            model.d_ff,
            d_model,
            KernelCategory::FeedForward,
            &prefix,
            "ff1",
            "ff2",
            false,
        ));
        kernels.push(common::layernorm(
            rows,
            d_model,
            "",
            &format!("{prefix}.ff2"),
            &format!("l{}.x", layer + 1),
        ));
    }

    crate::schedule::apply_ls_split(params, &mut kernels);

    #[cfg(debug_assertions)]
    {
        let report = check_decode_schedule(model, ctxs, params, &kernels);
        debug_assert!(
            !report.has_errors(),
            "build_batched_decode_schedule produced a schedule that fails static analysis:\n{}",
            report.render()
        );
    }
    kernels
}

/// Builds the kernel schedule for generating ONE token per sequence of the
/// batch, all at context length `ctx` (KV cache already populated) — the
/// homogeneous special case of [`build_batched_decode_schedule`].
///
/// # Panics
///
/// Panics for non-dense models (decode with block-sparse caches is not
/// modeled) and for the online-fused strategy.
pub fn build_decode_schedule(
    model: &ModelConfig,
    ctx: usize,
    params: &RunParams,
) -> Vec<KernelDesc> {
    build_batched_decode_schedule(model, &vec![ctx; params.batch], params)
}

/// Flattens a model/run-parameter pair plus the iteration's context lengths
/// into the analyzer's [`ScheduleSpec`] for a batched-decode schedule:
/// `seq_len = 1`, `batch = ctxs.len()` (so the FC/LayerNorm formulas apply
/// unchanged) and the per-row contexts in [`DecodeSpec`] (driving the exact
/// SDA traffic and footprint sums).
pub fn decode_analysis_spec(
    model: &ModelConfig,
    ctxs: &[usize],
    params: &RunParams,
) -> ScheduleSpec {
    ScheduleSpec {
        seq_len: 1,
        batch: ctxs.len(),
        heads: model.heads,
        d_model: model.d_model,
        d_ff: model.d_ff,
        layers: model.layers,
        strategy: match params.strategy {
            // Unfused decomposition has no dedicated decode path: the
            // builder emits the monolithic softmax for it (one row per
            // instance leaves nothing for standalone LS/IR/GS to win), so
            // the spec must expect the baseline kernel pattern.
            SoftmaxStrategy::Baseline | SoftmaxStrategy::Decomposed => StrategyKind::Baseline,
            SoftmaxStrategy::Recomposed | SoftmaxStrategy::RecomposedFp16 => {
                StrategyKind::Recomposed
            }
            SoftmaxStrategy::OnlineFused => StrategyKind::OnlineFused,
        },
        tile_m: params.tile.m,
        tile_n: params.tile.n,
        softmax_overhead: 1.0,
        matmul_overhead: 1.0,
        attention_overhead: 1.0,
        separate_scale_mask: false,
        separate_elementwise: false,
        sparse: None,
        decode: Some(DecodeSpec {
            ctxs: ctxs.to_vec(),
        }),
    }
}

/// Statically analyzes a batched-decode schedule against the spec implied by
/// `(model, ctxs, params)`, returning the full diagnostic report.
pub fn check_decode_schedule(
    model: &ModelConfig,
    ctxs: &[usize],
    params: &RunParams,
    kernels: &[KernelDesc],
) -> resoftmax_analyzer::Report {
    let spec = decode_analysis_spec(model, ctxs, params);
    resoftmax_analyzer::analyze_certified(&spec, kernels)
}

/// The certified numeric error bound for the batched-decode schedule
/// `(ctxs, params)` would build, computed without building it — the decode
/// counterpart of [`crate::schedule::static_error_bound`] (same rationale:
/// the builder debug-asserts its own analysis, so uncertifiable points must
/// be rejected before a schedule exists).
///
/// The bound is taken at the *longest* context of the batch, matching what
/// the numerics pass reports for the heterogeneous grid. Returns `None`
/// for empty batches, all-zero contexts, and the online-fused strategy
/// (which the decode builder rejects outright).
pub fn decode_error_bound(ctxs: &[usize], params: &RunParams) -> Option<ErrorBound> {
    let ctx = ctxs.iter().copied().max().filter(|&c| c > 0)?;
    let t = params.tile.n;
    Some(match params.strategy {
        // Decomposed rides the baseline decode path (monolithic softmax).
        SoftmaxStrategy::Baseline | SoftmaxStrategy::Decomposed => {
            error_model::monolithic(ctx, AccumFormat::Fp32)
        }
        SoftmaxStrategy::Recomposed => {
            error_model::decomposed(ctx, t, AccumFormat::Fp32, AccumFormat::Fp32)
        }
        SoftmaxStrategy::RecomposedFp16 => {
            error_model::decomposed(ctx, t, AccumFormat::Fp16, AccumFormat::Fp32)
        }
        SoftmaxStrategy::OnlineFused => return None,
    })
}

/// Simulates generating one token at context length `ctx`.
///
/// Legacy free-function entry point. Prefer
/// [`Session::decode_step`](crate::Session::decode_step), which checks the
/// dense-attention and strategy preconditions up front and returns
/// [`Error::InvalidConfig`](crate::Error::InvalidConfig) instead of
/// panicking.
///
/// # Errors
///
/// Returns [`LaunchError`] if a kernel cannot launch.
///
/// # Panics
///
/// Panics for non-dense models or the online-fused strategy.
pub fn run_decode_step(
    model: &ModelConfig,
    ctx: usize,
    params: &RunParams,
    device: DeviceSpec,
) -> Result<RunReport, LaunchError> {
    let schedule = build_decode_schedule(model, ctx, params);
    crate::engine::simulate_schedule("decode_step", model, params, device, &schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_runs_and_is_fast() {
        let m = ModelConfig::gpt_neo_1_3b();
        let r = run_decode_step(&m, 4096, &RunParams::new(4096), DeviceSpec::a100()).unwrap();
        // single token: tens of ms at worst (GEMV parallelism desert), far
        // from the ~140ms of full-sequence inference
        assert!(r.total_time_s() < 0.04, "{}", r.total_time_s());
        assert!(r.total_time_s() > 1e-4);
    }

    #[test]
    fn recomposition_is_neutral_in_decode() {
        // The paper's win vanishes when the attention matrix is one row:
        // speedup within a few percent of 1.0.
        let m = ModelConfig::gpt_neo_1_3b();
        let base = run_decode_step(&m, 4096, &RunParams::new(4096), DeviceSpec::a100()).unwrap();
        let sdf = run_decode_step(
            &m,
            4096,
            &RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed),
            DeviceSpec::a100(),
        )
        .unwrap();
        let speedup = base.total_time_s() / sdf.total_time_s();
        assert!(
            (0.95..1.10).contains(&speedup),
            "decode speedup {speedup} should be ~1"
        );
    }

    #[test]
    fn decode_softmax_fraction_is_tiny() {
        let m = ModelConfig::gpt_neo_1_3b();
        let r = run_decode_step(&m, 4096, &RunParams::new(4096), DeviceSpec::a100()).unwrap();
        assert!(
            r.softmax_time_fraction() < 0.1,
            "decode softmax frac {}",
            r.softmax_time_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "dense attention only")]
    fn sparse_decode_rejected() {
        let _ = build_decode_schedule(&ModelConfig::bigbird_large(), 4096, &RunParams::new(4096));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_ctx_rejected() {
        let _ = build_batched_decode_schedule(
            &ModelConfig::gpt_neo_1_3b(),
            &[128, 0],
            &RunParams::new(4096),
        );
    }

    /// Regression (IR padded-TB overcount): the remainder thread block must
    /// charge only its true instance rows. GPT-Neo at batch 1 has 16
    /// instances in one 64-row TB — a padded figure is a 4x overcount.
    #[test]
    fn ir_remainder_tb_charges_true_rows() {
        let m = ModelConfig::gpt_neo_1_3b();
        let ctx = 4096;
        let params = RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed);
        let ks = build_decode_schedule(&m, ctx, &params);
        let ir = ks
            .iter()
            .find(|k| k.category == KernelCategory::InterReduction)
            .expect("recomposed decode has an IR kernel");
        let n_sv = ctx.div_ceil(params.tile.n);
        let expected = (m.heads * n_sv * FP16_BYTES) as f64; // 16 rows, not 64
        assert_eq!(ir.tbs.total_write_bytes(), expected);
        assert_eq!(ir.tbs.total_read_bytes(), 2.0 * expected);
    }

    /// Regression (r' dead store): the recomposed PV kernel must read the
    /// IR output and account its bytes.
    #[test]
    fn recomposed_pv_reads_r_prime() {
        let m = ModelConfig::gpt_neo_1_3b();
        let params = RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed);
        let ks = build_decode_schedule(&m, 4096, &params);
        let pv = ks
            .iter()
            .find(|k| k.category == KernelCategory::MatMulPv)
            .expect("decode has a PV kernel");
        let r_prime = pv
            .reads
            .iter()
            .find(|b| b.id.ends_with("r_prime"))
            .expect("recomposed PV must read r_prime");
        let n_sv = 4096_usize.div_ceil(params.tile.n);
        assert_eq!(r_prime.bytes, (n_sv * FP16_BYTES * m.heads) as u64);
    }

    /// Regression (warp alignment): decode softmax thread counts are whole
    /// warps even for awkward context lengths (260/4 = 65 before rounding).
    #[test]
    fn decode_softmax_threads_are_warp_aligned() {
        let m = ModelConfig::gpt_neo_1_3b();
        for ctx in [260, 1000, 4096] {
            let ks = build_batched_decode_schedule(&m, &[ctx], &RunParams::new(4096));
            let sm = ks
                .iter()
                .find(|k| k.category == KernelCategory::Softmax)
                .expect("baseline decode has a softmax kernel");
            assert_eq!(sm.shape.threads % 32, 0, "ctx={ctx}: {}", sm.shape.threads);
        }
    }

    #[test]
    fn batched_heterogeneous_contexts_run() {
        let m = ModelConfig::gpt_neo_1_3b();
        let ctxs = [260, 1000, 1000, 4096];
        // Decomposed rides the baseline decode path (monolithic softmax);
        // it must analyze clean too, not just build.
        for strategy in [
            SoftmaxStrategy::Baseline,
            SoftmaxStrategy::Decomposed,
            SoftmaxStrategy::Recomposed,
        ] {
            let params = RunParams::new(4096).strategy(strategy);
            let ks = build_batched_decode_schedule(&m, &ctxs, &params);
            let report = check_decode_schedule(&m, &ctxs, &params, &ks);
            assert!(!report.has_errors(), "{strategy:?}:\n{}", report.render());
            // The static decode bound is exactly what the pass certifies.
            assert_eq!(report.error_bound, decode_error_bound(&ctxs, &params));
        }
    }

    #[test]
    fn fp16_recomposed_decode_certifies_at_small_tiles() {
        use resoftmax_kernels::costs::TileConfig;
        let m = ModelConfig::gpt_neo_1_3b();
        let ctxs = [260, 1000, 4096];
        let params = RunParams::new(4096)
            .strategy(SoftmaxStrategy::RecomposedFp16)
            .tile(TileConfig::new(64, 16));
        let ks = build_batched_decode_schedule(&m, &ctxs, &params);
        let report = check_decode_schedule(&m, &ctxs, &params, &ks);
        assert!(!report.has_errors(), "{}", report.render());
        assert_eq!(report.error_bound, decode_error_bound(&ctxs, &params));
        // The fused QK GEMV declares its binary16 LS accumulation.
        let qk = ks
            .iter()
            .find(|k| k.category == KernelCategory::MatMulQk)
            .unwrap();
        assert_eq!(qk.meta.accum, Some(AccumFormat::Fp16));
        assert!(qk.name.contains("+ls16"), "{}", qk.name);
        // At the default 64-wide tile the same strategy is uncertifiable.
        let wide = RunParams::new(4096).strategy(SoftmaxStrategy::RecomposedFp16);
        let bound = decode_error_bound(&ctxs, &wide).unwrap();
        assert!(!bound.certifies(resoftmax_analyzer::CERT_BUDGET_REL));
    }

    #[test]
    fn batched_decode_scales_sublinearly() {
        // Four rows in one fused iteration beat four single-row iterations:
        // the weight streams are shared across the batch.
        let m = ModelConfig::gpt_neo_1_3b();
        let params = RunParams::new(4096);
        let device = DeviceSpec::a100();
        let one = crate::engine::simulate_schedule(
            "decode_batch",
            &m,
            &params,
            device.clone(),
            &build_batched_decode_schedule(&m, &[2048], &params),
        )
        .unwrap();
        let four = crate::engine::simulate_schedule(
            "decode_batch",
            &m,
            &params,
            device,
            &build_batched_decode_schedule(&m, &[2048; 4], &params),
        )
        .unwrap();
        assert!(
            four.total_time_s() < 4.0 * one.total_time_s(),
            "batched {} vs 4x single {}",
            four.total_time_s(),
            4.0 * one.total_time_s()
        );
    }
}
