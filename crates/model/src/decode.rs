//! Extension: autoregressive *decode* (one token at a time with a KV cache)
//! — a scope boundary of the paper.
//!
//! The paper evaluates full-sequence inference, where the attention matrix
//! is `L × L` and dwarfs the L2. In token-by-token generation the "attention
//! matrix" is a single `1 × ctx` row per head (kilobytes): it lives in L2
//! between kernels, so eliminating its off-chip traffic — the entire point
//! of recomposition — has nothing to eliminate. Decode is bound by weight
//! and KV-cache streaming instead. This module prices that regime so the
//! boundary is measured, not asserted.

use crate::config::{AttentionKind, ModelConfig};
use crate::engine::RunReport;
use crate::schedule::{RunParams, SoftmaxStrategy};
use resoftmax_gpusim::{DeviceSpec, KernelCategory, KernelDesc, LaunchError, TbShape, TbWork};
use resoftmax_kernels::costs::{
    buf, common, EXP_FLOP_EQUIV, FP16_BYTES, SOFTMAX_PHASE_EFFICIENCY, STREAM_EFFICIENCY,
};

/// Builds the kernel schedule for generating ONE token at context length
/// `ctx` (KV cache already populated).
///
/// # Panics
///
/// Panics for non-dense models (decode with block-sparse caches is not
/// modeled) and for the online-fused strategy.
pub fn build_decode_schedule(
    model: &ModelConfig,
    ctx: usize,
    params: &RunParams,
) -> Vec<KernelDesc> {
    assert!(
        matches!(model.attention, AttentionKind::Dense { .. }),
        "decode cost model covers dense attention only"
    );
    assert!(
        params.strategy != SoftmaxStrategy::OnlineFused,
        "decode attention is a single row; online fusion is the GEMV itself"
    );
    let recomposed = params.strategy == SoftmaxStrategy::Recomposed;
    let batch = params.batch;
    let d_model = model.d_model;
    let heads = model.heads;
    let d_head = model.d_head();
    let inst = (heads * batch) as u64;
    let mut kernels = Vec::new();

    for layer in 0..model.layers {
        let prefix = format!("l{layer}");
        // QKV + output projections: 1-row GEMVs, weight-streaming bound.
        for out in ["q", "k", "v"] {
            kernels.push(common::fc(
                batch,
                d_model,
                d_model,
                KernelCategory::Fc,
                &prefix,
                "x",
                out,
                true,
            ));
        }

        // q·Kᵀ over the KV cache: one GEMV per instance, streaming the K
        // cache (ctx × d_head per instance). With recomposition the LS
        // epilogue rides along (scale + exp + local max), fused as in Fig. 6.
        let k_cache = (ctx * d_head * FP16_BYTES) as f64;
        let score_row = (ctx * FP16_BYTES) as f64;
        let qk = KernelDesc::builder(
            format!(
                "decode_qk{}(ctx={ctx})",
                if recomposed { "+ls" } else { "" }
            ),
            KernelCategory::MatMulQk,
        )
        .shape(TbShape::new(256, 16 * 1024, 64))
        .uniform(
            inst,
            TbWork {
                cuda_flops: 2.0 * (ctx * d_head) as f64
                    + if recomposed {
                        (EXP_FLOP_EQUIV + 6.0) * ctx as f64
                    } else {
                        2.0 * ctx as f64
                    },
                tensor_flops: 0.0,
                dram_read_bytes: k_cache,
                dram_write_bytes: score_row,
                mem_active_fraction: 1.0,
                efficiency: STREAM_EFFICIENCY,
            },
        )
        .reads(buf(&prefix, "k_cache"), (k_cache as u64) * inst)
        .writes(
            buf(&prefix, if recomposed { "x_prime" } else { "scores" }),
            (score_row as u64) * inst,
        )
        .build();
        let qk = if recomposed {
            // the fused epilogue also emits the per-sub-vector m'/d'
            let n_sv = ctx.div_ceil(params.tile.n) as u64;
            let mut b = KernelDesc::builder(qk.name.clone(), qk.category);
            b.shape(qk.shape);
            if let resoftmax_gpusim::TbSet::Uniform { count, work } = qk.tbs {
                b.uniform(count, work);
            }
            for r in &qk.reads {
                b.reads(r.id.clone(), r.bytes);
            }
            for w in &qk.writes {
                b.writes(w.id.clone(), w.bytes);
            }
            b.writes(buf(&prefix, "m_prime"), n_sv * 2 * inst)
                .writes(buf(&prefix, "d_prime"), n_sv * 2 * inst);
            b.build()
        } else {
            qk
        };
        kernels.push(qk);

        if recomposed {
            // IR over the row's sub-vectors: trivially small.
            let n_sv = ctx.div_ceil(params.tile.n);
            kernels.push(
                KernelDesc::builder(
                    format!("decode_ir(ctx={ctx})"),
                    KernelCategory::InterReduction,
                )
                .shape(TbShape::new(128, 4096, 32))
                .uniform(
                    inst.div_ceil(64),
                    TbWork {
                        cuda_flops: 64.0 * n_sv as f64 * (EXP_FLOP_EQUIV + 4.0),
                        dram_read_bytes: 64.0 * (2 * n_sv * FP16_BYTES) as f64,
                        dram_write_bytes: 64.0 * (n_sv * FP16_BYTES) as f64,
                        ..Default::default()
                    },
                )
                .reads(buf(&prefix, "m_prime"), (n_sv * FP16_BYTES) as u64 * inst)
                .reads(buf(&prefix, "d_prime"), (n_sv * FP16_BYTES) as u64 * inst)
                .writes(buf(&prefix, "r_prime"), (n_sv * FP16_BYTES) as u64 * inst)
                .build(),
            );
        } else {
            // Monolithic softmax over ONE row per instance: only
            // `heads × batch` thread blocks exist — a parallelism desert.
            kernels.push(
                KernelDesc::builder(
                    format!("decode_softmax(ctx={ctx})"),
                    KernelCategory::Softmax,
                )
                .shape(TbShape::new(
                    (ctx / 4).clamp(32, 1024) as u32,
                    (ctx * FP16_BYTES) as u32,
                    40,
                ))
                .uniform(
                    inst,
                    TbWork {
                        cuda_flops: (EXP_FLOP_EQUIV + 4.0) * ctx as f64,
                        dram_read_bytes: score_row,
                        dram_write_bytes: score_row,
                        mem_active_fraction: 1.0,
                        efficiency: SOFTMAX_PHASE_EFFICIENCY,
                        ..Default::default()
                    },
                )
                .reads(buf(&prefix, "scores"), (score_row as u64) * inst)
                .writes(buf(&prefix, "probs"), (score_row as u64) * inst)
                .build(),
            );
        }

        // P·V over the V cache (GS prologue when recomposed).
        let v_cache = (ctx * d_head * FP16_BYTES) as f64;
        kernels.push(
            KernelDesc::builder(
                format!(
                    "decode_pv{}(ctx={ctx})",
                    if recomposed { "+gs" } else { "" }
                ),
                KernelCategory::MatMulPv,
            )
            .shape(TbShape::new(256, 16 * 1024, 64))
            .uniform(
                inst,
                TbWork {
                    cuda_flops: 2.0 * (ctx * d_head) as f64
                        + if recomposed { ctx as f64 } else { 0.0 },
                    dram_read_bytes: v_cache + score_row,
                    dram_write_bytes: (d_head * FP16_BYTES) as f64,
                    mem_active_fraction: 1.0,
                    efficiency: STREAM_EFFICIENCY,
                    ..Default::default()
                },
            )
            .reads(buf(&prefix, "v_cache"), (v_cache as u64) * inst)
            .reads(
                buf(&prefix, if recomposed { "x_prime" } else { "probs" }),
                (score_row as u64) * inst,
            )
            .writes(
                buf(&prefix, "attn_out"),
                (d_head * FP16_BYTES) as u64 * inst,
            )
            .build(),
        );

        // Output projection + FF, all 1-row weight-bound GEMVs.
        kernels.push(common::fc(
            batch,
            d_model,
            d_model,
            KernelCategory::Fc,
            &prefix,
            "attn_out",
            "proj",
            true,
        ));
        kernels.push(common::layernorm(batch, d_model, &prefix, "proj", "ln1"));
        kernels.push(common::fc(
            batch,
            d_model,
            model.d_ff,
            KernelCategory::FeedForward,
            &prefix,
            "ln1",
            "ff1",
            true,
        ));
        kernels.push(common::fc(
            batch,
            model.d_ff,
            d_model,
            KernelCategory::FeedForward,
            &prefix,
            "ff1",
            "ff2",
            false,
        ));
        kernels.push(common::layernorm(
            batch,
            d_model,
            "",
            &format!("{prefix}.ff2"),
            &format!("l{}.x", layer + 1),
        ));
    }
    kernels
}

/// Simulates generating one token at context length `ctx`.
///
/// Legacy free-function entry point. Prefer
/// [`Session::decode_step`](crate::Session::decode_step), which checks the
/// dense-attention and strategy preconditions up front and returns
/// [`Error::InvalidConfig`](crate::Error::InvalidConfig) instead of
/// panicking.
///
/// # Errors
///
/// Returns [`LaunchError`] if a kernel cannot launch.
///
/// # Panics
///
/// Panics for non-dense models or the online-fused strategy.
pub fn run_decode_step(
    model: &ModelConfig,
    ctx: usize,
    params: &RunParams,
    device: DeviceSpec,
) -> Result<RunReport, LaunchError> {
    let schedule = build_decode_schedule(model, ctx, params);
    crate::engine::simulate_schedule("decode_step", model, params, device, &schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_runs_and_is_fast() {
        let m = ModelConfig::gpt_neo_1_3b();
        let r = run_decode_step(&m, 4096, &RunParams::new(4096), DeviceSpec::a100()).unwrap();
        // single token: tens of ms at worst (GEMV parallelism desert), far
        // from the ~140ms of full-sequence inference
        assert!(r.total_time_s() < 0.04, "{}", r.total_time_s());
        assert!(r.total_time_s() > 1e-4);
    }

    #[test]
    fn recomposition_is_neutral_in_decode() {
        // The paper's win vanishes when the attention matrix is one row:
        // speedup within a few percent of 1.0.
        let m = ModelConfig::gpt_neo_1_3b();
        let base = run_decode_step(&m, 4096, &RunParams::new(4096), DeviceSpec::a100()).unwrap();
        let sdf = run_decode_step(
            &m,
            4096,
            &RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed),
            DeviceSpec::a100(),
        )
        .unwrap();
        let speedup = base.total_time_s() / sdf.total_time_s();
        assert!(
            (0.95..1.10).contains(&speedup),
            "decode speedup {speedup} should be ~1"
        );
    }

    #[test]
    fn decode_softmax_fraction_is_tiny() {
        let m = ModelConfig::gpt_neo_1_3b();
        let r = run_decode_step(&m, 4096, &RunParams::new(4096), DeviceSpec::a100()).unwrap();
        assert!(
            r.softmax_time_fraction() < 0.1,
            "decode softmax frac {}",
            r.softmax_time_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "dense attention only")]
    fn sparse_decode_rejected() {
        let _ = build_decode_schedule(&ModelConfig::bigbird_large(), 4096, &RunParams::new(4096));
    }
}
