//! The schedule builder: model config + run parameters → kernel sequence.
//!
//! This is where the paper's three configurations diverge (Fig. 6):
//!
//! * **Baseline** — `Q·Kᵀ`(+scale+mask) → monolithic softmax → `P·V`.
//! * **Decomposed (SD)** — `Q·Kᵀ`(+scale+mask) → LS → IR → GS → `P·V`.
//! * **Recomposed (SDF)** — `Q·Kᵀ`(+scale+mask+LS) → IR → GS+`P·V`.
//!
//! Library profiles further vary which elementwise layers run standalone and
//! whether sparse models use block-sparse kernels, a dense fallback, or a
//! gather-based implementation (Fig. 7).

use crate::config::ModelConfig;
use crate::library::{LibraryProfile, SparseSupport};
use resoftmax_analyzer::{error_model, ErrorBound, ScheduleSpec, SparseSpec, StrategyKind};
use resoftmax_gpusim::{AccumFormat, KernelCategory, KernelDesc, ParallelSplit, TbSet};
use resoftmax_kernels::costs::{common, dense, sparse, AttnDims, TileConfig};
use serde::{Deserialize, Serialize};

/// Work multiplier gather/scatter-based sparse implementations pay on every
/// attention kernel (the data moves an extra time through gather indices).
const GATHER_PENALTY: f64 = 2.0;

/// The paper's softmax configurations (§5.1), plus the online-softmax
/// extension (§7 pointer, later known as FlashAttention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SoftmaxStrategy {
    /// Monolithic softmax (state-of-the-art library baseline).
    Baseline,
    /// Softmax decomposition only (SD): LS / IR / GS as standalone kernels.
    Decomposed,
    /// Softmax decomposition + fusion (SDF): the paper's contribution.
    Recomposed,
    /// Extension: SDF with the Local-Softmax partial sums accumulated in
    /// binary16 instead of binary32. Cheaper in the fused epilogue (halved
    /// accumulator register pressure) but numerically admissible only where
    /// the analyzer's numerics pass certifies the error bound — in practice
    /// small sub-vector lengths (`T ≤ 32`). The autotuner prices it through
    /// its four-gate oracle; `Session` rejects uncertifiable combinations.
    RecomposedFp16,
    /// Extension: fully fused online-softmax attention — one kernel per SDA
    /// block, no attention matrix in DRAM at all (`resoftmax_kernels::online`).
    OnlineFused,
}

impl SoftmaxStrategy {
    /// The paper's three configurations, in its reporting order.
    pub fn all() -> [SoftmaxStrategy; 3] {
        [
            SoftmaxStrategy::Baseline,
            SoftmaxStrategy::Decomposed,
            SoftmaxStrategy::Recomposed,
        ]
    }

    /// Short label used in reports ("Baseline" / "SD" / "SDF" / "SDF16" /
    /// "Online").
    pub fn label(self) -> &'static str {
        match self {
            SoftmaxStrategy::Baseline => "Baseline",
            SoftmaxStrategy::Decomposed => "SD",
            SoftmaxStrategy::Recomposed => "SDF",
            SoftmaxStrategy::RecomposedFp16 => "SDF16",
            SoftmaxStrategy::OnlineFused => "Online",
        }
    }
}

/// Parameters of one inference run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunParams {
    /// Sequence length `L`.
    pub seq_len: usize,
    /// Batch size.
    pub batch: usize,
    /// Softmax configuration.
    pub strategy: SoftmaxStrategy,
    /// Library schedule profile.
    pub profile: LibraryProfile,
    /// MatMul tile (its width is the LS sub-vector length `T`).
    pub tile: TileConfig,
    /// Overrides the declared parallel split of every standalone Local
    /// Softmax kernel (`None` keeps the generators' defaults). This is a
    /// schedule *annotation*, not a cost knob: the static analyzer rejects
    /// any override that crosses the category's reduction axis, which is how
    /// the autotuner prunes illegal points of its `ParallelSplit` dimension.
    pub ls_split: Option<ParallelSplit>,
}

impl RunParams {
    /// Baseline run at the paper's default setup (batch 1, 64-wide tiles,
    /// the paper's own baseline library profile).
    pub fn new(seq_len: usize) -> Self {
        RunParams {
            seq_len,
            batch: 1,
            strategy: SoftmaxStrategy::Baseline,
            profile: LibraryProfile::ours_baseline(),
            tile: TileConfig::default(),
            ls_split: None,
        }
    }

    /// Sets the strategy (builder style).
    pub fn strategy(mut self, strategy: SoftmaxStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the batch size.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the library profile.
    pub fn profile(mut self, profile: LibraryProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the MatMul tile (tile width = the LS sub-vector length `T`).
    pub fn tile(mut self, tile: TileConfig) -> Self {
        self.tile = tile;
        self
    }

    /// Sets the Local-Softmax parallel-split override.
    pub fn ls_split(mut self, split: Option<ParallelSplit>) -> Self {
        self.ls_split = split;
        self
    }
}

impl Default for RunParams {
    /// The paper's default operating point: `L = 4096`, batch 1, monolithic
    /// softmax, 64×64 tiles, the paper's own baseline library profile. This
    /// is the reference configuration the autotuner reports speedups
    /// against (`RunParams { seq_len, batch, ..RunParams::default() }`
    /// re-anchors it to another workload).
    fn default() -> Self {
        RunParams::new(4096)
    }
}

/// Multiplies every per-block work figure of a kernel by `factor`
/// (implementation-efficiency modeling for library profiles).
fn scale_work(desc: &mut KernelDesc, factor: f64) {
    if factor == 1.0 {
        return;
    }
    let scale_one = |w: &mut resoftmax_gpusim::TbWork| {
        w.cuda_flops *= factor;
        w.tensor_flops *= factor;
        w.dram_read_bytes *= factor;
        w.dram_write_bytes *= factor;
    };
    match &mut desc.tbs {
        TbSet::Uniform { work, .. } => scale_one(work),
        TbSet::PerTb(v) => v.iter_mut().for_each(scale_one),
        TbSet::Grouped(v) => v.iter_mut().for_each(|g| scale_one(&mut g.work)),
    }
}

/// Builds the complete kernel schedule of one inference iteration.
///
/// # Panics
///
/// Panics if `seq_len` is incompatible with the model's sparse block size or
/// the tile width does not divide the sequence length.
pub fn build_schedule(model: &ModelConfig, params: &RunParams) -> Vec<KernelDesc> {
    let rows = params.seq_len * params.batch;
    let d_model = model.d_model;
    let profile = &params.profile;
    let mut kernels = Vec::new();

    // Embedding lookup feeding layer 0 (constant-cost glue, category etc.).
    kernels.push(common::elementwise(
        (rows * d_model) as u64,
        1.0,
        1,
        KernelCategory::Other,
        "embedding",
        "",
        &["tokens"],
        "l0.x",
    ));

    for layer in 0..model.layers {
        let prefix = format!("l{layer}");
        let next_x = format!("l{}.x", layer + 1);
        build_layer(model, params, &prefix, rows, &next_x, &mut kernels);
    }

    // Apply library efficiency overheads.
    for k in &mut kernels {
        let factor = match k.category {
            c if c.is_softmax_family() => profile.softmax_overhead,
            KernelCategory::MatMulQk
            | KernelCategory::MatMulPv
            | KernelCategory::Fc
            | KernelCategory::FeedForward => profile.matmul_overhead,
            _ => 1.0,
        };
        scale_work(k, factor);
    }
    apply_ls_split(params, &mut kernels);

    // Debug builds statically verify every schedule they hand out: fusion
    // legality, buffer dataflow, and traffic conservation (release builds
    // skip the pass; `resoftmax-bench`'s `analyze` binary covers CI).
    #[cfg(debug_assertions)]
    {
        let report = check_schedule(model, params, &kernels);
        debug_assert!(
            !report.has_errors(),
            "build_schedule produced a schedule that fails static analysis:\n{}",
            report.render()
        );
    }
    kernels
}

/// Applies the [`RunParams::ls_split`] override to every standalone Local
/// Softmax kernel of a built schedule (dense `local_softmax` and the
/// block-sparse `bs_local_softmax`). A declared split the analyzer's
/// parallel rule rejects (e.g. `ReductionAxis`) makes the schedule fail
/// [`check_schedule`] — intentionally: that is the pruning signal the
/// autotuner's `ParallelSplit` search dimension relies on. Callers that
/// build schedules directly in debug builds should therefore validate the
/// override first (see `resoftmax-tune`'s precheck).
pub(crate) fn apply_ls_split(params: &RunParams, kernels: &mut [KernelDesc]) {
    let Some(split) = params.ls_split else { return };
    for k in kernels {
        if k.category == KernelCategory::LocalSoftmax {
            k.meta.split = Some(split);
        }
    }
}

/// Flattens a model/run-parameter pair into the analyzer's
/// [`ScheduleSpec`] — the exact dimensions, strategy, overheads and sparse
/// layout that [`build_schedule`] bakes into its kernels.
pub fn analysis_spec(model: &ModelConfig, params: &RunParams) -> ScheduleSpec {
    let profile = &params.profile;
    let use_sparse = model.attention.is_sparse()
        && !matches!(profile.sparse_support, SparseSupport::DenseFallback);
    let sparse = use_sparse.then(|| {
        let layout = model.attention.layout(params.seq_len);
        SparseSpec {
            block: layout.block(),
            n_blocks: layout.n_blocks(),
            nnz_blocks: layout.nnz_blocks(),
            row_counts: layout.row_counts(),
        }
    });
    let attention_overhead = match (use_sparse, profile.sparse_support) {
        (true, SparseSupport::GatherBased) => GATHER_PENALTY,
        _ => 1.0,
    };
    ScheduleSpec {
        seq_len: params.seq_len,
        batch: params.batch,
        heads: model.heads,
        d_model: model.d_model,
        d_ff: model.d_ff,
        layers: model.layers,
        strategy: match params.strategy {
            SoftmaxStrategy::Baseline => StrategyKind::Baseline,
            SoftmaxStrategy::Decomposed => StrategyKind::Decomposed,
            // SDF16 is structurally SDF; only the accumulation-format
            // metadata differs, and the numerics pass reads that off the
            // kernels themselves.
            SoftmaxStrategy::Recomposed | SoftmaxStrategy::RecomposedFp16 => {
                StrategyKind::Recomposed
            }
            SoftmaxStrategy::OnlineFused => StrategyKind::OnlineFused,
        },
        tile_m: params.tile.m,
        tile_n: params.tile.n,
        softmax_overhead: profile.softmax_overhead,
        matmul_overhead: profile.matmul_overhead,
        attention_overhead,
        separate_scale_mask: profile.separate_scale_mask,
        separate_elementwise: profile.separate_elementwise,
        sparse,
        decode: None,
    }
}

/// Statically analyzes a schedule against the spec implied by
/// `(model, params)`, returning the full diagnostic report.
pub fn check_schedule(
    model: &ModelConfig,
    params: &RunParams,
    kernels: &[KernelDesc],
) -> resoftmax_analyzer::Report {
    let spec = analysis_spec(model, params);
    resoftmax_analyzer::analyze_certified(&spec, kernels)
}

/// The certified numeric error bound the analyzer's numerics pass will
/// attach to the schedule `(model, params)` *would* build — computed
/// statically, without building it.
///
/// This is the form the autotuner's numerics gate and [`crate::Session`]
/// validation use: [`build_schedule`] debug-asserts its own analysis, so an
/// uncertifiable combination must be rejected *before* a schedule exists
/// (the same reasoning as `check_ls_split`). Returns `None` where the
/// numerics pass does not apply: actually-sparse schedules (no bound is
/// claimed for block-sparse kernels) and zero-length sequences.
///
/// The bound agrees exactly with what
/// [`resoftmax_analyzer::analyze_certified`] reports on the built schedule;
/// a test pins that correspondence across strategies and tiles.
pub fn static_error_bound(model: &ModelConfig, params: &RunParams) -> Option<ErrorBound> {
    let use_sparse = model.attention.is_sparse()
        && !matches!(params.profile.sparse_support, SparseSupport::DenseFallback);
    if use_sparse || params.seq_len == 0 {
        return None;
    }
    let (ctx, t) = (params.seq_len, params.tile.n);
    Some(match params.strategy {
        SoftmaxStrategy::Baseline => error_model::monolithic(ctx, AccumFormat::Fp32),
        SoftmaxStrategy::Decomposed | SoftmaxStrategy::Recomposed => {
            error_model::decomposed(ctx, t, AccumFormat::Fp32, AccumFormat::Fp32)
        }
        SoftmaxStrategy::RecomposedFp16 => {
            error_model::decomposed(ctx, t, AccumFormat::Fp16, AccumFormat::Fp32)
        }
        SoftmaxStrategy::OnlineFused => error_model::online(ctx, t, AccumFormat::Fp32),
    })
}

fn build_layer(
    model: &ModelConfig,
    params: &RunParams,
    prefix: &str,
    rows: usize,
    next_x: &str,
    kernels: &mut Vec<KernelDesc>,
) {
    let d_model = model.d_model;
    let profile = &params.profile;
    let fused_elementwise = !profile.separate_elementwise;

    // QKV projections.
    for out in ["q", "k", "v"] {
        kernels.push(common::fc(
            rows,
            d_model,
            d_model,
            KernelCategory::Fc,
            prefix,
            "x",
            out,
            fused_elementwise,
        ));
        if profile.separate_elementwise {
            kernels.push(common::elementwise(
                (rows * d_model) as u64,
                1.0,
                1,
                KernelCategory::Other,
                &format!("bias_{out}"),
                prefix,
                &[out],
                out,
            ));
        }
    }

    // The SDA block.
    build_attention(model, params, prefix, kernels);

    // Output projection + residual + LayerNorm.
    kernels.push(common::fc(
        rows,
        d_model,
        d_model,
        KernelCategory::Fc,
        prefix,
        "attn_out",
        "proj",
        fused_elementwise,
    ));
    if profile.separate_elementwise {
        kernels.push(common::elementwise(
            (rows * d_model) as u64,
            1.0,
            2,
            KernelCategory::Other,
            "residual1",
            prefix,
            &["proj", "x"],
            "proj",
        ));
    }
    kernels.push(common::layernorm(rows, d_model, prefix, "proj", "ln1"));

    // FeedForward block.
    kernels.push(common::fc(
        rows,
        d_model,
        model.d_ff,
        KernelCategory::FeedForward,
        prefix,
        "ln1",
        "ff1",
        fused_elementwise,
    ));
    if profile.separate_elementwise {
        kernels.push(common::elementwise(
            (rows * model.d_ff) as u64,
            17.0, // bias + GeLU at SFU cost
            1,
            KernelCategory::Activation,
            "gelu",
            prefix,
            &["ff1"],
            "ff1",
        ));
    }
    kernels.push(common::fc(
        rows,
        model.d_ff,
        d_model,
        KernelCategory::FeedForward,
        prefix,
        "ff1",
        "ff2",
        false,
    ));
    if profile.separate_elementwise {
        kernels.push(common::elementwise(
            (rows * d_model) as u64,
            1.0,
            2,
            KernelCategory::Other,
            "residual2",
            prefix,
            &["ff2", "ln1"],
            "ff2",
        ));
    }
    // Final LayerNorm hands the activation to the next layer.
    kernels.push(common::layernorm(
        rows,
        d_model,
        "",
        &format!("{prefix}.ff2"),
        next_x,
    ));
}

fn build_attention(
    model: &ModelConfig,
    params: &RunParams,
    prefix: &str,
    kernels: &mut Vec<KernelDesc>,
) {
    let dims = AttnDims::new(params.seq_len, model.d_head(), model.heads, params.batch);
    let profile = &params.profile;
    let t = params.tile.n;

    let use_sparse = model.attention.is_sparse()
        && !matches!(profile.sparse_support, SparseSupport::DenseFallback);

    if use_sparse {
        let layout = model.attention.layout(params.seq_len);
        // Gather-based implementations move the data an extra time around
        // every attention kernel.
        let gather_penalty = match profile.sparse_support {
            SparseSupport::GatherBased => GATHER_PENALTY,
            _ => 1.0,
        };
        let start = kernels.len();
        match params.strategy {
            SoftmaxStrategy::OnlineFused => {
                kernels.push(sparse::bs_fused_mha_online(&layout, &dims, prefix));
            }
            SoftmaxStrategy::Baseline => {
                kernels.push(sparse::bs_matmul_qk(
                    &layout,
                    &dims,
                    prefix,
                    sparse::BsQkEpilogue::ScaleMask,
                ));
                kernels.push(sparse::bs_softmax_baseline(&layout, &dims, prefix));
                kernels.push(sparse::bs_matmul_pv(
                    &layout,
                    &dims,
                    prefix,
                    sparse::BsPvPrologue::None,
                ));
            }
            SoftmaxStrategy::Decomposed => {
                kernels.push(sparse::bs_matmul_qk(
                    &layout,
                    &dims,
                    prefix,
                    sparse::BsQkEpilogue::ScaleMask,
                ));
                kernels.push(sparse::bs_local_softmax(&layout, &dims, prefix));
                kernels.push(sparse::bs_inter_reduction(&layout, &dims, prefix));
                kernels.push(sparse::bs_global_scaling(&layout, &dims, prefix));
                kernels.push(sparse::bs_matmul_pv(
                    &layout,
                    &dims,
                    prefix,
                    sparse::BsPvPrologue::None,
                ));
            }
            SoftmaxStrategy::Recomposed => {
                kernels.push(sparse::bs_matmul_qk(
                    &layout,
                    &dims,
                    prefix,
                    sparse::BsQkEpilogue::ScaleMaskLocalSoftmax,
                ));
                kernels.push(sparse::bs_inter_reduction(&layout, &dims, prefix));
                kernels.push(sparse::bs_matmul_pv(
                    &layout,
                    &dims,
                    prefix,
                    sparse::BsPvPrologue::GlobalScaling,
                ));
            }
            SoftmaxStrategy::RecomposedFp16 => {
                // No certified bound exists for block-sparse kernels, so the
                // strategy is undefined there; `Session` rejects the
                // combination with a typed error before reaching the builder.
                panic!(
                    "fp16-accumulation recomposed softmax (SDF16) has no \
                     block-sparse implementation; use a dense-fallback \
                     profile or an fp32-accumulation strategy"
                );
            }
        }
        for k in &mut kernels[start..] {
            scale_work(k, gather_penalty);
        }
        return;
    }

    // Dense path (dense models, and sparse models under a dense fallback).
    let tile = params.tile;
    if params.strategy == SoftmaxStrategy::OnlineFused {
        kernels.push(dense::fused_mha_online(&dims, tile, prefix));
        return;
    }
    if profile.separate_scale_mask {
        // HuggingFace-style: raw scores, then standalone scale and mask.
        kernels.push(dense::matmul_qk(
            &dims,
            tile,
            prefix,
            dense::QkEpilogue::None,
        ));
        let elems = dims.attn_bytes() / 2;
        kernels.push(common::elementwise(
            elems,
            1.0,
            1,
            KernelCategory::Scale,
            "scale",
            prefix,
            &["scores"],
            "scores",
        ));
        kernels.push(common::elementwise(
            elems,
            1.0,
            2,
            KernelCategory::Mask,
            "mask",
            prefix,
            &["scores"],
            "scores",
        ));
    } else {
        kernels.push(dense::matmul_qk(
            &dims,
            tile,
            prefix,
            match params.strategy {
                SoftmaxStrategy::Recomposed => dense::QkEpilogue::ScaleMaskLocalSoftmax,
                SoftmaxStrategy::RecomposedFp16 => dense::QkEpilogue::ScaleMaskLocalSoftmaxF16Acc,
                _ => dense::QkEpilogue::ScaleMask,
            },
        ));
    }

    match params.strategy {
        SoftmaxStrategy::OnlineFused => unreachable!("handled above"),
        SoftmaxStrategy::Baseline => {
            kernels.push(dense::softmax_monolithic(&dims, prefix, "scores"));
            kernels.push(dense::matmul_pv(
                &dims,
                tile,
                prefix,
                dense::PvPrologue::None,
            ));
        }
        SoftmaxStrategy::Decomposed => {
            kernels.push(dense::local_softmax(&dims, t, prefix, "scores"));
            kernels.push(dense::inter_reduction(&dims, t, prefix));
            kernels.push(dense::global_scaling(&dims, t, prefix));
            kernels.push(dense::matmul_pv(
                &dims,
                tile,
                prefix,
                dense::PvPrologue::None,
            ));
        }
        SoftmaxStrategy::Recomposed | SoftmaxStrategy::RecomposedFp16 => {
            // With separate scale/mask the LS epilogue was not emitted above;
            // run LS standalone in that degenerate combination (keeping the
            // strategy's declared accumulation format).
            if profile.separate_scale_mask {
                let accum = match params.strategy {
                    SoftmaxStrategy::RecomposedFp16 => AccumFormat::Fp16,
                    _ => AccumFormat::Fp32,
                };
                kernels.push(dense::local_softmax_accum(
                    &dims, t, prefix, "scores", accum,
                ));
            }
            kernels.push(dense::inter_reduction(&dims, t, prefix));
            kernels.push(dense::matmul_pv(
                &dims,
                tile,
                prefix,
                dense::PvPrologue::GlobalScaling,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert() -> ModelConfig {
        ModelConfig::bert_large()
    }

    #[test]
    fn baseline_schedule_shape() {
        let ks = build_schedule(&bert(), &RunParams::new(4096));
        // 1 embedding + 24 × (3 fc + 3 attn + 1 fc + ln + 2 ff + ln) = 1 + 24·11
        assert_eq!(ks.len(), 1 + 24 * 11);
        assert!(ks.iter().any(|k| k.category == KernelCategory::Softmax));
        assert!(!ks
            .iter()
            .any(|k| k.category == KernelCategory::LocalSoftmax));
    }

    #[test]
    fn recomposed_removes_standalone_softmax() {
        let ks = build_schedule(
            &bert(),
            &RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed),
        );
        assert!(!ks.iter().any(|k| k.category == KernelCategory::Softmax));
        assert!(ks
            .iter()
            .any(|k| k.category == KernelCategory::InterReduction));
        // 11 - softmax + ir = still 11 per layer
        assert_eq!(ks.len(), 1 + 24 * 11);
        // LS is fused: the QK kernel writes x'
        let qk = ks
            .iter()
            .find(|k| k.category == KernelCategory::MatMulQk)
            .unwrap();
        assert!(qk.writes.iter().any(|b| b.id.ends_with("x_prime")));
    }

    #[test]
    fn decomposed_adds_three_kernels() {
        let base = build_schedule(&bert(), &RunParams::new(4096));
        let sd = build_schedule(
            &bert(),
            &RunParams::new(4096).strategy(SoftmaxStrategy::Decomposed),
        );
        assert_eq!(sd.len(), base.len() + 24 * 2); // softmax -> ls+ir+gs
    }

    #[test]
    fn sparse_model_uses_block_sparse_kernels() {
        let ks = build_schedule(&ModelConfig::bigbird_large(), &RunParams::new(4096));
        let qk = ks
            .iter()
            .find(|k| k.category == KernelCategory::MatMulQk)
            .unwrap();
        assert!(qk.name.starts_with("bs_"), "{}", qk.name);
    }

    #[test]
    fn dense_fallback_ignores_sparsity() {
        let params = RunParams::new(4096).profile(LibraryProfile::tensorrt());
        let ks = build_schedule(&ModelConfig::bigbird_large(), &params);
        let qk = ks
            .iter()
            .find(|k| k.category == KernelCategory::MatMulQk)
            .unwrap();
        assert!(!qk.name.starts_with("bs_"), "{}", qk.name);
    }

    #[test]
    fn huggingface_profile_adds_elementwise_kernels() {
        let hg = build_schedule(
            &bert(),
            &RunParams::new(4096).profile(LibraryProfile::huggingface()),
        );
        let ours = build_schedule(&bert(), &RunParams::new(4096));
        assert!(hg.len() > ours.len());
        assert!(hg.iter().any(|k| k.category == KernelCategory::Scale));
        assert!(hg.iter().any(|k| k.category == KernelCategory::Mask));
        assert!(hg.iter().any(|k| k.category == KernelCategory::Activation));
    }

    #[test]
    fn overheads_scale_work() {
        let ours = build_schedule(&bert(), &RunParams::new(4096));
        let tvm = build_schedule(
            &bert(),
            &RunParams::new(4096).profile(LibraryProfile::autotvm()),
        );
        let flops = |ks: &[KernelDesc]| -> f64 { ks.iter().map(KernelDesc::total_flops).sum() };
        assert!(flops(&tvm) > 1.3 * flops(&ours));
    }

    #[test]
    fn batch_scales_grid() {
        let b1 = build_schedule(&bert(), &RunParams::new(4096));
        let b8 = build_schedule(&bert(), &RunParams::new(4096).batch(8));
        let tbs = |ks: &[KernelDesc]| -> u64 { ks.iter().map(|k| k.tbs.count()).sum() };
        let r = tbs(&b8) as f64 / tbs(&b1) as f64;
        assert!(r > 7.0 && r < 9.0, "batch-8 grid ratio {r}");
    }

    #[test]
    fn recomposed_fp16_mirrors_recomposed_and_declares_its_format() {
        let params = RunParams::new(4096)
            .strategy(SoftmaxStrategy::RecomposedFp16)
            .tile(TileConfig::new(64, 16));
        let ks = build_schedule(&bert(), &params);
        // Same shape as SDF: no standalone softmax, IR present.
        assert!(!ks.iter().any(|k| k.category == KernelCategory::Softmax));
        assert!(ks
            .iter()
            .any(|k| k.category == KernelCategory::InterReduction));
        assert_eq!(ks.len(), 1 + 24 * 11);
        // The fused QK kernel declares binary16 accumulation.
        let qk = ks
            .iter()
            .find(|k| k.category == KernelCategory::MatMulQk)
            .unwrap();
        assert_eq!(qk.meta.accum, Some(AccumFormat::Fp16));
        assert!(qk.name.contains("ls16"), "{}", qk.name);
        // The separate-scale-mask degenerate path keeps the format on the
        // standalone LS kernel instead.
        let hf = params.clone().profile(LibraryProfile::huggingface());
        let ks = build_schedule(&bert(), &hf);
        let ls = ks
            .iter()
            .find(|k| k.category == KernelCategory::LocalSoftmax)
            .unwrap();
        assert_eq!(ls.meta.accum, Some(AccumFormat::Fp16));
    }

    #[test]
    fn static_bound_matches_certified_bound_across_strategies() {
        for (strategy, tile_n) in [
            (SoftmaxStrategy::Baseline, 64),
            (SoftmaxStrategy::Decomposed, 64),
            (SoftmaxStrategy::Recomposed, 64),
            (SoftmaxStrategy::RecomposedFp16, 16),
            (SoftmaxStrategy::OnlineFused, 64),
        ] {
            let params = RunParams::new(2048)
                .strategy(strategy)
                .tile(TileConfig::new(64, tile_n));
            let ks = build_schedule(&bert(), &params);
            let report = check_schedule(&bert(), &params, &ks);
            let stat = static_error_bound(&bert(), &params);
            assert!(stat.is_some(), "{}", strategy.label());
            assert_eq!(report.error_bound, stat, "{}", strategy.label());
        }
        // Sparse schedules carry no certified bound, statically or otherwise.
        let sparse = ModelConfig::bigbird_large();
        assert_eq!(static_error_bound(&sparse, &RunParams::new(4096)), None);
    }

    #[test]
    fn fp16_recomposition_uncertifiable_at_wide_tiles() {
        let params = RunParams::new(4096)
            .strategy(SoftmaxStrategy::RecomposedFp16)
            .tile(TileConfig::new(64, 64));
        let bound = static_error_bound(&bert(), &params).unwrap();
        assert!(!bound.certifies(resoftmax_analyzer::CERT_BUDGET_REL));
        // ...while the paper-default fp32 SDF at the same point certifies.
        let fp32 = params.strategy(SoftmaxStrategy::Recomposed);
        let bound = static_error_bound(&bert(), &fp32).unwrap();
        assert!(bound.certifies(resoftmax_analyzer::CERT_BUDGET_REL));
    }

    #[test]
    #[should_panic(expected = "block-sparse")]
    fn fp16_recomposition_panics_on_sparse_schedules() {
        let params = RunParams::new(4096)
            .strategy(SoftmaxStrategy::RecomposedFp16)
            .tile(TileConfig::new(64, 16));
        let _ = build_schedule(&ModelConfig::bigbird_large(), &params);
    }

    #[test]
    fn buffer_chain_links_layers() {
        let ks = build_schedule(&bert(), &RunParams::new(512));
        // the embedding writes l0.x, layer 0's QKV FCs read it
        assert!(ks[0].writes.iter().any(|b| b.id == "l0.x"));
        assert!(ks[1].reads.iter().any(|b| b.id == "l0.x"));
        // layer 0's last layernorm writes l1.x
        assert!(ks.iter().any(|k| k.writes.iter().any(|b| b.id == "l1.x")));
    }
}
