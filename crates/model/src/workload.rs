//! Synthetic long-document workload — the TriviaQA substitute.
//!
//! The paper evaluates on TriviaQA, a long-document QA dataset; only the
//! *shape* of the workload (document token counts, how they batch and pad to
//! the model's sequence length) reaches the kernels, so we generate documents
//! with a seeded log-normal token-length distribution calibrated to
//! long-document corpora (median ≈ 3k tokens, heavy right tail).

use rand::distributions::Distribution;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One synthetic document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// Token count.
    pub tokens: usize,
}

/// Parameters of the synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of documents.
    pub documents: usize,
    /// Log-normal μ of token counts (ln scale).
    pub ln_mean: f64,
    /// Log-normal σ.
    pub ln_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    /// Long-document QA shape: median ≈ e^8 ≈ 3k tokens, moderate tail.
    fn default() -> Self {
        WorkloadConfig {
            documents: 1000,
            ln_mean: 8.0,
            ln_std: 0.6,
            seed: 0x7514,
        }
    }
}

/// A generated corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    docs: Vec<Document>,
}

impl Workload {
    /// Generates a corpus from the config (deterministic in the seed).
    pub fn generate(cfg: &WorkloadConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let unit = rand::distributions::Uniform::new(f64::MIN_POSITIVE, 1.0f64);
        let mut docs = Vec::with_capacity(cfg.documents);
        let mut spare: Option<f64> = None;
        for _ in 0..cfg.documents {
            let z = if let Some(s) = spare.take() {
                s
            } else {
                let u1 = unit.sample(&mut rng);
                let u2 = unit.sample(&mut rng);
                let r = (-2.0 * u1.ln()).sqrt();
                let th = 2.0 * std::f64::consts::PI * u2;
                spare = Some(r * th.sin());
                r * th.cos()
            };
            let tokens = (cfg.ln_mean + cfg.ln_std * z).exp().round().max(1.0) as usize;
            docs.push(Document { tokens });
        }
        Workload { docs }
    }

    /// The documents.
    pub fn docs(&self) -> &[Document] {
        &self.docs
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// `true` if the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Fraction of documents that must be truncated at sequence length `l`
    /// (§2.2: "a transformer model uses the first L tokens of the document
    /// as input when the number of tokens exceeds the maximum sequence
    /// length" — the motivation for longer L).
    pub fn truncated_fraction(&self, l: usize) -> f64 {
        if self.docs.is_empty() {
            return 0.0;
        }
        self.docs.iter().filter(|d| d.tokens > l).count() as f64 / self.docs.len() as f64
    }

    /// Fraction of corpus tokens retained at sequence length `l`.
    pub fn token_coverage(&self, l: usize) -> f64 {
        let total: usize = self.docs.iter().map(|d| d.tokens).sum();
        if total == 0 {
            return 1.0;
        }
        let kept: usize = self.docs.iter().map(|d| d.tokens.min(l)).sum();
        kept as f64 / total as f64
    }

    /// Groups documents into batches of `batch` padded to length `l`,
    /// returning the number of inference iterations needed.
    pub fn iterations(&self, batch: usize) -> usize {
        self.docs.len().div_ceil(batch.max(1))
    }

    /// Length-bucketed batching: assigns each document to the smallest
    /// bucket length that holds it (the largest bucket truncates longer
    /// documents, matching §2.2's first-L-tokens rule) and returns, per
    /// bucket, the number of `batch`-sized iterations needed.
    ///
    /// Buckets must be sorted ascending. This is the standard serving
    /// technique for avoiding max-length padding waste; the
    /// `extension_serving` experiment prices it against flat padding.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is empty or unsorted.
    pub fn bucketed_iterations(&self, buckets: &[usize], batch: usize) -> Vec<(usize, usize)> {
        assert!(!buckets.is_empty(), "need at least one bucket");
        assert!(
            buckets.windows(2).all(|w| w[0] < w[1]),
            "buckets must be sorted"
        );
        let mut counts = vec![0usize; buckets.len()];
        for d in &self.docs {
            let idx = buckets
                .iter()
                .position(|&b| d.tokens <= b)
                .unwrap_or(buckets.len() - 1);
            counts[idx] += 1;
        }
        buckets
            .iter()
            .zip(counts)
            .filter(|(_, n)| *n > 0)
            .map(|(&l, n)| (l, n.div_ceil(batch.max(1))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = WorkloadConfig::default();
        let a = Workload::generate(&cfg);
        let b = Workload::generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        assert!(!a.is_empty());
    }

    #[test]
    fn longer_sequences_cover_more_tokens() {
        let w = Workload::generate(&WorkloadConfig::default());
        let c512 = w.token_coverage(512);
        let c4096 = w.token_coverage(4096);
        assert!(c4096 > c512, "{c4096} > {c512}");
        assert!(c4096 <= 1.0);
        // the paper's motivation: at 512 much of a long document is lost
        assert!(c512 < 0.35, "coverage at 512: {c512}");
        assert!(c4096 > 0.75, "coverage at 4096: {c4096}");
    }

    #[test]
    fn truncation_fraction_monotone() {
        let w = Workload::generate(&WorkloadConfig::default());
        assert!(w.truncated_fraction(512) > w.truncated_fraction(4096));
        assert_eq!(w.truncated_fraction(usize::MAX), 0.0);
    }

    #[test]
    fn bucketed_batching() {
        let w = Workload::generate(&WorkloadConfig::default());
        let buckets = [512usize, 1024, 2048, 4096, 8192];
        let plan = w.bucketed_iterations(&buckets, 8);
        let total: usize = plan.iter().map(|(_, n)| n).sum();
        // bucketing can add at most (buckets-1) partial batches
        assert!(total >= w.iterations(8));
        assert!(total <= w.iterations(8) + buckets.len());
        // every planned bucket is one of the requested lengths
        assert!(plan.iter().all(|(l, _)| buckets.contains(l)));
        // long-tail docs land in the top bucket
        assert!(plan.iter().any(|&(l, _)| l == 8192) || w.truncated_fraction(4096) == 0.0);
    }

    #[test]
    #[should_panic(expected = "buckets must be sorted")]
    fn unsorted_buckets_panic() {
        let w = Workload::generate(&WorkloadConfig {
            documents: 4,
            ..Default::default()
        });
        let _ = w.bucketed_iterations(&[1024, 512], 1);
    }

    #[test]
    fn batching_iterations() {
        let w = Workload::generate(&WorkloadConfig {
            documents: 10,
            ..Default::default()
        });
        assert_eq!(w.iterations(1), 10);
        assert_eq!(w.iterations(8), 2);
        assert_eq!(w.iterations(0), 10);
    }
}
