//! The inference engine: builds a schedule, executes it on a simulated GPU,
//! and packages the results for the reporting layer.

use crate::config::ModelConfig;
use crate::schedule::{build_schedule, RunParams};
use resoftmax_gpusim::{
    Breakdown, DeviceSpec, Gpu, KernelCategory, KernelDesc, LaunchError, Timeline,
};
use serde::{Deserialize, Serialize};

/// The result of simulating one inference iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Model name.
    pub model: String,
    /// Device name.
    pub device: String,
    /// Run parameters used.
    pub params: RunParams,
    /// Per-kernel execution record.
    pub timeline: Timeline,
}

impl RunReport {
    /// Total simulated latency in seconds.
    pub fn total_time_s(&self) -> f64 {
        self.timeline.total_time_s()
    }

    /// Total off-chip traffic in bytes.
    pub fn total_dram_bytes(&self) -> f64 {
        self.timeline.total_dram_bytes()
    }

    /// Total off-chip access energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.timeline.total_energy_j()
    }

    /// Per-category aggregation (Fig. 2 / Fig. 5 / Fig. 8 style).
    pub fn breakdown(&self) -> Breakdown {
        self.timeline.breakdown()
    }

    /// Fraction of total time spent in the softmax family
    /// (monolithic + LS + IR + GS).
    pub fn softmax_time_fraction(&self) -> f64 {
        let b = self.breakdown();
        let total = b.total_time_s();
        if total > 0.0 {
            b.softmax_time_s() / total
        } else {
            0.0
        }
    }

    /// Fraction of total time spent in the SDA block.
    pub fn sda_time_fraction(&self) -> f64 {
        let b = self.breakdown();
        let total = b.total_time_s();
        if total > 0.0 {
            b.sda_time_s() / total
        } else {
            0.0
        }
    }

    /// Time spent in a specific category.
    pub fn time_of(&self, category: KernelCategory) -> f64 {
        self.breakdown().time_of(category)
    }
}

/// Simulates one inference iteration of `model` on `device`.
///
/// Legacy free-function entry point, kept for existing callers and quick
/// scripts. Prefer [`Session`](crate::Session): it validates the
/// model/device/parameter combination up front, runs the static analyzer,
/// and reports everything through the unified [`Error`](crate::Error) type.
///
/// # Errors
///
/// Returns [`LaunchError`] if any kernel's thread block exceeds the device's
/// SM resources (e.g. a monolithic softmax whose worst-case row no longer
/// fits in shared memory).
///
/// # Example
///
/// ```
/// use resoftmax_model::{run_inference, ModelConfig, RunParams};
/// use resoftmax_gpusim::DeviceSpec;
///
/// let report = run_inference(
///     &ModelConfig::bert_large(),
///     &RunParams::new(512),
///     DeviceSpec::a100(),
/// )?;
/// assert!(report.total_time_s() > 0.0);
/// # Ok::<(), resoftmax_gpusim::LaunchError>(())
/// ```
pub fn run_inference(
    model: &ModelConfig,
    params: &RunParams,
    device: DeviceSpec,
) -> Result<RunReport, LaunchError> {
    let schedule = build_schedule(model, params);
    simulate_schedule("run_inference", model, params, device, &schedule)
}

/// Shared execution path of [`run_inference`], `run_decode_step` and the
/// [`Session`](crate::Session) API: executes `schedule` on a fresh GPU and
/// packages the report, recording observability state when enabled —
/// a `"model"`-category span around the run, the simulated kernel timeline
/// as a [`resoftmax_obs::SimStream`] anchored at the run's wall-clock start,
/// and per-category DRAM-byte counters (exactly one accumulation of each
/// category's breakdown total per run, so counters reconcile bit-exactly
/// against [`RunReport::breakdown`]).
pub(crate) fn simulate_schedule(
    kind: &'static str,
    model: &ModelConfig,
    params: &RunParams,
    device: DeviceSpec,
    schedule: &[KernelDesc],
) -> Result<RunReport, LaunchError> {
    let mut stream: Option<(String, f64)> = None;
    let _span = if resoftmax_obs::trace_enabled() {
        let label = format!(
            "{}/{}/L{}b{}",
            model.name,
            params.strategy.label(),
            params.seq_len,
            params.batch
        );
        stream = Some((label.clone(), resoftmax_obs::recorder().now_us()));
        Some(resoftmax_obs::span(format!("{kind} {label}"), "model"))
    } else {
        None
    };
    let device_name = device.name.clone();
    let mut gpu = Gpu::new(device);
    gpu.run(schedule)?;
    let timeline = gpu.into_timeline();
    timeline.record_metrics();
    if let Some((label, anchor_us)) = stream {
        resoftmax_obs::recorder().add_sim_stream(
            label,
            anchor_us,
            resoftmax_gpusim::chrome_trace::to_obs_events(&timeline),
        );
    }
    Ok(RunReport {
        model: model.name.clone(),
        device: device_name,
        params: params.clone(),
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SoftmaxStrategy;

    #[test]
    fn bert_baseline_runs() {
        let r = run_inference(
            &ModelConfig::bert_large(),
            &RunParams::new(4096),
            DeviceSpec::a100(),
        )
        .unwrap();
        assert!(r.total_time_s() > 0.0);
        assert!(r.total_dram_bytes() > 0.0);
        assert!(r.total_energy_j() > 0.0);
        assert!(!r.timeline.is_empty());
    }

    #[test]
    fn fig2_shape_softmax_fraction_bert() {
        // Paper Fig. 2: at L=4096 on A100, softmax ≈ 36% of BERT's time and
        // the SDA block ≈ 68%.
        let r = run_inference(
            &ModelConfig::bert_large(),
            &RunParams::new(4096),
            DeviceSpec::a100(),
        )
        .unwrap();
        let sf = r.softmax_time_fraction();
        assert!(
            (0.25..0.45).contains(&sf),
            "BERT softmax fraction {sf} (paper: 0.36)"
        );
        let sda = r.sda_time_fraction();
        assert!(
            (0.55..0.8).contains(&sda),
            "BERT SDA fraction {sda} (paper: 0.68)"
        );
    }

    #[test]
    fn fig2_shape_softmax_fraction_gpt_neo() {
        // Paper: GPT-Neo softmax ≈ 18% (bigger FC/FF share at d_model 2048).
        let r = run_inference(
            &ModelConfig::gpt_neo_1_3b(),
            &RunParams::new(4096),
            DeviceSpec::a100(),
        )
        .unwrap();
        let sf = r.softmax_time_fraction();
        assert!(
            (0.10..0.30).contains(&sf),
            "GPT-Neo softmax fraction {sf} (paper: 0.18)"
        );
    }

    #[test]
    fn sdf_beats_baseline_on_bert() {
        let base = run_inference(
            &ModelConfig::bert_large(),
            &RunParams::new(4096),
            DeviceSpec::a100(),
        )
        .unwrap();
        let sdf = run_inference(
            &ModelConfig::bert_large(),
            &RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed),
            DeviceSpec::a100(),
        )
        .unwrap();
        let speedup = base.total_time_s() / sdf.total_time_s();
        assert!(
            (1.1..1.5).contains(&speedup),
            "BERT SDF speedup {speedup} (paper: 1.25)"
        );
    }

    #[test]
    fn sd_alone_hurts_dense() {
        // Paper §5.1: SD alone is 0.94× on BERT (slower).
        let base = run_inference(
            &ModelConfig::bert_large(),
            &RunParams::new(4096),
            DeviceSpec::a100(),
        )
        .unwrap();
        let sd = run_inference(
            &ModelConfig::bert_large(),
            &RunParams::new(4096).strategy(SoftmaxStrategy::Decomposed),
            DeviceSpec::a100(),
        )
        .unwrap();
        assert!(
            sd.total_time_s() > base.total_time_s(),
            "SD must be slower on dense: {} vs {}",
            sd.total_time_s(),
            base.total_time_s()
        );
    }

    #[test]
    fn sd_alone_helps_sparse() {
        // Paper §5.1: SD alone is 1.44×/1.49× on BigBird/Longformer.
        let base = run_inference(
            &ModelConfig::bigbird_large(),
            &RunParams::new(4096),
            DeviceSpec::a100(),
        )
        .unwrap();
        let sd = run_inference(
            &ModelConfig::bigbird_large(),
            &RunParams::new(4096).strategy(SoftmaxStrategy::Decomposed),
            DeviceSpec::a100(),
        )
        .unwrap();
        let speedup = base.total_time_s() / sd.total_time_s();
        assert!(
            speedup > 1.15,
            "SD must speed sparse up: {speedup} (paper: 1.44)"
        );
    }

    #[test]
    fn sdf_reduces_traffic() {
        let base = run_inference(
            &ModelConfig::bert_large(),
            &RunParams::new(4096),
            DeviceSpec::a100(),
        )
        .unwrap();
        let sdf = run_inference(
            &ModelConfig::bert_large(),
            &RunParams::new(4096).strategy(SoftmaxStrategy::Recomposed),
            DeviceSpec::a100(),
        )
        .unwrap();
        assert!(
            sdf.total_dram_bytes() < 0.75 * base.total_dram_bytes(),
            "SDF traffic {} vs baseline {}",
            sdf.total_dram_bytes(),
            base.total_dram_bytes()
        );
        assert!(sdf.total_energy_j() < base.total_energy_j());
    }
}
