//! Transformer model configurations: the four models of the paper's
//! evaluation (§4) at their published dimensions.

use resoftmax_sparse::{pattern, BigBirdConfig, BlockLayout, LongformerConfig};
use serde::{Deserialize, Serialize};

/// How a model's SDA block treats the attention matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttentionKind {
    /// Full dense attention, optionally with an autoregressive (causal) mask
    /// (GPT-style decoders). The causal mask is elementwise; standard dense
    /// kernels still compute the full matrix.
    Dense {
        /// `true` for decoder models (GPT-Neo).
        causal: bool,
    },
    /// BigBird block-sparse attention (global + window + random).
    BigBird {
        /// Pattern parameters.
        config: BigBirdConfig,
    },
    /// Longformer block-sparse attention (window + global tokens).
    Longformer {
        /// Pattern parameters.
        config: LongformerConfig,
    },
    /// Sparse Transformer (Child et al., the paper's \[7\]) strided attention:
    /// a local window plus every `stride`-th block column.
    Strided {
        /// Square block side.
        block: usize,
        /// One-sided local window in blocks.
        local_blocks: usize,
        /// Column stride in blocks.
        stride_blocks: usize,
    },
}

impl AttentionKind {
    /// `true` if this kind uses block-sparse kernels.
    pub fn is_sparse(&self) -> bool {
        !matches!(self, AttentionKind::Dense { .. })
    }

    /// The square block side of this kind's attention pattern (64 for dense
    /// kinds, which only use blocks through sparse fallback paths).
    /// [`layout`](Self::layout) requires `seq_len` to be a multiple of this.
    pub fn block_size(&self) -> usize {
        match self {
            AttentionKind::Dense { .. } => 64,
            AttentionKind::BigBird { config } => config.block,
            AttentionKind::Longformer { config } => config.block,
            AttentionKind::Strided { block, .. } => *block,
        }
    }

    /// Materializes the block layout for a sequence length (dense kinds get
    /// a fully dense layout of block 64 for uniform treatment by sparse
    /// fallback paths).
    ///
    /// # Panics
    ///
    /// Panics if `seq_len` is not a multiple of the pattern's block size.
    pub fn layout(&self, seq_len: usize) -> BlockLayout {
        match self {
            AttentionKind::Dense { .. } => BlockLayout::dense(seq_len, 64),
            AttentionKind::BigBird { config } => pattern::bigbird(seq_len, config),
            AttentionKind::Longformer { config } => pattern::longformer(seq_len, config),
            AttentionKind::Strided {
                block,
                local_blocks,
                stride_blocks,
            } => pattern::strided(seq_len, *block, *local_blocks, *stride_blocks),
        }
    }
}

/// A transformer model's architectural parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Display name, e.g. `"BERT-large"`.
    pub name: String,
    /// Number of encoder/decoder layers.
    pub layers: usize,
    /// Hidden size `D_m`.
    pub d_model: usize,
    /// Number of attention heads `H_num`.
    pub heads: usize,
    /// FeedForward inner size `D_ff` (typically `4 × D_m`).
    pub d_ff: usize,
    /// Attention structure.
    pub attention: AttentionKind,
}

impl ModelConfig {
    /// Per-head hidden size `D_head = D_m / H_num`.
    pub fn d_head(&self) -> usize {
        self.d_model / self.heads
    }

    /// BERT-large (§4): 24 layers, `D_m` 1024, 16 heads, dense attention.
    pub fn bert_large() -> Self {
        ModelConfig {
            name: "BERT-large".into(),
            layers: 24,
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
            attention: AttentionKind::Dense { causal: false },
        }
    }

    /// GPT-Neo-1.3B (§4): 24 layers, `D_m` 2048, 16 heads, causal dense
    /// attention.
    pub fn gpt_neo_1_3b() -> Self {
        ModelConfig {
            name: "GPT-Neo-1.3B".into(),
            layers: 24,
            d_model: 2048,
            heads: 16,
            d_ff: 8192,
            attention: AttentionKind::Dense { causal: true },
        }
    }

    /// BigBird-large (§4): BERT-large dimensions with the HuggingFace
    /// block-sparse pattern (block 64, window 3, 3 random blocks, global).
    pub fn bigbird_large() -> Self {
        ModelConfig {
            name: "BigBird-large".into(),
            layers: 24,
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
            attention: AttentionKind::BigBird {
                config: BigBirdConfig::default(),
            },
        }
    }

    /// Longformer-large (§4): BERT-large dimensions with a 512-token sliding
    /// window plus global tokens.
    pub fn longformer_large() -> Self {
        ModelConfig {
            name: "Longformer-large".into(),
            layers: 24,
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
            attention: AttentionKind::Longformer {
                config: LongformerConfig::default(),
            },
        }
    }

    /// Extra preset: BERT-base (12 layers, `D_m` 768, 12 heads) — handy for
    /// quick sweeps and for showing how model size interacts with the
    /// softmax share.
    pub fn bert_base() -> Self {
        ModelConfig {
            name: "BERT-base".into(),
            layers: 12,
            d_model: 768,
            heads: 12,
            d_ff: 3072,
            attention: AttentionKind::Dense { causal: false },
        }
    }

    /// Extra model (beyond the paper's four): Sparse Transformer \[7\] with
    /// strided attention at BERT-large dimensions — the third published
    /// sparse pattern the paper cites, useful for pattern ablations.
    pub fn sparse_transformer() -> Self {
        ModelConfig {
            name: "SparseTransformer".into(),
            layers: 24,
            d_model: 1024,
            heads: 16,
            d_ff: 4096,
            attention: AttentionKind::Strided {
                block: 64,
                local_blocks: 1,
                stride_blocks: 8,
            },
        }
    }

    /// The paper's four evaluation models, in its reporting order.
    pub fn all_eval_models() -> Vec<ModelConfig> {
        vec![
            Self::bert_large(),
            Self::gpt_neo_1_3b(),
            Self::bigbird_large(),
            Self::longformer_large(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_dimensions() {
        let bert = ModelConfig::bert_large();
        assert_eq!(bert.layers, 24);
        assert_eq!(bert.d_model, 1024);
        assert_eq!(bert.heads, 16);
        assert_eq!(bert.d_head(), 64);
        assert_eq!(bert.d_ff, 4096);
        assert!(!bert.attention.is_sparse());

        let gpt = ModelConfig::gpt_neo_1_3b();
        assert_eq!(gpt.d_model, 2048);
        assert_eq!(gpt.d_head(), 128);
        assert!(matches!(
            gpt.attention,
            AttentionKind::Dense { causal: true }
        ));

        assert!(ModelConfig::bigbird_large().attention.is_sparse());
        assert!(ModelConfig::longformer_large().attention.is_sparse());
        assert_eq!(ModelConfig::all_eval_models().len(), 4);
    }

    #[test]
    fn layouts_materialize() {
        let bb = ModelConfig::bigbird_large().attention.layout(4096);
        assert!(bb.density() < 0.2);
        let lf = ModelConfig::longformer_large().attention.layout(4096);
        assert!(lf.density() < 0.4);
        let dense = ModelConfig::bert_large().attention.layout(4096);
        assert_eq!(dense.density(), 1.0);
    }

    #[test]
    fn sparse_models_cheaper_than_dense_at_same_length() {
        // paper §2.3: BigBird reduces attention computation to ~14.3% of BERT
        let bb = ModelConfig::bigbird_large().attention.layout(4096);
        assert!(
            bb.density() > 0.08 && bb.density() < 0.2,
            "{}",
            bb.density()
        );
    }

    #[test]
    fn bert_base_preset() {
        let b = ModelConfig::bert_base();
        assert_eq!(b.d_head(), 64);
        assert_eq!(b.layers, 12);
        assert!(!b.attention.is_sparse());
    }

    #[test]
    fn strided_preset() {
        let st = ModelConfig::sparse_transformer();
        assert!(st.attention.is_sparse());
        let layout = st.attention.layout(4096);
        // local window + every 8th column: density ≈ (3 + 64/8)/64
        assert!(
            layout.density() > 0.1 && layout.density() < 0.25,
            "{}",
            layout.density()
        );
        assert!(layout.is_set(10, 10) && layout.is_set(10, 8) && layout.is_set(10, 0));
    }

    #[test]
    fn serde_round_trip() {
        let m = ModelConfig::bigbird_large();
        let json = serde_json::to_string(&m).unwrap();
        let back: ModelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
